"""Quick smoke test exercised during development (not part of the test suite)."""

from repro.core import DYN, INT, Label, label
from repro.core.terms import App, Cast, Const, Lam, Var, const_int
from repro.lambda_b import run as run_b, type_of as type_b
from repro.lambda_c import run as run_c, type_of as type_c
from repro.lambda_s import run as run_s, type_of as type_s
from repro.lambda_b.embed import embed
from repro.translate import b_to_c, b_to_s, c_to_s

p = label("p")
q = label("q")

# (λx:?. x : ? => int) (7 : int => ?)
term = App(
    Lam("x", DYN, Cast(Var("x"), DYN, INT, q)),
    Cast(const_int(7), INT, DYN, p),
)
print("typeB:", type_b(term))
print("B:", run_b(term))
term_c = b_to_c(term)
print("typeC:", type_c(term_c))
print("C:", run_c(term_c))
term_s = c_to_s(term_c)
print("typeS:", type_s(term_s))
print("S:", run_s(term_s))

# A failing projection: (7 : int => ? => bool)
from repro.core import BOOL

bad = Cast(Cast(const_int(7), INT, DYN, p), DYN, BOOL, q)
print("B bad:", run_b(bad))
print("C bad:", run_c(b_to_c(bad)))
print("S bad:", run_s(b_to_s(bad)))

# Embedded dynamic program: (λx. x + 1) 41
from repro.core.terms import Op

dyn_prog = App(Lam("x", DYN, Op("+", (Var("x"), const_int(41)))), const_int(1))
emb = embed(dyn_prog)
print("embed B:", run_b(emb))
print("embed C:", run_c(b_to_c(emb)))
print("embed S:", run_s(b_to_s(emb)))

# The bytecode VM agrees with all of the above on the λS pipeline.
from repro.compiler import run_on_vm

print("vm:", run_on_vm(term))
print("vm bad:", run_on_vm(bad))
print("vm embed:", run_on_vm(emb))

# The optimizer levels agree with each other (and the -O2 disassembly —
# superinstructions and all — round-trips through the parser).
from repro.compiler import (
    compile_term,
    disassemble,
    instruction_streams,
    parse_disassembly,
)

for probe in (term, bad, emb):
    o0 = run_on_vm(probe, opt_level=0)
    o2 = run_on_vm(probe, opt_level=2)
    assert o0.kind == o2.kind, (o0, o2)
    if o0.is_value:
        assert o0.python_value() == o2.python_value()
    if o0.is_blame:
        assert o0.label == o2.label
for level in (0, 1, 2):
    code = compile_term(emb, opt_level=level)
    assert parse_disassembly(disassemble(code)) == instruction_streams(code), level
print("optimizer levels + disassembly round trip: ok")

# The threesome mediator backend (machine and VM) agrees too.
from repro.machine import run_on_machine

print("machine threesome:", run_on_machine(term, "S", mediator="threesome"))
print("vm threesome:", run_on_vm(term, mediator="threesome"))
print("vm threesome bad:", run_on_vm(bad, mediator="threesome"))

from repro.properties.bisimulation import check_mediator_oracle

for probe in (term, bad, emb):
    report = check_mediator_oracle(probe)
    assert report.ok, report.reason
print("mediator oracle: ok")

# The CLI front end end-to-end, including the new flags and exit codes
# (0 value, 1 blame, 2 static error, 3 timeout).
import pathlib
import tempfile

from repro.cli import main as cli_main

with tempfile.TemporaryDirectory() as tmp:
    good = pathlib.Path(tmp) / "good.grad"
    good.write_text("(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n")
    spin = pathlib.Path(tmp) / "spin.grad"
    spin.write_text("(define (spin [n : int]) : int (spin n))\n(spin 0)\n")
    assert cli_main(["run", str(good)]) == 0
    assert cli_main(["run", str(good), "--engine", "vm", "--mediator", "threesome"]) == 0
    assert cli_main(["run", str(good), "--mediator", "threesome", "--show-space"]) == 0
    assert cli_main(["compile", str(good), "--mediator", "threesome"]) == 0
    assert cli_main(["run", str(spin), "--fuel", "5000"]) == 3
    assert cli_main(["run", str(good), "--mediator", "threesome", "--calculus", "B"]) == 2
    # The optimizer flag: -O0 and -O2 agree end to end, on both subcommands.
    assert cli_main(["run", str(good), "--engine", "vm", "-O", "0"]) == 0
    assert cli_main(["run", str(good), "--engine", "vm", "-O", "2"]) == 0
    assert cli_main(["run", str(good), "--engine", "vm", "--opt-level", "1"]) == 0
    assert cli_main(["compile", str(good), "-O", "0"]) == 0
    assert cli_main(["compile", str(good), "-O", "2"]) == 0
    assert cli_main(["compile", str(good), "-O", "2", "--mediator", "threesome"]) == 0
    assert cli_main(["run", str(spin), "--engine", "vm", "-O", "0", "--fuel", "5000"]) == 3
    assert cli_main(["run", str(spin), "--engine", "vm", "-O", "2", "--fuel", "5000"]) == 3
print("cli flags + exit codes: ok")

# Serialized images and the compile cache: compile -o IMAGE -> run IMAGE ->
# batch over a corpus, with the cache isolated to a scratch directory.
import json
import os

with tempfile.TemporaryDirectory() as tmp:
    os.environ["REPRO_GRADUAL_CACHE_DIR"] = str(pathlib.Path(tmp) / "cache")
    try:
        corpus = pathlib.Path(tmp) / "corpus"
        corpus.mkdir()
        square_src = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"
        (corpus / "square.grad").write_text(square_src)
        (corpus / "spin.grad").write_text(
            "(define (spin [n : int]) : int (spin n))\n(spin 0)\n"
        )
        image = pathlib.Path(tmp) / "square.gradb"
        assert cli_main(["compile", str(corpus / "square.grad"), "-O", "2",
                         "-o", str(image)]) == 0
        assert cli_main(["run", str(image), "--show-space"]) == 0
        assert cli_main(["compile", str(image)]) == 0  # provenance + disassembly
        # A cold then a warm cached run agree; --no-cache still agrees.
        assert cli_main(["run", str(corpus / "square.grad"), "--engine", "vm"]) == 0
        assert cli_main(["run", str(corpus / "square.grad"), "--engine", "vm"]) == 0
        assert cli_main(["run", str(corpus / "square.grad"), "--engine", "vm",
                         "--no-cache"]) == 0
        # Loaded images reproduce the in-memory run exactly.
        from repro.compiler import (
            compile_term as compile_vm,
            disassemble as disassemble_vm,
            load_image,
            run_code,
        )
        from repro.surface.interp import compile_source

        term_b, _ = compile_source(square_src)
        fresh_code = compile_vm(term_b)
        loaded = load_image(image)
        assert disassemble_vm(loaded.code) == disassemble_vm(fresh_code)
        assert run_code(loaded.code).python_value() == run_code(fresh_code).python_value()
        # The batch runner streams JSON-lines and exits 3 (timeout beats value).
        assert cli_main(["batch", str(corpus), "--workers", "2", "--fuel", "5000"]) == 3
        from repro.batch import run_batch

        results, aggregate = run_batch([corpus], workers=1, fuel=5000)
        json.dumps(results), json.dumps(aggregate)
        assert aggregate["outcomes"] == {"value": 1, "blame": 0, "timeout": 1, "error": 0}
        assert aggregate["cache"]["hit"] >= 1  # square was cached by the runs above
    finally:
        del os.environ["REPRO_GRADUAL_CACHE_DIR"]
print("images + compile cache + batch: ok")

# The persistent evaluation service: a real server subprocess, concurrent
# warm/cold requests, one worker SIGKILLed by fault injection (scoped to a
# single dispatch), and a graceful drain.  Every request must get exactly
# one terminal response.
import signal
import subprocess
import sys
import threading

from repro.serve.client import ServeClient
from repro.serve.protocol import TERMINAL_KINDS

with tempfile.TemporaryDirectory() as tmp:
    env = dict(
        os.environ,
        REPRO_GRADUAL_CACHE_DIR=str(pathlib.Path(tmp) / "cache"),
        # Kill the worker on exactly one dispatch: the retry must absorb it.
        REPRO_GRADUAL_FAULTS="worker_kill:1.0:1",
        REPRO_GRADUAL_FAULTS_SEED="20150613",
    )
    env.setdefault("PYTHONPATH", str(pathlib.Path(__file__).resolve().parent.parent / "src"))
    sock = str(pathlib.Path(tmp) / "serve.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket", sock,
         "--workers", "2", "--retries", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["event"] == "ready", ready

    square_src = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"
    blame_src = "(define lib : ? (lambda (x) #t))\n(+ 1 ((: lib (-> int int)) 3))\n"
    requests = [(f"c{i}", square_src if i % 2 else blame_src) for i in range(8)]
    responses: dict[str, dict] = {}

    def fire(rid: str, source: str) -> None:
        with ServeClient.from_ready(ready) as client:
            responses[rid] = client.run(source, id=rid)

    threads = [threading.Thread(target=fire, args=pair) for pair in requests]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert len(responses) == len(requests), responses
    for rid, source in requests:
        response = responses[rid]
        assert response["id"] == rid
        assert response["kind"] in TERMINAL_KINDS, response
        # The single scoped kill is absorbed by a retry: no worker-lost.
        assert response["kind"] in ("value", "blame"), response
    # Warm repeat on one connection, then stats and a graceful SIGTERM drain.
    with ServeClient.from_ready(ready) as client:
        warm = client.run(square_src)
        assert warm["kind"] == "value" and warm["cache"] in ("warm", "hit")
        stats = client.stats()
        assert stats["pool"]["crashes"] == 1 and stats["pool"]["lost"] == 0
    proc.send_signal(signal.SIGTERM)
    _out, _err = proc.communicate(timeout=30)
    assert proc.returncode == 0, _err
print("serve + chaos + drain: ok")

# The rational-programmer experiment: one generated program, inline runner,
# blame-following must localize under Natural and erasure must never blame.
from repro.experiment import ExperimentConfig, run_experiment
from repro.gen import generate_corpus

exp_config = ExperimentConfig(
    semantics=("coercion", "erasure"), workers=0, max_configs=8,
    starts_per_fault=2, faults_per_program=2, seed=0,
)
_trails, exp_report = run_experiment(generate_corpus(1, seed=0, bindings=4), exp_config)
assert exp_report["semantics"]["coercion"]["localized"] >= 1, exp_report
assert exp_report["semantics"]["erasure"]["blame_records"] == 0, exp_report
json.dumps(exp_report)
print("rational-programmer experiment: ok")
