"""Perf-regression smoke: the optimizer's win must not quietly erode.

Re-measures the **two fastest** ``bench_vm`` workloads (fastest by the
committed artifact's ``-O2`` times, so the smoke costs seconds) and
compares the geomean of their ``-O2``-over-``-O0`` speedups against the
geomean recorded in the committed ``BENCH_vm.json``.  The comparison is on
*speedup ratios*, not wall-clock seconds: CI machines are arbitrarily
slower or faster than the machine that recorded the baseline, but the ratio
between two runs of the same VM on the same box is stable.  If the current
ratio slips more than ``SLIP_TOLERANCE`` (25%) below the committed one —
someone pessimised the optimizer or the VM's fast paths — exit non-zero and
fail the build.

Usage::

    python scripts/perf_smoke.py            # exit 0 ok, 1 regression
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from bench_vm import VM_WORKLOADS, geomean  # noqa: E402

from repro.compiler import compile_term, run_code  # noqa: E402

SLIP_TOLERANCE = 0.25
REPEAT = 5


def _best(code, repeat: int = REPEAT) -> float:
    run_code(code)  # warmup
    timings = []
    for _ in range(repeat):
        start = time.perf_counter()
        run_code(code)
        timings.append(time.perf_counter() - start)
    return min(timings)


def main() -> int:
    baseline_path = REPO / "BENCH_vm.json"
    baseline = json.loads(baseline_path.read_text())
    by_name = {m["name"]: m for m in baseline["measurements"]}

    # The two fastest workloads by the committed -O2 run time.
    o2_times = {
        name: by_name[f"vm/S/O2/{name}"]["best_s"]
        for name in VM_WORKLOADS
        if f"vm/S/O2/{name}" in by_name
    }
    if len(o2_times) < 2:
        print(f"perf-smoke: {baseline_path.name} has no vm/S/O2 measurements; "
              "re-record with `python benchmarks/bench_vm.py --json`")
        return 1
    fastest = sorted(o2_times, key=o2_times.get)[:2]

    committed = geomean(
        [by_name[f"speedup/{name}"]["o2_vs_o0"] for name in fastest]
    )

    current_ratios = []
    for name in fastest:
        term_b, check, _ = VM_WORKLOADS[name]
        code_o0 = compile_term(term_b, opt_level=0)
        code_o2 = compile_term(term_b, opt_level=2)
        outcome = run_code(code_o2)
        assert outcome.is_value and check(outcome.python_value()), name
        ratio = _best(code_o0) / _best(code_o2)
        current_ratios.append(ratio)
        print(f"perf-smoke: {name}: -O2 over -O0 now {ratio:.2f}x "
              f"(committed {by_name[f'speedup/{name}']['o2_vs_o0']:.2f}x)")

    current = geomean(current_ratios)
    floor = committed * (1 - SLIP_TOLERANCE)
    verdict = "ok" if current >= floor else "REGRESSION"
    print(f"perf-smoke: geomean {current:.2f}x vs committed {committed:.2f}x "
          f"(floor {floor:.2f}x): {verdict}")
    return 0 if current >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
