"""Perf-regression smoke: the optimizer's and the register VM's wins must
not quietly erode.

Re-measures the **two fastest** ``bench_vm`` workloads (fastest by the
committed artifact's ``-O2`` times, so the smoke costs seconds) and
compares two speedup geomeans against the ones recorded in the committed
``BENCH_vm.json``: ``-O2`` over ``-O0`` (the optimizer's win) and the
register VM over the ``-O2`` stack VM (the register IR's win).  The
comparison is on *speedup ratios*, not wall-clock seconds: CI machines are
arbitrarily slower or faster than the machine that recorded the baseline,
but the ratio between two runs of the same VMs on the same box is stable.
If either current ratio slips more than ``SLIP_TOLERANCE`` (25%) below the
committed one — someone pessimised the optimizer, the VM's fast paths, or
the register dispatch core — exit non-zero and fail the build.

Usage::

    python scripts/perf_smoke.py            # exit 0 ok, 1 regression
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from bench_vm import VM_WORKLOADS, geomean  # noqa: E402

from repro.compiler import compile_registers, compile_term, run_code, run_rcode  # noqa: E402

SLIP_TOLERANCE = 0.25
REPEAT = 5

#: The observability hooks' budget: with no tracer active, the vm/rvm hot
#: loops may not be more than 2% slower than the committed baseline.
TRACE_OVERHEAD_TOLERANCE = 0.02


def _best(code, runner=run_code, repeat: int = REPEAT) -> float:
    runner(code)  # warmup
    timings = []
    for _ in range(repeat):
        start = time.perf_counter()
        runner(code)
        timings.append(time.perf_counter() - start)
    return min(timings)


def main() -> int:
    baseline_path = REPO / "BENCH_vm.json"
    baseline = json.loads(baseline_path.read_text())
    by_name = {m["name"]: m for m in baseline["measurements"]}

    # The two fastest workloads by the committed -O2 run time.
    o2_times = {
        name: by_name[f"vm/S/O2/{name}"]["best_s"]
        for name in VM_WORKLOADS
        if f"vm/S/O2/{name}" in by_name
    }
    if len(o2_times) < 2:
        print(f"perf-smoke: {baseline_path.name} has no vm/S/O2 measurements; "
              "re-record with `python benchmarks/bench_vm.py --json`")
        return 1
    fastest = sorted(o2_times, key=o2_times.get)[:2]

    committed_opt = geomean(
        [by_name[f"speedup/{name}"]["o2_vs_o0"] for name in fastest]
    )
    committed_rvm = geomean(
        [by_name[f"speedup/{name}"]["rvm_vs_o2"] for name in fastest]
    )

    opt_ratios = []
    rvm_ratios = []
    for name in fastest:
        term_b, check, _ = VM_WORKLOADS[name]
        code_o0 = compile_term(term_b, opt_level=0)
        code_o2 = compile_term(term_b, opt_level=2)
        rcode_o2 = compile_registers(code_o2)
        outcome = run_code(code_o2)
        assert outcome.is_value and check(outcome.python_value()), name
        outcome = run_rcode(rcode_o2)
        assert outcome.is_value and check(outcome.python_value()), f"{name} (rvm)"
        best_o2 = _best(code_o2)
        opt_ratio = _best(code_o0) / best_o2
        rvm_ratio = best_o2 / _best(rcode_o2, runner=run_rcode)
        opt_ratios.append(opt_ratio)
        rvm_ratios.append(rvm_ratio)
        print(f"perf-smoke: {name}: -O2 over -O0 now {opt_ratio:.2f}x "
              f"(committed {by_name[f'speedup/{name}']['o2_vs_o0']:.2f}x), "
              f"rvm over -O2 now {rvm_ratio:.2f}x "
              f"(committed {by_name[f'speedup/{name}']['rvm_vs_o2']:.2f}x)")

    status = 0
    for label, current, committed in (
        ("-O2 over -O0", geomean(opt_ratios), committed_opt),
        ("rvm over -O2", geomean(rvm_ratios), committed_rvm),
    ):
        floor = committed * (1 - SLIP_TOLERANCE)
        verdict = "ok" if current >= floor else "REGRESSION"
        print(f"perf-smoke: {label} geomean {current:.2f}x vs committed "
              f"{committed:.2f}x (floor {floor:.2f}x): {verdict}")
        if current < floor:
            status = 1
    status |= trace_overhead_gate(by_name, fastest)
    status |= erasure_ceiling_gate()
    return status


def erasure_ceiling_gate() -> int:
    """Gate: Erasure is the speed ceiling — Natural must pay for enforcement.

    On the boundary-heavy workloads (where mediation actually runs), the
    erasure backend elides every mediator at ``-O1+``; if it is not at least
    as fast as the Natural (coercion) backend in geomean, either the elision
    broke or the Natural backend got a free lunch that should be
    investigated.  Measured live on this box across both engines — speedup
    ratios, like the gates above, are machine-stable.
    """
    from bench_mediators import ENGINE_WORKLOADS

    from repro.machine import run_on_machine

    ratios = []
    for name, term, boundary_heavy, _ in ENGINE_WORKLOADS:
        if not boundary_heavy:
            continue
        code_natural = compile_term(term, mediator="coercion")
        code_erased = compile_term(term, mediator="erasure")
        vm_ratio = _best(code_natural) / _best(code_erased)
        machine_ratio = _best(term, runner=lambda t: run_on_machine(t, "S")) / _best(
            term, runner=lambda t: run_on_machine(t, "S", mediator="erasure"))
        ratios.extend([vm_ratio, machine_ratio])
        print(f"perf-smoke: erasure ceiling on {name}: vm {vm_ratio:.2f}x, "
              f"machine {machine_ratio:.2f}x")

    ceiling = geomean(ratios)
    verdict = "ok" if ceiling >= 1.0 else "REGRESSION"
    print(f"perf-smoke: erasure over coercion geomean {ceiling:.2f}x "
          f"(floor 1.00x): {verdict}")
    return 0 if ceiling >= 1.0 else 1


def trace_overhead_gate(by_name: dict, fastest: list[str]) -> int:
    """Gate: untraced runs may not pay for the observability hooks.

    Every mediator lifecycle site in the vm/rvm dispatch loops now carries
    an ``if tracer is not None`` hook; with no tracer active that test must
    cost ~nothing.  Wall clock is not comparable across machines, so the
    current run times are normalized by a *compile-time calibration ratio*:
    compilation has no hooks at all, so ``compile_now / compile_committed``
    measures only how this box compares to the one that recorded the
    baseline.  The calibrated slowdown

        (run_now / run_committed) / (compile_now / compile_committed)

    is geomeaned over {vm -O2, rvm -O2} × the two fastest workloads and
    gated at ``TRACE_OVERHEAD_TOLERANCE``.  An enabled-tracing run (ring
    buffer sink) is also measured, informationally — it is allowed to cost.
    """
    from repro.obs import RingBufferSink, tracing

    calib_names = [n for n in VM_WORKLOADS if f"compile/{n}" in by_name]
    if not calib_names:
        print("perf-smoke: no compile/* baseline entries; skipping trace gate")
        return 0

    def compile_all() -> None:
        for name in calib_names:
            compile_term(VM_WORKLOADS[name][0], opt_level=2)

    compile_all()  # warmup
    timings = []
    for _ in range(REPEAT):
        start = time.perf_counter()
        compile_all()
        timings.append(time.perf_counter() - start)
    compile_now = min(timings)
    compile_committed = sum(by_name[f"compile/{n}"]["best_s"] for n in calib_names)
    calibration = compile_now / compile_committed

    slowdowns = []
    for name in fastest:
        term_b = VM_WORKLOADS[name][0]
        code_o2 = compile_term(term_b, opt_level=2)
        rcode_o2 = compile_registers(code_o2)
        for label, code, runner in (
            (f"vm/S/O2/{name}", code_o2, run_code),
            (f"rvm/S/O2/{name}", rcode_o2, run_rcode),
        ):
            committed = by_name.get(label)
            if committed is None:
                continue
            now = _best(code, runner=runner)
            slowdowns.append((now / committed["best_s"]) / calibration)

    if not slowdowns:
        print("perf-smoke: no vm/rvm O2 baseline entries; skipping trace gate")
        return 0
    slowdown = geomean(slowdowns)
    ceiling = 1 + TRACE_OVERHEAD_TOLERANCE
    verdict = "ok" if slowdown <= ceiling else "REGRESSION"
    print(f"perf-smoke: disabled-tracing slowdown geomean {slowdown:.3f}x "
          f"(calibration {calibration:.2f}x, ceiling {ceiling:.2f}x): {verdict}")

    # Informational: what tracing costs when it is actually on.
    name = fastest[0]
    rcode = compile_registers(compile_term(VM_WORKLOADS[name][0], opt_level=2))
    untraced = _best(rcode, runner=run_rcode)
    with tracing(RingBufferSink()):
        traced = _best(rcode, runner=run_rcode)
    print(f"perf-smoke: enabled-tracing (ring buffer) overhead on {name}: "
          f"{traced / untraced:.2f}x (informational)")
    return 0 if slowdown <= ceiling else 1


if __name__ == "__main__":
    sys.exit(main())
