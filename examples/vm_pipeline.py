"""The compiler pipeline, end to end: surface → λB → λC → λS → bytecode → VM.

Compiles the boundary-crossing tail loop, prints its disassembly (watch for
``COMPOSE`` + ``TAILCALL`` — the two-opcode space-efficiency story), then
runs it on both the VM and its oracle, the CEK machine, comparing values and
space statistics.

Run with ``python examples/vm_pipeline.py``.
"""

from __future__ import annotations

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import compile_term, disassemble, run_code  # noqa: E402
from repro.gen.programs import tail_countdown_boundary  # noqa: E402
from repro.machine import run_on_machine  # noqa: E402

N = 500


def main() -> None:
    term = tail_countdown_boundary(N)

    code = compile_term(term)
    print(f"=== bytecode for tail_countdown_boundary({N}) ===")
    print(disassemble(code))

    vm_outcome = run_code(code)
    machine_outcome = run_on_machine(term, "S")

    print("=== VM vs the CEK oracle ===")
    print(f"vm      : {vm_outcome.python_value()!r}  stats={vm_outcome.stats}")
    print(f"machine : {machine_outcome.python_value()!r}  stats={machine_outcome.stats}")
    assert vm_outcome.python_value() == machine_outcome.python_value()

    pending = vm_outcome.stats["max_pending_mediators"]
    print(
        f"\nThe VM crossed the boundary {N} times yet held at most {pending} pending "
        "coercion(s):\nevery tail-position result coercion was COMPOSEd into the live "
        "frame's slot with #,\nnever stacked — λS's space guarantee, preserved through "
        "compilation."
    )


if __name__ == "__main__":
    main()
