"""The compiler pipeline, end to end: surface → λB → λC → λS → bytecode →
optimizer → VM.

Compiles the boundary-crossing tail loop, prints its disassembly at ``-O0``
(watch for ``COMPOSE`` + ``TAILCALL`` — the two-opcode space-efficiency
story) and at the default ``-O2`` (the ``COMPOSE`` chain pre-composes away
and hot pairs fuse into superinstructions), then runs it on both the VM and
its oracle, the CEK machine, comparing values and space statistics.

Run with ``python examples/vm_pipeline.py``.
"""

from __future__ import annotations

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import all_code_objects, compile_term, disassemble, run_code  # noqa: E402
from repro.gen.programs import tail_countdown_boundary  # noqa: E402
from repro.machine import run_on_machine  # noqa: E402

N = 500


def main() -> None:
    term = tail_countdown_boundary(N)

    code_o0 = compile_term(term, opt_level=0)
    print(f"=== bytecode for tail_countdown_boundary({N}) at -O0 ===")
    print(disassemble(code_o0))

    code = compile_term(term)  # the default -O2
    print("=== the same program at -O2 (elision + superinstructions) ===")
    print(disassemble(code))
    o0_instrs = sum(len(obj.instructions) for obj in all_code_objects(code_o0))
    o2_instrs = sum(len(obj.instructions) for obj in all_code_objects(code))
    print(f"static stream: {o0_instrs} instructions at -O0, {o2_instrs} at -O2\n")

    vm_outcome = run_code(code)
    machine_outcome = run_on_machine(term, "S")

    print("=== VM vs the CEK oracle ===")
    print(f"vm      : {vm_outcome.python_value()!r}  stats={vm_outcome.stats}")
    print(f"machine : {machine_outcome.python_value()!r}  stats={machine_outcome.stats}")
    assert vm_outcome.python_value() == machine_outcome.python_value()

    pending = vm_outcome.stats["max_pending_mediators"]
    pending_o0 = run_code(code_o0).stats["max_pending_mediators"]
    print(
        f"\nThe VM crossed the boundary {N} times yet held at most {pending_o0} pending "
        "coercion(s) at -O0:\nevery tail-position result coercion was COMPOSEd into the "
        "live frame's slot with #,\nnever stacked — λS's space guarantee, preserved "
        f"through compilation.  At -O2 this\nloop's whole chain pre-composes at compile "
        f"time (max pending: {pending}) — the same\nmerges, moved out of the hot loop."
    )


if __name__ == "__main__":
    main()
