"""Blame tracking: "well-typed programs can't be blamed".

Three scenarios around a contract boundary between a typed and an untyped
component (Findler & Felleisen 2002, Wadler & Findler 2009):

1. an untyped library breaks its promised type — *positive* blame falls on
   the library's boundary label;
2. an untyped client misuses a typed library — *negative* blame (the label's
   complement) falls on the client side;
3. a boundary whose cast goes from a more precise type into ``?`` — blame
   safety guarantees that label can never be blamed, and indeed the program
   converges.

For each scenario the script shows the static safety analysis (Figure 2) next
to the run-time outcome, in all three calculi.

Run with::

    python examples/blame_tracking.py
"""

from __future__ import annotations

from repro.core.labels import label
from repro.gen.programs import (
    safe_boundary_program,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_b.safety import term_safe_for, unsafe_labels
from repro.machine import run_on_machine


def analyse(title: str, program, boundary_name: str = "boundary") -> None:
    boundary = label(boundary_name)
    print(f"--- {title}")
    print(f"statically safe for {boundary}?          "
          f"{'yes' if term_safe_for(program, boundary) else 'no'}")
    print(f"statically safe for {boundary.complement()}?         "
          f"{'yes' if term_safe_for(program, boundary.complement()) else 'no'}")
    print(f"labels that could possibly be blamed: "
          f"{sorted(str(lbl) for lbl in unsafe_labels(program))}")

    # The CEK machine is the engine for all three calculi.
    outcome_b = run_on_machine(program, "B")
    outcome_c = run_on_machine(program, "C")
    outcome_s = run_on_machine(program, "S")
    print(f"λB outcome : {outcome_b}")
    print(f"λC outcome : {outcome_c}")
    print(f"λS outcome : {outcome_s}")

    if outcome_b.is_blame:
        side = "library (positive blame)" if outcome_b.label.positive else "client (negative blame)"
        print(f"verdict    : the fault lies with the {side}")
    else:
        print("verdict    : no fault — the boundary held")
    print()


def main() -> None:
    print(__doc__)
    analyse(
        "untyped library promises int→int but returns a boolean",
        untyped_library_bad_result("boundary"),
    )
    analyse(
        "untyped client passes a boolean to a typed int→int library",
        untyped_client_bad_argument("boundary"),
    )
    analyse(
        "typed function exported at ? and used correctly",
        safe_boundary_program("boundary"),
    )


if __name__ == "__main__":
    main()
