"""Coercion playground: casts, coercions, canonical forms, and composition.

This example works at the level of the calculi rather than whole programs.
It shows, for a handful of interesting casts:

* the coercion ``|A ⇒p B|BC`` of Figure 4;
* its canonical (space-efficient) form ``|·|CS`` of Figure 6;
* the reverse translation ``|·|CB`` back to a sequence of casts;
* and how the composition operator ``#`` collapses long chains of casts —
  including the "threesome" factorings of the Fundamental Property of Casts
  (Lemma 21).

Run with::

    python examples/coercion_playground.py
"""

from __future__ import annotations

from repro.core.labels import label
from repro.core.pretty import cast_to_str
from repro.core.subtyping import meet
from repro.core.types import BOOL, DYN, INT, FunType
from repro.lambda_c.coercions import height as height_c
from repro.lambda_c.coercions import size as size_c
from repro.lambda_s.coercions import compose, height, size
from repro.translate.b_to_c import cast_to_coercion
from repro.translate.b_to_s import cast_to_space
from repro.translate.c_to_b import coercion_to_casts
from repro.translate.c_to_s import coercion_to_space

P = label("p")
Q = label("q")
I2I = FunType(INT, INT)
D2D = FunType(DYN, DYN)


def show_cast(source, lbl, target) -> None:
    print(f"cast              : {cast_to_str(source, lbl, target)}")
    coercion = cast_to_coercion(source, lbl, target)
    print(f"|·|BC  (λC)       : {coercion}   (height {height_c(coercion)}, size {size_c(coercion)})")
    canonical = coercion_to_space(coercion)
    print(f"|·|CS  (λS)       : {canonical}   (height {height(canonical)}, size {size(canonical)})")
    casts = coercion_to_casts(coercion)
    rendered = ", ".join(cast_to_str(spec.source, spec.label, spec.target) for spec in casts)
    print(f"|·|CB  (casts)    : [{rendered}]")
    print()


def show_composition_chain(width: int) -> None:
    print(f"A chain of {width} int ⇒ ? ⇒ int round trips, composed with #:")
    chain = None
    for index in range(width):
        inject = cast_to_space(INT, label(f"in{index}"), DYN)
        project = cast_to_space(DYN, label(f"out{index}"), INT)
        step = compose(inject, project)
        chain = step if chain is None else compose(chain, step)
    print(f"  canonical form  : {chain}")
    print(f"  size            : {size(chain)} (independent of the chain length)")
    print()


def show_fundamental_property() -> None:
    a, b = I2I, DYN
    mediator = meet(a, b)
    print("Fundamental Property of Casts (Lemma 21):")
    print(f"  A = {a},  B = {b},  A & B = {mediator}")
    direct = cast_to_space(a, P, b)
    through = compose(cast_to_space(a, P, mediator), cast_to_space(mediator, P, b))
    print(f"  |A ⇒p B|BS                    : {direct}")
    print(f"  |A ⇒p A&B|BS # |A&B ⇒p B|BS   : {through}")
    print(f"  equal?                        : {direct == through}")
    print()


def main() -> None:
    print(__doc__)
    show_cast(INT, P, DYN)
    show_cast(DYN, P, INT)
    show_cast(I2I, P, D2D)
    show_cast(DYN, Q, FunType(INT, BOOL))
    show_composition_chain(8)
    show_fundamental_property()


if __name__ == "__main__":
    main()
