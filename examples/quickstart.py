"""Quickstart: one gradually typed program, all three calculi.

Run with::

    python examples/quickstart.py

The example builds the paper's pipeline end to end:

1. write a gradually typed surface program;
2. type check it with *consistency* and insert casts, producing a λB term;
3. translate the casts to coercions (λC, Figure 4) and normalise them to
   canonical space-efficient coercions (λS, Figure 6);
4. run the program in each calculus and observe that the outcomes agree
   (the bisimulations of Propositions 11 and 16 at work).
"""

from __future__ import annotations

from repro.core.pretty import term_to_str
from repro.core.terms import count_casts, count_coercions
from repro.lambda_b import type_of as type_of_b
from repro.machine import run_on_machine
from repro.properties.bisimulation import check_engine_oracle_all
from repro.surface.cast_insertion import elaborate_program
from repro.surface.parser import parse_program
from repro.translate import b_to_c, c_to_s

SOURCE = """
;; A typed squaring function applied to a value that arrives through the
;; dynamic type ?.  The ascription (: 7 ?) is the typed/untyped boundary.
(define (square [x : int]) : int (* x x))
(square (: 7 ?))
"""

FAILING_SOURCE = """
;; The same boundary, but the dynamic value is a boolean: the projection
;; out of ? fails at run time and allocates blame to the boundary label.
(define (square [x : int]) : int (* x x))
(square (: #t ?))
"""


def show(title: str, source: str) -> None:
    print(f"=== {title} " + "=" * (60 - len(title)))
    program = parse_program(source)
    term_b, ty = elaborate_program(program)
    print(f"gradual type      : {ty}")
    print(f"λB term           : {term_to_str(term_b)}")
    print(f"casts inserted    : {count_casts(term_b)}")

    term_c = b_to_c(term_b)
    term_s = c_to_s(term_c)
    print(f"λC term           : {term_to_str(term_c)}")
    print(f"λS term           : {term_to_str(term_s)}")
    print(f"coercions (λC/λS) : {count_coercions(term_c)} / {count_coercions(term_s)}")

    print(f"type of λB term   : {type_of_b(term_b)}")
    # Run on the primary engine: the CEK machine of each calculus.
    outcome_b = run_on_machine(term_b, "B")
    outcome_c = run_on_machine(term_b, "C")
    outcome_s = run_on_machine(term_b, "S")
    print(f"λB outcome        : {outcome_b}")
    print(f"λC outcome        : {outcome_c}")
    print(f"λS outcome        : {outcome_s}")
    agree = {outcome_b.kind, outcome_c.kind, outcome_s.kind}
    print(f"calculi agree     : {'yes' if len(agree) == 1 else 'NO'}")
    # Cross-check the machine against the substitution-based reference oracle.
    oracle = check_engine_oracle_all(term_b)
    print(f"oracle agrees     : {'yes' if oracle.ok else 'NO — ' + oracle.reason}")
    print()


def main() -> None:
    show("converging boundary", SOURCE)
    show("failing boundary (blame)", FAILING_SOURCE)


if __name__ == "__main__":
    main()
