"""Compile-once/run-many, end to end: ``.gradb`` images, the compile cache,
and the parallel batch runner.

Walks the whole serving story on the shipped example corpus:

1. compile a program and serialize it to a versioned ``.gradb`` image, then
   reload it and check the round trip is exact (byte-identical disassembly,
   identical outcome and space profile);
2. run the corpus twice through the content-addressed compile cache and
   show the warm start skipping the entire front end;
3. hand the corpus to the batch runner, which compiles once and executes
   across a worker pool, streaming one result dict per program plus
   aggregate shard statistics.

Run with ``python examples/batch_run.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.batch import run_batch  # noqa: E402
from repro.compiler import (  # noqa: E402
    compile_term,
    disassemble,
    load_image,
    run_code,
    save_image,
    source_fingerprint,
)
from repro.surface.interp import compile_source, run_source  # noqa: E402

CORPUS = Path(__file__).resolve().parent / "programs"


def main() -> None:
    # 1. One program through the image format, explicitly.
    program = CORPUS / "stats_pipeline.grad"
    source = program.read_text()
    term, ty = compile_source(source)
    code = compile_term(term)  # the default -O2, coercion backend

    with tempfile.TemporaryDirectory() as tmp:
        image_path = Path(tmp) / "stats_pipeline.gradb"
        save_image(code, image_path, source_hash=source_fingerprint(source), static_type=ty)
        image = load_image(image_path)
        print(f"=== {program.name} -> {image_path.name} "
              f"({image_path.stat().st_size} bytes) ===")
        print(f"provenance: mediator={image.info.mediator} "
              f"opt-level={image.info.opt_level} type={image.info.static_type}")
        assert disassemble(image.code) == disassemble(code), "round trip must be exact"
        fresh, loaded = run_code(code), run_code(image.code)
        assert fresh.python_value() == loaded.python_value()
        assert fresh.stats == loaded.stats
        print(f"loaded image runs identically: {loaded.python_value()!r} "
              f"in {loaded.stats['steps']} instructions\n")

        # 2. The compile cache: cold run compiles and stores, warm run
        # deserializes — no parsing, no type checking, no optimizer.
        cache_dir = str(Path(tmp) / "cache")
        corpus = sorted(CORPUS.glob("*.grad"))
        started = time.perf_counter()
        for path in corpus:
            run_source(path.read_text(), engine="vm", cache=True, cache_dir=cache_dir)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        for path in corpus:
            run_source(path.read_text(), engine="vm", cache=True, cache_dir=cache_dir)
        warm = time.perf_counter() - started
        print(f"=== compile cache over {len(corpus)} programs ===")
        print(f"cold {cold * 1e3:6.2f} ms   warm {warm * 1e3:6.2f} ms   "
              f"({cold / warm:.1f}x faster warm)\n")

        # 3. The batch runner: compile once, execute across workers, stream
        # results.
        print("=== repro-gradual batch (2 workers) ===")
        results, aggregate = run_batch(
            [CORPUS], workers=2, cache_dir=cache_dir,
            on_result=lambda result: print(
                f"  {Path(result['program']).name:22s} {result['kind']:7s} "
                f"steps={result.get('steps', 0):5d} "
                f"pending<={result.get('max_pending_mediators', 0)} "
                f"cache={result.get('cache', '-')}"
            ),
        )
        outcomes = aggregate["outcomes"]
        print(f"aggregate: {aggregate['programs']} programs "
              f"({outcomes['value']} values, {outcomes['blame']} blame, "
              f"{outcomes['timeout']} timeouts, {outcomes['error']} errors), "
              f"{aggregate['steps_total']} VM instructions, "
              f"wall {aggregate['wall_s'] * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
