"""The space-efficiency experiment (Section 1 / Herman et al. 2007, 2010).

Two mutually recursive procedures whose recursive calls are in tail position
should run in constant space; but when one of them is statically typed and
the other is dynamically typed, the mediating casts break the tail-call
property.  This script measures the maximum number (and total size) of
pending casts/coercions during evaluation of ``even n`` for growing ``n`` on
the three abstract machines:

* λB machine — casts, no merging:     pending casts grow linearly with n;
* λC machine — coercions, no merging: pending coercions grow linearly with n;
* λS machine — canonical coercions merged with ``#``: bounded, independent of n.

Run with::

    python examples/space_efficiency.py
"""

from __future__ import annotations

from repro.gen.programs import even_odd_all_typed, even_odd_boundary, even_odd_expected
from repro.machine import run_on_machine

SIZES = (10, 50, 100, 500, 1000, 2000)
CALCULI = ("B", "C", "S")


def measure(n: int, calculus: str) -> dict:
    outcome = run_on_machine(even_odd_boundary(n), calculus)
    assert outcome.is_value and outcome.python_value() == even_odd_expected(n)
    return outcome.stats


def main() -> None:
    print("Space profile of the even/odd typed/untyped boundary workload")
    print("(maximum number of pending casts or coercions during the run)\n")

    header = f"{'n':>6} | " + " | ".join(f"λ{c} pending" for c in CALCULI) + " | λS pending size"
    print(header)
    print("-" * len(header))
    for n in SIZES:
        stats = {calculus: measure(n, calculus) for calculus in CALCULI}
        row = f"{n:>6} | " + " | ".join(
            f"{stats[c]['max_pending_mediators']:>10}" for c in CALCULI
        )
        row += f" | {stats['S']['max_pending_size']:>15}"
        print(row)

    print("\nControl: the same recursion with no typed/untyped boundary")
    control = run_on_machine(even_odd_all_typed(1000), "S").stats
    boundary = run_on_machine(even_odd_boundary(1000), "S").stats
    print(f"  all-typed control, n=1000 : pending={control['max_pending_mediators']}, "
          f"continuation depth={control['max_kont_depth']}")
    print(f"  λS with boundary, n=1000  : pending={boundary['max_pending_mediators']}, "
          f"continuation depth={boundary['max_kont_depth']}")
    print("\nReading: λB and λC need space proportional to the number of boundary-")
    print("crossing tail calls; λS runs them in constant space, like the control.")


if __name__ == "__main__":
    main()
