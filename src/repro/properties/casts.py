"""The Fundamental Property of Casts (Section 5.2, Lemmas 20 and 21).

Lemma 20: if ``A & B <:n C`` then ``|A ⇒p B|BS = |A ⇒p C|BS # |C ⇒p B|BS``.
Lemma 21: under the same hypothesis, ``M : A ⇒p B`` is contextually
equivalent to ``M : A ⇒p C ⇒p B``.

The checkers verify Lemma 20 syntactically on the canonical coercions and
Lemma 21 behaviourally (Kleene equivalence plus contextual probing) on
supplied subject terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.labels import Label
from ..core.subtyping import contains_bottom, meet, subtype_naive
from ..core.terms import Cast, Term
from ..core.types import Type, compatible
from ..lambda_s.coercions import compose
from ..translate.b_to_s import cast_to_space
from .calculi import LAMBDA_B
from .equivalence import contextually_equivalent, kleene_equivalent


@dataclass(frozen=True)
class FundamentalPropertyReport:
    ok: bool
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def applicable(a: Type, b: Type, c: Type) -> bool:
    """Does the hypothesis of Lemma 20/21 hold: ``A ~ B``, ``A ~ C``, ``C ~ B``,
    and ``A & B <:n C``?"""
    if not (compatible(a, b) and compatible(a, c) and compatible(c, b)):
        return False
    return subtype_naive(meet(a, b), c)


def check_lemma20(a: Type, label: Label, b: Type, c: Type) -> FundamentalPropertyReport:
    """Check the coercion-level identity of Lemma 20."""
    if not applicable(a, b, c):
        return FundamentalPropertyReport(False, "hypothesis A & B <:n C does not hold")
    direct = cast_to_space(a, label, b)
    through_c = compose(cast_to_space(a, label, c), cast_to_space(c, label, b))
    if direct != through_c:
        return FundamentalPropertyReport(
            False, f"|A=>B|BS = {direct} but |A=>C|BS # |C=>B|BS = {through_c}"
        )
    return FundamentalPropertyReport(True)


def check_lemma21(
    subject: Term,
    a: Type,
    label: Label,
    b: Type,
    c: Type,
    fuel: int = 20_000,
    probe: bool = True,
) -> FundamentalPropertyReport:
    """Check the behavioural consequence of the Fundamental Property of Casts.

    ``subject`` must be a closed λB term of type ``A``.
    """
    if not applicable(a, b, c):
        return FundamentalPropertyReport(False, "hypothesis A & B <:n C does not hold")
    single = Cast(subject, a, b, label)
    double = Cast(Cast(subject, a, c, label), c, b, label)
    if not kleene_equivalent(LAMBDA_B, single, LAMBDA_B, double, fuel):
        return FundamentalPropertyReport(False, "top-level outcomes differ")
    if probe and not contextually_equivalent(LAMBDA_B, single, LAMBDA_B, double, b, fuel):
        return FundamentalPropertyReport(False, "a probing context distinguishes the two casts")
    return FundamentalPropertyReport(True)


def candidate_mediating_types(a: Type, b: Type, candidates) -> list[Type]:
    """All candidate ``C`` (from an iterable of types) satisfying the hypothesis."""
    lower = meet(a, b)
    result = []
    for c in candidates:
        if contains_bottom(c):
            continue
        if compatible(a, c) and compatible(c, b) and subtype_naive(lower, c):
            result.append(c)
    return result
