"""Executable bisimulation checks between the calculi (Propositions 11 and 16).

* λB ↔ λC (Proposition 11) is a **lockstep** bisimulation: one step on one
  side corresponds to exactly one step on the other, and the translation
  ``|·|BC`` of the λB reduct is *syntactically* the λC reduct.  The checker
  runs both machines side by side and verifies this at every step.

* λC ↔ λS (Proposition 16) is **not** lockstep — one λC step may correspond
  to zero or more λS steps and vice versa.  The checker verifies the
  observable consequences: both sides produce the same outcome (value /
  blame-with-the-same-label / timeout), related values erase to α-equivalent
  terms, and the λS side never holds two adjacent coercions in evaluation
  position after a merge opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.terms import Blame, Coerce, Term, alpha_equal, erase, subterms
from ..translate.b_to_c import term_to_lambda_c
from ..translate.c_to_s import term_to_lambda_s
from .calculi import CALCULI, LAMBDA_B, LAMBDA_C, LAMBDA_S


@dataclass(frozen=True)
class BisimulationReport:
    ok: bool
    steps_left: int
    steps_right: int
    reason: str = ""
    left_term: Term | None = None
    right_term: Term | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


# ---------------------------------------------------------------------------
# λB ↔ λC: lockstep (Proposition 11)
# ---------------------------------------------------------------------------


def check_lockstep_b_c(term_b: Term, fuel: int = 5_000) -> BisimulationReport:
    """Run λB and λC side by side, checking the lockstep correspondence."""
    current_b = term_b
    current_c = term_to_lambda_c(term_b)

    for steps in range(fuel):
        translated = term_to_lambda_c(current_b) if not isinstance(current_b, Blame) else current_b
        if not alpha_equal(translated, current_c):
            return BisimulationReport(
                False, steps, steps,
                "translation of the λB state differs from the λC state",
                current_b, current_c,
            )

        b_is_value = LAMBDA_B.is_value(current_b)
        c_is_value = LAMBDA_C.is_value(current_c)
        b_is_blame = isinstance(current_b, Blame)
        c_is_blame = isinstance(current_c, Blame)

        if b_is_value != c_is_value:
            return BisimulationReport(
                False, steps, steps, "value on one side but not the other", current_b, current_c
            )
        if b_is_blame != c_is_blame:
            return BisimulationReport(
                False, steps, steps, "blame on one side but not the other", current_b, current_c
            )
        if b_is_blame and current_b.label != current_c.label:
            return BisimulationReport(
                False, steps, steps, "blame labels differ", current_b, current_c
            )
        if b_is_value or b_is_blame:
            return BisimulationReport(True, steps, steps)

        next_b = LAMBDA_B.step(current_b)
        next_c = LAMBDA_C.step(current_c)
        if next_b is None or next_c is None:
            return BisimulationReport(
                False, steps, steps, "one side stopped while the other still steps",
                current_b, current_c,
            )
        current_b, current_c = next_b, next_c

    return BisimulationReport(True, fuel, fuel, "fuel exhausted (no violation observed)")


# ---------------------------------------------------------------------------
# λC ↔ λS: outcome bisimulation (Proposition 16)
# ---------------------------------------------------------------------------


def max_adjacent_merged_coercions(term: Term) -> int:
    """The longest chain of immediately nested coercion applications in a λS term."""
    def chain(t: Term) -> int:
        if isinstance(t, Coerce):
            return 1 + chain(t.subject)
        return 0

    return max((chain(t) for t in subterms(term)), default=0)


def check_outcomes_c_s(term_c: Term, fuel: int = 50_000) -> BisimulationReport:
    """Check that a λC term and its λS translation agree observationally.

    Also verifies the space-efficiency invariant: along the λS trace, the
    longest chain of stacked coercion applications never exceeds
    ``2·static + 1``, where ``static`` is the nesting already present in the
    translated program.  The transient worst case arises when a ``let`` or β
    step dissolves a binder and fuses three previously separated chains: the
    coercions above the redex (≤ static), the coercions around the
    substituted variable (≤ static), and the value's own coercion layer
    (≤ 1, by the λS value grammar).  The merge rule then fires with priority
    until the chain is a single coercion, before any other redex runs, so
    the bound is invariant along the whole trace.  In λC, by contrast, this
    chain is unbounded — that contrast is measured by
    ``benchmarks/bench_space.py``.
    """
    term_s = term_to_lambda_s(term_c)

    outcome_c = LAMBDA_C.run(term_c, fuel)
    steps_c = outcome_c.steps
    static_bound = 2 * max(max_adjacent_merged_coercions(term_s), 1) + 1

    # Walk the λS trace explicitly so we can check the merge invariant.
    current = term_s
    steps_s = 0
    outcome_s_kind = "timeout"
    outcome_s_value = None
    outcome_s_label = None
    for steps_s in range(fuel + 1):
        if isinstance(current, Blame):
            outcome_s_kind, outcome_s_label = "blame", current.label
            break
        if LAMBDA_S.is_value(current):
            outcome_s_kind, outcome_s_value = "value", current
            break
        if max_adjacent_merged_coercions(current) > static_bound:
            return BisimulationReport(
                False, steps_c, steps_s,
                f"λS state stacks more than {static_bound} coercions", term_c, current,
            )
        nxt = LAMBDA_S.step(current)
        if nxt is None:
            return BisimulationReport(
                False, steps_c, steps_s, "λS term is stuck", term_c, current
            )
        current = nxt

    if outcome_c.is_timeout or outcome_s_kind == "timeout":
        ok = outcome_c.is_timeout and outcome_s_kind == "timeout"
        return BisimulationReport(ok, steps_c, steps_s,
                                  "" if ok else "one side timed out, the other finished",
                                  term_c, current)

    if outcome_c.is_blame or outcome_s_kind == "blame":
        if not (outcome_c.is_blame and outcome_s_kind == "blame"):
            return BisimulationReport(
                False, steps_c, steps_s, "blame on one side only", term_c, current
            )
        if outcome_c.label != outcome_s_label:
            return BisimulationReport(
                False, steps_c, steps_s,
                f"blame labels differ: {outcome_c.label} vs {outcome_s_label}",
                term_c, current,
            )
        return BisimulationReport(True, steps_c, steps_s)

    # Both values: they must erase to α-equivalent underlying terms.
    if not alpha_equal(erase(outcome_c.term), erase(outcome_s_value)):
        return BisimulationReport(
            False, steps_c, steps_s, "values erase to different terms",
            outcome_c.term, outcome_s_value,
        )
    return BisimulationReport(True, steps_c, steps_s)


def check_outcomes_b_c_s(term_b: Term, fuel: int = 50_000) -> BisimulationReport:
    """End-to-end agreement of all three calculi on a λB program."""
    lockstep = check_lockstep_b_c(term_b, min(fuel, 5_000))
    if not lockstep.ok:
        return lockstep
    return check_outcomes_c_s(term_to_lambda_c(term_b), fuel)


# ---------------------------------------------------------------------------
# Engine ↔ oracle: the CEK machine against the substitution reducers
# ---------------------------------------------------------------------------


def reducer_value_to_python(term: Term) -> object:
    """Project a substitution-reducer value to a Python observable.

    Mirrors :func:`repro.machine.values.machine_value_to_python`: constants
    project to themselves, pairs componentwise, functions to the opaque
    ``"<function>"`` marker, and mediator wrappers (casts/coercions) are
    looked through via erasure.
    """
    from ..core.terms import Const, Lam, Fix, Pair, erase

    stripped = erase(term)

    def project(t: Term) -> object:
        if isinstance(t, Const):
            return t.value
        if isinstance(t, Pair):
            return (project(t.left), project(t.right))
        if isinstance(t, (Lam, Fix)):
            return "<function>"
        return str(t)

    return project(stripped)


def check_engine_oracle(
    term_b: Term,
    calculus: str = "S",
    machine_fuel: int = 2_000_000,
    subst_fuel: int = 100_000,
    strict_timeouts: bool = False,
) -> BisimulationReport:
    """Check the production engine against the reference oracle on one program.

    Runs the λB program on the CEK machine of the chosen calculus and on the
    corresponding paper-faithful substitution reducer, and compares the
    observable outcome: the projected value, the blame label, or timeout.
    The two fuel budgets are measured in different units (machine steps
    versus reduction steps); when exactly one side exhausts its fuel the
    comparison is inconclusive and reported as ok unless ``strict_timeouts``.
    """
    from ..machine import run_on_machine
    from ..translate import b_to_c, b_to_s

    calculus = calculus.upper()
    machine_outcome = run_on_machine(term_b, calculus, machine_fuel)

    if calculus == "B":
        oracle_term = term_b
    elif calculus == "C":
        oracle_term = b_to_c(term_b)
    elif calculus == "S":
        oracle_term = b_to_s(term_b)
    else:
        raise ValueError(f"unknown calculus {calculus!r}")
    oracle_outcome = CALCULI[calculus].run(oracle_term, subst_fuel)

    steps_m = (machine_outcome.stats or {}).get("steps", 0)
    return _compare_outcomes(
        machine_outcome, oracle_outcome, steps_m, oracle_outcome.steps,
        "engine", "oracle", term_b, strict_timeouts,
        project_right=lambda outcome: reducer_value_to_python(outcome.term),
        right_term=oracle_term,
    )


def check_engine_oracle_all(term_b: Term, **kwargs) -> BisimulationReport:
    """Engine/oracle agreement on all three calculi; first failure wins."""
    for calculus in ("B", "C", "S"):
        report = check_engine_oracle(term_b, calculus, **kwargs)
        if not report.ok:
            return report
    return report


# ---------------------------------------------------------------------------
# VM ↔ oracles: the bytecode VM against the CEK machine and the reducers
# ---------------------------------------------------------------------------


def check_vm_oracle(
    term_b: Term,
    vm_fuel: int = 10_000_000,
    machine_fuel: int = 2_000_000,
    subst_fuel: int = 100_000,
    strict_timeouts: bool = False,
    check_subst: bool = True,
    check_rvm: bool = True,
) -> BisimulationReport:
    """Check the bytecode VMs against their oracles on one λB program.

    Exactly as PR 1 kept the substitution reducers as the machine's oracle,
    the CEK machine is the VM's oracle: the program is compiled to bytecode
    and run on the VM, run on the λS CEK machine, and (unless
    ``check_subst=False``) run on the λS substitution reducer; all
    observables must agree — the projected value, the blame *label*, or
    timeout.  As in :func:`check_engine_oracle`, the fuels are in different
    units, so a timeout on only one side is inconclusive rather than a
    failure unless ``strict_timeouts``.

    The register VM (``repro.compiler.rvm``) is under the same oracle
    (unless ``check_rvm=False``): the same program register-compiled must
    agree with the stack VM at ``-O2`` *and* at ``-O0``, and — when neither
    run times out — must reproduce the stack VM's pending-mediator
    footprint exactly: register allocation moves operands out of the
    operand stack, never a mediator out of its single pending slot.  (The
    two VMs' step units differ — a register instruction does the work of
    about two stack instructions — so one-sided timeouts between them are
    always inconclusive.)

    Additionally sanity-checks the VM's space accounting: the run must never
    report more pending coercions than live frames
    (``max_pending_mediators ≤ max_kont_depth + 1``).  This is a structural
    invariant of the one-pending-slot-per-frame design; the sharper,
    workload-scaling guarantee — a pending footprint *constant in the
    iteration count* on boundary tail loops — is asserted by
    ``tests/test_compiler.py`` (two sizes compared) and recorded per
    workload by ``benchmarks/bench_vm.py``.

    The optimizer is under the same oracle: the program is run at ``-O0``
    (the raw lowered stream) and at ``-O2`` (elision, pre-composition,
    superinstructions, inline caches) and the two must agree on the
    projected value, the blame label, and timeouts; on top of the outcome,
    ``-O2`` may only *shrink* the pending-mediator footprint (a statically
    elided identity is one fewer pending mediator, never one more).
    """
    from ..compiler import run_on_vm
    from ..machine import run_on_machine

    vm_outcome = run_on_vm(term_b, vm_fuel)  # the default -O2
    machine_outcome = run_on_machine(term_b, "S", machine_fuel)

    steps_vm = (vm_outcome.stats or {}).get("steps", 0)
    steps_m = (machine_outcome.stats or {}).get("steps", 0)

    stats = vm_outcome.stats or {}
    if stats.get("max_pending_mediators", 0) > stats.get("max_kont_depth", 0) + 1:
        return BisimulationReport(
            False, steps_vm, steps_m,
            f"VM stacked pending coercions: {stats['max_pending_mediators']} pending "
            f"across {stats['max_kont_depth'] + 1} frames",
            term_b, None,
        )

    # -O0 against -O2 (same engine, same step unit per instruction, but the
    # fused stream takes fewer steps — so a one-sided timeout is *expected*
    # near the fuel limit and always inconclusive, even when the caller
    # asked for strict timeouts against the other oracles; this matches
    # check_mediator_oracle's -O0/-O2 comparison).
    unopt_outcome = run_on_vm(term_b, vm_fuel, opt_level=0)
    steps_unopt = (unopt_outcome.stats or {}).get("steps", 0)
    report = _compare_outcomes(vm_outcome, unopt_outcome, steps_vm, steps_unopt,
                               "VM/-O2", "VM/-O0", term_b, strict_timeouts=False)
    if not report.ok:
        return report
    pending_o2 = stats.get("max_pending_mediators", 0)
    pending_o0 = (unopt_outcome.stats or {}).get("max_pending_mediators", 0)
    if pending_o2 > pending_o0:
        return BisimulationReport(
            False, steps_vm, steps_unopt,
            f"-O2 grew the pending-mediator footprint: {pending_o2} vs -O0's {pending_o0}",
            term_b, None,
        )

    if check_rvm:
        from ..compiler import run_on_rvm

        for level, stack_outcome in ((2, vm_outcome), (0, unopt_outcome)):
            rvm_outcome = run_on_rvm(term_b, vm_fuel, opt_level=level)
            steps_r = (rvm_outcome.stats or {}).get("steps", 0)
            steps_s = (stack_outcome.stats or {}).get("steps", 0)
            report = _compare_outcomes(
                rvm_outcome, stack_outcome, steps_r, steps_s,
                f"rVM/-O{level}", f"VM/-O{level}", term_b, strict_timeouts=False,
            )
            if not report.ok:
                return report
            if not (rvm_outcome.is_timeout or stack_outcome.is_timeout):
                rstats = rvm_outcome.stats or {}
                sstats = stack_outcome.stats or {}
                for key in ("max_pending_mediators", "max_pending_size"):
                    if rstats.get(key, 0) != sstats.get(key, 0):
                        return BisimulationReport(
                            False, steps_r, steps_s,
                            f"register VM changed the space profile at -O{level}: "
                            f"{key} {rstats.get(key, 0)} vs stack VM's {sstats.get(key, 0)}",
                            term_b, None,
                        )

    report = _compare_outcomes(vm_outcome, machine_outcome, steps_vm, steps_m,
                               "VM", "machine", term_b, strict_timeouts)
    if not report.ok or not check_subst:
        return report

    oracle_outcome = CALCULI["S"].run(
        term_to_lambda_s(term_to_lambda_c(term_b)), subst_fuel
    )
    return _compare_outcomes(
        vm_outcome, oracle_outcome, steps_vm, oracle_outcome.steps,
        "VM", "subst", term_b, strict_timeouts,
        project_right=lambda outcome: reducer_value_to_python(outcome.term),
    )


# ---------------------------------------------------------------------------
# Mediator backends: coercions (#) against threesomes (∘) on machine and VM
# ---------------------------------------------------------------------------


def check_mediator_oracle(
    term_b: Term,
    machine_fuel: int = 2_000_000,
    vm_fuel: int = 10_000_000,
    check_vm: bool = True,
    check_rvm: bool = True,
) -> BisimulationReport:
    """Check the threesome mediator backend against the coercion backend.

    The paper's §6.1 claims threesomes and space-efficient coercions are two
    presentations of the same thing; this check makes the claim executable on
    one λB program.  It runs the λS CEK machine and (unless
    ``check_vm=False``) the bytecode VM under **both** pending-mediator
    representations and requires agreement of every observable:

    * the outcome — projected value, blame *label*, or timeout.  Within one
      engine the two backends take identical step counts (the representation
      changes only what a pending mediator *is*, not when one is pushed or
      merged), so timeouts are compared strictly;
    * the space profile — ``max_pending_mediators`` must be equal backend to
      backend: composing with ``∘`` must collapse pending mediators exactly
      where ``#`` does (on boundary tail loops both stay at 1, the λS space
      guarantee).

    The VM half also runs each backend at ``-O0`` against the default
    ``-O2``: outcomes must agree and the optimized footprint may only
    shrink — the optimizer's rewrites (identity elision, static
    pre-composition, fusion, inline caches) are mediator-representation
    independent and this is where that is enforced.

    The register VM (unless ``check_rvm=False``) is held to the same
    standard: both backends register-compiled must agree with each other
    (strictly — within the rvm the two backends take identical dispatch
    counts, exactly as within the stack VM) and with the stack VM's
    coercion backend, with equal pending-mediator footprints throughout.

    Beyond the two Natural backends, every remaining entry of the
    enforcement-semantics registry (``transient``, ``erasure``) is checked
    against the Natural baseline on each engine of the matrix —
    {machine, VM, rVM} × {coercion, threesome, transient, erasure} — under
    the registry's capability flags:

    * a backend with ``blames=False`` (Erasure) must **never** end in blame,
      on any program.  It may instead crash with a dynamic type error
      (:class:`~repro.core.errors.EvaluationError`) — but only on programs
      where Natural did *not* produce a value: the guard the backend elides
      (or, for Transient, checks only shallowly) is exactly what would have
      intercepted the fault as blame;
    * on blame-free programs (Natural produced a value) every backend must
      produce the *same* value — in particular Natural-vs-Transient
      divergence is confined to blame labels/occurrence: when Natural
      blames, Transient may blame a different label, produce a value (a
      deep check Transient drops by design), or time out, but when Natural
      has a value Transient must have that value;
    * a ``space_bounded`` backend must preserve the structural
      one-pending-slot-per-frame invariant
      (``max_pending_mediators ≤ max_kont_depth + 1``), and each backend's
      ``-O2`` footprint may only shrink against its own ``-O0``.  (The
      exact footprint may differ from Natural's: Transient keeps a
      residual tag check where ``#`` statically cancels an injection
      against its projection.)

    One-sided timeouts against a different backend are always inconclusive
    here (Transient and Erasure do strictly less mediation work, so their
    step counts differ from Natural's by design).
    """
    from ..compiler import run_on_vm
    from ..machine import run_on_machine

    def pending(outcome) -> int:
        return (outcome.stats or {}).get("max_pending_mediators", 0)

    def steps(outcome) -> int:
        return (outcome.stats or {}).get("steps", 0)

    coercion_m = run_on_machine(term_b, "S", machine_fuel, mediator="coercion")
    threesome_m = run_on_machine(term_b, "S", machine_fuel, mediator="threesome")
    report = _compare_outcomes(
        coercion_m, threesome_m, steps(coercion_m), steps(threesome_m),
        "machine/coercion", "machine/threesome", term_b, strict_timeouts=True,
    )
    if not report.ok:
        return report
    if pending(coercion_m) != pending(threesome_m):
        return BisimulationReport(
            False, steps(coercion_m), steps(threesome_m),
            f"machine pending-mediator footprints differ: "
            f"coercion {pending(coercion_m)} vs threesome {pending(threesome_m)}",
            term_b, None,
        )
    if not check_vm:
        return report

    coercion_v = run_on_vm(term_b, vm_fuel, mediator="coercion")
    threesome_v = run_on_vm(term_b, vm_fuel, mediator="threesome")
    report = _compare_outcomes(
        coercion_v, threesome_v, steps(coercion_v), steps(threesome_v),
        "VM/coercion", "VM/threesome", term_b, strict_timeouts=True,
    )
    if not report.ok:
        return report
    if pending(coercion_v) != pending(threesome_v):
        return BisimulationReport(
            False, steps(coercion_v), steps(threesome_v),
            f"VM pending-mediator footprints differ: "
            f"coercion {pending(coercion_v)} vs threesome {pending(threesome_v)}",
            term_b, None,
        )
    # -O0 against -O2, per backend (the optimized stream takes fewer steps,
    # so a one-sided timeout is inconclusive rather than a failure).
    for backend, optimized in (("coercion", coercion_v), ("threesome", threesome_v)):
        unopt = run_on_vm(term_b, vm_fuel, mediator=backend, opt_level=0)
        report = _compare_outcomes(
            optimized, unopt, steps(optimized), steps(unopt),
            f"VM/{backend}/-O2", f"VM/{backend}/-O0", term_b, strict_timeouts=False,
        )
        if not report.ok:
            return report
        if pending(optimized) > pending(unopt):
            return BisimulationReport(
                False, steps(optimized), steps(unopt),
                f"VM/{backend} -O2 grew the pending-mediator footprint: "
                f"{pending(optimized)} vs -O0's {pending(unopt)}",
                term_b, None,
            )
    if check_rvm:
        from ..compiler import run_on_rvm

        coercion_r = run_on_rvm(term_b, vm_fuel, mediator="coercion")
        threesome_r = run_on_rvm(term_b, vm_fuel, mediator="threesome")
        report = _compare_outcomes(
            coercion_r, threesome_r, steps(coercion_r), steps(threesome_r),
            "rVM/coercion", "rVM/threesome", term_b, strict_timeouts=True,
        )
        if not report.ok:
            return report
        if pending(coercion_r) != pending(threesome_r):
            return BisimulationReport(
                False, steps(coercion_r), steps(threesome_r),
                f"register VM pending-mediator footprints differ: "
                f"coercion {pending(coercion_r)} vs threesome {pending(threesome_r)}",
                term_b, None,
            )
        # Register against stack, per backend (different step units, so
        # one-sided timeouts are inconclusive; footprints compare only when
        # both sides finished).
        for backend, rvm_o, vm_o in (("coercion", coercion_r, coercion_v),
                                     ("threesome", threesome_r, threesome_v)):
            report = _compare_outcomes(
                rvm_o, vm_o, steps(rvm_o), steps(vm_o),
                f"rVM/{backend}", f"VM/{backend}", term_b, strict_timeouts=False,
            )
            if not report.ok:
                return report
            if not (rvm_o.is_timeout or vm_o.is_timeout) and pending(rvm_o) != pending(vm_o):
                return BisimulationReport(
                    False, steps(rvm_o), steps(vm_o),
                    f"register VM changed the {backend} backend's footprint: "
                    f"{pending(rvm_o)} vs stack VM's {pending(vm_o)}",
                    term_b, None,
                )
    # Cross-engine: the threesome VM against the coercion machine (different
    # step units, so a one-sided timeout is inconclusive as usual).
    report = _compare_outcomes(
        threesome_v, coercion_m, steps(threesome_v), steps(coercion_m),
        "VM/threesome", "machine/coercion", term_b, strict_timeouts=False,
    )
    if not report.ok:
        return report

    # The non-Natural registry entries, against the Natural (coercion)
    # baseline per engine.  Run lazily per engine so check_vm/check_rvm
    # gate the matrix exactly as they gate the Natural half above.
    from ..core.errors import EvaluationError
    from ..semantics import SEMANTICS

    def run_lenient(thunk):
        # Transient drops deep obligations and Erasure drops everything, so
        # a fault Natural would intercept as blame can surface as a dynamic
        # type error instead.  Capture it; check_against_natural decides
        # whether it was within the backend's contract.
        try:
            return thunk()
        except EvaluationError as exc:
            return exc

    def check_against_natural(sem, outcome, natural, name, natural_name):
        if isinstance(outcome, EvaluationError):
            if natural.is_value:
                return BisimulationReport(
                    False, 0, steps(natural),
                    f"{name} crashed with a dynamic type error ({outcome}) on "
                    f"a blame-free program ({natural_name} produced "
                    f"{natural.python_value()!r})", term_b, None,
                )
            return None  # Natural blamed/timed out: the elided guard's fault
        if not sem.blames and outcome.is_blame:
            return BisimulationReport(
                False, steps(outcome), steps(natural),
                f"{name} blamed {outcome.label} but the {sem.name} semantics "
                f"never blames", term_b, None,
            )
        if natural.is_value:
            if outcome.is_blame:
                return BisimulationReport(
                    False, steps(outcome), steps(natural),
                    f"{name} blamed {outcome.label} on a blame-free program "
                    f"({natural_name} produced {natural.python_value()!r})",
                    term_b, None,
                )
            if outcome.is_value and outcome.python_value() != natural.python_value():
                return BisimulationReport(
                    False, steps(outcome), steps(natural),
                    f"values diverge: {name} produced {outcome.python_value()!r}, "
                    f"{natural_name} produced {natural.python_value()!r}",
                    term_b, None,
                )
        # Natural blamed or timed out: divergence in label, occurrence, or
        # termination is within the backend's contract.  Space: the exact
        # footprint may differ from Natural's (Transient keeps a residual
        # tag check where ``#`` statically cancels an injection against its
        # projection), but a space-bounded backend must preserve the
        # structural one-pending-slot-per-frame invariant.
        stats_o = outcome.stats or {}
        if (sem.space_bounded and stats_o.get("max_pending_mediators", 0)
                > stats_o.get("max_kont_depth", 0) + 1):
            return BisimulationReport(
                False, steps(outcome), steps(natural),
                f"{name} stacked pending mediators: "
                f"{stats_o['max_pending_mediators']} pending across "
                f"{stats_o.get('max_kont_depth', 0) + 1} frames",
                term_b, None,
            )
        return None

    for backend in ("transient", "erasure"):
        sem = SEMANTICS[backend]
        outcome_m = run_lenient(
            lambda: run_on_machine(term_b, "S", machine_fuel, mediator=backend))
        failure = check_against_natural(sem, outcome_m, coercion_m,
                                        f"machine/{backend}", "machine/coercion")
        if failure is not None:
            return failure
        if not check_vm:
            continue
        outcome_v = run_lenient(
            lambda: run_on_vm(term_b, vm_fuel, mediator=backend))
        failure = check_against_natural(sem, outcome_v, coercion_v,
                                        f"VM/{backend}", "VM/coercion")
        if failure is not None:
            return failure
        # The backend against itself across opt levels: -O0 against -O2
        # (one-sided timeouts inconclusive; the footprint may only shrink).
        # When either level crashed with a dynamic type error, each level is
        # held to the Natural baseline on its own instead — elision moves
        # *where* an unguarded fault surfaces, so levels are not compared.
        unopt = run_lenient(
            lambda: run_on_vm(term_b, vm_fuel, mediator=backend, opt_level=0))
        failure = check_against_natural(sem, unopt, coercion_v,
                                        f"VM/{backend}/-O0", "VM/coercion")
        if failure is not None:
            return failure
        errored_v = isinstance(outcome_v, EvaluationError) or isinstance(
            unopt, EvaluationError)
        if not errored_v:
            report = _compare_outcomes(
                outcome_v, unopt, steps(outcome_v), steps(unopt),
                f"VM/{backend}/-O2", f"VM/{backend}/-O0", term_b,
                strict_timeouts=False,
            )
            if not report.ok:
                return report
            if pending(outcome_v) > pending(unopt):
                return BisimulationReport(
                    False, steps(outcome_v), steps(unopt),
                    f"VM/{backend} -O2 grew the pending-mediator footprint: "
                    f"{pending(outcome_v)} vs -O0's {pending(unopt)}",
                    term_b, None,
                )
        if check_rvm:
            from ..compiler import run_on_rvm

            outcome_r = run_lenient(
                lambda: run_on_rvm(term_b, vm_fuel, mediator=backend))
            failure = check_against_natural(sem, outcome_r, coercion_r,
                                            f"rVM/{backend}", "rVM/coercion")
            if failure is not None:
                return failure
            # Register against stack within the backend (different step
            # units; footprints compare only when both sides finished).
            if errored_v or isinstance(outcome_r, EvaluationError):
                continue
            report = _compare_outcomes(
                outcome_r, outcome_v, steps(outcome_r), steps(outcome_v),
                f"rVM/{backend}", f"VM/{backend}", term_b, strict_timeouts=False,
            )
            if not report.ok:
                return report
            if (not (outcome_r.is_timeout or outcome_v.is_timeout)
                    and pending(outcome_r) != pending(outcome_v)):
                return BisimulationReport(
                    False, steps(outcome_r), steps(outcome_v),
                    f"register VM changed the {backend} backend's footprint: "
                    f"{pending(outcome_r)} vs stack VM's {pending(outcome_v)}",
                    term_b, None,
                )
    return report


def _compare_outcomes(left, right, steps_l, steps_r, name_l, name_r, term_b,
                      strict_timeouts, project_right=None,
                      right_term: Term | None = None) -> BisimulationReport:
    """Compare two outcomes observably (timeout / blame label / value).

    Works for both :class:`MachineOutcome`-shaped results (the default
    projection is ``python_value()``) and, on the right, reducer
    ``Outcome``\\ s (pass a projection over ``outcome.term``).  Failure
    reports carry ``term_b`` and, when given, the right side's translated
    term for debugging.
    """
    if left.is_timeout or right.is_timeout:
        if left.is_timeout and right.is_timeout:
            return BisimulationReport(True, steps_l, steps_r)
        return BisimulationReport(
            not strict_timeouts, steps_l, steps_r,
            "inconclusive: one side exhausted its fuel", term_b, right_term,
        )
    if left.is_blame or right.is_blame:
        if not (left.is_blame and right.is_blame):
            return BisimulationReport(
                False, steps_l, steps_r,
                f"{name_l} and {name_r} disagree on blame", term_b, right_term,
            )
        if left.label != right.label:
            return BisimulationReport(
                False, steps_l, steps_r,
                f"blame labels differ: {name_l} {left.label} vs {name_r} {right.label}",
                term_b, right_term,
            )
        return BisimulationReport(True, steps_l, steps_r)
    value_l = left.python_value()
    value_r = project_right(right) if project_right else right.python_value()
    if value_l != value_r:
        return BisimulationReport(
            False, steps_l, steps_r,
            f"values differ: {name_l} {value_l!r} vs {name_r} {value_r!r}",
            term_b, right_term,
        )
    return BisimulationReport(True, steps_l, steps_r)
