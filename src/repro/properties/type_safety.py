"""Executable check of type safety (Proposition 3) along reduction traces.

Proposition 3 (for each calculus): a well-typed closed term either steps,
is a value, or is ``blame p`` (progress); and stepping preserves the type
(preservation).  The checker walks a bounded reduction trace, re-type-checks
every intermediate term, and reports the first violation it finds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import StuckError, TypeCheckError
from ..core.terms import Blame, Term
from ..core.types import Type, UnknownType, types_equal
from .calculi import CalculusOps


@dataclass(frozen=True)
class TypeSafetyReport:
    """The result of checking Proposition 3 on one term."""

    ok: bool
    steps: int
    reason: str = ""
    offending_term: Term | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_type_safety(calculus: CalculusOps, term: Term, fuel: int = 2_000) -> TypeSafetyReport:
    """Check progress and preservation for ``term`` along at most ``fuel`` steps."""
    try:
        current_type: Type = calculus.type_of(term)
    except TypeCheckError as exc:
        return TypeSafetyReport(False, 0, f"initial term does not type check: {exc}", term)

    current = term
    for steps in range(fuel):
        if isinstance(current, Blame):
            return TypeSafetyReport(True, steps)
        if calculus.is_value(current):
            return TypeSafetyReport(True, steps)

        # Progress: a well-typed non-value, non-blame term must step.
        try:
            nxt = calculus.step(current)
        except StuckError as exc:
            return TypeSafetyReport(False, steps, f"progress violated: {exc}", current)
        if nxt is None:
            return TypeSafetyReport(False, steps, "progress violated: no step, not a value", current)

        # Preservation: the reduct is well-typed at the same type (blame may
        # take any type, and terms containing blame synthesise the wildcard).
        try:
            next_type = calculus.type_of(nxt)
        except TypeCheckError as exc:
            return TypeSafetyReport(False, steps, f"preservation violated: {exc}", nxt)
        if not isinstance(nxt, Blame) and not isinstance(next_type, UnknownType):
            if not isinstance(current_type, UnknownType) and not types_equal(next_type, current_type):
                return TypeSafetyReport(
                    False,
                    steps,
                    f"preservation violated: type changed from {current_type} to {next_type}",
                    nxt,
                )
        if isinstance(current_type, UnknownType) and not isinstance(next_type, UnknownType):
            current_type = next_type
        current = nxt

    return TypeSafetyReport(True, fuel, "fuel exhausted (no violation observed)")


def check_unique_type(calculus: CalculusOps, term: Term) -> bool:
    """Well-typed blame-free terms have a unique synthesised type (Section 2)."""
    first = calculus.type_of(term)
    second = calculus.type_of(term)
    return types_equal(first, second)
