"""Executable check of blame safety (Proposition 5) — "well-typed programs can't be blamed".

For each calculus: if ``M safe q`` then (1) reduction preserves safety for
``q`` and (2) ``M`` never reduces to ``blame q``.  The checker evaluates the
term with a step budget, confirming both along the trace, for every label the
term is statically safe for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.labels import Label
from ..core.terms import Blame, Cast, Coerce, Term, subterms
from ..lambda_c.coercions import Coercion
from ..lambda_c.coercions import labels_of as labels_of_coercion
from ..lambda_s.coercions import SpaceCoercion
from ..lambda_s.coercions import labels_of as labels_of_space
from .calculi import CalculusOps


@dataclass(frozen=True)
class BlameSafetyReport:
    ok: bool
    steps: int
    reason: str = ""
    violating_label: Label | None = None
    checked_labels: frozenset[Label] = field(default_factory=frozenset)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def labels_in_term(term: Term) -> set[Label]:
    """Every label (and its complement) mentioned anywhere in the term."""
    found: set[Label] = set()
    for sub in subterms(term):
        if isinstance(sub, Cast):
            found.add(sub.label)
            found.add(sub.label.complement())
        elif isinstance(sub, Coerce):
            coercion = sub.coercion
            if isinstance(coercion, Coercion):
                mentioned = labels_of_coercion(coercion)
            elif isinstance(coercion, SpaceCoercion):
                mentioned = labels_of_space(coercion)
            else:  # pragma: no cover - defensive
                mentioned = set()
            for lbl in mentioned:
                found.add(lbl)
                found.add(lbl.complement())
        elif isinstance(sub, Blame):
            found.add(sub.label)
            found.add(sub.label.complement())
    return found


def check_blame_safety(
    calculus: CalculusOps, term: Term, fuel: int = 2_000
) -> BlameSafetyReport:
    """Check Proposition 5 for every label mentioned by ``term``."""
    candidates = labels_in_term(term)
    safe_labels = frozenset(q for q in candidates if calculus.term_safe_for(term, q))

    current = term
    steps = 0
    for steps, current in enumerate(calculus.trace(term, fuel)):
        if isinstance(current, Blame):
            if current.label in safe_labels:
                return BlameSafetyReport(
                    False,
                    steps,
                    f"term blamed {current.label} despite being statically safe for it",
                    current.label,
                    safe_labels,
                )
            break
        # Preservation of safety along the trace.
        for q in safe_labels:
            if not calculus.term_safe_for(current, q):
                return BlameSafetyReport(
                    False,
                    steps,
                    f"safety for {q} was not preserved by reduction",
                    q,
                    safe_labels,
                )
    return BlameSafetyReport(True, steps, checked_labels=safe_labels)
