"""Executable checkers for the paper's metatheory.

Each module turns one of the paper's propositions or lemmas into a runnable
check used by the test suite and the benchmarks:

* :mod:`repro.properties.type_safety` — Proposition 3 (progress + preservation);
* :mod:`repro.properties.blame_safety` — Proposition 5 ("well-typed programs can't be blamed");
* :mod:`repro.properties.bisimulation` — Propositions 11 and 16;
* :mod:`repro.properties.equivalence` — Kleene equivalence and contextual probing
  (the executable face of Definition 6 and Propositions 12/18);
* :mod:`repro.properties.casts` — the Fundamental Property of Casts (Lemmas 20/21).
"""

from .bisimulation import (
    BisimulationReport,
    check_lockstep_b_c,
    check_outcomes_b_c_s,
    check_outcomes_c_s,
)
from .blame_safety import BlameSafetyReport, check_blame_safety, labels_in_term
from .calculi import CALCULI, LAMBDA_B, LAMBDA_C, LAMBDA_S, CalculusOps
from .casts import (
    FundamentalPropertyReport,
    applicable,
    candidate_mediating_types,
    check_lemma20,
    check_lemma21,
)
from .equivalence import (
    Observation,
    contextually_equivalent,
    kleene_equivalent,
    observations_equal,
    probe_contexts,
)
from .type_safety import TypeSafetyReport, check_type_safety, check_unique_type

__all__ = [
    "BisimulationReport",
    "check_lockstep_b_c",
    "check_outcomes_b_c_s",
    "check_outcomes_c_s",
    "BlameSafetyReport",
    "check_blame_safety",
    "labels_in_term",
    "CALCULI",
    "LAMBDA_B",
    "LAMBDA_C",
    "LAMBDA_S",
    "CalculusOps",
    "FundamentalPropertyReport",
    "applicable",
    "candidate_mediating_types",
    "check_lemma20",
    "check_lemma21",
    "Observation",
    "contextually_equivalent",
    "kleene_equivalent",
    "observations_equal",
    "probe_contexts",
    "TypeSafetyReport",
    "check_type_safety",
    "check_unique_type",
]
