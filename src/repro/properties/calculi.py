"""A uniform handle on the three calculi, for generic metatheory checkers.

Each calculus exposes the same interface — type synthesis, value predicate,
single-step reduction, multi-step evaluation, and blame safety — so the
property checkers (type safety, blame safety, bisimulations) can be written
once and instantiated three times, mirroring the paper's "mutatis mutandis".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..core.terms import Term
from ..lambda_b import reduction as reduction_b
from ..lambda_b import safety as safety_b
from ..lambda_b import syntax as syntax_b
from ..lambda_b import typecheck as typecheck_b
from ..lambda_c import reduction as reduction_c
from ..lambda_c import safety as safety_c
from ..lambda_c import syntax as syntax_c
from ..lambda_c import typecheck as typecheck_c
from ..lambda_s import reduction as reduction_s
from ..lambda_s import safety as safety_s
from ..lambda_s import syntax as syntax_s
from ..lambda_s import typecheck as typecheck_s


@dataclass(frozen=True)
class CalculusOps:
    """The operations of one calculus, under the names used by the checkers."""

    name: str
    type_of: Callable
    is_value: Callable[[Term], bool]
    step: Callable[[Term], Term | None]
    run: Callable
    trace: Callable[..., Iterator[Term]]
    term_safe_for: Callable
    is_term: Callable[[Term], bool]


LAMBDA_B = CalculusOps(
    name="B",
    type_of=typecheck_b.type_of,
    is_value=syntax_b.is_value,
    step=reduction_b.step,
    run=reduction_b.run,
    trace=reduction_b.trace,
    term_safe_for=safety_b.term_safe_for,
    is_term=syntax_b.is_lambda_b_term,
)

LAMBDA_C = CalculusOps(
    name="C",
    type_of=typecheck_c.type_of,
    is_value=syntax_c.is_value,
    step=reduction_c.step,
    run=reduction_c.run,
    trace=reduction_c.trace,
    term_safe_for=safety_c.term_safe_for,
    is_term=syntax_c.is_lambda_c_term,
)

LAMBDA_S = CalculusOps(
    name="S",
    type_of=typecheck_s.type_of,
    is_value=syntax_s.is_value,
    step=reduction_s.step,
    run=reduction_s.run,
    trace=reduction_s.trace,
    term_safe_for=safety_s.term_safe_for,
    is_term=syntax_s.is_lambda_s_term,
)

CALCULI = {"B": LAMBDA_B, "C": LAMBDA_C, "S": LAMBDA_S}
