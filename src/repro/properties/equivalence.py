"""Observable outcomes and Kleene-style equivalence across calculi.

Contextual equivalence (Definition 6) quantifies over all contexts, which is
not directly executable.  The checkers here provide the two practical
approximations used throughout the test suite:

* *Kleene equivalence*: evaluate both terms at the top level and compare the
  outcomes — both converge (to related values), both blame the same label, or
  both time out (standing in for divergence).
* *Contextual probing*: additionally run both terms inside a family of small
  closing/observing contexts (applying function results to sample arguments,
  projecting pairs, forcing the result to a base type) and require Kleene
  equivalence in every probe.  This is the evidence we collect for the full
  abstraction results (Propositions 12 and 18) and for Lemma 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.labels import Label, LabelSupply
from ..core.terms import (
    App,
    Cast,
    Coerce,
    Const,
    Fst,
    Snd,
    Term,
    erase,
    alpha_equal,
)
from ..core.types import (
    BOOL,
    DYN,
    INT,
    BaseType,
    DynType,
    FunType,
    ProdType,
    Type,
)
from ..lambda_b.reduction import Outcome
from .calculi import CalculusOps


@dataclass(frozen=True)
class Observation:
    """A normalised observable: value (erased), blame label, or timeout."""

    kind: str
    payload: object = None

    @staticmethod
    def of(outcome: Outcome) -> "Observation":
        if outcome.is_value:
            return Observation("value", erase(outcome.term))
        if outcome.is_blame:
            return Observation("blame", outcome.label)
        return Observation("timeout")


def observations_equal(a: Observation, b: Observation) -> bool:
    """Equality of observations; values compare up to α-equivalence after erasure."""
    if a.kind != b.kind:
        return False
    if a.kind == "value":
        left, right = a.payload, b.payload
        if isinstance(left, Const) and isinstance(right, Const):
            return left.value == right.value and left.type == right.type
        return alpha_equal(left, right)
    if a.kind == "blame":
        return a.payload == b.payload
    return True


def kleene_equivalent(
    calculus_a: CalculusOps,
    term_a: Term,
    calculus_b: CalculusOps,
    term_b: Term,
    fuel: int = 20_000,
) -> bool:
    """Do the two terms have the same top-level observable outcome?"""
    out_a = Observation.of(calculus_a.run(term_a, fuel))
    out_b = Observation.of(calculus_b.run(term_b, fuel))
    return observations_equal(out_a, out_b)


# ---------------------------------------------------------------------------
# Contextual probing
# ---------------------------------------------------------------------------


def _sample_arguments(ty: Type, supply: LabelSupply) -> list[Term]:
    """Closed sample arguments of a given type, used to probe function values."""
    from ..core.terms import Lam, Var, const_bool, const_int

    if isinstance(ty, BaseType):
        if ty == INT:
            return [const_int(0), const_int(7)]
        if ty == BOOL:
            return [const_bool(True), const_bool(False)]
        if ty.name == "str":
            return [Const("probe", ty)]
        return [Const(None, ty)]
    if isinstance(ty, DynType):
        return [
            Cast(const_int(3), INT, DYN, supply.fresh("probe-int")),
            Cast(const_bool(True), BOOL, DYN, supply.fresh("probe-bool")),
        ]
    if isinstance(ty, FunType):
        body = _sample_arguments(ty.cod, supply)[0]
        return [Lam("probe_x", ty.dom, body)]
    if isinstance(ty, ProdType):
        left = _sample_arguments(ty.left, supply)[0]
        right = _sample_arguments(ty.right, supply)[0]
        from ..core.terms import Pair

        return [Pair(left, right)]
    return []


def probe_contexts(result_type: Type, depth: int = 2) -> list[Callable[[Term], Term]]:
    """A family of observing contexts for values of ``result_type``.

    Each context is a function from a term to a closed term whose evaluation
    forces more of the value's behaviour (applying functions, projecting
    pairs, projecting out of the dynamic type).
    """
    supply = LabelSupply(prefix="probe")
    contexts: list[Callable[[Term], Term]] = [lambda m: m]
    if depth <= 0:
        return contexts

    if isinstance(result_type, FunType):
        for arg in _sample_arguments(result_type.dom, supply):
            for inner in probe_contexts(result_type.cod, depth - 1):
                contexts.append(lambda m, a=arg, k=inner: k(App(m, a)))
    if isinstance(result_type, ProdType):
        for inner in probe_contexts(result_type.left, depth - 1):
            contexts.append(lambda m, k=inner: k(Fst(m)))
        for inner in probe_contexts(result_type.right, depth - 1):
            contexts.append(lambda m, k=inner: k(Snd(m)))
    if isinstance(result_type, DynType):
        for ground in (INT, BOOL, FunType(DYN, DYN)):
            lbl = supply.fresh(f"obs-{ground}")
            for inner in probe_contexts(ground, depth - 1):
                contexts.append(lambda m, g=ground, l=lbl, k=inner: k(Cast(m, DYN, g, l)))
    return contexts


def _translate_probe(context: Callable[[Term], Term], term: Term, calculus: CalculusOps) -> Term:
    """Apply a λB-flavoured probe context to a term of any calculus.

    Probes are built from casts; for λC and λS the surrounding casts are
    translated into the calculus's own coercions.
    """
    from ..translate.b_to_c import cast_to_coercion
    from ..translate.c_to_s import coercion_to_space

    probed = context(term)

    def adapt(t: Term) -> Term:
        if t is term:
            return term
        if isinstance(t, Cast):
            inner = adapt(t.subject)
            if calculus.name == "B":
                return Cast(inner, t.source, t.target, t.label)
            coercion = cast_to_coercion(t.source, t.label, t.target)
            if calculus.name == "S":
                return Coerce(inner, coercion_to_space(coercion))
            return Coerce(inner, coercion)
        from ..core.terms import map_children

        return map_children(t, adapt)

    return adapt(probed)


def contextually_equivalent(
    calculus_a: CalculusOps,
    term_a: Term,
    calculus_b: CalculusOps,
    term_b: Term,
    result_type: Type,
    fuel: int = 20_000,
    depth: int = 2,
) -> bool:
    """Probe both terms with a family of observing contexts and compare outcomes."""
    for context in probe_contexts(result_type, depth):
        probed_a = _translate_probe(context, term_a, calculus_a)
        probed_b = _translate_probe(context, term_b, calculus_b)
        if not kleene_equivalent(calculus_a, probed_a, calculus_b, probed_b, fuel):
            return False
    return True
