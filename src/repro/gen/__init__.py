"""Random generators and hand-written workloads for tests and benchmarks."""

from .coercions_gen import (
    random_coercion,
    random_composable_space_pair,
    random_space_coercion,
    random_structural_coercion,
)
from .programs import (
    WORKLOADS,
    deep_cast_chain,
    even_odd_all_typed,
    even_odd_boundary,
    even_odd_expected,
    fib_boundary,
    fib_expected,
    pair_boundary_swap,
    safe_boundary_program,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from .surface_programs import generate_corpus, generate_program
from .terms_gen import TermGenerator, random_lambda_b_term, random_programs
from .types_gen import (
    random_cast_path,
    random_compatible_type,
    random_type,
    random_type_pair,
)

__all__ = [
    "random_coercion",
    "random_composable_space_pair",
    "random_space_coercion",
    "random_structural_coercion",
    "WORKLOADS",
    "deep_cast_chain",
    "even_odd_all_typed",
    "even_odd_boundary",
    "even_odd_expected",
    "fib_boundary",
    "fib_expected",
    "pair_boundary_swap",
    "safe_boundary_program",
    "twice_boundary",
    "typed_loop_untyped_step",
    "untyped_client_bad_argument",
    "untyped_library_bad_result",
    "TermGenerator",
    "generate_corpus",
    "generate_program",
    "random_lambda_b_term",
    "random_programs",
    "random_cast_path",
    "random_compatible_type",
    "random_type",
    "random_type_pair",
]
