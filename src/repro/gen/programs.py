"""Hand-written gradually typed workloads used by examples, tests and benchmarks.

These are the programs the paper's introduction motivates: typed and untyped
code calling back and forth across a boundary, with every crossing mediated
by casts.  All builders return closed, well-typed λB terms; run them in λC or
λS by translating with ``repro.translate``.

The flagship workload is :func:`even_odd_boundary` — two mutually recursive
functions, one statically typed and one dynamically typed, whose mutual tail
calls are exactly the scenario in which a naive implementation of casts needs
space proportional to the number of calls while λS runs in bounded space
(Herman et al. 2007/2010, Section 1 of the paper).
"""

from __future__ import annotations

from ..core.labels import Label, LabelSupply
from ..core.terms import (
    App,
    Cast,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
    const_bool,
    const_int,
)
from ..core.types import BOOL, DYN, GROUND_FUN, INT, FunType, ProdType
from ..lambda_b.embed import embed

INT_TO_BOOL = FunType(INT, BOOL)
INT_TO_INT = FunType(INT, INT)


def _labels(prefix: str) -> LabelSupply:
    return LabelSupply(prefix=prefix)


# ---------------------------------------------------------------------------
# The space-leak workload: mutually recursive even/odd across a boundary
# ---------------------------------------------------------------------------


def even_odd_boundary(n: int) -> Term:
    """``even n`` where ``even : int→bool`` is typed and ``odd`` is dynamically typed.

    Every call from ``even`` to ``odd`` casts the argument into ``?`` and the
    result back to ``bool``; every call from ``odd`` to ``even`` casts the
    result back into ``?``.  The pending result casts are what a naive
    implementation accumulates; λS collapses them with ``#``.
    """
    supply = _labels("eo")
    l_proj_m = supply.fresh("odd-arg-proj")
    l_false = supply.fresh("odd-base")
    l_odd_res = supply.fresh("odd-result")
    l_even_arg = supply.fresh("even-arg-inj")
    l_even_res = supply.fresh("even-result-proj")

    # odd : ?→?, dynamically typed code written against the dynamic type.
    odd = Lam(
        "m",
        DYN,
        If(
            Op("zero?", (Cast(Var("m"), DYN, INT, l_proj_m),)),
            Cast(const_bool(False), BOOL, DYN, l_false),
            Cast(
                App(
                    Var("even"),
                    Op("-", (Cast(Var("m"), DYN, INT, l_proj_m), const_int(1))),
                ),
                BOOL,
                DYN,
                l_odd_res,
            ),
        ),
    )

    # even : int→bool, statically typed code calling the untyped odd.
    even_body = Lam(
        "n",
        INT,
        Let(
            "odd",
            odd,
            If(
                Op("zero?", (Var("n"),)),
                const_bool(True),
                Cast(
                    App(
                        Var("odd"),
                        Cast(Op("-", (Var("n"), const_int(1))), INT, DYN, l_even_arg),
                    ),
                    DYN,
                    BOOL,
                    l_even_res,
                ),
            ),
        ),
    )

    even = Fix(Lam("even", INT_TO_BOOL, even_body), INT_TO_BOOL)
    return App(even, const_int(n))


def even_odd_expected(n: int) -> bool:
    return n % 2 == 0


def even_odd_all_typed(n: int) -> Term:
    """The all-typed control for the space benchmark: no boundary, no casts."""
    even_body = Lam(
        "n",
        INT,
        If(
            Op("zero?", (Var("n"),)),
            const_bool(True),
            If(
                Op("zero?", (Op("-", (Var("n"), const_int(1))),)),
                const_bool(False),
                App(Var("even"), Op("-", (Var("n"), const_int(2)))),
            ),
        ),
    )
    even = Fix(Lam("even", INT_TO_BOOL, even_body), INT_TO_BOOL)
    return App(even, const_int(n))


# ---------------------------------------------------------------------------
# Boundary-crossing loops
# ---------------------------------------------------------------------------


def typed_loop_untyped_step(n: int) -> Term:
    """A typed countdown loop whose step function is dynamically typed.

    ``loop : int→int`` repeatedly applies an untyped ``dec`` (of type ``?``)
    to its argument; the result crosses the boundary on every iteration.
    Expected value: ``0``.
    """
    supply = _labels("lp")
    dec_untyped = embed(Lam("x", DYN, Op("-", (Var("x"), const_int(1)))), supply)

    loop_body = Lam(
        "n",
        INT,
        If(
            Op("zero?", (Var("n"),)),
            const_int(0),
            App(
                Var("loop"),
                Cast(
                    App(
                        Cast(Var("dec"), DYN, GROUND_FUN, supply.fresh("use-dec")),
                        Cast(Var("n"), INT, DYN, supply.fresh("arg")),
                    ),
                    DYN,
                    INT,
                    supply.fresh("result"),
                ),
            ),
        ),
    )
    loop = Fix(Lam("loop", INT_TO_INT, loop_body), INT_TO_INT)
    return Let("dec", dec_untyped, App(loop, const_int(n)))


def tail_countdown_boundary(n: int) -> Term:
    """A deep tail recursion whose boolean result crosses ``?`` on every call.

    ``countdown : int→bool`` returns through an inject/project round trip at
    each of its ``n`` tail calls — the purest VM stress shape: a naive
    engine stacks ``n`` pending result coercions, a space-efficient one
    composes them into a single pending slot (``COMPOSE`` + ``TAILCALL``).
    Expected value: ``True``.
    """
    supply = _labels("tc")
    body = Lam(
        "n",
        INT,
        If(
            Op("zero?", (Var("n"),)),
            const_bool(True),
            Cast(
                Cast(
                    App(Var("countdown"), Op("-", (Var("n"), const_int(1)))),
                    BOOL,
                    DYN,
                    supply.fresh("inj"),
                ),
                DYN,
                BOOL,
                supply.fresh("proj"),
            ),
        ),
    )
    countdown = Fix(Lam("countdown", INT_TO_BOOL, body), INT_TO_BOOL)
    return App(countdown, const_int(n))


def let_chain_boundary(depth: int) -> Term:
    """A let-heavy chain: every binding crosses the boundary and is projected back.

    ``x0 = 0`` is injected into ``?``; each of the ``depth`` subsequent lets
    projects the previous binding out of ``?``, increments it, and re-injects
    it.  Stress-tests the compiler's slot allocation and scope handling (one
    frame with ``depth + 1`` locals) and immediate ``COERCE`` traffic.
    Expected value: ``depth``.
    """
    supply = _labels("let")
    inner: Term = Cast(Var(f"x{depth}"), DYN, INT, supply.fresh("out"))
    term = inner
    for i in range(depth, 0, -1):
        bound = Cast(
            Op(
                "+",
                (
                    Cast(Var(f"x{i - 1}"), DYN, INT, supply.fresh(f"proj{i}")),
                    const_int(1),
                ),
            ),
            INT,
            DYN,
            supply.fresh(f"inj{i}"),
        )
        term = Let(f"x{i}", bound, term)
    return Let("x0", Cast(const_int(0), INT, DYN, supply.fresh("inj0")), term)


def fib_boundary(n: int) -> Term:
    """Fibonacci where every recursive call goes through the dynamic type.

    ``fib`` itself is typed ``int→int`` but is accessed through a cast to
    ``?→?`` and back, so each call installs a function proxy — the workload
    exercises higher-order casts rather than tail calls.
    """
    supply = _labels("fib")
    fib_body = Lam(
        "n",
        INT,
        If(
            Op("<", (Var("n"), const_int(2))),
            Var("n"),
            Let(
                "self",
                Cast(
                    Cast(Var("fib"), INT_TO_INT, DYN, supply.fresh("inj")),
                    DYN,
                    INT_TO_INT,
                    supply.fresh("proj"),
                ),
                Op(
                    "+",
                    (
                        App(Var("self"), Op("-", (Var("n"), const_int(1)))),
                        App(Var("self"), Op("-", (Var("n"), const_int(2)))),
                    ),
                ),
            ),
        ),
    )
    fib = Fix(Lam("fib", INT_TO_INT, fib_body), INT_TO_INT)
    return App(fib, const_int(n))


def fib_expected(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


# ---------------------------------------------------------------------------
# Blame-allocation scenarios ("well-typed programs can't be blamed")
# ---------------------------------------------------------------------------


def untyped_library_bad_result(label_name: str = "boundary") -> Term:
    """A typed client imports an untyped library function through a contract.

    The library promises ``int→int`` but returns a boolean; running the
    program allocates *positive* blame to the boundary label — the fault lies
    with the less precisely typed library code.
    Expected outcome: ``blame boundary``.
    """
    boundary = Label(label_name)
    supply = _labels("lib")
    # Library: λx. #t  (wrapped as dynamically typed code of type ?)
    library = embed(Lam("x", DYN, const_bool(True)), supply)
    # Client: casts the library to int→int and applies it to 3.
    imported = Cast(library, DYN, INT_TO_INT, boundary)
    return Op("+", (App(imported, const_int(3)), const_int(1)))


def untyped_client_bad_argument(label_name: str = "boundary") -> Term:
    """An untyped client passes a boolean to a typed ``int→int`` library.

    The fault lies with the client (the context of the cast), so running the
    program allocates *negative* blame: ``blame ~boundary``.
    """
    boundary = Label(label_name)
    supply = _labels("cli")
    typed_library = Lam("x", INT, Op("+", (Var("x"), const_int(1))))
    exported = Cast(typed_library, INT_TO_INT, DYN, boundary)
    client = Lam(
        "f",
        DYN,
        App(
            Cast(Var("f"), DYN, GROUND_FUN, supply.fresh("use")),
            Cast(const_bool(True), BOOL, DYN, supply.fresh("arg")),
        ),
    )
    return App(client, exported)


def safe_boundary_program(label_name: str = "boundary") -> Term:
    """A boundary cast from a more precise type into ``?``: can never be blamed.

    ``int→int <:+ ?``, so by blame safety the ``boundary`` label can never
    receive positive blame; the program converges to ``8``.
    """
    boundary = Label(label_name)
    supply = _labels("safe")
    typed_fun = Lam("x", INT, Op("*", (Var("x"), const_int(2))))
    exported = Cast(typed_fun, INT_TO_INT, DYN, boundary)
    use = App(
        Cast(exported, DYN, INT_TO_INT, supply.fresh("import")),
        const_int(4),
    )
    return use


# ---------------------------------------------------------------------------
# Higher-order / pair workloads
# ---------------------------------------------------------------------------


def twice_boundary(n: int) -> Term:
    """Apply an untyped ``twice`` combinator to a typed successor function."""
    supply = _labels("tw")
    twice = embed(
        Lam("f", DYN, Lam("x", DYN, App(Var("f"), App(Var("f"), Var("x"))))), supply
    )
    succ = Lam("x", INT, Op("+", (Var("x"), const_int(1))))
    applied = App(
        Cast(
            App(
                Cast(twice, DYN, FunType(DYN, GROUND_FUN), supply.fresh("use-twice")),
                Cast(succ, INT_TO_INT, DYN, supply.fresh("succ")),
            ),
            GROUND_FUN,
            FunType(INT, DYN),
            supply.fresh("result-fun"),
        ),
        const_int(n),
    )
    return Cast(applied, DYN, INT, supply.fresh("result"))


def pair_boundary_swap() -> Term:
    """Move a pair across the dynamic type and project both components.

    Exercises the product extension: the pair is injected at ``?×?``, pulled
    back out at ``int × bool``, and its components are recombined.
    Expected value: ``(7, #t)`` as ``pair``.
    """
    supply = _labels("pr")
    pair = Pair(const_int(7), const_bool(True))
    injected = Cast(pair, ProdType(INT, BOOL), DYN, supply.fresh("inj"))
    projected = Cast(injected, DYN, ProdType(INT, BOOL), supply.fresh("proj"))
    return Pair(Fst(projected), Snd(projected))


def deep_cast_chain(width: int, label_prefix: str = "chain") -> Term:
    """A value pushed through ``width`` round trips between ``int`` and ``?``.

    Used by the translation and composition benchmarks: the corresponding λC
    coercion is a composition of ``2·width`` primitive coercions whose
    canonical form in λS is just ``id`` (or a single injection).
    """
    supply = LabelSupply(prefix=label_prefix)
    term: Term = const_int(42)
    source = INT
    for _ in range(width):
        term = Cast(term, source, DYN, supply.fresh())
        term = Cast(term, DYN, INT, supply.fresh())
    return term


WORKLOADS = {
    "even_odd_boundary": even_odd_boundary,
    "even_odd_all_typed": even_odd_all_typed,
    "typed_loop_untyped_step": typed_loop_untyped_step,
    "tail_countdown_boundary": tail_countdown_boundary,
    "let_chain_boundary": let_chain_boundary,
    "fib_boundary": fib_boundary,
    "twice_boundary": twice_boundary,
    "deep_cast_chain": deep_cast_chain,
}
