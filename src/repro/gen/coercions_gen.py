"""Random generation of λC coercions and λS canonical coercions."""

from __future__ import annotations

import random
from typing import Sequence

from ..core.labels import Label
from ..core.types import Type, compatible, ground_of, is_ground, DynType
from ..lambda_c.coercions import (
    Coercion,
    Fail,
    FunCoercion,
    Identity,
    ProdCoercion,
    Sequence as SeqCo,
)
from ..lambda_s.coercions import SpaceCoercion
from ..translate.b_to_c import cast_to_coercion
from ..translate.c_to_s import coercion_to_space
from .types_gen import DEFAULT_LEAVES, random_cast_path, random_type


def label_pool(rng: random.Random, count: int = 6) -> list[Label]:
    """A small pool of labels; reuse makes blame collisions more likely."""
    return [Label(f"p{i}") for i in range(1, count + 1)]


def random_label(rng: random.Random, pool: Sequence[Label] | None = None) -> Label:
    pool = pool or label_pool(rng)
    lbl = rng.choice(list(pool))
    return lbl if rng.random() < 0.7 else lbl.complement()


def random_cast_coercion(
    rng: random.Random,
    source: Type,
    target: Type,
    pool: Sequence[Label] | None = None,
) -> Coercion:
    """The coercion of a single random-labelled cast between compatible types."""
    return cast_to_coercion(source, random_label(rng, pool), target)


def random_coercion(
    rng: random.Random,
    length: int = 3,
    depth: int = 3,
    leaves=DEFAULT_LEAVES,
    products: bool = True,
    pool: Sequence[Label] | None = None,
    allow_fail: bool = True,
    start: Type | None = None,
) -> tuple[Coercion, Type, Type]:
    """A random well-typed λC coercion together with its source and target types.

    The coercion is built as a composition of cast coercions along a random
    compatibility chain, occasionally splicing in structural constructors and
    explicit failure coercions so that every λC constructor is exercised.
    """
    pool = pool or label_pool(rng)
    path = random_cast_path(rng, max(1, length), depth, leaves, products, start=start)
    pieces: list[Coercion] = []
    for src, tgt in zip(path, path[1:]):
        roll = rng.random()
        if allow_fail and roll < 0.08 and not isinstance(src, DynType):
            src_ground = ground_of(src)
            candidates = [g for g in _ground_choices() if g != src_ground]
            tgt_ground = rng.choice(candidates)
            pieces.append(
                Fail(src_ground, random_label(rng, pool), tgt_ground, source=src, target=tgt)
            )
        else:
            pieces.append(cast_to_coercion(src, random_label(rng, pool), tgt))
    coercion = pieces[0]
    for piece in pieces[1:]:
        coercion = SeqCo(coercion, piece)
    # Occasionally wrap with an identity composition to exercise unit laws.
    if rng.random() < 0.2:
        coercion = SeqCo(Identity(path[0]), coercion)
    if rng.random() < 0.2:
        coercion = SeqCo(coercion, Identity(path[-1]))
    return coercion, path[0], path[-1]


def _ground_choices() -> list[Type]:
    from ..core.types import BOOL, GROUND_FUN, GROUND_PROD, INT

    return [INT, BOOL, GROUND_FUN, GROUND_PROD]


def random_structural_coercion(
    rng: random.Random,
    depth: int = 3,
    pool: Sequence[Label] | None = None,
) -> tuple[Coercion, Type, Type]:
    """A random coercion built structurally (functions/products of chains)."""
    pool = pool or label_pool(rng)
    if depth <= 1 or rng.random() < 0.5:
        return random_coercion(rng, length=2, depth=2, pool=pool)
    if rng.random() < 0.5:
        dom, dom_src, dom_tgt = random_structural_coercion(rng, depth - 1, pool)
        cod, cod_src, cod_tgt = random_structural_coercion(rng, depth - 1, pool)
        from ..core.types import FunType

        return (
            FunCoercion(dom, cod),
            FunType(dom_tgt, cod_src),
            FunType(dom_src, cod_tgt),
        )
    left, left_src, left_tgt = random_structural_coercion(rng, depth - 1, pool)
    right, right_src, right_tgt = random_structural_coercion(rng, depth - 1, pool)
    from ..core.types import ProdType

    return (
        ProdCoercion(left, right),
        ProdType(left_src, right_src),
        ProdType(left_tgt, right_tgt),
    )


def random_space_coercion(
    rng: random.Random,
    length: int = 3,
    depth: int = 3,
    pool: Sequence[Label] | None = None,
    start: Type | None = None,
) -> tuple[SpaceCoercion, Type, Type]:
    """A random canonical coercion (as the normal form of a random λC coercion)."""
    coercion, source, target = random_coercion(
        rng, length=length, depth=depth, pool=pool, start=start
    )
    return coercion_to_space(coercion), source, target


def random_composable_space_pair(
    rng: random.Random,
    length: int = 2,
    depth: int = 3,
    pool: Sequence[Label] | None = None,
) -> tuple[SpaceCoercion, SpaceCoercion, Type, Type, Type]:
    """Two canonical coercions ``s : A ⇒ B`` and ``t : B ⇒ C`` that compose."""
    pool = pool or label_pool(rng)
    first, source, middle = random_space_coercion(rng, length, depth, pool)
    second, _, target = random_space_coercion(rng, length, depth, pool, start=middle)
    return first, second, source, middle, target
