"""Random generation of types, used by property tests and benchmarks.

All generators take an explicit :class:`random.Random` instance so that runs
are reproducible from a seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.types import (
    BOOL,
    DYN,
    INT,
    STR,
    DynType,
    FunType,
    ProdType,
    Type,
    compatible,
)

#: Leaf types used by default (kept small so collisions between random types
#: are common, which is what exercises the interesting cast behaviour).
DEFAULT_LEAVES: tuple[Type, ...] = (DYN, INT, BOOL)

RICH_LEAVES: tuple[Type, ...] = (DYN, INT, BOOL, STR)


def random_type(
    rng: random.Random,
    depth: int = 3,
    leaves: Sequence[Type] = DEFAULT_LEAVES,
    products: bool = True,
) -> Type:
    """A random type of height at most ``depth``."""
    if depth <= 1 or rng.random() < 0.4:
        return rng.choice(list(leaves))
    shape = rng.random()
    if products and shape < 0.3:
        return ProdType(
            random_type(rng, depth - 1, leaves, products),
            random_type(rng, depth - 1, leaves, products),
        )
    return FunType(
        random_type(rng, depth - 1, leaves, products),
        random_type(rng, depth - 1, leaves, products),
    )


def random_compatible_type(
    rng: random.Random,
    ty: Type,
    depth: int = 3,
    leaves: Sequence[Type] = DEFAULT_LEAVES,
    products: bool = True,
) -> Type:
    """A random type compatible (``~``) with ``ty``.

    Compatibility is what the cast typing rule requires, so this generator is
    the work-horse for producing well-typed casts.
    """
    if isinstance(ty, DynType):
        return random_type(rng, depth, leaves, products)
    if rng.random() < 0.25:
        return DYN
    if isinstance(ty, FunType) and depth > 1 and rng.random() < 0.8:
        return FunType(
            random_compatible_type(rng, ty.dom, depth - 1, leaves, products),
            random_compatible_type(rng, ty.cod, depth - 1, leaves, products),
        )
    if isinstance(ty, ProdType) and depth > 1 and rng.random() < 0.8:
        return ProdType(
            random_compatible_type(rng, ty.left, depth - 1, leaves, products),
            random_compatible_type(rng, ty.right, depth - 1, leaves, products),
        )
    return ty


def random_type_pair(
    rng: random.Random,
    depth: int = 3,
    leaves: Sequence[Type] = DEFAULT_LEAVES,
    products: bool = True,
) -> tuple[Type, Type]:
    """A random *compatible* pair of types (suitable for a cast)."""
    a = random_type(rng, depth, leaves, products)
    b = random_compatible_type(rng, a, depth, leaves, products)
    assert compatible(a, b)
    return a, b


def random_cast_path(
    rng: random.Random,
    length: int,
    depth: int = 3,
    leaves: Sequence[Type] = DEFAULT_LEAVES,
    products: bool = True,
    start: Type | None = None,
) -> list[Type]:
    """A chain ``T0, T1, …, Tn`` where every adjacent pair is compatible.

    Such a chain describes a sequence of casts (or a composition of
    coercions) that is well-typed end to end.
    """
    current = start if start is not None else random_type(rng, depth, leaves, products)
    path = [current]
    for _ in range(length):
        current = random_compatible_type(rng, current, depth, leaves, products)
        path.append(current)
    return path
