"""Random generation of well-typed, closed, terminating λB terms.

The generator produces terms that exercise every construct of the calculus —
in particular casts into and out of the dynamic type, higher-order casts that
wrap functions in proxies, and casts that fail at run time and allocate blame.
Recursion (``fix``) is deliberately excluded so every generated term
terminates, which keeps the property tests decidable; the hand-written
workloads in :mod:`repro.gen.programs` cover recursion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.labels import Label
from ..core.terms import (
    App,
    Cast,
    Const,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
    const_bool,
    const_int,
)
from ..core.types import (
    BOOL,
    DYN,
    INT,
    BaseType,
    DynType,
    FunType,
    ProdType,
    Type,
    compatible,
)
from .types_gen import DEFAULT_LEAVES, random_compatible_type, random_type


@dataclass
class TermGenerator:
    """A reproducible generator of well-typed closed λB terms.

    Attributes:
        rng: the random source.
        max_depth: bound on the recursion depth of generation.
        cast_probability: how eagerly to wrap subterms in (pairs of) casts.
        label_pool_size: number of distinct blame labels to draw from.
    """

    rng: random.Random
    max_depth: int = 5
    cast_probability: float = 0.35
    label_pool_size: int = 8
    leaves: tuple[Type, ...] = DEFAULT_LEAVES
    _label_counter: int = field(default=0, init=False)

    # -- labels -------------------------------------------------------------

    def fresh_label(self) -> Label:
        self._label_counter += 1
        index = self._label_counter % self.label_pool_size or self.label_pool_size
        base = Label(f"g{index}")
        return base if self.rng.random() < 0.8 else base.complement()

    # -- entry points -------------------------------------------------------

    def term(self, ty: Type | None = None, depth: int | None = None) -> Term:
        """A closed well-typed term of the given (or random) type."""
        target = ty if ty is not None else random_type(self.rng, 3, self.leaves)
        return self._term(target, {}, self.max_depth if depth is None else depth)

    def program(self) -> tuple[Term, Type]:
        """A closed term together with its type."""
        ty = random_type(self.rng, 3, self.leaves)
        return self._term(ty, {}, self.max_depth), ty

    # -- generation ---------------------------------------------------------

    def _term(self, ty: Type, env: dict[str, Type], depth: int) -> Term:
        term = self._term_no_cast(ty, env, depth)
        # Optionally detour through a compatible type and cast back: this is
        # the main source of interesting run-time cast behaviour (including
        # blame) in generated programs.
        if depth > 0 and self.rng.random() < self.cast_probability:
            via = random_compatible_type(self.rng, ty, 2, self.leaves)
            if compatible(via, ty):
                inner = self._term_no_cast(via, env, depth - 1)
                return Cast(inner, via, ty, self.fresh_label())
        return term

    def _vars_of_type(self, ty: Type, env: dict[str, Type]) -> list[str]:
        return [name for name, bound in env.items() if bound == ty]

    def _term_no_cast(self, ty: Type, env: dict[str, Type], depth: int) -> Term:
        rng = self.rng
        candidates = self._vars_of_type(ty, env)
        if candidates and rng.random() < 0.3:
            return Var(rng.choice(candidates))

        if depth <= 0:
            return self._leaf(ty, env)

        roll = rng.random()

        # Compound generation strategies, attempted in turn.
        if roll < 0.15:
            return self._application(ty, env, depth)
        if roll < 0.25:
            scrutinee = self._term(BOOL, env, depth - 1)
            return If(
                scrutinee,
                self._term(ty, env, depth - 1),
                self._term(ty, env, depth - 1),
            )
        if roll < 0.35:
            bound_ty = random_type(rng, 2, self.leaves)
            name = f"v{depth}_{rng.randrange(1000)}"
            bound = self._term(bound_ty, env, depth - 1)
            new_env = dict(env)
            new_env[name] = bound_ty
            return Let(name, bound, self._term(ty, new_env, depth - 1))
        if roll < 0.45:
            return self._projection(ty, env, depth)

        # Type-directed introduction forms.
        if isinstance(ty, FunType):
            name = f"x{depth}_{rng.randrange(1000)}"
            new_env = dict(env)
            new_env[name] = ty.dom
            return Lam(name, ty.dom, self._term(ty.cod, new_env, depth - 1))
        if isinstance(ty, ProdType):
            return Pair(self._term(ty.left, env, depth - 1), self._term(ty.right, env, depth - 1))
        if isinstance(ty, DynType):
            inner_ty = random_type(rng, 2, tuple(t for t in self.leaves if not isinstance(t, DynType)))
            inner = self._term(inner_ty, env, depth - 1)
            return Cast(inner, inner_ty, DYN, self.fresh_label())
        if isinstance(ty, BaseType):
            return self._base_term(ty, env, depth)
        return self._leaf(ty, env)

    def _application(self, ty: Type, env: dict[str, Type], depth: int) -> Term:
        arg_ty = random_type(self.rng, 2, self.leaves)
        fun = self._term(FunType(arg_ty, ty), env, depth - 1)
        arg = self._term(arg_ty, env, depth - 1)
        return App(fun, arg)

    def _projection(self, ty: Type, env: dict[str, Type], depth: int) -> Term:
        other = random_type(self.rng, 2, self.leaves)
        if self.rng.random() < 0.5:
            pair = self._term(ProdType(ty, other), env, depth - 1)
            return Fst(pair)
        pair = self._term(ProdType(other, ty), env, depth - 1)
        return Snd(pair)

    def _base_term(self, ty: BaseType, env: dict[str, Type], depth: int) -> Term:
        rng = self.rng
        if ty == INT:
            if rng.random() < 0.5:
                op = rng.choice(["+", "-", "*", "min", "max"])
                return Op(op, (self._term(INT, env, depth - 1), self._term(INT, env, depth - 1)))
            return const_int(rng.randrange(-10, 100))
        if ty == BOOL:
            if rng.random() < 0.5:
                op = rng.choice(["=", "<", "<=", "zero?", "even?"])
                if op in ("zero?", "even?"):
                    return Op(op, (self._term(INT, env, depth - 1),))
                return Op(op, (self._term(INT, env, depth - 1), self._term(INT, env, depth - 1)))
            return const_bool(rng.random() < 0.5)
        return self._leaf(ty, env)

    def _leaf(self, ty: Type, env: dict[str, Type], allow_cast: bool = True) -> Term:
        rng = self.rng
        candidates = self._vars_of_type(ty, env)
        if candidates:
            return Var(rng.choice(candidates))
        if isinstance(ty, BaseType):
            if ty == INT:
                return const_int(rng.randrange(-5, 50))
            if ty == BOOL:
                return const_bool(rng.random() < 0.5)
            if ty.name == "str":
                return Const(rng.choice(["a", "b", "hello"]), ty)
            return Const(None, ty)
        if isinstance(ty, DynType):
            return Cast(const_int(rng.randrange(0, 10)), INT, DYN, self.fresh_label())
        if isinstance(ty, FunType):
            name = f"l{rng.randrange(10000)}"
            return Lam(name, ty.dom, self._leaf(ty.cod, {**env, name: ty.dom}))
        if isinstance(ty, ProdType):
            return Pair(self._leaf(ty.left, env), self._leaf(ty.right, env))
        raise ValueError(f"cannot generate a leaf of type {ty}")


def random_lambda_b_term(seed: int, ty: Type | None = None, max_depth: int = 5) -> Term:
    """Convenience wrapper: a reproducible random closed well-typed λB term."""
    gen = TermGenerator(random.Random(seed), max_depth=max_depth)
    return gen.term(ty)


def random_programs(seed: int, count: int, max_depth: int = 5) -> list[tuple[Term, Type]]:
    """A batch of random well-typed programs with their types."""
    gen = TermGenerator(random.Random(seed), max_depth=max_depth)
    return [gen.program() for _ in range(count)]
