"""Seeded multi-binding surface programs for migration-lattice experiments.

The shipped ``.grad`` corpus is small; the rational-programmer experiment
(:mod:`repro.experiment`) needs *many* multi-binding programs to put
thousands of lattice configurations through the pipeline.  This generator
produces them: fully annotated, deterministic for a seed, and shaped like
the experiment wants —

* a DAG of single-argument definitions (binding *k* only calls bindings
  ``< k``), so blame has real inter-binding boundaries to cross and the
  reference graph the driver navigates is connected and acyclic;
* int functions, bool predicates, and conditional combiners, so all three
  fault kinds (wrong return, wrong argument, wrong annotation) apply;
* a main expression that reaches every root of the DAG, so every planted
  fault is exercisable in some configuration;
* arithmetic restricted to total operators (no division), so the only
  runtime failures are the ones the experiment plants.

Programs are emitted as source text: the experiment's unit of work is a
rendered configuration, and text keeps the generator independent of AST
internals.
"""

from __future__ import annotations

import random

#: Binding kinds the generator draws from.
_INT_FUN = "int-fun"
_BOOL_PRED = "bool-pred"
_COND = "cond"


def _int_body(rng: random.Random, var: str, int_funs: list[str]) -> str:
    """An int-valued expression over ``var``, literals, and earlier calls."""
    choices = ["literal", "binop", "unop"]
    if int_funs:
        choices += ["call", "call-binop"]
    kind = rng.choice(choices)
    if kind == "literal":
        return str(rng.randint(0, 9))
    if kind == "binop":
        op = rng.choice(["+", "-", "*", "min", "max"])
        return f"({op} {var} {rng.randint(1, 9)})"
    if kind == "unop":
        op = rng.choice(["inc", "dec", "abs"])
        return f"({op} {var})"
    callee = rng.choice(int_funs)
    if kind == "call":
        return f"({callee} ({rng.choice(['+', '-'])} {var} {rng.randint(1, 5)}))"
    op = rng.choice(["+", "*"])
    return f"({op} ({callee} {var}) {rng.randint(1, 5)})"


def generate_program(seed: int, bindings: int = 5) -> str:
    """One fully annotated multi-binding program, deterministic for a seed.

    ``bindings`` counts the definitions (minimum 2); the lattice over the
    result therefore has ``2**bindings`` configurations.
    """
    if bindings < 2:
        raise ValueError(f"need at least 2 bindings, got {bindings}")
    rng = random.Random(f"surface-program|{seed}|{bindings}")
    lines: list[str] = []
    kinds: dict[str, str] = {}
    referenced: set[str] = set()

    for index in range(bindings):
        name = f"f{index}"
        int_funs = [n for n, k in kinds.items() if k in (_INT_FUN, _COND)]
        preds = [n for n, k in kinds.items() if k == _BOOL_PRED]
        # The first binding must be an int function (everything else wants
        # one to call); conditionals additionally need a predicate.
        options = [_INT_FUN]
        if index >= 1:
            options.append(_BOOL_PRED)
        if preds and int_funs:
            options.append(_COND)
        kind = rng.choice(options)
        kinds[name] = kind
        if kind == _INT_FUN:
            body = _int_body(rng, "x", int_funs)
            lines.append(f"(define (f{index} [x : int]) : int {body})")
        elif kind == _BOOL_PRED:
            cmp_op = rng.choice(["<", "<=", ">", ">=", "="])
            if int_funs and rng.random() < 0.5:
                callee = rng.choice(int_funs)
                subject = f"({callee} x)"
                referenced.add(callee)
            else:
                subject = "x"
            body = f"({cmp_op} {subject} {rng.randint(0, 9)})"
            lines.append(f"(define (f{index} [x : int]) : bool {body})")
        else:
            pred = rng.choice(preds)
            then_fun = rng.choice(int_funs)
            other = rng.choice(int_funs + [str(rng.randint(0, 9))])
            else_expr = other if other.isdigit() else f"({other} {rng.randint(0, 5)})"
            body = f"(if ({pred} x) ({then_fun} x) {else_expr})"
            referenced.update({pred, then_fun} | ({other} & kinds.keys()))
            lines.append(f"(define (f{index} [x : int]) : int {body})")
        # Record the calls _int_body may have made (cheap textual scan —
        # names are unambiguous tokens).
        for earlier in kinds:
            if earlier != name and f"({earlier} " in lines[-1]:
                referenced.add(earlier)

    # Main reaches every DAG root so every binding — and therefore every
    # planted fault — is exercisable from the program's entry point.
    roots = [n for n in kinds if n not in referenced]
    parts = []
    for root in roots:
        arg = rng.randint(0, 9)
        if kinds[root] == _BOOL_PRED:
            parts.append(f"(if ({root} {arg}) 1 0)")
        else:
            parts.append(f"({root} {arg})")
    main = parts[0]
    for part in parts[1:]:
        main = f"(+ {main} {part})"
    lines.append(main)
    return "\n".join(lines) + "\n"


def generate_corpus(
    count: int, seed: int = 0, bindings: int = 5
) -> list[tuple[str, str]]:
    """``count`` named programs: ``[(name, source), ...]``, seeded."""
    return [
        (f"gen-{seed}-{index}", generate_program(seed * 10_000 + index, bindings))
        for index in range(count)
    ]
