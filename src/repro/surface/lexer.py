"""Tokenizer for the s-expression concrete syntax of the surface language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.errors import ParseError
from .ast import SourceLocation


@dataclass(frozen=True)
class Token:
    """A lexical token with its source location."""

    kind: str  # 'lparen' | 'rparen' | 'lbracket' | 'rbracket' | 'int' | 'string' | 'symbol' | 'bool'
    text: str
    location: SourceLocation


_DELIMITERS = {"(": "lparen", ")": "rparen", "[": "lbracket", "]": "rbracket"}


def tokenize(source: str) -> list[Token]:
    """Split a program into tokens, tracking line/column for blame labels."""
    tokens: list[Token] = []
    line, column = 1, 1
    index = 0
    length = len(source)

    def location() -> SourceLocation:
        return SourceLocation(line, column)

    while index < length:
        char = source[index]

        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            column += 1
            index += 1
            continue
        if char == ";":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char in _DELIMITERS:
            tokens.append(Token(_DELIMITERS[char], char, location()))
            column += 1
            index += 1
            continue
        if char == '"':
            start = location()
            index += 1
            column += 1
            chars: list[str] = []
            while index < length and source[index] != '"':
                if source[index] == "\n":
                    raise ParseError("unterminated string literal", start.line, start.column)
                if source[index] == "\\" and index + 1 < length:
                    escape = source[index + 1]
                    chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape))
                    index += 2
                    if escape == "\n":
                        # A backslash-continued physical newline: the next
                        # character is on a new source line, so the location
                        # must advance with it or every later token (and
                        # blame label) would point at the wrong line.
                        line += 1
                        column = 1
                    else:
                        column += 2
                    continue
                chars.append(source[index])
                index += 1
                column += 1
            if index >= length:
                raise ParseError("unterminated string literal", start.line, start.column)
            index += 1
            column += 1
            tokens.append(Token("string", "".join(chars), start))
            continue

        # Symbols, numbers, booleans.
        start = location()
        begin = index
        while index < length and source[index] not in ' \t\r\n()[];"':
            index += 1
            column += 1
        text = source[begin:index]
        if not text:
            raise ParseError(f"unexpected character {char!r}", start.line, start.column)
        kind = _classify(text)
        tokens.append(Token(kind, text, start))

    return tokens


def _classify(text: str) -> str:
    if text in ("#t", "#f", "true", "false"):
        return "bool"
    if _is_integer(text):
        return "int"
    return "symbol"


def _is_integer(text: str) -> bool:
    body = text[1:] if text and text[0] in "+-" else text
    return bool(body) and body.isdigit()


def iter_tokens(source: str) -> Iterator[Token]:
    yield from tokenize(source)
