"""Cast insertion: elaborate the gradually typed surface language into λB.

This is the standard Siek & Taha (2006) elaboration: type checking uses
consistency, and every place where consistency (rather than equality) was
needed receives an explicit cast ``M : A ⇒p B`` whose blame label names the
source location and the role of the cast.  The output is a λB term, ready to
be run directly or translated to λC / λS.
"""

from __future__ import annotations

from ..core.env import EMPTY_ENV, TypeEnv
from ..core.errors import TypeCheckError
from ..core.labels import Label
from ..core.ops import constant_type, op_spec
from ..core.terms import (
    App,
    Cast,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
)
from ..core.types import DYN, GROUND_FUN, BOOL, DynType, FunType, Type, types_equal
from .ast import (
    Definition,
    Program,
    SApp,
    SAscribe,
    SConst,
    SFst,
    SIf,
    SLam,
    SLet,
    SLetRec,
    SOp,
    SPair,
    SSnd,
    SourceLocation,
    SurfaceExpr,
    SVar,
)
from .consistency import branch_join, consistent, fun_match, prod_match


class ElaborationError(TypeCheckError):
    """A static type error in the surface program."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        suffix = f" (at {location})" if location is not None else ""
        super().__init__(f"{message}{suffix}")
        self.location = location


def _blame(location: SourceLocation, role: str) -> Label:
    return Label(location.blame_name(role))


def coerce(term: Term, source: Type, target: Type, location: SourceLocation, role: str) -> Term:
    """Insert a cast from ``source`` to ``target`` if the types differ.

    Raises :class:`ElaborationError` when the types are not even consistent —
    that is a static type error in the surface program.
    """
    if types_equal(source, target):
        return term
    if not consistent(source, target):
        raise ElaborationError(f"{role}: type {source} is not consistent with {target}", location)
    return Cast(term, source, target, _blame(location, role))


def elaborate(expr: SurfaceExpr, env: TypeEnv = EMPTY_ENV) -> tuple[Term, Type]:
    """Elaborate a surface expression, returning the λB term and its type."""

    if isinstance(expr, SConst):
        ty = constant_type(expr.value)
        return Const(expr.value, ty), ty

    if isinstance(expr, SVar):
        if expr.name not in env:
            raise ElaborationError(f"unbound variable {expr.name!r}", expr.location)
        return Var(expr.name), env.lookup(expr.name)

    if isinstance(expr, SLam):
        inner_env = env
        for name, ty in expr.params:
            inner_env = inner_env.extend(name, ty)
        body, body_ty = elaborate(expr.body, inner_env)
        term: Term = body
        result_ty: Type = body_ty
        for name, ty in reversed(expr.params):
            term = Lam(name, ty, term)
            result_ty = FunType(ty, result_ty)
        return term, result_ty

    if isinstance(expr, SApp):
        fun_term, fun_ty = elaborate(expr.fun, env)
        for arg in expr.args:
            match = fun_match(fun_ty)
            if match is None:
                raise ElaborationError(f"applying a non-function of type {fun_ty}", expr.location)
            fun_term = coerce(fun_term, fun_ty, match, expr.location, "fun")
            arg_term, arg_ty = elaborate(arg, env)
            arg_term = coerce(arg_term, arg_ty, match.dom, expr.location, "arg")
            fun_term, fun_ty = App(fun_term, arg_term), match.cod
        return fun_term, fun_ty

    if isinstance(expr, SOp):
        spec = op_spec(expr.op)
        if len(expr.args) != spec.arity:
            raise ElaborationError(
                f"operator {expr.op!r} expects {spec.arity} arguments, got {len(expr.args)}",
                expr.location,
            )
        arg_terms = []
        for arg, expected in zip(expr.args, spec.arg_types):
            arg_term, arg_ty = elaborate(arg, env)
            arg_terms.append(coerce(arg_term, arg_ty, expected, expr.location, f"{expr.op}-arg"))
        return Op(expr.op, tuple(arg_terms)), spec.result_type

    if isinstance(expr, SIf):
        cond_term, cond_ty = elaborate(expr.cond, env)
        cond_term = coerce(cond_term, cond_ty, BOOL, expr.location, "if-test")
        then_term, then_ty = elaborate(expr.then_branch, env)
        else_term, else_ty = elaborate(expr.else_branch, env)
        joined = branch_join(then_ty, else_ty)
        if joined is None:
            raise ElaborationError(
                f"if-branches have inconsistent types {then_ty} and {else_ty}", expr.location
            )
        then_term = coerce(then_term, then_ty, joined, expr.location, "then")
        else_term = coerce(else_term, else_ty, joined, expr.location, "else")
        return If(cond_term, then_term, else_term), joined

    if isinstance(expr, SLet):
        inner_env = env
        elaborated: list[tuple[str, Term]] = []
        for name, bound in expr.bindings:
            bound_term, bound_ty = elaborate(bound, inner_env)
            elaborated.append((name, bound_term))
            inner_env = inner_env.extend(name, bound_ty)
        body_term, body_ty = elaborate(expr.body, inner_env)
        for name, bound_term in reversed(elaborated):
            body_term = Let(name, bound_term, body_term)
        return body_term, body_ty

    if isinstance(expr, SLetRec):
        return _elaborate_letrec(expr, env)

    if isinstance(expr, SPair):
        left_term, left_ty = elaborate(expr.left, env)
        right_term, right_ty = elaborate(expr.right, env)
        from ..core.types import ProdType

        return Pair(left_term, right_term), ProdType(left_ty, right_ty)

    if isinstance(expr, SFst):
        arg_term, arg_ty = elaborate(expr.arg, env)
        match = prod_match(arg_ty)
        if match is None:
            raise ElaborationError(f"fst of a non-pair of type {arg_ty}", expr.location)
        arg_term = coerce(arg_term, arg_ty, match, expr.location, "fst")
        return Fst(arg_term), match.left

    if isinstance(expr, SSnd):
        arg_term, arg_ty = elaborate(expr.arg, env)
        match = prod_match(arg_ty)
        if match is None:
            raise ElaborationError(f"snd of a non-pair of type {arg_ty}", expr.location)
        arg_term = coerce(arg_term, arg_ty, match, expr.location, "snd")
        return Snd(arg_term), match.right

    if isinstance(expr, SAscribe):
        term, ty = elaborate(expr.expr, env)
        return coerce(term, ty, expr.annotation, expr.location, "ascription"), expr.annotation

    raise ElaborationError(f"unknown surface expression: {expr!r}")


def _elaborate_letrec(expr: SLetRec, env: TypeEnv) -> tuple[Term, Type]:
    annotation = expr.annotation
    recursion_type = fun_match(annotation)
    if recursion_type is None:
        raise ElaborationError(
            f"letrec annotation must be a function type (or ?), got {annotation}", expr.location
        )

    if isinstance(annotation, DynType):
        # Recursion happens at ?→?; the bound variable is seen at type ? both
        # inside the definition and in the body.
        inner_env = env.extend(expr.name, DYN)
        bound_term, bound_ty = elaborate(expr.bound, inner_env)
        bound_term = coerce(bound_term, bound_ty, GROUND_FUN, expr.location, "letrec-body")
        functional = Lam(
            "%self",
            GROUND_FUN,
            Let(
                expr.name,
                Cast(Var("%self"), GROUND_FUN, DYN, _blame(expr.location, "letrec-self")),
                bound_term,
            ),
        )
        fixed: Term = Cast(
            Fix(functional, GROUND_FUN), GROUND_FUN, DYN, _blame(expr.location, "letrec-result")
        )
        body_env = env.extend(expr.name, DYN)
        body_term, body_ty = elaborate(expr.body, body_env)
        return Let(expr.name, fixed, body_term), body_ty

    # Ordinary case: the annotation is a function type and recursion happens there.
    inner_env = env.extend(expr.name, annotation)
    bound_term, bound_ty = elaborate(expr.bound, inner_env)
    bound_term = coerce(bound_term, bound_ty, annotation, expr.location, "letrec-body")
    functional = Lam(expr.name, annotation, bound_term)
    fixed = Fix(functional, recursion_type)
    body_env = env.extend(expr.name, annotation)
    body_term, body_ty = elaborate(expr.body, body_env)
    return Let(expr.name, fixed, body_term), body_ty


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


def elaborate_definition(definition: Definition, env: TypeEnv) -> tuple[Term, Type]:
    """Elaborate one top-level definition (recursive if annotated with a function type)."""
    annotation = definition.annotation
    if annotation is not None and fun_match(annotation) is not None and not isinstance(annotation, DynType):
        rec = SLetRec(
            definition.name,
            annotation,
            definition.body,
            SVar(definition.name, definition.location),
            definition.location,
        )
        return _elaborate_letrec(rec, env)
    term, ty = elaborate(definition.body, env)
    if annotation is not None:
        term = coerce(term, ty, annotation, definition.location, f"define-{definition.name}")
        ty = annotation
    return term, ty


def elaborate_program(program: Program, env: TypeEnv = EMPTY_ENV) -> tuple[Term, Type]:
    """Elaborate a whole program into a single closed λB term."""
    if program.main is None:
        raise ElaborationError("the program has no main expression")
    bindings: list[tuple[str, Term]] = []
    current_env = env
    for definition in program.definitions:
        term, ty = elaborate_definition(definition, current_env)
        bindings.append((definition.name, term))
        current_env = current_env.extend(definition.name, ty)
    main_term, main_ty = elaborate(program.main, current_env)
    for name, term in reversed(bindings):
        main_term = Let(name, term, main_term)
    return main_term, main_ty


def insert_casts(expr: SurfaceExpr, env: TypeEnv = EMPTY_ENV) -> Term:
    """Elaborate a surface expression and return just the λB term."""
    return elaborate(expr, env)[0]
