"""Type consistency for the gradually typed surface language (Siek & Taha 2006).

Two types are *consistent* (``A ≈ B``) when they agree wherever both are
precise; the dynamic type is consistent with everything.  Consistency is
reflexive and symmetric but deliberately not transitive.

For this language (base types, functions, products, ``?``) consistency
coincides with the compatibility relation ``A ~ B`` of the calculi, so we
re-export it under the surface-language name; the matching operators below
(``fun_match``, ``prod_match``) implement the standard ``▷`` patterns used by
gradual type checking of application and projection.
"""

from __future__ import annotations

from ..core.subtyping import gradual_meet
from ..core.types import DYN, FunType, ProdType, Type, compatible


def consistent(a: Type, b: Type) -> bool:
    """The consistency relation ``A ≈ B``."""
    return compatible(a, b)


def fun_match(ty: Type) -> FunType | None:
    """Matching for application positions: ``A ▷ A₁ → A₂``.

    A function type matches itself; ``?`` matches ``? → ?``; anything else
    does not match and the application is a static type error.
    """
    if isinstance(ty, FunType):
        return ty
    if ty == DYN:
        return FunType(DYN, DYN)
    return None


def prod_match(ty: Type) -> ProdType | None:
    """Matching for projection positions: ``A ▷ A₁ × A₂``."""
    if isinstance(ty, ProdType):
        return ty
    if ty == DYN:
        return ProdType(DYN, DYN)
    return None


def branch_join(a: Type, b: Type) -> Type | None:
    """The type of an ``if`` whose branches have types ``a`` and ``b``.

    We use the *gradual meet* (the most precise type consistent with both):
    it keeps all static information and inserts casts on the branches, which
    may blame at run time if a dynamically typed branch produces a value of a
    different shape.  Returns ``None`` when the branches are not consistent.
    """
    return gradual_meet(a, b)
