"""Abstract syntax of the gradually typed surface language (GTLC).

The surface language is the programmer-facing layer the paper's calculi are
designed to support (Siek & Taha 2006): a simply typed λ-calculus in which
any type annotation may be replaced by the dynamic type ``?``.  Type checking
uses *consistency* instead of equality, and elaboration inserts λB casts —
with blame labels pointing at source locations — at every spot where
consistency was used.

Concrete syntax is s-expression based; see :mod:`repro.surface.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.types import Type


@dataclass(frozen=True)
class SourceLocation:
    """A line/column position in the source program, used to name blame labels."""

    line: int
    column: int

    def blame_name(self, role: str) -> str:
        return f"{role}@{self.line}:{self.column}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.column}"


NOWHERE = SourceLocation(0, 0)


class SurfaceExpr:
    """Abstract base class of surface expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class SConst(SurfaceExpr):
    value: object
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SVar(SurfaceExpr):
    name: str
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SLam(SurfaceExpr):
    """``(lambda ([x : T] ...) body)``; a missing annotation means ``?``."""

    params: tuple[tuple[str, Type], ...]
    body: SurfaceExpr
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SApp(SurfaceExpr):
    """Curried application ``(f a b ...)``."""

    fun: SurfaceExpr
    args: tuple[SurfaceExpr, ...]
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SOp(SurfaceExpr):
    op: str
    args: tuple[SurfaceExpr, ...]
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SIf(SurfaceExpr):
    cond: SurfaceExpr
    then_branch: SurfaceExpr
    else_branch: SurfaceExpr
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SLet(SurfaceExpr):
    bindings: tuple[tuple[str, SurfaceExpr], ...]
    body: SurfaceExpr
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SLetRec(SurfaceExpr):
    """``(letrec ([f : T expr]) body)`` — ``T`` must be a function type (or ``?``)."""

    name: str
    annotation: Type
    bound: SurfaceExpr
    body: SurfaceExpr
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SPair(SurfaceExpr):
    left: SurfaceExpr
    right: SurfaceExpr
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SFst(SurfaceExpr):
    arg: SurfaceExpr
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SSnd(SurfaceExpr):
    arg: SurfaceExpr
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class SAscribe(SurfaceExpr):
    """A type ascription ``(: e T)`` — the gradual programmer's cast."""

    expr: SurfaceExpr
    annotation: Type
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class Definition:
    """A top-level ``define``; possibly recursive, possibly dynamically typed."""

    name: str
    annotation: Optional[Type]
    body: SurfaceExpr
    location: SourceLocation = NOWHERE


@dataclass(frozen=True)
class Program:
    """A sequence of definitions followed by a main expression."""

    definitions: tuple[Definition, ...] = field(default_factory=tuple)
    main: SurfaceExpr | None = None
