"""Gradual type checking of surface programs (the static half of elaboration).

These helpers answer "does this program type check, and at what type?"
without committing to cast insertion; they are thin wrappers around
:mod:`repro.surface.cast_insertion`, which performs checking and elaboration
in a single pass (as is standard for the GTLC).
"""

from __future__ import annotations

from ..core.env import EMPTY_ENV, TypeEnv
from ..core.types import Type
from .ast import Program, SurfaceExpr
from .cast_insertion import ElaborationError, elaborate, elaborate_program


def type_of_surface(expr: SurfaceExpr, env: TypeEnv = EMPTY_ENV) -> Type:
    """The gradual type of a surface expression (raises on static type errors)."""
    return elaborate(expr, env)[1]


def type_of_program(program: Program, env: TypeEnv = EMPTY_ENV) -> Type:
    """The gradual type of a whole program's main expression."""
    return elaborate_program(program, env)[1]


def well_typed_surface(expr: SurfaceExpr, env: TypeEnv = EMPTY_ENV) -> bool:
    try:
        elaborate(expr, env)
        return True
    except ElaborationError:
        return False


def static_errors(program: Program, env: TypeEnv = EMPTY_ENV) -> list[str]:
    """All static type errors in a program (currently at most one is reported)."""
    try:
        elaborate_program(program, env)
        return []
    except ElaborationError as exc:
        return [str(exc)]
