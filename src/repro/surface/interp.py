"""Run surface programs end to end: parse → type check → insert casts → evaluate.

The evaluation backend is selectable:

* calculus ``"B"``, ``"C"``, or ``"S"`` — which calculus the elaborated
  program is translated into;
* ``use_machine`` — the CEK machine (fast, reports space statistics) or the
  paper-faithful small-step reducer (slow, but the literal rules).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.labels import Label
from ..core.terms import Term
from ..core.types import Type
from ..lambda_b import reduction as reduction_b
from ..lambda_c import reduction as reduction_c
from ..lambda_s import reduction as reduction_s
from ..machine import run_on_machine
from ..machine.values import machine_value_to_python
from ..translate import b_to_c, c_to_s
from .cast_insertion import elaborate_program
from .parser import parse_program


@dataclass(frozen=True)
class RunResult:
    """The outcome of running a surface program."""

    kind: str  # 'value' | 'blame' | 'timeout'
    value: object = None
    blame_label: Label | None = None
    type: Type | None = None
    calculus: str = "S"
    space_stats: dict | None = None

    @property
    def is_value(self) -> bool:
        return self.kind == "value"

    @property
    def is_blame(self) -> bool:
        return self.kind == "blame"

    def __str__(self) -> str:  # pragma: no cover - presentation
        if self.kind == "value":
            return f"{self.value!r} : {self.type}"
        if self.kind == "blame":
            return f"blame {self.blame_label}"
        return "timeout"


def compile_source(source: str) -> tuple[Term, Type]:
    """Parse and elaborate a source program into a closed λB term and its type."""
    program = parse_program(source)
    return elaborate_program(program)


def run_source(
    source: str,
    calculus: str = "S",
    use_machine: bool = True,
    fuel: int | None = None,
) -> RunResult:
    """Run a surface program and report its outcome."""
    term, ty = compile_source(source)
    return run_term(term, ty, calculus=calculus, use_machine=use_machine, fuel=fuel)


def run_term(
    term: Term,
    ty: Type | None = None,
    calculus: str = "S",
    use_machine: bool = True,
    fuel: int | None = None,
) -> RunResult:
    """Run an elaborated λB term on the chosen backend."""
    calculus = calculus.upper()
    if use_machine:
        outcome = run_on_machine(term, calculus, fuel or 5_000_000)
        if outcome.is_value:
            return RunResult("value", outcome.python_value(), type=ty, calculus=calculus,
                             space_stats=outcome.stats)
        if outcome.is_blame:
            return RunResult("blame", blame_label=outcome.label, type=ty, calculus=calculus,
                             space_stats=outcome.stats)
        return RunResult("timeout", type=ty, calculus=calculus, space_stats=outcome.stats)

    step_fuel = fuel or 200_000
    if calculus == "B":
        outcome = reduction_b.run(term, step_fuel)
    elif calculus == "C":
        outcome = reduction_c.run(b_to_c(term), step_fuel)
    elif calculus == "S":
        outcome = reduction_s.run(c_to_s(b_to_c(term)), step_fuel)
    else:
        raise ValueError(f"unknown calculus {calculus!r}")
    if outcome.is_value:
        from ..core.terms import Const, erase

        erased = erase(outcome.term)
        value = erased.value if isinstance(erased, Const) else str(erased)
        return RunResult("value", value, type=ty, calculus=calculus)
    if outcome.is_blame:
        return RunResult("blame", blame_label=outcome.label, type=ty, calculus=calculus)
    return RunResult("timeout", type=ty, calculus=calculus)
