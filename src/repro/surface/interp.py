"""Run surface programs end to end: parse → type check → insert casts → evaluate.

Three engines share one result type:

* ``engine="vm"`` — the **bytecode VM** (:mod:`repro.compiler`): elaborated
  terms are lowered to a flat instruction stream with pre-interned coercions,
  optimized (``opt_level``: identity elision, static pre-composition with
  ``#``/``∘``, peephole superinstructions and inline mediator caches at the
  default ``-O2``), and executed by an integer-dispatch loop whose single
  pending-coercion slot per frame preserves λS's space guarantee.  λS only;
  the fastest engine.
* ``engine="machine"`` (default) — the CEK machine (:mod:`repro.machine`):
  interned types and coercions, memoised ``#``, available for all three
  calculi, and the *oracle for the VM*.
* ``engine="subst"`` — the paper-faithful substitution reducers (the literal
  reduction rules of Figures 1, 3 and 5), the reference oracle for both.

Fuel exhaustion is reported **uniformly**: every engine yields
``RunResult(kind="timeout", steps=<fuel spent>)`` — the same outcome type
with the engine's step count, never an engine-specific exception or value.
(The step *units* differ by engine: machine transitions, VM instructions,
reduction steps.)

Backends are therefore a triple of knobs:

* ``calculus`` — ``"B"``, ``"C"``, or ``"S"``: which calculus the elaborated
  program is translated into (the VM supports ``"S"`` only);
* ``engine`` — ``"vm"``, ``"machine"`` (default), or ``"subst"``;
* ``mediator`` (alias ``semantics``) — the *enforcement semantics* the λS
  machine and the VMs run casts under, any entry of the
  :data:`~repro.semantics.SEMANTICS` registry: ``"coercion"`` (default,
  Natural via canonical coercions merged with ``#``), ``"threesome"``
  (Natural via labeled types, §6.1, merged with ``∘``), ``"transient"``
  (shallow tag checks; blame may diverge from Natural), or ``"erasure"``
  (no enforcement, never blames).  The two Natural backends are
  observationally equivalent (``check_mediator_oracle``); the substitution
  oracle reduces coercion terms literally and supports only ``"coercion"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.opt import DEFAULT_OPT_LEVEL, OPT_LEVELS
from ..core.errors import UsageError
from ..core.fuel import (
    DEFAULT_MACHINE_FUEL,
    DEFAULT_RVM_FUEL,
    DEFAULT_SUBST_FUEL,
    DEFAULT_VM_FUEL,
)
from ..core.labels import Label
from ..core.terms import Term
from ..core.types import Type
from ..lambda_b import reduction as reduction_b
from ..lambda_c import reduction as reduction_c
from ..lambda_s import reduction as reduction_s
from ..machine import run_on_machine
from ..obs.metrics import phase, record_run
from ..semantics import SEMANTICS_NAMES
from ..translate import b_to_c, c_to_s
from .cast_insertion import elaborate_program
from .parser import parse_program

#: The four execution engines: the stack bytecode VM, the register VM
#: (packed-stream dispatch over the register IR — the fastest engine), the
#: CEK machine, and the substitution-based reference oracle.
#: :data:`~repro.semantics.SEMANTICS_NAMES` is the second axis: the
#: enforcement semantics of the λS machine and both VMs.
ENGINES = ("vm", "rvm", "machine", "subst")

#: The two compiled engines: λS only, ``opt_level`` applies, cacheable.
VM_ENGINES = ("vm", "rvm")

#: Default fuel per engine, in that engine's own step unit.  All four come
#: from :mod:`repro.core.fuel`, the single source of fuel defaults.
DEFAULT_FUEL = {
    "vm": DEFAULT_VM_FUEL,
    "rvm": DEFAULT_RVM_FUEL,
    "machine": DEFAULT_MACHINE_FUEL,
    "subst": DEFAULT_SUBST_FUEL,
}


@dataclass(frozen=True)
class RunResult:
    """The outcome of running a surface program.

    ``kind`` is ``"value"``, ``"blame"``, or ``"timeout"``; the timeout shape
    is identical for every engine (``steps`` holds the fuel spent).
    """

    kind: str  # 'value' | 'blame' | 'timeout'
    value: object = None
    blame_label: Label | None = None
    type: Type | None = None
    calculus: str = "S"
    engine: str = "machine"
    mediator: str = "coercion"
    space_stats: dict | None = None
    steps: int = 0

    @property
    def semantics(self) -> str:
        """The enforcement semantics this run executed under (see
        :data:`repro.semantics.SEMANTICS`); an alias of ``mediator``."""
        return self.mediator

    @property
    def is_value(self) -> bool:
        return self.kind == "value"

    @property
    def is_blame(self) -> bool:
        return self.kind == "blame"

    @property
    def is_timeout(self) -> bool:
        return self.kind == "timeout"

    def __str__(self) -> str:  # pragma: no cover - presentation
        if self.kind == "value":
            return f"{self.value!r} : {self.type}"
        if self.kind == "blame":
            return f"blame {self.blame_label}"
        return f"timeout after {self.steps} {self.engine} steps"


def compile_source(source: str, metrics=None) -> tuple[Term, Type]:
    """Parse and elaborate a source program into a closed λB term and its type.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) gets the
    ``parse`` and ``elaborate`` phase timers (elaboration is type checking
    plus cast insertion — one traversal, timed as one phase)."""
    with phase(metrics, "parse"):
        program = parse_program(source)
    with phase(metrics, "elaborate"):
        return elaborate_program(program)


def _resolve_engine(engine: str | None, use_machine: bool | None) -> str:
    if use_machine is not None:  # legacy knob, kept for compatibility
        return "machine" if use_machine else "subst"
    resolved = engine or "machine"
    if resolved not in ENGINES:
        raise ValueError(f"unknown engine {resolved!r}; expected one of {ENGINES}")
    return resolved


def _validate_vm_knobs(calculus: str, mediator: str, opt_level: int,
                       engine: str = "vm") -> None:
    """The compiled engines' shared argument validation (run_term and the
    warm cache path of run_source raise identical errors by construction)."""
    if mediator not in SEMANTICS_NAMES:
        raise UsageError(
            f"unknown semantics {mediator!r}; expected one of {SEMANTICS_NAMES}"
        )
    if opt_level not in OPT_LEVELS:
        raise UsageError(
            f"unknown optimization level {opt_level!r}; expected one of {OPT_LEVELS}"
        )
    if calculus != "S":
        raise UsageError(
            f"engine {engine!r} implements λS only (requested calculus {calculus!r}); "
            "use engine='machine' for λB or λC"
        )


def run_source(
    source: str,
    calculus: str = "S",
    use_machine: bool | None = None,
    fuel: int | None = None,
    engine: str = "machine",
    mediator: str = "coercion",
    opt_level: int = DEFAULT_OPT_LEVEL,
    cache: bool = False,
    cache_dir: str | None = None,
    opcode_counts: dict | None = None,
    metrics=None,
    semantics: str | None = None,
) -> RunResult:
    """Run a surface program and report its outcome.

    With ``cache=True`` (vm/rvm engines only) the compiled bytecode image is
    looked up in — and stored to — the on-disk compile cache
    (:mod:`repro.compiler.cache`), keyed on the *source text*: a warm run
    deserializes the ``.gradb`` image and skips parsing, type checking,
    elaboration, lowering, and optimization entirely.  The program's static
    type rides along in the image's provenance, so even the reported
    ``value : type`` needs no front end.  (The rvm engine caches register
    images, under their own key.)

    ``opcode_counts`` (vm/rvm engines) is an optional dict the run fills
    with per-opcode dispatch counts — the ``--profile`` hook.
    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`, or ``None``
    for zero-cost off) collects per-phase pipeline timings (parse,
    elaborate, lower, optimize, regalloc, cache, run), cache
    hit/miss/corrupt counters, and the run's outcome/space counters.
    """
    resolved = _resolve_engine(engine, use_machine)
    if semantics is not None:
        mediator = semantics
    if cache and resolved in VM_ENGINES:
        from ..compiler.cache import cache_lookup
        from ..compiler.serialize import source_fingerprint

        _validate_vm_knobs(calculus.upper(), mediator, opt_level, resolved)
        source_hash = source_fingerprint(source)
        ir = "register" if resolved == "rvm" else "stack"
        image = cache_lookup(source_hash, opt_level, mediator, cache_dir, ir,
                             metrics=metrics)
        if image is not None:
            run_fuel = fuel if fuel is not None else DEFAULT_FUEL[resolved]
            if resolved == "rvm":
                from ..compiler.rvm import run_rcode

                with phase(metrics, "run"):
                    outcome = run_rcode(image.rcode, run_fuel,
                                        opcode_counts=opcode_counts)
            else:
                from ..compiler.vm import run_code

                with phase(metrics, "run"):
                    outcome = run_code(image.code, run_fuel,
                                       opcode_counts=opcode_counts)
            record_run(metrics, outcome.kind, outcome.stats, resolved)
            return _from_machine_outcome(outcome, image.info.static_type, "S",
                                         resolved, mediator)
        term, ty = compile_source(source, metrics)
        return run_term(term, ty, calculus=calculus, fuel=fuel, engine=resolved,
                        mediator=mediator, opt_level=opt_level,
                        cache=True, cache_dir=cache_dir, source_hash=source_hash,
                        opcode_counts=opcode_counts, metrics=metrics)
    term, ty = compile_source(source, metrics)
    return run_term(term, ty, calculus=calculus, use_machine=use_machine,
                    fuel=fuel, engine=engine, mediator=mediator, opt_level=opt_level,
                    opcode_counts=opcode_counts, metrics=metrics)


def run_term(
    term: Term,
    ty: Type | None = None,
    calculus: str = "S",
    use_machine: bool | None = None,
    fuel: int | None = None,
    engine: str = "machine",
    mediator: str = "coercion",
    opt_level: int = DEFAULT_OPT_LEVEL,
    cache: bool = False,
    cache_dir: str | None = None,
    source_hash: str | None = None,
    opcode_counts: dict | None = None,
    metrics=None,
    semantics: str | None = None,
) -> RunResult:
    """Run an elaborated λB term on the chosen calculus, engine, and
    enforcement semantics (``semantics`` overrides the legacy ``mediator``
    spelling when both are given).

    ``opt_level`` is the bytecode optimizer's ``-O`` level (0/1/2, default
    2); it shapes what the compiled engines (**vm**, **rvm**) execute and is
    ignored by the tree interpreters, which have no compilation stage.
    ``cache=True`` routes a compiled engine's compilation through the
    on-disk compile cache (keyed on ``source_hash`` when given, otherwise on
    the pretty-printed term; the rvm engine caches register images under
    their own key); the tree interpreters ignore it for the same reason they
    ignore ``opt_level``.  ``opcode_counts`` (compiled engines) is an
    optional dict filled with per-opcode dispatch counts.  ``metrics``
    collects phase timings and run counters exactly as in
    :func:`run_source` (minus the front-end phases, which happened before
    this function was called).
    """
    calculus = calculus.upper()
    engine = _resolve_engine(engine, use_machine)
    if semantics is not None:
        mediator = semantics
    if mediator not in SEMANTICS_NAMES:
        raise UsageError(
            f"unknown semantics {mediator!r}; expected one of {SEMANTICS_NAMES}"
        )
    if opt_level not in OPT_LEVELS:
        raise UsageError(
            f"unknown optimization level {opt_level!r}; expected one of {OPT_LEVELS}"
        )
    if fuel is None:
        fuel = DEFAULT_FUEL[engine]

    if engine in VM_ENGINES:
        _validate_vm_knobs(calculus, mediator, opt_level, engine)
        if cache:
            from ..compiler.cache import cached_compile

            ir = "register" if engine == "rvm" else "stack"
            found = cached_compile(term, source_hash=source_hash, static_type=ty,
                                   mediator=mediator, opt_level=opt_level,
                                   cache_dir=cache_dir, ir=ir, metrics=metrics)
            if ty is None:
                ty = found.image.info.static_type
            if engine == "rvm":
                from ..compiler.rvm import run_rcode

                with phase(metrics, "run"):
                    outcome = run_rcode(found.image.rcode, fuel,
                                        opcode_counts=opcode_counts)
            else:
                from ..compiler.vm import run_code

                with phase(metrics, "run"):
                    outcome = run_code(found.image.code, fuel,
                                       opcode_counts=opcode_counts)
        elif engine == "rvm":
            from ..compiler.rvm import compile_term_registers, run_rcode

            rcode = compile_term_registers(term, mediator=mediator,
                                           opt_level=opt_level, metrics=metrics)
            with phase(metrics, "run"):
                outcome = run_rcode(rcode, fuel, opcode_counts=opcode_counts)
        else:
            from ..compiler.vm import compile_term, run_code

            code = compile_term(term, mediator=mediator, opt_level=opt_level,
                                metrics=metrics)
            with phase(metrics, "run"):
                outcome = run_code(code, fuel, opcode_counts=opcode_counts)
        record_run(metrics, outcome.kind, outcome.stats, engine)
        return _from_machine_outcome(outcome, ty, calculus, engine, mediator)

    if engine == "machine":
        # run_on_machine validates the calculus × mediator combination.
        with phase(metrics, "run"):
            outcome = run_on_machine(term, calculus, fuel, mediator=mediator)
        record_run(metrics, outcome.kind, outcome.stats, engine)
        return _from_machine_outcome(outcome, ty, calculus, engine, mediator)

    if mediator != "coercion":
        raise UsageError(
            "engine 'subst' reduces coercion terms literally and supports "
            f"only the 'coercion' semantics (requested {mediator!r}); "
            "use engine='machine' or engine='vm'"
        )
    with phase(metrics, "run"):
        if calculus == "B":
            outcome = reduction_b.run(term, fuel)
        elif calculus == "C":
            outcome = reduction_c.run(b_to_c(term), fuel)
        elif calculus == "S":
            outcome = reduction_s.run(c_to_s(b_to_c(term)), fuel)
        else:
            raise ValueError(f"unknown calculus {calculus!r}")
    record_run(metrics, outcome.kind, {"steps": outcome.steps}, engine)
    if outcome.is_value:
        # Same projection as the machine/VM engines' python_value(), so every
        # engine's RunResult.value is directly comparable.
        from ..properties.bisimulation import reducer_value_to_python

        value = reducer_value_to_python(outcome.term)
        return RunResult("value", value, type=ty, calculus=calculus, engine=engine,
                         steps=outcome.steps)
    if outcome.is_blame:
        return RunResult("blame", blame_label=outcome.label, type=ty, calculus=calculus,
                         engine=engine, steps=outcome.steps)
    return RunResult("timeout", type=ty, calculus=calculus, engine=engine,
                     steps=outcome.steps)


def _from_machine_outcome(outcome, ty, calculus: str, engine: str,
                          mediator: str = "coercion") -> RunResult:
    """Map a :class:`~repro.machine.cek.MachineOutcome` (machine or VM) to a
    :class:`RunResult` — one code path so the outcome shapes stay uniform."""
    steps = (outcome.stats or {}).get("steps", 0)
    if outcome.is_value:
        return RunResult("value", outcome.python_value(), type=ty, calculus=calculus,
                         engine=engine, mediator=mediator, space_stats=outcome.stats,
                         steps=steps)
    if outcome.is_blame:
        return RunResult("blame", blame_label=outcome.label, type=ty, calculus=calculus,
                         engine=engine, mediator=mediator, space_stats=outcome.stats,
                         steps=steps)
    return RunResult("timeout", type=ty, calculus=calculus, engine=engine,
                     mediator=mediator, space_stats=outcome.stats, steps=steps)
