"""Run surface programs end to end: parse → type check → insert casts → evaluate.

The CEK machine (:mod:`repro.machine`) is the primary engine: it is the
default for every calculus, runs on interned types and coercions, merges
pending λS coercions with the memoised ``#``, and reports space statistics.
The paper-faithful substitution reducers are retained as the *reference
oracle* — the literal reduction rules of Figures 1, 3 and 5 — selectable
with ``engine="subst"`` and checked against the machine by the bisimulation
property tests.

Backends are therefore a pair of knobs:

* ``calculus`` — ``"B"``, ``"C"``, or ``"S"``: which calculus the elaborated
  program is translated into;
* ``engine`` — ``"machine"`` (default) or ``"subst"`` (the oracle).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.labels import Label
from ..core.terms import Term
from ..core.types import Type
from ..lambda_b import reduction as reduction_b
from ..lambda_c import reduction as reduction_c
from ..lambda_s import reduction as reduction_s
from ..machine import run_on_machine
from ..translate import b_to_c, c_to_s
from .cast_insertion import elaborate_program
from .parser import parse_program

#: The two execution engines: the production machine and the reference oracle.
ENGINES = ("machine", "subst")


@dataclass(frozen=True)
class RunResult:
    """The outcome of running a surface program."""

    kind: str  # 'value' | 'blame' | 'timeout'
    value: object = None
    blame_label: Label | None = None
    type: Type | None = None
    calculus: str = "S"
    engine: str = "machine"
    space_stats: dict | None = None

    @property
    def is_value(self) -> bool:
        return self.kind == "value"

    @property
    def is_blame(self) -> bool:
        return self.kind == "blame"

    def __str__(self) -> str:  # pragma: no cover - presentation
        if self.kind == "value":
            return f"{self.value!r} : {self.type}"
        if self.kind == "blame":
            return f"blame {self.blame_label}"
        return "timeout"


def compile_source(source: str) -> tuple[Term, Type]:
    """Parse and elaborate a source program into a closed λB term and its type."""
    program = parse_program(source)
    return elaborate_program(program)


def _resolve_engine(engine: str | None, use_machine: bool | None) -> str:
    if use_machine is not None:  # legacy knob, kept for compatibility
        return "machine" if use_machine else "subst"
    resolved = engine or "machine"
    if resolved not in ENGINES:
        raise ValueError(f"unknown engine {resolved!r}; expected one of {ENGINES}")
    return resolved


def run_source(
    source: str,
    calculus: str = "S",
    use_machine: bool | None = None,
    fuel: int | None = None,
    engine: str = "machine",
) -> RunResult:
    """Run a surface program and report its outcome."""
    term, ty = compile_source(source)
    return run_term(term, ty, calculus=calculus, use_machine=use_machine,
                    fuel=fuel, engine=engine)


def run_term(
    term: Term,
    ty: Type | None = None,
    calculus: str = "S",
    use_machine: bool | None = None,
    fuel: int | None = None,
    engine: str = "machine",
) -> RunResult:
    """Run an elaborated λB term on the chosen calculus and engine."""
    calculus = calculus.upper()
    engine = _resolve_engine(engine, use_machine)
    if engine == "machine":
        outcome = run_on_machine(term, calculus, fuel or 5_000_000)
        if outcome.is_value:
            return RunResult("value", outcome.python_value(), type=ty, calculus=calculus,
                             engine=engine, space_stats=outcome.stats)
        if outcome.is_blame:
            return RunResult("blame", blame_label=outcome.label, type=ty, calculus=calculus,
                             engine=engine, space_stats=outcome.stats)
        return RunResult("timeout", type=ty, calculus=calculus, engine=engine,
                         space_stats=outcome.stats)

    step_fuel = fuel or 200_000
    if calculus == "B":
        outcome = reduction_b.run(term, step_fuel)
    elif calculus == "C":
        outcome = reduction_c.run(b_to_c(term), step_fuel)
    elif calculus == "S":
        outcome = reduction_s.run(c_to_s(b_to_c(term)), step_fuel)
    else:
        raise ValueError(f"unknown calculus {calculus!r}")
    if outcome.is_value:
        # Same projection as the machine engine's python_value(), so the two
        # engines' RunResult.value are directly comparable.
        from ..properties.bisimulation import reducer_value_to_python

        value = reducer_value_to_python(outcome.term)
        return RunResult("value", value, type=ty, calculus=calculus, engine=engine)
    if outcome.is_blame:
        return RunResult("blame", blame_label=outcome.label, type=ty, calculus=calculus,
                         engine=engine)
    return RunResult("timeout", type=ty, calculus=calculus, engine=engine)
