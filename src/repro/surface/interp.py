"""Run surface programs end to end: parse → type check → insert casts → evaluate.

Three engines share one result type:

* ``engine="vm"`` — the **bytecode VM** (:mod:`repro.compiler`): elaborated
  terms are lowered to a flat instruction stream with pre-interned coercions,
  optimized (``opt_level``: identity elision, static pre-composition with
  ``#``/``∘``, peephole superinstructions and inline mediator caches at the
  default ``-O2``), and executed by an integer-dispatch loop whose single
  pending-coercion slot per frame preserves λS's space guarantee.  λS only;
  the fastest engine.
* ``engine="machine"`` (default) — the CEK machine (:mod:`repro.machine`):
  interned types and coercions, memoised ``#``, available for all three
  calculi, and the *oracle for the VM*.
* ``engine="subst"`` — the paper-faithful substitution reducers (the literal
  reduction rules of Figures 1, 3 and 5), the reference oracle for both.

Fuel exhaustion is reported **uniformly**: every engine yields
``RunResult(kind="timeout", steps=<fuel spent>)`` — the same outcome type
with the engine's step count, never an engine-specific exception or value.
(The step *units* differ by engine: machine transitions, VM instructions,
reduction steps.)

Backends are therefore a triple of knobs:

* ``calculus`` — ``"B"``, ``"C"``, or ``"S"``: which calculus the elaborated
  program is translated into (the VM supports ``"S"`` only);
* ``engine`` — ``"vm"``, ``"machine"`` (default), or ``"subst"``;
* ``mediator`` — ``"coercion"`` (default) or ``"threesome"``: how the λS
  machine and the VM represent pending casts at run time — canonical
  coercions merged with ``#``, or threesomes (labeled types, §6.1) merged
  with labeled-type composition ``∘``.  The two representations are
  observationally equivalent (``check_mediator_oracle``); the substitution
  oracle reduces coercion terms literally and has no threesome form.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.opt import DEFAULT_OPT_LEVEL, OPT_LEVELS
from ..compiler.vm import run_on_vm
from ..core.errors import UsageError
from ..core.fuel import DEFAULT_MACHINE_FUEL, DEFAULT_SUBST_FUEL, DEFAULT_VM_FUEL
from ..core.labels import Label
from ..core.terms import Term
from ..core.types import Type
from ..lambda_b import reduction as reduction_b
from ..lambda_c import reduction as reduction_c
from ..lambda_s import reduction as reduction_s
from ..machine import MEDIATORS, run_on_machine
from ..translate import b_to_c, c_to_s
from .cast_insertion import elaborate_program
from .parser import parse_program

#: The three execution engines: the bytecode VM, the CEK machine, and the
#: substitution-based reference oracle.  MEDIATORS (re-exported from
#: :mod:`repro.machine`) is the second axis: the pending-mediator
#: representations of the λS machine and the VM.
ENGINES = ("vm", "machine", "subst")

#: Default fuel per engine, in that engine's own step unit.  All three come
#: from :mod:`repro.core.fuel`, the single source of fuel defaults.
DEFAULT_FUEL = {
    "vm": DEFAULT_VM_FUEL,
    "machine": DEFAULT_MACHINE_FUEL,
    "subst": DEFAULT_SUBST_FUEL,
}


@dataclass(frozen=True)
class RunResult:
    """The outcome of running a surface program.

    ``kind`` is ``"value"``, ``"blame"``, or ``"timeout"``; the timeout shape
    is identical for every engine (``steps`` holds the fuel spent).
    """

    kind: str  # 'value' | 'blame' | 'timeout'
    value: object = None
    blame_label: Label | None = None
    type: Type | None = None
    calculus: str = "S"
    engine: str = "machine"
    mediator: str = "coercion"
    space_stats: dict | None = None
    steps: int = 0

    @property
    def is_value(self) -> bool:
        return self.kind == "value"

    @property
    def is_blame(self) -> bool:
        return self.kind == "blame"

    @property
    def is_timeout(self) -> bool:
        return self.kind == "timeout"

    def __str__(self) -> str:  # pragma: no cover - presentation
        if self.kind == "value":
            return f"{self.value!r} : {self.type}"
        if self.kind == "blame":
            return f"blame {self.blame_label}"
        return f"timeout after {self.steps} {self.engine} steps"


def compile_source(source: str) -> tuple[Term, Type]:
    """Parse and elaborate a source program into a closed λB term and its type."""
    program = parse_program(source)
    return elaborate_program(program)


def _resolve_engine(engine: str | None, use_machine: bool | None) -> str:
    if use_machine is not None:  # legacy knob, kept for compatibility
        return "machine" if use_machine else "subst"
    resolved = engine or "machine"
    if resolved not in ENGINES:
        raise ValueError(f"unknown engine {resolved!r}; expected one of {ENGINES}")
    return resolved


def _validate_vm_knobs(calculus: str, mediator: str, opt_level: int) -> None:
    """The vm engine's shared argument validation (run_term and the warm
    cache path of run_source raise identical errors by construction)."""
    if mediator not in MEDIATORS:
        raise UsageError(f"unknown mediator {mediator!r}; expected one of {MEDIATORS}")
    if opt_level not in OPT_LEVELS:
        raise UsageError(
            f"unknown optimization level {opt_level!r}; expected one of {OPT_LEVELS}"
        )
    if calculus != "S":
        raise UsageError(
            f"engine 'vm' implements λS only (requested calculus {calculus!r}); "
            "use engine='machine' for λB or λC"
        )


def run_source(
    source: str,
    calculus: str = "S",
    use_machine: bool | None = None,
    fuel: int | None = None,
    engine: str = "machine",
    mediator: str = "coercion",
    opt_level: int = DEFAULT_OPT_LEVEL,
    cache: bool = False,
    cache_dir: str | None = None,
) -> RunResult:
    """Run a surface program and report its outcome.

    With ``cache=True`` (vm engine only) the compiled bytecode image is
    looked up in — and stored to — the on-disk compile cache
    (:mod:`repro.compiler.cache`), keyed on the *source text*: a warm run
    deserializes the ``.gradb`` image and skips parsing, type checking,
    elaboration, lowering, and optimization entirely.  The program's static
    type rides along in the image's provenance, so even the reported
    ``value : type`` needs no front end.
    """
    if cache and _resolve_engine(engine, use_machine) == "vm":
        from ..compiler.cache import cache_lookup
        from ..compiler.serialize import source_fingerprint
        from ..compiler.vm import run_code

        _validate_vm_knobs(calculus.upper(), mediator, opt_level)
        source_hash = source_fingerprint(source)
        image = cache_lookup(source_hash, opt_level, mediator, cache_dir)
        if image is not None:
            outcome = run_code(image.code, fuel if fuel is not None else DEFAULT_FUEL["vm"])
            return _from_machine_outcome(outcome, image.info.static_type, "S", "vm", mediator)
        term, ty = compile_source(source)
        return run_term(term, ty, calculus=calculus, fuel=fuel, engine="vm",
                        mediator=mediator, opt_level=opt_level,
                        cache=True, cache_dir=cache_dir, source_hash=source_hash)
    term, ty = compile_source(source)
    return run_term(term, ty, calculus=calculus, use_machine=use_machine,
                    fuel=fuel, engine=engine, mediator=mediator, opt_level=opt_level)


def run_term(
    term: Term,
    ty: Type | None = None,
    calculus: str = "S",
    use_machine: bool | None = None,
    fuel: int | None = None,
    engine: str = "machine",
    mediator: str = "coercion",
    opt_level: int = DEFAULT_OPT_LEVEL,
    cache: bool = False,
    cache_dir: str | None = None,
    source_hash: str | None = None,
) -> RunResult:
    """Run an elaborated λB term on the chosen calculus, engine, and mediator.

    ``opt_level`` is the bytecode optimizer's ``-O`` level (0/1/2, default
    2); it shapes what the **vm** engine executes and is ignored by the tree
    interpreters, which have no compilation stage.  ``cache=True`` routes
    the vm engine's compilation through the on-disk compile cache (keyed on
    ``source_hash`` when given, otherwise on the pretty-printed term); the
    tree interpreters ignore it for the same reason they ignore ``opt_level``.
    """
    calculus = calculus.upper()
    engine = _resolve_engine(engine, use_machine)
    if mediator not in MEDIATORS:
        raise UsageError(f"unknown mediator {mediator!r}; expected one of {MEDIATORS}")
    if opt_level not in OPT_LEVELS:
        raise UsageError(
            f"unknown optimization level {opt_level!r}; expected one of {OPT_LEVELS}"
        )
    if fuel is None:
        fuel = DEFAULT_FUEL[engine]

    if engine == "vm":
        _validate_vm_knobs(calculus, mediator, opt_level)
        if cache:
            from ..compiler.cache import cached_compile
            from ..compiler.vm import run_code

            found = cached_compile(term, source_hash=source_hash, static_type=ty,
                                   mediator=mediator, opt_level=opt_level,
                                   cache_dir=cache_dir)
            if ty is None:
                ty = found.image.info.static_type
            outcome = run_code(found.image.code, fuel)
        else:
            outcome = run_on_vm(term, fuel, mediator=mediator, opt_level=opt_level)
        return _from_machine_outcome(outcome, ty, calculus, engine, mediator)

    if engine == "machine":
        # run_on_machine validates the calculus × mediator combination.
        outcome = run_on_machine(term, calculus, fuel, mediator=mediator)
        return _from_machine_outcome(outcome, ty, calculus, engine, mediator)

    if mediator != "coercion":
        raise UsageError(
            "engine 'subst' reduces coercion terms literally and has no "
            "threesome backend; use engine='machine' or engine='vm'"
        )
    if calculus == "B":
        outcome = reduction_b.run(term, fuel)
    elif calculus == "C":
        outcome = reduction_c.run(b_to_c(term), fuel)
    elif calculus == "S":
        outcome = reduction_s.run(c_to_s(b_to_c(term)), fuel)
    else:
        raise ValueError(f"unknown calculus {calculus!r}")
    if outcome.is_value:
        # Same projection as the machine/VM engines' python_value(), so every
        # engine's RunResult.value is directly comparable.
        from ..properties.bisimulation import reducer_value_to_python

        value = reducer_value_to_python(outcome.term)
        return RunResult("value", value, type=ty, calculus=calculus, engine=engine,
                         steps=outcome.steps)
    if outcome.is_blame:
        return RunResult("blame", blame_label=outcome.label, type=ty, calculus=calculus,
                         engine=engine, steps=outcome.steps)
    return RunResult("timeout", type=ty, calculus=calculus, engine=engine,
                     steps=outcome.steps)


def _from_machine_outcome(outcome, ty, calculus: str, engine: str,
                          mediator: str = "coercion") -> RunResult:
    """Map a :class:`~repro.machine.cek.MachineOutcome` (machine or VM) to a
    :class:`RunResult` — one code path so the outcome shapes stay uniform."""
    steps = (outcome.stats or {}).get("steps", 0)
    if outcome.is_value:
        return RunResult("value", outcome.python_value(), type=ty, calculus=calculus,
                         engine=engine, mediator=mediator, space_stats=outcome.stats,
                         steps=steps)
    if outcome.is_blame:
        return RunResult("blame", blame_label=outcome.label, type=ty, calculus=calculus,
                         engine=engine, mediator=mediator, space_stats=outcome.stats,
                         steps=steps)
    return RunResult("timeout", type=ty, calculus=calculus, engine=engine,
                     mediator=mediator, space_stats=outcome.stats, steps=steps)
