"""Run surface programs end to end: parse → type check → insert casts → evaluate.

Three engines share one result type:

* ``engine="vm"`` — the **bytecode VM** (:mod:`repro.compiler`): elaborated
  terms are lowered to a flat instruction stream with pre-interned coercions,
  optimized (``opt_level``: identity elision, static pre-composition with
  ``#``/``∘``, peephole superinstructions and inline mediator caches at the
  default ``-O2``), and executed by an integer-dispatch loop whose single
  pending-coercion slot per frame preserves λS's space guarantee.  λS only;
  the fastest engine.
* ``engine="machine"`` (default) — the CEK machine (:mod:`repro.machine`):
  interned types and coercions, memoised ``#``, available for all three
  calculi, and the *oracle for the VM*.
* ``engine="subst"`` — the paper-faithful substitution reducers (the literal
  reduction rules of Figures 1, 3 and 5), the reference oracle for both.

Fuel exhaustion is reported **uniformly**: every engine yields
``RunResult(kind="timeout", steps=<fuel spent>)`` — the same outcome type
with the engine's step count, never an engine-specific exception or value.
(The step *units* differ by engine: machine transitions, VM instructions,
reduction steps.)

Backends are therefore a triple of knobs:

* ``calculus`` — ``"B"``, ``"C"``, or ``"S"``: which calculus the elaborated
  program is translated into (the VM supports ``"S"`` only);
* ``engine`` — ``"vm"``, ``"rvm"``, ``"machine"`` (default), or ``"subst"``;
* ``semantics`` — the *enforcement semantics* the λS machine and the VMs
  run casts under, any entry of the :data:`~repro.semantics.SEMANTICS`
  registry: ``"coercion"`` (default, Natural via canonical coercions merged
  with ``#``), ``"threesome"`` (Natural via labeled types, §6.1, merged
  with ``∘``), ``"transient"`` (shallow tag checks; blame may diverge from
  Natural), or ``"erasure"`` (no enforcement, never blames).  The two
  Natural backends are observationally equivalent
  (``check_mediator_oracle``); the substitution oracle reduces coercion
  terms literally and supports only ``"coercion"``.

.. deprecated::
   :func:`run_source` and :func:`run_term` survive as thin kwarg shims over
   :func:`repro.api.run`; new code should build a
   :class:`repro.api.RunConfig` and call ``repro.api.run`` directly.  The
   legacy ``mediator=`` kwarg warns (via
   :func:`repro.api.reconcile_semantics`, the single deprecation site) —
   spell the axis ``semantics=``.
"""

from __future__ import annotations

from ..api import (  # noqa: F401  (re-exported: the historical home of these names)
    DEFAULT_FUEL,
    ENGINES,
    VM_ENGINES,
    RunConfig,
    RunResult,
    _from_machine_outcome,
    reconcile_semantics,
)
from ..api import run as _api_run
from ..compiler.opt import DEFAULT_OPT_LEVEL
from ..core.terms import Term
from ..core.types import Type
from ..obs.metrics import phase


def compile_source(source: str, metrics=None) -> tuple[Term, Type]:
    """Parse and elaborate a source program into a closed λB term and its type.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) gets the
    ``parse`` and ``elaborate`` phase timers (elaboration is type checking
    plus cast insertion — one traversal, timed as one phase)."""
    from .cast_insertion import elaborate_program
    from .parser import parse_program

    with phase(metrics, "parse"):
        program = parse_program(source)
    with phase(metrics, "elaborate"):
        return elaborate_program(program)


def _resolve_engine(engine: str | None, use_machine: bool | None) -> str:
    if use_machine is not None:  # legacy knob, kept for compatibility
        return "machine" if use_machine else "subst"
    resolved = engine or "machine"
    if resolved not in ENGINES:
        raise ValueError(f"unknown engine {resolved!r}; expected one of {ENGINES}")
    return resolved


def run_source(
    source: str,
    calculus: str = "S",
    use_machine: bool | None = None,
    fuel: int | None = None,
    engine: str = "machine",
    mediator: str | None = None,
    opt_level: int = DEFAULT_OPT_LEVEL,
    cache: bool = False,
    cache_dir: str | None = None,
    opcode_counts: dict | None = None,
    metrics=None,
    semantics: str | None = None,
) -> RunResult:
    """Run a surface program and report its outcome.

    .. deprecated:: kwarg shim over :func:`repro.api.run` — new code should
       pass a :class:`repro.api.RunConfig`.  ``mediator=`` (deprecated)
       warns and is reconciled into ``semantics=`` at the single shim site.

    With ``cache=True`` (vm/rvm engines only) the compiled bytecode image is
    looked up in — and stored to — the on-disk compile cache
    (:mod:`repro.compiler.cache`), keyed on the *source text*: a warm run
    deserializes the ``.gradb`` image and skips parsing, type checking,
    elaboration, lowering, and optimization entirely.  ``opcode_counts``
    (vm/rvm engines) is an optional dict the run fills with per-opcode
    dispatch counts; ``metrics`` collects per-phase pipeline timings and
    outcome counters.
    """
    resolved_semantics = reconcile_semantics(semantics, mediator) or "coercion"
    return _api_run(
        source,
        engine=_resolve_engine(engine, use_machine),
        semantics=resolved_semantics,
        calculus=calculus,
        fuel=fuel,
        opt_level=opt_level,
        cache=cache,
        cache_dir=cache_dir,
        metrics=metrics,
        opcode_counts=opcode_counts,
    )


def run_term(
    term: Term,
    ty: Type | None = None,
    calculus: str = "S",
    use_machine: bool | None = None,
    fuel: int | None = None,
    engine: str = "machine",
    mediator: str | None = None,
    opt_level: int = DEFAULT_OPT_LEVEL,
    cache: bool = False,
    cache_dir: str | None = None,
    source_hash: str | None = None,
    opcode_counts: dict | None = None,
    metrics=None,
    semantics: str | None = None,
) -> RunResult:
    """Run an elaborated λB term on the chosen calculus, engine, and
    enforcement semantics.

    .. deprecated:: kwarg shim over :func:`repro.api.run` — new code should
       pass a :class:`repro.api.RunConfig`.  ``semantics`` overrides the
       legacy ``mediator`` spelling when both are given; ``mediator=``
       warns from the single shim site
       (:func:`repro.api.reconcile_semantics`).
    """
    resolved_semantics = reconcile_semantics(semantics, mediator) or "coercion"
    return _api_run(
        term,
        engine=_resolve_engine(engine, use_machine),
        semantics=resolved_semantics,
        calculus=calculus,
        fuel=fuel,
        opt_level=opt_level,
        cache=cache,
        cache_dir=cache_dir,
        metrics=metrics,
        type=ty,
        source_hash=source_hash,
        opcode_counts=opcode_counts,
    )
