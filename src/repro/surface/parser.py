"""Parser for the s-expression concrete syntax of the surface language.

Grammar (informally)::

    program  ::= define* expr | expr
    define   ::= (define (name param*) [: type] expr)
               | (define name [: type] expr)
    param    ::= name | [name : type]
    expr     ::= int | #t | #f | "string" | unit | name
               | (lambda (param*) expr)
               | (let ([name expr]*) expr)
               | (letrec ([name : type expr]) expr)
               | (if expr expr expr)
               | (pair expr expr) | (fst expr) | (snd expr)
               | (: expr type)                      ; ascription
               | (op expr*)                          ; primitive operator
               | (expr expr+)                        ; application (curried)
    type     ::= int | bool | str | unit | ? | dyn
               | (-> type+ type) | (* type type)

Every cast inserted by elaboration carries a blame label derived from the
source location of the expression that required it.
"""

from __future__ import annotations

from ..core.errors import ParseError
from ..core.ops import op_exists
from ..core.types import BOOL, DYN, INT, STR, UNIT, FunType, ProdType, Type
from .ast import (
    Definition,
    Program,
    SApp,
    SAscribe,
    SConst,
    SFst,
    SIf,
    SLam,
    SLet,
    SLetRec,
    SOp,
    SPair,
    SSnd,
    SourceLocation,
    SurfaceExpr,
    SVar,
)
from .lexer import Token, tokenize

_KEYWORDS = {
    "lambda",
    "let",
    "letrec",
    "if",
    "pair",
    "cons",
    "fst",
    "snd",
    ":",
    "ann",
    "define",
    "unit",
}

_TYPE_NAMES = {
    "int": INT,
    "bool": BOOL,
    "str": STR,
    "string": STR,
    "unit": UNIT,
    "?": DYN,
    "dyn": DYN,
    "Dyn": DYN,
}


# ---------------------------------------------------------------------------
# S-expression reader
# ---------------------------------------------------------------------------


class _SExpr:
    """Either an atom (a token) or a list of s-expressions with a location."""

    __slots__ = ("items", "token", "location")

    def __init__(self, items=None, token: Token | None = None, location: SourceLocation | None = None):
        self.items = items
        self.token = token
        self.location = location if location is not None else (token.location if token else None)

    @property
    def is_atom(self) -> bool:
        return self.token is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_atom:
            return f"Atom({self.token.text})"
        return f"List({self.items})"


def _read_all(tokens: list[Token]) -> list[_SExpr]:
    position = 0

    def read() -> _SExpr:
        nonlocal position
        if position >= len(tokens):
            raise ParseError("unexpected end of input")
        token = tokens[position]
        if token.kind in ("lparen", "lbracket"):
            closing = "rparen" if token.kind == "lparen" else "rbracket"
            position += 1
            items: list[_SExpr] = []
            while position < len(tokens) and tokens[position].kind != closing:
                items.append(read())
            if position >= len(tokens):
                raise ParseError("missing closing parenthesis", token.location.line, token.location.column)
            position += 1  # consume the closing delimiter
            return _SExpr(items=items, location=token.location)
        if token.kind in ("rparen", "rbracket"):
            raise ParseError("unexpected closing parenthesis", token.location.line, token.location.column)
        position += 1
        return _SExpr(token=token)

    forms: list[_SExpr] = []
    while position < len(tokens):
        forms.append(read())
    return forms


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def parse_type_sexpr(sexpr: _SExpr) -> Type:
    if sexpr.is_atom:
        name = sexpr.token.text
        if name in _TYPE_NAMES:
            return _TYPE_NAMES[name]
        raise ParseError(f"unknown type {name!r}", sexpr.location.line, sexpr.location.column)
    if not sexpr.items:
        raise ParseError("empty type", sexpr.location.line, sexpr.location.column)
    head = sexpr.items[0]
    if head.is_atom and head.token.text == "->":
        parts = [parse_type_sexpr(item) for item in sexpr.items[1:]]
        if len(parts) < 2:
            raise ParseError("-> needs at least two types", sexpr.location.line, sexpr.location.column)
        result = parts[-1]
        for dom in reversed(parts[:-1]):
            result = FunType(dom, result)
        return result
    if head.is_atom and head.token.text == "*":
        parts = [parse_type_sexpr(item) for item in sexpr.items[1:]]
        if len(parts) != 2:
            raise ParseError("* needs exactly two types", sexpr.location.line, sexpr.location.column)
        return ProdType(parts[0], parts[1])
    raise ParseError("malformed type", sexpr.location.line, sexpr.location.column)


def parse_type(source: str) -> Type:
    """Parse a type written in concrete syntax, e.g. ``"(-> int ?)"``."""
    forms = _read_all(tokenize(source))
    if len(forms) != 1:
        raise ParseError("expected exactly one type")
    return parse_type_sexpr(forms[0])


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _parse_param(sexpr: _SExpr) -> tuple[str, Type]:
    if sexpr.is_atom:
        return sexpr.token.text, DYN
    items = sexpr.items
    if len(items) == 3 and items[1].is_atom and items[1].token.text == ":":
        if not items[0].is_atom:
            raise ParseError("parameter name must be a symbol", sexpr.location.line, sexpr.location.column)
        return items[0].token.text, parse_type_sexpr(items[2])
    raise ParseError("malformed parameter (expected name or [name : type])",
                     sexpr.location.line, sexpr.location.column)


def parse_expr_sexpr(sexpr: _SExpr) -> SurfaceExpr:
    location = sexpr.location or SourceLocation(0, 0)

    if sexpr.is_atom:
        token = sexpr.token
        if token.kind == "int":
            return SConst(int(token.text), location)
        if token.kind == "bool":
            return SConst(token.text in ("#t", "true"), location)
        if token.kind == "string":
            return SConst(token.text, location)
        if token.text == "unit":
            return SConst(None, location)
        return SVar(token.text, location)

    if not sexpr.items:
        raise ParseError("empty expression", location.line, location.column)

    head = sexpr.items[0]
    rest = sexpr.items[1:]
    head_name = head.token.text if head.is_atom else None

    if head_name == "lambda":
        if len(rest) != 2 or rest[0].is_atom:
            raise ParseError("lambda expects a parameter list and a body", location.line, location.column)
        params = tuple(_parse_param(p) for p in rest[0].items)
        if not params:
            raise ParseError("lambda needs at least one parameter", location.line, location.column)
        return SLam(params, parse_expr_sexpr(rest[1]), location)

    if head_name == "let":
        if len(rest) != 2 or rest[0].is_atom:
            raise ParseError("let expects a binding list and a body", location.line, location.column)
        bindings = []
        for binding in rest[0].items:
            if binding.is_atom or len(binding.items) != 2 or not binding.items[0].is_atom:
                raise ParseError("malformed let binding", location.line, location.column)
            bindings.append((binding.items[0].token.text, parse_expr_sexpr(binding.items[1])))
        return SLet(tuple(bindings), parse_expr_sexpr(rest[1]), location)

    if head_name == "letrec":
        if len(rest) != 2 or rest[0].is_atom or len(rest[0].items) != 1:
            raise ParseError("letrec expects exactly one binding and a body", location.line, location.column)
        binding = rest[0].items[0]
        if binding.is_atom or len(binding.items) != 4 or not binding.items[0].is_atom:
            raise ParseError("letrec binding must be [name : type expr]", location.line, location.column)
        if not (binding.items[1].is_atom and binding.items[1].token.text == ":"):
            raise ParseError("letrec binding must be [name : type expr]", location.line, location.column)
        name = binding.items[0].token.text
        annotation = parse_type_sexpr(binding.items[2])
        bound = parse_expr_sexpr(binding.items[3])
        return SLetRec(name, annotation, bound, parse_expr_sexpr(rest[1]), location)

    if head_name == "if":
        if len(rest) != 3:
            raise ParseError("if expects three subexpressions", location.line, location.column)
        return SIf(*(parse_expr_sexpr(r) for r in rest), location)

    if head_name in ("pair", "cons"):
        if len(rest) != 2:
            raise ParseError("pair expects two subexpressions", location.line, location.column)
        return SPair(parse_expr_sexpr(rest[0]), parse_expr_sexpr(rest[1]), location)

    if head_name == "fst":
        if len(rest) != 1:
            raise ParseError("fst expects one subexpression", location.line, location.column)
        return SFst(parse_expr_sexpr(rest[0]), location)

    if head_name == "snd":
        if len(rest) != 1:
            raise ParseError("snd expects one subexpression", location.line, location.column)
        return SSnd(parse_expr_sexpr(rest[0]), location)

    if head_name in (":", "ann"):
        if len(rest) != 2:
            raise ParseError("ascription expects an expression and a type", location.line, location.column)
        return SAscribe(parse_expr_sexpr(rest[0]), parse_type_sexpr(rest[1]), location)

    if head_name is not None and op_exists(head_name) and head_name not in _KEYWORDS:
        return SOp(head_name, tuple(parse_expr_sexpr(r) for r in rest), location)

    # Application.
    if not rest:
        raise ParseError("application needs at least one argument", location.line, location.column)
    return SApp(parse_expr_sexpr(head), tuple(parse_expr_sexpr(r) for r in rest), location)


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


def _parse_define(sexpr: _SExpr) -> Definition:
    location = sexpr.location
    items = sexpr.items[1:]
    if not items:
        raise ParseError("empty define", location.line, location.column)

    # (define (name param*) [: type] body)  — function shorthand.
    if not items[0].is_atom:
        header = items[0].items
        if not header or not header[0].is_atom:
            raise ParseError("malformed define header", location.line, location.column)
        name = header[0].token.text
        params = tuple(_parse_param(p) for p in header[1:])
        rest = items[1:]
        return_type: Type = DYN
        if len(rest) == 3 and rest[0].is_atom and rest[0].token.text == ":":
            return_type = parse_type_sexpr(rest[1])
            body = parse_expr_sexpr(rest[2])
        elif len(rest) == 1:
            body = parse_expr_sexpr(rest[0])
        else:
            raise ParseError("malformed define", location.line, location.column)
        if params:
            fun_type: Type = return_type
            for _, param_type in reversed(params):
                fun_type = FunType(param_type, fun_type)
            return Definition(name, fun_type, SLam(params, body, location), location)
        return Definition(name, return_type, body, location)

    # (define name [: type] body)
    name = items[0].token.text
    rest = items[1:]
    if len(rest) == 3 and rest[0].is_atom and rest[0].token.text == ":":
        return Definition(name, parse_type_sexpr(rest[1]), parse_expr_sexpr(rest[2]), location)
    if len(rest) == 1:
        return Definition(name, None, parse_expr_sexpr(rest[0]), location)
    raise ParseError("malformed define", location.line, location.column)


def parse_program(source: str) -> Program:
    """Parse a whole program: zero or more ``define`` forms and a main expression."""
    forms = _read_all(tokenize(source))
    if not forms:
        raise ParseError("empty program")
    definitions: list[Definition] = []
    main: SurfaceExpr | None = None
    for index, form in enumerate(forms):
        is_define = (
            not form.is_atom
            and form.items
            and form.items[0].is_atom
            and form.items[0].token.text == "define"
        )
        if is_define:
            if main is not None:
                raise ParseError("definitions must precede the main expression")
            definitions.append(_parse_define(form))
        else:
            if main is not None:
                raise ParseError("a program may have only one main expression")
            main = parse_expr_sexpr(form)
    return Program(tuple(definitions), main)


def parse(source: str) -> SurfaceExpr:
    """Parse a single surface expression."""
    program = parse_program(source)
    if program.definitions or program.main is None:
        raise ParseError("expected a single expression (no definitions)")
    return program.main
