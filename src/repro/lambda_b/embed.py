"""Embedding the dynamically typed λ-calculus into λB (Figure 1, ``⌈M⌉``).

The embedding takes an *untyped* term (every λ-parameter implicitly has the
dynamic type and there are no casts) and produces a λB term of type ``?``,
inserting a fresh-labelled cast at every point where a dynamic value is
created or consumed::

    ⌈k⌉       = k : ι ⇒p ?
    ⌈op(M⃗)⌉  = op(⌈M⃗⌉ : ?⃗ ⇒p⃗ ι⃗) : ι ⇒p ?
    ⌈x⌉       = x
    ⌈λx.N⌉    = (λx:?. ⌈N⌉) : ?→? ⇒p ?
    ⌈L M⌉     = (⌈L⌉ : ? ⇒p ?→?) ⌈M⌉

plus the analogous clauses for the documented extensions (conditionals cast
the scrutinee to ``bool``; pairs inject at ``?×?``; ``fix`` recurses at
``?→?``).
"""

from __future__ import annotations

from ..core.errors import TypeCheckError
from ..core.labels import LabelSupply
from ..core.ops import op_spec
from ..core.terms import (
    App,
    Blame,
    Cast,
    Coerce,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
    free_vars,
    fresh_name,
)
from ..core.types import BOOL, DYN, GROUND_FUN, GROUND_PROD, FunType


def embed(term: Term, labels: LabelSupply | None = None) -> Term:
    """Embed an untyped term into λB at type ``?``.

    The input reuses the shared AST: ``Lam`` parameter types are ignored
    (treated as ``?``), and ``Cast``/``Coerce`` nodes are rejected.
    """
    supply = labels or LabelSupply(prefix="d")

    def go(t: Term) -> Term:
        if isinstance(t, (Cast, Coerce, Blame)):
            raise TypeCheckError(f"not a dynamically typed term: {t!r}")

        if isinstance(t, Const):
            return Cast(t, t.type, DYN, supply.fresh("const"))

        if isinstance(t, Var):
            return t

        if isinstance(t, Op):
            spec = op_spec(t.op)
            if len(t.args) != spec.arity:
                raise TypeCheckError(
                    f"operator {t.op!r} expects {spec.arity} arguments, got {len(t.args)}"
                )
            cast_args = tuple(
                Cast(go(arg), DYN, expected, supply.fresh(f"{t.op}-arg"))
                for arg, expected in zip(t.args, spec.arg_types)
            )
            return Cast(Op(t.op, cast_args), spec.result_type, DYN, supply.fresh(f"{t.op}-res"))

        if isinstance(t, Lam):
            body = go(t.body)
            return Cast(Lam(t.param, DYN, body), GROUND_FUN, DYN, supply.fresh("lam"))

        if isinstance(t, App):
            fun = Cast(go(t.fun), DYN, GROUND_FUN, supply.fresh("app"))
            return App(fun, go(t.arg))

        if isinstance(t, If):
            cond = Cast(go(t.cond), DYN, BOOL, supply.fresh("if"))
            return If(cond, go(t.then_branch), go(t.else_branch))

        if isinstance(t, Let):
            return Let(t.name, go(t.bound), go(t.body))

        if isinstance(t, Fix):
            # The dynamic fixpoint recurses at type ?→?:
            #   ⌈fix M⌉ = (fix (λf:?→?. (⌈M⌉ : ? ⇒ ?→?) (f : ?→? ⇒ ?) : ? ⇒ ?→?)) : ?→? ⇒ ?
            functional = go(t.fun)
            f = fresh_name("f", free_vars(functional))
            call = App(
                Cast(functional, DYN, FunType(DYN, GROUND_FUN), supply.fresh("fix-fun")),
                Cast(Var(f), GROUND_FUN, DYN, supply.fresh("fix-arg")),
            )
            wrapper = Lam(f, GROUND_FUN, call)
            return Cast(Fix(wrapper, GROUND_FUN), GROUND_FUN, DYN, supply.fresh("fix"))

        if isinstance(t, Pair):
            return Cast(Pair(go(t.left), go(t.right)), GROUND_PROD, DYN, supply.fresh("pair"))

        if isinstance(t, Fst):
            return Fst(Cast(go(t.arg), DYN, GROUND_PROD, supply.fresh("fst")))

        if isinstance(t, Snd):
            return Snd(Cast(go(t.arg), DYN, GROUND_PROD, supply.fresh("snd")))

        raise TypeCheckError(f"unknown dynamic term node: {t!r}")

    return go(term)
