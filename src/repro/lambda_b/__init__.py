"""λB — the blame calculus of Figure 1 (Wadler & Findler 2009, as recast by the paper)."""

from .embed import embed
from .reduction import Outcome, run, step, trace
from .safety import cast_is_safe, term_safe_for, unsafe_labels
from .syntax import blames_in, casts_in, is_lambda_b_term, is_value
from .typecheck import check, type_of, well_typed

__all__ = [
    "embed",
    "Outcome",
    "run",
    "step",
    "trace",
    "cast_is_safe",
    "term_safe_for",
    "unsafe_labels",
    "blames_in",
    "casts_in",
    "is_lambda_b_term",
    "is_value",
    "check",
    "type_of",
    "well_typed",
]
