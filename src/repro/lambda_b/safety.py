"""Blame safety for λB (Figure 2, Proposition 5).

A cast ``(A ⇒p B)`` is *safe for* a blame label ``q`` when evaluating the
cast can never allocate blame to ``q``.  A term is safe for ``q`` when every
cast it contains is safe for ``q`` (and, so that safety is preserved by
reduction, when it does not already contain ``blame q``).

Proposition 5: if ``M safe q`` then ``M`` never reduces to ``blame q`` —
"well-typed programs can't be blamed".  The checkers in
:mod:`repro.properties.blame_safety` exercise this on generated programs.
"""

from __future__ import annotations

from ..core.labels import Label
from ..core.subtyping import cast_safe_for, subtype_neg, subtype_pos
from ..core.terms import Blame, Cast, Term, subterms


def cast_is_safe(cast: Cast, q: Label) -> bool:
    """The judgement ``(A ⇒p B) safe q`` for a λB cast node."""
    return cast_safe_for(cast.source, cast.label, cast.target, q)


def term_safe_for(term: Term, q: Label) -> bool:
    """Is every cast (and blame node) in ``term`` safe for ``q``?"""
    for sub in subterms(term):
        if isinstance(sub, Cast) and not cast_is_safe(sub, q):
            return False
        if isinstance(sub, Blame) and sub.label == q:
            return False
    return True


def unsafe_labels(term: Term) -> set[Label]:
    """The set of labels the term is *not* statically safe for.

    These are the only labels that evaluation could possibly blame; the
    complement of this set is guaranteed blameless by Proposition 5.
    """
    result: set[Label] = set()
    for sub in subterms(term):
        if isinstance(sub, Blame):
            result.add(sub.label)
        if isinstance(sub, Cast):
            p = sub.label
            if not subtype_pos(sub.source, sub.target):
                result.add(p)
            if not subtype_neg(sub.source, sub.target):
                result.add(p.complement())
    return result


def safe_labels_among(term: Term, labels) -> set[Label]:
    """Which of the given labels the term is safe for."""
    return {q for q in labels if term_safe_for(term, q)}
