"""Small-step reduction for the blame calculus λB (Figure 1).

The reduction rules, with ``V`` ranging over values::

    op(V⃗)                                   →  [[op]](V⃗)
    (λx:A.N) V                              →  N[x := V]
    V : ι ⇒p ι                              →  V
    (V : A→B ⇒p A'→B') W                    →  (V (W : A' ⇒p̄ A)) : B ⇒p B'
    V : ? ⇒p ?                              →  V
    V : A ⇒p ?                              →  V : A ⇒p G ⇒p ?      (A ≠ ?, A ≠ G, A ~ G)
    V : ? ⇒p A                              →  V : ? ⇒p G ⇒p A      (A ≠ ?, A ≠ G, A ~ G)
    V : G ⇒p ? ⇒q G                         →  V
    V : G ⇒p ? ⇒q H                         →  blame q              (G ≠ H)
    E[blame p]                              →  blame p              (E ≠ □)

plus the standard rules for the documented extensions (``if``, ``let``,
``fix``, pairs, and lazy product-cast projections).

``blame`` collapses its *entire* evaluation context in a single step, exactly
as in the paper; this matters for the lockstep bisimulation with λC
(Proposition 11), which the test suite checks step by step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.errors import EvaluationError, StuckError
from ..core.labels import Label
from ..core.ops import op_spec
from ..core.terms import (
    App,
    Blame,
    Cast,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
    free_vars,
    fresh_name,
    subst,
)
from ..core.types import DynType, FunType, ProdType, is_ground, ground_of
from .syntax import is_value


# ---------------------------------------------------------------------------
# Evaluation contexts: locating blame and the active child
# ---------------------------------------------------------------------------


def _active_child(term: Term) -> Term | None:
    """The unique eval-position child of ``term`` that is not yet a value.

    Returns ``None`` when every eval-position child is a value (so ``term``
    itself is the next redex candidate) or when ``term`` has no eval
    positions.
    """
    if isinstance(term, Op):
        for arg in term.args:
            if not is_value(arg):
                return arg
        return None
    if isinstance(term, App):
        if not is_value(term.fun):
            return term.fun
        if not is_value(term.arg):
            return term.arg
        return None
    if isinstance(term, Cast):
        return None if is_value(term.subject) else term.subject
    if isinstance(term, If):
        return None if is_value(term.cond) else term.cond
    if isinstance(term, Let):
        return None if is_value(term.bound) else term.bound
    if isinstance(term, Fix):
        return None if is_value(term.fun) else term.fun
    if isinstance(term, Pair):
        if not is_value(term.left):
            return term.left
        if not is_value(term.right):
            return term.right
        return None
    if isinstance(term, (Fst, Snd)):
        return None if is_value(term.arg) else term.arg
    return None


def blame_in_evaluation_position(term: Term) -> Label | None:
    """If ``term`` decomposes as ``E[blame p]`` with ``E ≠ □``, return ``p``."""
    current = term
    while True:
        child = _active_child(current)
        if child is None:
            return None
        if isinstance(child, Blame):
            return child.label
        current = child


# ---------------------------------------------------------------------------
# Top-level reduction rules
# ---------------------------------------------------------------------------


def _reduce_cast(term: Cast) -> Term:
    """Reduce a cast whose subject is a value, per Figure 1."""
    value, source, target, p = term.subject, term.source, term.target, term.label

    # V : ι ⇒p ι  →  V   and   V : ? ⇒p ?  →  V
    if source == target and (not isinstance(source, (FunType, ProdType))):
        return value

    # Factor a cast into ? through the ground type of the source.
    if isinstance(target, DynType) and not isinstance(source, DynType) and not is_ground(source):
        ground = ground_of(source)
        return Cast(Cast(value, source, ground, p), ground, target, p)

    # Factor a cast out of ? through the ground type of the target.
    if isinstance(source, DynType) and not isinstance(target, DynType) and not is_ground(target):
        ground = ground_of(target)
        return Cast(Cast(value, source, ground, p), ground, target, p)

    # Collapse or fail a projection:  V : G ⇒p ? ⇒q H.
    if isinstance(source, DynType) and is_ground(target):
        if isinstance(value, Cast) and isinstance(value.target, DynType) and is_ground(value.source):
            if value.source == target:
                return value.subject
            return Blame(p)
        raise StuckError(f"projection applied to a non-injected value: {term}")

    raise StuckError(f"no cast rule applies to {term}")


def _reduce_redex(term: Term) -> Term:
    """Apply the top-level rule to a term whose eval-position children are values."""
    if isinstance(term, Op):
        spec = op_spec(term.op)
        operands = []
        for arg in term.args:
            if not isinstance(arg, Const):
                raise StuckError(f"operator {term.op!r} applied to a non-constant: {arg}")
            operands.append(arg.value)
        result = spec.apply(operands)
        return Const(result, spec.result_type)

    if isinstance(term, App):
        fun, arg = term.fun, term.arg
        if isinstance(fun, Lam):
            return subst(fun.body, fun.param, arg)
        if (
            isinstance(fun, Cast)
            and isinstance(fun.source, FunType)
            and isinstance(fun.target, FunType)
        ):
            inner_arg = Cast(arg, fun.target.dom, fun.source.dom, fun.label.complement())
            return Cast(App(fun.subject, inner_arg), fun.source.cod, fun.target.cod, fun.label)
        raise StuckError(f"application of a non-function value: {term}")

    if isinstance(term, Cast):
        return _reduce_cast(term)

    if isinstance(term, If):
        if isinstance(term.cond, Const) and isinstance(term.cond.value, bool):
            return term.then_branch if term.cond.value else term.else_branch
        raise StuckError(f"if-condition is not a boolean constant: {term.cond}")

    if isinstance(term, Let):
        return subst(term.body, term.name, term.bound)

    if isinstance(term, Fix):
        fun_type = term.fun_type
        avoid = free_vars(term.fun)
        param = fresh_name("x", avoid)
        unrolled = Lam(param, fun_type.dom, App(Fix(term.fun, fun_type), Var(param)))
        return App(term.fun, unrolled)

    if isinstance(term, Fst):
        target = term.arg
        if isinstance(target, Pair):
            return target.left
        if (
            isinstance(target, Cast)
            and isinstance(target.source, ProdType)
            and isinstance(target.target, ProdType)
        ):
            return Cast(Fst(target.subject), target.source.left, target.target.left, target.label)
        raise StuckError(f"fst of a non-pair value: {term}")

    if isinstance(term, Snd):
        target = term.arg
        if isinstance(target, Pair):
            return target.right
        if (
            isinstance(target, Cast)
            and isinstance(target.source, ProdType)
            and isinstance(target.target, ProdType)
        ):
            return Cast(Snd(target.subject), target.source.right, target.target.right, target.label)
        raise StuckError(f"snd of a non-pair value: {term}")

    if isinstance(term, Var):
        raise StuckError(f"free variable during evaluation: {term.name}")

    raise StuckError(f"no reduction rule applies to {term}")


def _step_inner(term: Term) -> Term:
    """One reduction step for a term known to contain no blame in eval position."""
    if isinstance(term, Op):
        for index, arg in enumerate(term.args):
            if not is_value(arg):
                new_args = list(term.args)
                new_args[index] = _step_inner(arg)
                return Op(term.op, tuple(new_args))
        return _reduce_redex(term)
    if isinstance(term, App):
        if not is_value(term.fun):
            return App(_step_inner(term.fun), term.arg)
        if not is_value(term.arg):
            return App(term.fun, _step_inner(term.arg))
        return _reduce_redex(term)
    if isinstance(term, Cast):
        if not is_value(term.subject):
            return Cast(_step_inner(term.subject), term.source, term.target, term.label)
        return _reduce_redex(term)
    if isinstance(term, If):
        if not is_value(term.cond):
            return If(_step_inner(term.cond), term.then_branch, term.else_branch)
        return _reduce_redex(term)
    if isinstance(term, Let):
        if not is_value(term.bound):
            return Let(term.name, _step_inner(term.bound), term.body)
        return _reduce_redex(term)
    if isinstance(term, Fix):
        if not is_value(term.fun):
            return Fix(_step_inner(term.fun), term.fun_type)
        return _reduce_redex(term)
    if isinstance(term, Pair):
        if not is_value(term.left):
            return Pair(_step_inner(term.left), term.right)
        if not is_value(term.right):
            return Pair(term.left, _step_inner(term.right))
        raise StuckError("a pair of values is a value; no step")
    if isinstance(term, Fst):
        if not is_value(term.arg):
            return Fst(_step_inner(term.arg))
        return _reduce_redex(term)
    if isinstance(term, Snd):
        if not is_value(term.arg):
            return Snd(_step_inner(term.arg))
        return _reduce_redex(term)
    return _reduce_redex(term)


def step(term: Term) -> Term | None:
    """Perform one λB reduction step.

    Returns ``None`` when ``term`` is a value or ``blame p`` (no step), the
    reduct otherwise.  Raises :class:`StuckError` for ill-typed terms that
    are neither (type safety, Proposition 3, guarantees this never happens
    for well-typed closed terms).
    """
    if is_value(term) or isinstance(term, Blame):
        return None
    label = blame_in_evaluation_position(term)
    if label is not None:
        return Blame(label)
    return _step_inner(term)


# ---------------------------------------------------------------------------
# Multi-step evaluation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Outcome:
    """The observable outcome of evaluating a term (Definition 6).

    ``kind`` is ``"value"``, ``"blame"``, or ``"timeout"`` (standing in for
    divergence under a finite step budget).
    """

    kind: str
    term: Term | None = None
    label: Label | None = None
    steps: int = 0

    @property
    def is_value(self) -> bool:
        return self.kind == "value"

    @property
    def is_blame(self) -> bool:
        return self.kind == "blame"

    @property
    def is_timeout(self) -> bool:
        return self.kind == "timeout"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "value":
            return f"value {self.term} ({self.steps} steps)"
        if self.kind == "blame":
            return f"blame {self.label} ({self.steps} steps)"
        return f"timeout after {self.steps} steps"


from ..core.fuel import DEFAULT_REDUCTION_FUEL as DEFAULT_FUEL


def trace(term: Term, fuel: int = DEFAULT_FUEL) -> Iterator[Term]:
    """Yield the reduction sequence ``term → … `` (including the start term)."""
    current = term
    yield current
    for _ in range(fuel):
        nxt = step(current)
        if nxt is None:
            return
        current = nxt
        yield current


def run(term: Term, fuel: int = DEFAULT_FUEL) -> Outcome:
    """Evaluate ``term`` for at most ``fuel`` steps and report the outcome."""
    current = term
    for steps in range(fuel + 1):
        if isinstance(current, Blame):
            return Outcome("blame", label=current.label, steps=steps)
        if is_value(current):
            return Outcome("value", term=current, steps=steps)
        nxt = step(current)
        if nxt is None:  # pragma: no cover - unreachable for well-typed terms
            raise EvaluationError(f"term neither value nor blame yet has no step: {current}")
        current = nxt
    return Outcome("timeout", term=current, steps=fuel)
