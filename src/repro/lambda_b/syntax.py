"""Syntax of the blame calculus λB (Figure 1): values and well-formedness.

λB terms are the shared terms of :mod:`repro.core.terms` together with casts
``M : A ⇒p B`` and ``blame p``; coercion applications are *not* λB terms.

Values are::

    V, W ::= k | λx:A.N | V : A→B ⇒p A'→B' | V : G ⇒p ? | (V, W) | V : A×B ⇒p A'×B'

i.e. constants, abstractions, casts of values between function (resp.
product) types, and casts of values from a ground type to the dynamic type.
"""

from __future__ import annotations

from ..core.terms import (
    App,
    Blame,
    Cast,
    Coerce,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
    subterms,
)
from ..core.types import DynType, FunType, ProdType, is_ground

#: The term constructors a λB term may use.
LAMBDA_B_NODES = (Const, Op, Var, Lam, App, Cast, Blame, If, Let, Fix, Pair, Fst, Snd)


def is_lambda_b_term(term: Term) -> bool:
    """Does ``term`` use only λB constructors (in particular, no coercions)?"""
    return all(not isinstance(t, Coerce) for t in subterms(term))


def is_value(term: Term) -> bool:
    """Is ``term`` a λB value?"""
    if isinstance(term, (Const, Lam)):
        return True
    if isinstance(term, Pair):
        return is_value(term.left) and is_value(term.right)
    if isinstance(term, Cast):
        if not is_value(term.subject):
            return False
        source, target = term.source, term.target
        if isinstance(source, FunType) and isinstance(target, FunType):
            return True
        if isinstance(source, ProdType) and isinstance(target, ProdType):
            return True
        if isinstance(target, DynType) and is_ground(source):
            return True
    return False


def is_uncasted_value(term: Term) -> bool:
    """A value with no top-level cast (``k``, ``λx:A.N``, or a pair of values)."""
    return is_value(term) and not isinstance(term, Cast)


def casts_in(term: Term) -> list[Cast]:
    """All cast nodes occurring in a term."""
    return [t for t in subterms(term) if isinstance(t, Cast)]


def blames_in(term: Term) -> list[Blame]:
    """All ``blame p`` nodes occurring in a term."""
    return [t for t in subterms(term) if isinstance(t, Blame)]
