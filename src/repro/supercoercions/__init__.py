"""Supercoercions (Garcia 2013) — the §6.3 baseline.

Garcia derives threesomes from coercions via *supercoercions*, whose meaning
is given by a translation ``N(·)`` into ordinary coercions.  The paper quotes
the translation table and notes that Garcia's composition function has sixty
cases, against the ten lines of λS's ``#``.

This module implements the supercoercion constructors and the meaning
function :func:`meaning` (the paper's ``N``), so the test suite can check
that the canonical form of every supercoercion is what λS predicts and that
composing supercoercions via their meanings and ``#`` is coherent — i.e. the
ten-line operator subsumes the sixty-case table.

Following the paper's presentation, ``ι_P`` is the identity at an atomic type
(a base type or ``?``), ``Fail^l`` / ``Fail^{l₁ G l₂}`` are failures
(optionally guarded by a projection), ``G!`` and ``G?l`` are injection and
projection, ``G?l!`` is a projection immediately re-injected, and the four
arrow forms optionally project before (``→?l``) and/or inject after (``!→``)
a function coercion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import CoercionTypeError
from ..core.labels import Label
from ..core.types import GROUND_FUN, DynType, Type, is_ground
from ..lambda_c.coercions import (
    Coercion,
    Fail,
    FunCoercion,
    Identity,
    Inject,
    Project,
    Sequence,
)
from ..lambda_s.coercions import SpaceCoercion
from ..translate.c_to_s import coercion_to_space


class SuperCoercion:
    """Abstract base class of Garcia-style supercoercions."""

    __slots__ = ()


@dataclass(frozen=True)
class SIdentity(SuperCoercion):
    """``ι_P`` — identity at an atomic type (a base type or ``?``)."""

    type: Type


@dataclass(frozen=True)
class SFail(SuperCoercion):
    """``Fail^l`` — immediate failure blaming ``l``."""

    label: Label
    source_ground: Type
    target_ground: Type


@dataclass(frozen=True)
class SFailProj(SuperCoercion):
    """``Fail^{l₁ G l₂}`` — project at ``G`` (blaming ``l₂`` on the projection),
    then fail blaming ``l₁``."""

    fail_label: Label
    ground: Type
    project_label: Label
    target_ground: Type


@dataclass(frozen=True)
class SInject(SuperCoercion):
    """``G!``."""

    ground: Type


@dataclass(frozen=True)
class SProject(SuperCoercion):
    """``G?l``."""

    ground: Type
    label: Label


@dataclass(frozen=True)
class SProjectInject(SuperCoercion):
    """``G?l!`` — project at ``G`` then re-inject."""

    ground: Type
    label: Label


@dataclass(frozen=True)
class SArrow(SuperCoercion):
    """``c̈₁ → c̈₂`` with optional injection after and projection (label) before."""

    dom: SuperCoercion
    cod: SuperCoercion
    inject_after: bool = False
    project_label: Optional[Label] = None


def meaning(super_coercion: SuperCoercion) -> Coercion:
    """Garcia's ``N(·)``: the coercion a supercoercion denotes."""
    sc = super_coercion
    if isinstance(sc, SIdentity):
        return Identity(sc.type)
    if isinstance(sc, SFail):
        return Fail(sc.source_ground, sc.label, sc.target_ground)
    if isinstance(sc, SFailProj):
        # N(Fail^{l1 G l2}) = Fail^{l1} ∘ G?l2  — project first, then fail.
        return Sequence(
            Project(sc.ground, sc.project_label),
            Fail(sc.ground, sc.fail_label, sc.target_ground),
        )
    if isinstance(sc, SInject):
        return Inject(sc.ground)
    if isinstance(sc, SProject):
        return Project(sc.ground, sc.label)
    if isinstance(sc, SProjectInject):
        # N(G?l!) = G! ∘ G?l — project then re-inject.
        return Sequence(Project(sc.ground, sc.label), Inject(sc.ground))
    if isinstance(sc, SArrow):
        arrow: Coercion = FunCoercion(meaning(sc.dom), meaning(sc.cod))
        if sc.project_label is not None:
            arrow = Sequence(Project(GROUND_FUN, sc.project_label), arrow)
        if sc.inject_after:
            arrow = Sequence(arrow, Inject(GROUND_FUN))
        return arrow
    raise CoercionTypeError(f"unknown supercoercion {sc!r}")


def canonical_meaning(super_coercion: SuperCoercion) -> SpaceCoercion:
    """The canonical (λS) form of a supercoercion's meaning."""
    return coercion_to_space(meaning(super_coercion))


def compose_via_meanings(first: SuperCoercion, second: SuperCoercion) -> SpaceCoercion:
    """Compose two supercoercions by translating to λS and using ``#``.

    This is the point of the comparison in §6.3: instead of Garcia's sixty-case
    composition table on supercoercions, the ten-line ``#`` on canonical forms
    does the same job.
    """
    from ..lambda_s.coercions import compose

    return compose(canonical_meaning(first), canonical_meaning(second))


__all__ = [
    "SuperCoercion",
    "SIdentity",
    "SFail",
    "SFailProj",
    "SInject",
    "SProject",
    "SProjectInject",
    "SArrow",
    "meaning",
    "canonical_meaning",
    "compose_via_meanings",
]
