"""Erasure enforcement: all mediation compiled away — the speed ceiling.

Under Erasure the program runs as if every cast had been deleted: no checks,
no wrappers, no blame, ever.  Each ``Coerce`` node maps to the single no-op
token :data:`ERASED`, whose application is the identity and whose size is
zero; composition of two erased mediators is erased again.  Because the
policy reports *every* mediator as an identity, the ``-O1`` elision pass
removes every ``COERCE``/``COMPOSE`` instruction from erasure bytecode —
what remains is the raw computation, which is exactly the speed ceiling the
benchmarks compare the enforcing backends against.

On blame-free programs Erasure agrees with Natural on values (enforced by
``check_mediator_oracle`` and a hypothesis property); on programs Natural
blames, Erasure either produces a value or diverges — it can never exit
with blame.
"""

from __future__ import annotations

from ..core.terms import Coerce, Term
from ..lambda_s import coercions as co_s
from ..machine.policy import ACT_IDENTITY, MediationPolicy
from ..machine.values import MachineValue


class ErasedMediator:
    """The unique run-time mediator of the erasure backend (a no-op token)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "⟪erased⟫"


#: The one interned erasure mediator; every pool holds at most this entry.
ERASED = ErasedMediator()


class ErasurePolicy(MediationPolicy):
    """The λS machine/VM with enforcement erased (never blames)."""

    name = "S"
    mediator = "erasure"
    merges_pending_mediators = True

    def is_mediation_node(self, term: Term) -> bool:
        return isinstance(term, Coerce) and isinstance(term.coercion, co_s.SpaceCoercion)

    def term_mediator(self, term: Term) -> ErasedMediator:
        assert isinstance(term, Coerce)
        return ERASED

    def is_fun_proxy(self, m: ErasedMediator) -> bool:
        return False

    def is_prod_proxy(self, m: ErasedMediator) -> bool:
        return False

    def fun_parts(self, m: ErasedMediator) -> tuple:
        raise AssertionError("erased mediators never form function proxies")

    def prod_parts(self, m: ErasedMediator) -> tuple:
        raise AssertionError("erased mediators never form pair proxies")

    def apply(self, value: MachineValue, m: ErasedMediator) -> MachineValue:
        return value

    def compose(self, first: ErasedMediator, second: ErasedMediator) -> ErasedMediator:
        return ERASED

    def size(self, m: ErasedMediator) -> int:
        return 0

    def is_identity(self, m: ErasedMediator) -> bool:
        return True

    def classify(self, m: ErasedMediator) -> int:
        return ACT_IDENTITY


ERASURE_POLICY = ErasurePolicy()
