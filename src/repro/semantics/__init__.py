"""The enforcement-semantics registry: one source of truth for the backend axis.

The λS pipeline is parametric in *how* run-time enforcement happens — which
:class:`~repro.machine.policy.MediationPolicy` the machines execute, how a
canonical coercion is pre-interned into a constant pool, what id a ``.gradb``
image carries, and which string salts the compile-cache key.  Historically
that choice was a two-value string (``"coercion"``/``"threesome"``)
duplicated across per-module dispatch dicts; this package replaces all of
them with one registry keyed by semantics name:

``coercion``
    Natural enforcement via canonical space-efficient coercions merged with
    ``#`` — the paper's λS, and the certified default.
``threesome``
    Natural enforcement via threesomes ``⟨T ⇐P= S⟩`` merged with ``∘``
    (§6.1): observationally equal to ``coercion``, different representation.
``transient``
    Shallow ground-tag checks at use sites (:mod:`.transient`): space bound
    trivially preserved, blame may diverge from Natural by design.
``erasure``
    No enforcement at all (:mod:`.erasure`): never blames, all mediation
    elided at ``-O1``+ — the speed ceiling.

Consumers resolve through :func:`resolve` (or :func:`policy_for`); the
capability flags (``blames``, ``space_bounded``, ``natural``) drive the
oracle's expectations and the benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.errors import UsageError
from ..machine import MACHINE_S
from ..machine.cek import CEKMachine
from ..machine.policy import SPACE_POLICY, THREESOME_POLICY, MediationPolicy
from ..threesomes.runtime import threesome_of_coercion
from .erasure import ERASED, ERASURE_POLICY, ErasedMediator, ErasurePolicy
from .transient import (
    TRANSIENT_POLICY,
    TransientCheck,
    TransientPolicy,
    compose_transient,
    transient_of_coercion,
)


@dataclass(frozen=True)
class EnforcementSemantics:
    """One entry of the registry: everything the pipeline needs per backend.

    ``policy`` is the shared :class:`MediationPolicy` instance the machines,
    VMs, and optimizer all execute with (so ``is_identity``/``compose``
    agree by construction); ``machine`` is the CEK machine running it.
    ``pre_intern`` maps an *interned* canonical λS coercion to the node this
    backend pools (:meth:`ConstantPool.add_coercion` calls it once per
    distinct coercion).  ``serialize_id`` is the provenance string written
    into ``.gradb`` headers and ``cache_key`` the compile-cache axis — kept
    as separate fields so a representation change can version one without
    the other.

    Capability flags: ``blames`` — can a run ever end in blame;
    ``space_bounded`` — does the backend preserve the constant
    pending-mediator footprint (``max_pending_mediators ≤ 1`` on boundary
    tail loops); ``natural`` — full Natural (λS) enforcement, observationally
    interchangeable with the paper's semantics.
    """

    name: str
    policy: MediationPolicy
    machine: CEKMachine
    pre_intern: Callable[[object], object]
    serialize_id: str
    cache_key: str
    blames: bool
    space_bounded: bool
    natural: bool


def _pool_coercion(s: object) -> object:
    return s  # already interned by add_coercion


def _pool_erased(s: object) -> object:
    return ERASED


#: The registry, in presentation order (CLI choices, benchmark sweeps, and
#: the README matrix all follow it).
SEMANTICS: dict[str, EnforcementSemantics] = {
    sem.name: sem
    for sem in (
        EnforcementSemantics(
            name="coercion",
            policy=SPACE_POLICY,
            machine=MACHINE_S,
            pre_intern=_pool_coercion,
            serialize_id="coercion",
            cache_key="coercion",
            blames=True,
            space_bounded=True,
            natural=True,
        ),
        EnforcementSemantics(
            name="threesome",
            policy=THREESOME_POLICY,
            machine=CEKMachine(THREESOME_POLICY),
            pre_intern=threesome_of_coercion,
            serialize_id="threesome",
            cache_key="threesome",
            blames=True,
            space_bounded=True,
            natural=True,
        ),
        EnforcementSemantics(
            name="transient",
            policy=TRANSIENT_POLICY,
            machine=CEKMachine(TRANSIENT_POLICY),
            pre_intern=transient_of_coercion,
            serialize_id="transient",
            cache_key="transient",
            blames=True,
            space_bounded=True,
            natural=False,
        ),
        EnforcementSemantics(
            name="erasure",
            policy=ERASURE_POLICY,
            machine=CEKMachine(ERASURE_POLICY),
            pre_intern=_pool_erased,
            serialize_id="erasure",
            cache_key="erasure",
            blames=False,
            space_bounded=True,
            natural=False,
        ),
    )
}

#: All semantics names, in registry order.
SEMANTICS_NAMES: tuple[str, ...] = tuple(SEMANTICS)

#: The Natural (λS-observable) subset — the historical ``MEDIATORS`` pair.
NATURAL_SEMANTICS_NAMES: tuple[str, ...] = tuple(
    name for name, sem in SEMANTICS.items() if sem.natural
)


def resolve(name: str) -> EnforcementSemantics:
    """The registry entry for ``name``, or a :class:`UsageError` listing them."""
    sem = SEMANTICS.get(name)
    if sem is None:
        raise UsageError(
            f"unknown mediator/semantics {name!r}; expected one of {SEMANTICS_NAMES}"
        )
    return sem


def policy_for(name: str) -> MediationPolicy:
    """The mediation policy executing semantics ``name`` (via :func:`resolve`)."""
    return resolve(name).policy


__all__ = [
    "ERASED",
    "ERASURE_POLICY",
    "EnforcementSemantics",
    "ErasedMediator",
    "ErasurePolicy",
    "NATURAL_SEMANTICS_NAMES",
    "SEMANTICS",
    "SEMANTICS_NAMES",
    "TRANSIENT_POLICY",
    "TransientCheck",
    "TransientPolicy",
    "compose_transient",
    "policy_for",
    "resolve",
    "transient_of_coercion",
]
