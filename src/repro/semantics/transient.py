"""Transient enforcement: shallow ground-tag checks at use sites.

The Transient discipline (Vitousek et al.; compared against Natural and
Erasure by the blame-evaluation literature) keeps none of λS's wrapper
machinery: a canonical coercion is abstracted to the sequence of *ground-tag
checks* its projections would perform, and everything structural — the
argument/result coercions inside ``s → t``, the component coercions inside
``s × t``, and every injection — is dropped.  A check ``(G, p)`` asserts
that the value at hand carries tag ``G`` (base constant, function, or pair)
and blames ``p`` otherwise; a mediator never wraps, so there are no proxies
and no deferred higher-order obligations.  Blame may therefore diverge from
Natural *by design*: Transient blames only where a tag is inspected, with
the label of the projection that demanded it.

Space is trivially bounded: after composition deduplicates by ground, a
:class:`TransientCheck` holds at most one check per distinct ground type of
the program (a fixed, finite set), so the one-slot pending-mediator
discipline of the λS machine carries over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import EvaluationError
from ..core.labels import Label
from ..core.terms import Coerce, Term
from ..core.types import BaseType, FunType, ProdType, Type
from ..lambda_s import coercions as co_s
from ..machine.policy import (
    ACT_GENERAL,
    ACT_IDENTITY,
    MachineBlame,
    MediationPolicy,
)
from ..machine.values import MachineValue, MConst, MFunctionValue, MPair


@dataclass(frozen=True)
class TransientCheck:
    """A run-time mediator of the transient backend.

    ``checks`` is the ordered sequence of ``(ground, label)`` tag assertions
    to run against the value; ``fail`` is the label of an unconditional
    failure (``⊥GpH``) reached after every check passes, or ``None``.
    """

    checks: tuple[tuple[Type, Label], ...]
    fail: Label | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{ground}?{label}" for ground, label in self.checks]
        if self.fail is not None:
            parts.append(f"⊥{self.fail}")
        return "⟪" + ("; ".join(parts) if parts else "pass") + "⟫"


# Interned nodes, keyed structurally: grounds and labels are frozen
# dataclasses, so the key is hashable and equal checks share one node.  The
# pool's identity-keyed dedup (``add_canonical_mediator``) and the policy's
# memo tables below all rely on this canonicalization.
_INTERNED: dict[tuple, TransientCheck] = {}


def intern_transient(t: TransientCheck) -> TransientCheck:
    """The canonical node equal to ``t`` (interning by structure)."""
    key = (t.checks, t.fail)
    found = _INTERNED.get(key)
    if found is None:
        _INTERNED[key] = t
        found = t
    return found


def is_interned_transient(t: TransientCheck) -> bool:
    return _INTERNED.get((t.checks, t.fail)) is t


#: The transient mediator that checks nothing (every ground coercion,
#: injection, and identity abstracts to this).
NO_CHECK = intern_transient(TransientCheck(()))


def _derive(s: co_s.SpaceCoercion) -> tuple[list[tuple[Type, Label]], Label | None]:
    """The tag checks a canonical coercion performs, in application order."""
    if isinstance(s, co_s.Projection):
        checks, fail = _derive(s.body)
        return [(s.ground, s.label), *checks], fail
    if isinstance(s, co_s.Injection):
        return _derive(s.body)
    if isinstance(s, co_s.FailS):
        return [], s.label
    if isinstance(s, (co_s.IdDyn, co_s.IdBase, co_s.FunCo, co_s.ProdCo)):
        return [], None
    raise EvaluationError(f"unknown canonical coercion: {s!r}")


_OF_COERCION: dict[int, TransientCheck] = {}


def transient_of_coercion(s: co_s.SpaceCoercion) -> TransientCheck:
    """Abstract a canonical λS coercion to its transient tag checks.

    Memoised on the interned coercion's identity, mirroring
    ``threesome_of_coercion``: translating the same pool entry twice yields
    the same :class:`TransientCheck` node.
    """
    s = co_s.intern_space(s)
    found = _OF_COERCION.get(id(s))
    if found is None:
        checks, fail = _derive(s)
        found = intern_transient(TransientCheck(tuple(checks), fail))
        _OF_COERCION[id(s)] = found
    return found


_COMPOSED: dict[tuple[int, int], TransientCheck] = {}


def compose_transient(first: TransientCheck, second: TransientCheck) -> TransientCheck:
    """Merge two pending transient mediators; ``first`` applies first.

    An unconditional failure in ``first`` shadows everything after it.
    Otherwise the check sequences concatenate, deduplicated by ground type
    keeping the *earliest* occurrence: once ``(G, p)`` has passed, any later
    ``(G, q)`` must pass too, and if it fails the blame falls on ``p``.  The
    result therefore holds at most one check per distinct ground — the
    bounded size that makes this backend space-efficient.
    """
    first = intern_transient(first)
    second = intern_transient(second)
    key = (id(first), id(second))
    found = _COMPOSED.get(key)
    if found is not None:
        return found
    if first.fail is not None:
        result = first
    else:
        checks = list(first.checks)
        seen = {ground for ground, _ in checks}
        for ground, label in second.checks:
            if ground not in seen:
                seen.add(ground)
                checks.append((ground, label))
        result = intern_transient(TransientCheck(tuple(checks), second.fail))
    _COMPOSED[key] = result
    return result


class TransientPolicy(MediationPolicy):
    """The λS machine/VM with transient enforcement (shallow tag checks).

    Interprets exactly the terms :class:`~repro.machine.policy.SpacePolicy`
    does — ``Coerce`` nodes carrying canonical coercions — but every mediator
    is abstracted to a :class:`TransientCheck`.  Values are never wrapped
    (``is_fun_proxy``/``is_prod_proxy`` are constantly false, so the proxy
    branches of the machines stay idle), and pending mediators merge through
    :func:`compose_transient`.
    """

    name = "S"
    mediator = "transient"
    merges_pending_mediators = True

    def is_mediation_node(self, term: Term) -> bool:
        return isinstance(term, Coerce) and isinstance(term.coercion, co_s.SpaceCoercion)

    def term_mediator(self, term: Term) -> TransientCheck:
        assert isinstance(term, Coerce)
        return transient_of_coercion(term.coercion)

    def is_fun_proxy(self, t: TransientCheck) -> bool:
        return False

    def is_prod_proxy(self, t: TransientCheck) -> bool:
        return False

    def fun_parts(self, t: TransientCheck) -> tuple:
        raise EvaluationError("transient mediators never form function proxies")

    def prod_parts(self, t: TransientCheck) -> tuple:
        raise EvaluationError("transient mediators never form pair proxies")

    def apply(self, value: MachineValue, t: TransientCheck) -> MachineValue:
        for ground, label in t.checks:
            if isinstance(ground, BaseType):
                if not (isinstance(value, MConst) and value.type == ground):
                    raise MachineBlame(label)
            elif isinstance(ground, FunType):
                if not isinstance(value, MFunctionValue):
                    raise MachineBlame(label)
            elif isinstance(ground, ProdType):
                if not isinstance(value, MPair):
                    raise MachineBlame(label)
            else:
                raise EvaluationError(f"non-ground transient check: {ground!r}")
        if t.fail is not None:
            raise MachineBlame(t.fail)
        return value

    def compose(self, first: TransientCheck, second: TransientCheck) -> TransientCheck:
        return compose_transient(first, second)

    def size(self, t: TransientCheck) -> int:
        return 1 + len(t.checks) + (1 if t.fail is not None else 0)

    def is_identity(self, t: TransientCheck) -> bool:
        return not t.checks and t.fail is None

    def classify(self, t: TransientCheck) -> int:
        # Checking a tag can blame, so anything non-empty goes through apply.
        return ACT_IDENTITY if self.is_identity(t) else ACT_GENERAL


TRANSIENT_POLICY = TransientPolicy()
