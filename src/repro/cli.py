"""Command-line interface: run, type-check, translate, and profile gradual programs.

Installed as ``repro-gradual``.  Subcommands:

* ``run FILE``        — parse, type check, insert casts, evaluate (choose the
  calculus with ``--calculus`` and the engine with ``--engine``: the CEK
  machine by default, the bytecode VM with ``--engine vm``, or the
  substitution-based reference oracle).
* ``compile FILE``    — lower to λS bytecode and print the disassembly and
  constant pool.
* ``check FILE``      — static gradual type checking only.
* ``translate FILE``  — print the elaborated λB term, or its λC / λS translation.
* ``space N``         — reproduce the space-efficiency experiment for the
  even/odd boundary workload at size ``N`` on all three machines.

Example::

    repro-gradual run examples/programs/square.grad --calculus S --show-space
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.errors import ParseError, ReproError, TypeCheckError
from .core.pretty import term_to_str
from .gen.programs import even_odd_boundary
from .machine import run_on_machine
from .surface.cast_insertion import elaborate_program
from .surface.interp import run_term
from .surface.parser import parse_program
from .translate import b_to_c, b_to_s


def _load_program(path: str):
    source = Path(path).read_text()
    return parse_program(source)


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    term, ty = elaborate_program(program)
    engine = "subst" if args.small_step else args.engine
    result = run_term(
        term,
        ty,
        calculus=args.calculus,
        engine=engine,
        fuel=args.fuel,
    )
    print(result)
    if args.show_space and result.space_stats is not None:
        stats = result.space_stats
        print(
            "space: pending-mediators max={max_pending_mediators} "
            "pending-size max={max_pending_size} kont-depth max={max_kont_depth} "
            "steps={steps}".format(**stats)
        )
    return 0 if result.kind == "value" else 1


def _cmd_compile(args: argparse.Namespace) -> int:
    from .compiler import compile_term, disassemble

    program = _load_program(args.file)
    term, _ = elaborate_program(program)
    print(disassemble(compile_term(term)))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    try:
        _, ty = elaborate_program(program)
    except TypeCheckError as exc:
        print(f"static type error: {exc}")
        return 1
    print(f"well typed : {ty}")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    term, _ = elaborate_program(program)
    if args.to == "b":
        print(term_to_str(term))
    elif args.to == "c":
        print(term_to_str(b_to_c(term)))
    else:
        print(term_to_str(b_to_s(term)))
    return 0


def _cmd_space(args: argparse.Namespace) -> int:
    n = args.n
    print(f"even/odd boundary workload, n = {n}")
    print(f"{'calculus':>8} {'pending frames':>16} {'pending size':>14} {'kont depth':>12} {'steps':>10}")
    for calculus in ("B", "C", "S"):
        outcome = run_on_machine(even_odd_boundary(n), calculus)
        stats = outcome.stats
        print(
            f"{calculus:>8} {stats['max_pending_mediators']:>16} "
            f"{stats['max_pending_size']:>14} {stats['max_kont_depth']:>12} {stats['steps']:>10}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gradual",
        description="Gradually typed language toolchain from 'Blame and Coercion' (PLDI 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run a gradual program")
    run_parser.add_argument("file")
    run_parser.add_argument("--calculus", choices=["B", "C", "S", "b", "c", "s"], default="S")
    run_parser.add_argument("--engine", choices=["vm", "machine", "subst"], default="machine",
                            help="execution engine: the CEK machine (default), the λS "
                                 "bytecode VM, or the substitution-based reference oracle")
    run_parser.add_argument("--small-step", action="store_true",
                            help="alias for --engine subst (the paper-faithful small-step reducer)")
    run_parser.add_argument("--show-space", action="store_true", help="print space statistics")
    run_parser.add_argument("--fuel", type=int, default=None)
    run_parser.set_defaults(handler=_cmd_run)

    compile_parser = sub.add_parser(
        "compile", help="lower a program to λS bytecode and print the disassembly"
    )
    compile_parser.add_argument("file")
    compile_parser.set_defaults(handler=_cmd_compile)

    check_parser = sub.add_parser("check", help="gradually type check a program")
    check_parser.add_argument("file")
    check_parser.set_defaults(handler=_cmd_check)

    translate_parser = sub.add_parser("translate", help="print a program's cast/coercion form")
    translate_parser.add_argument("file")
    translate_parser.add_argument("--to", choices=["b", "c", "s"], default="b")
    translate_parser.set_defaults(handler=_cmd_translate)

    space_parser = sub.add_parser("space", help="run the space-efficiency experiment")
    space_parser.add_argument("n", type=int, nargs="?", default=1000)
    space_parser.set_defaults(handler=_cmd_space)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ParseError, ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
