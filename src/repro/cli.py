"""Command-line interface: run, type-check, translate, and profile gradual programs.

Installed as ``repro-gradual``.  Subcommands:

* ``run FILE``        — parse, type check, insert casts, evaluate (choose the
  calculus with ``--calculus``, the engine with ``--engine``: the CEK
  machine by default, the bytecode VM with ``--engine vm``, or the
  substitution-based reference oracle; the pending-mediator
  representation with ``--mediator``: λS coercions composed with ``#`` by
  default, or threesomes composed with labeled-type ``∘``; and the VM's
  optimization level with ``-O {0,1,2}``, default ``-O2``).
* ``compile FILE``    — lower to λS bytecode and print the disassembly and
  constant pool (``--mediator threesome`` pre-interns labeled types;
  ``-O`` selects the optimizer level, so ``-O0`` vs ``-O2`` diffs show the
  elisions, pre-compositions, and superinstruction fusions).
* ``check FILE``      — static gradual type checking only.
* ``translate FILE``  — print the elaborated λB term, or its λC / λS translation.
* ``space N``         — reproduce the space-efficiency experiment for the
  even/odd boundary workload at size ``N`` on all three machines.

Exit codes (uniform across subcommands): **0** — the program ran to a value
(or the subcommand succeeded); **1** — evaluation allocated blame; **2** — a
static error (file not found, parse error, ill-typed program, bad
engine/calculus/mediator combination); **3** — evaluation timed out (fuel
exhausted).  Errors are single-line diagnostics on stderr carrying source
locations when the front end provides them.

Example::

    repro-gradual run examples/programs/square.grad --calculus S --show-space
    repro-gradual run examples/programs/tail_loop.grad --engine vm --mediator threesome
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.errors import ParseError, ReproError, TypeCheckError
from .core.pretty import term_to_str
from .gen.programs import even_odd_boundary
from .machine import run_on_machine
from .surface.cast_insertion import elaborate_program
from .surface.interp import run_term
from .surface.parser import parse_program
from .translate import b_to_c, b_to_s

#: The uniform exit-code scheme (documented in ``--help`` and the README).
EXIT_VALUE = 0
EXIT_BLAME = 1
EXIT_STATIC_ERROR = 2
EXIT_TIMEOUT = 3

_OUTCOME_EXIT_CODES = {"value": EXIT_VALUE, "blame": EXIT_BLAME, "timeout": EXIT_TIMEOUT}


def _load_program(path: str):
    source = Path(path).read_text()
    return parse_program(source)


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    term, ty = elaborate_program(program)
    engine = "subst" if args.small_step else args.engine
    result = run_term(
        term,
        ty,
        calculus=args.calculus,
        engine=engine,
        mediator=args.mediator,
        fuel=args.fuel,
        opt_level=args.opt_level,
    )
    print(result)
    if args.show_space and result.space_stats is not None:
        stats = result.space_stats
        print(
            "space: pending-mediators max={max_pending_mediators} "
            "pending-size max={max_pending_size} kont-depth max={max_kont_depth} "
            "steps={steps}".format(**stats)
        )
    return _OUTCOME_EXIT_CODES[result.kind]


def _cmd_compile(args: argparse.Namespace) -> int:
    from .compiler import compile_term, disassemble

    program = _load_program(args.file)
    term, _ = elaborate_program(program)
    print(disassemble(compile_term(term, mediator=args.mediator, opt_level=args.opt_level)))
    return EXIT_VALUE


def _cmd_check(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    _, ty = elaborate_program(program)  # TypeCheckError propagates to main()
    print(f"well typed : {ty}")
    return EXIT_VALUE


def _cmd_translate(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    term, _ = elaborate_program(program)
    if args.to == "b":
        print(term_to_str(term))
    elif args.to == "c":
        print(term_to_str(b_to_c(term)))
    else:
        print(term_to_str(b_to_s(term)))
    return EXIT_VALUE


def _cmd_space(args: argparse.Namespace) -> int:
    n = args.n
    print(f"even/odd boundary workload, n = {n}")
    print(f"{'calculus':>8} {'pending frames':>16} {'pending size':>14} {'kont depth':>12} {'steps':>10}")
    for calculus in ("B", "C", "S"):
        outcome = run_on_machine(even_odd_boundary(n), calculus)
        stats = outcome.stats
        print(
            f"{calculus:>8} {stats['max_pending_mediators']:>16} "
            f"{stats['max_pending_size']:>14} {stats['max_kont_depth']:>12} {stats['steps']:>10}"
        )
    return EXIT_VALUE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gradual",
        description="Gradually typed language toolchain from 'Blame and Coercion' (PLDI 2015).",
        epilog="exit codes: 0 value, 1 blame, 2 static/parse error, 3 timeout",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="run a gradual program",
        epilog="exit codes: 0 value, 1 blame, 2 static/parse error, 3 timeout",
    )
    run_parser.add_argument("file")
    run_parser.add_argument("--calculus", choices=["B", "C", "S", "b", "c", "s"], default="S")
    run_parser.add_argument("--engine", choices=["vm", "machine", "subst"], default="machine",
                            help="execution engine: the CEK machine (default), the λS "
                                 "bytecode VM, or the substitution-based reference oracle")
    run_parser.add_argument("--mediator", choices=["coercion", "threesome"], default="coercion",
                            help="pending-mediator representation of the λS machine/VM: "
                                 "canonical coercions merged with # (default) or threesomes "
                                 "(labeled types) merged with labeled-type composition")
    run_parser.add_argument("--small-step", action="store_true",
                            help="alias for --engine subst (the paper-faithful small-step reducer)")
    run_parser.add_argument("-O", "--opt-level", type=int, choices=[0, 1, 2], default=2,
                            help="bytecode optimizer level for the vm engine: 0 none, "
                                 "1 static coercion elision + pre-composition, "
                                 "2 (default) superinstructions + inline mediator caches")
    run_parser.add_argument("--show-space", action="store_true", help="print space statistics")
    run_parser.add_argument("--fuel", type=int, default=None)
    run_parser.set_defaults(handler=_cmd_run)

    compile_parser = sub.add_parser(
        "compile", help="lower a program to λS bytecode and print the disassembly"
    )
    compile_parser.add_argument("file")
    compile_parser.add_argument("--mediator", choices=["coercion", "threesome"], default="coercion",
                                help="mediator-pool representation: interned canonical "
                                     "coercions (default) or pre-translated threesomes")
    compile_parser.add_argument("-O", "--opt-level", type=int, choices=[0, 1, 2], default=2,
                                help="optimizer level to disassemble at (default 2; "
                                     "compare against -O0 to see the rewrites)")
    compile_parser.set_defaults(handler=_cmd_compile)

    check_parser = sub.add_parser("check", help="gradually type check a program")
    check_parser.add_argument("file")
    check_parser.set_defaults(handler=_cmd_check)

    translate_parser = sub.add_parser("translate", help="print a program's cast/coercion form")
    translate_parser.add_argument("file")
    translate_parser.add_argument("--to", choices=["b", "c", "s"], default="b")
    translate_parser.set_defaults(handler=_cmd_translate)

    space_parser = sub.add_parser("space", help="run the space-efficiency experiment")
    space_parser.add_argument("n", type=int, nargs="?", default=1000)
    space_parser.set_defaults(handler=_cmd_space)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, dispatch, and map every failure to the exit-code scheme.

    All static failures — unreadable files, parse errors (which carry
    line/column), type errors (which carry source locations), and invalid
    engine/calculus/mediator combinations — are caught uniformly here and
    reported as one-line diagnostics on stderr with exit code 2.  Dynamic
    outcomes (blame = 1, timeout = 3) are exit codes, not exceptions.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_STATIC_ERROR
    except TypeCheckError as exc:
        print(f"static type error: {exc}", file=sys.stderr)
        return EXIT_STATIC_ERROR
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename}", file=sys.stderr)
        return EXIT_STATIC_ERROR
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_STATIC_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
