"""Command-line interface: run, type-check, translate, and profile gradual programs.

Installed as ``repro-gradual``.  Subcommands:

* ``run FILE``        — parse, type check, insert casts, evaluate (choose the
  calculus with ``--calculus``, the engine with ``--engine``: the CEK
  machine by default, the stack bytecode VM with ``--engine vm``, the
  register VM with ``--engine rvm`` (packed-stream dispatch; fastest), or
  the substitution-based reference oracle; the enforcement semantics with
  ``--semantics``: λS coercions composed with ``#`` by default, threesomes
  composed with labeled-type ``∘``, transient tag checks, or erasure
  (``--mediator`` survives as a deprecated alias); and the VMs'
  optimization level with ``-O {0,1,2}``, default ``-O2``).  ``FILE`` may
  also be a serialized ``.gradb`` bytecode image, which runs directly —
  no front end at all — on the engine its IR fixes (vm for stack images,
  rvm for register images).  The compiled engines compile through the
  on-disk compile cache (``~/.cache/repro-gradual``) unless ``--no-cache``;
  ``--profile`` dumps dispatch counts, inline-cache hit rates, the space
  profile, and pipeline-phase timings as JSON on stderr; ``--trace FILE``
  records mediator lifecycle events as JSON lines; ``--metrics FILE``
  writes the metrics snapshot.
* ``trace FILE``      — run with mediator tracing on: event summary, space
  maxima, optional ``--timeline`` series and ``-o`` event export (JSON
  lines or ``--format chrome`` for Perfetto), and — on blame — the
  provenance trail of compositions that produced the failing mediator.
* ``compile FILE``    — lower to λS bytecode; print the disassembly and
  constant pool (``--ir register`` prints the packed register streams
  instead), or with ``-o IMAGE.gradb`` serialize a versioned binary image
  (``--ir register`` embeds the register streams too, so the image runs on
  the rvm engine; ``--semantics threesome`` pre-interns labeled types;
  ``-O`` selects the optimizer level).  Given an existing ``.gradb`` file,
  prints its provenance and disassembly.
* ``batch PATH...``   — compile a corpus (directories of ``*.grad``,
  manifest files, or programs) once, through the compile cache, and run it
  across a fault-tolerant worker pool (a worker killed mid-program yields
  a ``worker-lost`` error record, never a hang), streaming one JSON line
  per program plus an aggregate line.
* ``serve``           — run the persistent evaluation service: an asyncio
  front end (newline-delimited JSON over TCP or ``--socket``) over the
  same worker pool, keeping interned mediator tables and hot ``.gradb``
  images warm across requests.  Per-request fuel and wall-clock deadlines,
  bounded admission with ``overloaded`` shedding, worker recycling, crash
  retry, graceful SIGTERM drain, and deterministic fault injection via
  ``REPRO_GRADUAL_FAULTS``.
* ``check FILE``      — static gradual type checking only.
* ``translate FILE``  — print the elaborated λB term, or its λC / λS translation.
* ``space N``         — reproduce the space-efficiency experiment for the
  even/odd boundary workload at size ``N`` on all three machines.

Exit codes (uniform across subcommands): **0** — the program ran to a value
(or the subcommand succeeded); **1** — evaluation allocated blame; **2** — a
static error (file not found, parse error, ill-typed program, bad
engine/calculus/mediator combination, unreadable image); **3** — evaluation
timed out (fuel exhausted).  ``batch`` reports the most severe per-program
outcome: static error (2), then timeout (3), then blame (1), then value (0).
Errors are single-line diagnostics on stderr carrying source locations when
the front end provides them.

Example::

    repro-gradual run examples/programs/square.grad --calculus S --show-space
    repro-gradual compile examples/programs/square.grad -O2 -o square.gradb
    repro-gradual run square.gradb --show-space
    repro-gradual batch examples/programs --workers 4
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.errors import ParseError, ReproError, TypeCheckError
from .core.pretty import term_to_str
from .gen.programs import even_odd_boundary
from .machine import run_on_machine
from .api import run
from .semantics import NATURAL_SEMANTICS_NAMES, SEMANTICS_NAMES
from .surface.cast_insertion import elaborate_program
from .surface.parser import parse_program
from .translate import b_to_c, b_to_s

#: The uniform exit-code scheme (documented in ``--help`` and the README).
EXIT_VALUE = 0
EXIT_BLAME = 1
EXIT_STATIC_ERROR = 2
EXIT_TIMEOUT = 3

_OUTCOME_EXIT_CODES = {"value": EXIT_VALUE, "blame": EXIT_BLAME, "timeout": EXIT_TIMEOUT}


def _resolve_semantics(args: argparse.Namespace) -> str | None:
    """The requested enforcement semantics, or ``None`` if neither flag was
    given.  ``--mediator`` survives as a deprecated alias of ``--semantics``
    (it predates the Transient/Erasure backends and names the two Natural
    representations only); using it warns on stderr.  The reconciliation
    itself lives in :func:`repro.api.reconcile_semantics` — the single shim
    site — with the CLI supplying the stderr spelling and the
    contradiction-is-an-error policy."""
    from .api import reconcile_semantics

    def emit(_mediator: str) -> None:
        print(
            "warning: --mediator is deprecated; use --semantics "
            f"{{{','.join(SEMANTICS_NAMES)}}} instead",
            file=sys.stderr,
        )

    return reconcile_semantics(getattr(args, "semantics", None),
                               getattr(args, "mediator", None),
                               emit=emit, conflict="error")


def _load_program(path: str):
    source = Path(path).read_text()
    return parse_program(source)


def _is_image(path: str) -> bool:
    """Is ``path`` a serialized ``.gradb`` image (by suffix or magic)?"""
    from .compiler import GRADB_MAGIC, GRADB_SUFFIX

    if path.endswith(GRADB_SUFFIX):
        return True
    try:
        with open(path, "rb") as handle:
            return handle.read(len(GRADB_MAGIC)) == GRADB_MAGIC
    except OSError:
        return False


def _print_result(result, show_space: bool) -> int:
    print(result)
    if show_space and result.space_stats is not None:
        stats = result.space_stats
        print(
            "space: pending-mediators max={max_pending_mediators} "
            "pending-size max={max_pending_size} kont-depth max={max_kont_depth} "
            "steps={steps}".format(**stats)
        )
    return _OUTCOME_EXIT_CODES[result.kind]


def _emit_profile(counts: dict | None, result, engine: str, metrics=None) -> None:
    """Dump one JSON object of dispatch counts, inline-cache hit rates, the
    space profile, and the metrics snapshot to stderr — stderr so it composes
    with the result (and exit code) on stdout.

    ``counts`` is ``None`` for the machine engine, which has no bytecode:
    the ``dispatches``/``opcodes`` keys are the only VM-specific part of the
    profile; space counters and pipeline phases apply to every engine.
    """
    import json

    profile: dict = {"engine": engine}
    if counts is not None:
        if engine == "rvm":
            from .compiler.regalloc import R_OPCODE_NAMES as names
        else:
            from .compiler.bytecode import OPCODE_NAMES as names
        profile["dispatches"] = sum(counts.values())
        profile["opcodes"] = {
            names[op]: n
            for op, n in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        }
    stats = result.space_stats or {}
    if counts is not None:
        hits = stats.get("cache_hits", 0)
        misses = stats.get("cache_misses", 0)
        consults = hits + misses
        profile["inline_cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / consults, 4) if consults else None,
        }
    profile["space"] = {k: v for k, v in stats.items() if isinstance(v, int)}
    if metrics is not None:
        profile["metrics"] = metrics.snapshot()
    print(json.dumps(profile), file=sys.stderr, flush=True)


def _write_metrics(metrics, path: str) -> None:
    """Write a metrics snapshot as one JSON object to ``path``."""
    import json

    with open(path, "w") as handle:
        json.dump(metrics.snapshot(), handle, sort_keys=True)
        handle.write("\n")


def _run_image(args: argparse.Namespace) -> int:
    """Run a serialized image directly: no parsing, no lowering, no cache.

    An image fixes its calculus (λS), engine (vm for stack images, rvm for
    register images), mediator backend, and optimization level at compile
    time, so passing any of those flags alongside an image is a
    contradiction — rejected rather than silently ignored (a user comparing
    engines must not get VM results labeled as the machine's).
    """
    from .api import _from_machine_outcome
    from .compiler import load_image, run_code, run_rcode
    from .core.errors import UsageError
    from .core.fuel import DEFAULT_RVM_FUEL, DEFAULT_VM_FUEL

    image = load_image(args.file)
    info = image.info
    engine = "rvm" if info.ir == "register" else "vm"
    fixed = {
        "--engine": args.engine not in (None, engine),
        "--calculus": args.calculus is not None,
        "--semantics": args.semantics is not None,
        "--mediator": args.mediator is not None,
        "-O/--opt-level": args.opt_level is not None,
        "--small-step": args.small_step,
    }
    offending = [flag for flag, given in fixed.items() if given]
    if offending:
        raise UsageError(
            f"{', '.join(offending)} cannot apply to a compiled .gradb image: "
            f"its engine ({engine}), calculus (S), semantics, and -O level were "
            "fixed at compile time (see `repro-gradual compile IMAGE` for its "
            "provenance)"
        )
    counts: dict | None = {} if args.profile else None
    metrics = None
    if args.profile or args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    from .obs.metrics import phase, record_run

    with _maybe_tracing(args.trace, args.file):
        if engine == "rvm":
            fuel = args.fuel if args.fuel is not None else DEFAULT_RVM_FUEL
            with phase(metrics, "run"):
                outcome = run_rcode(image.rcode, fuel, opcode_counts=counts)
        else:
            fuel = args.fuel if args.fuel is not None else DEFAULT_VM_FUEL
            with phase(metrics, "run"):
                outcome = run_code(image.code, fuel, opcode_counts=counts)
    record_run(metrics, outcome.kind, outcome.stats, engine)
    result = _from_machine_outcome(outcome, info.static_type, "S", engine, info.mediator)
    if args.profile:
        _emit_profile(counts, result, engine, metrics)
    if args.metrics:
        _write_metrics(metrics, args.metrics)
    return _print_result(result, args.show_space)


def _maybe_tracing(trace_path: str | None, program: str):
    """A ``tracing`` context writing JSON lines to ``trace_path``, or a no-op."""
    from contextlib import nullcontext

    if trace_path is None:
        return nullcontext()
    from .obs import JsonLinesSink, tracing

    return tracing(JsonLinesSink(trace_path), program=program)


def _cmd_run(args: argparse.Namespace) -> int:
    if _is_image(args.file):
        return _run_image(args)
    source = Path(args.file).read_text()
    engine = "subst" if args.small_step else (args.engine or "machine")
    counts: dict | None = None
    if args.profile:
        if engine == "subst":
            from .core.errors import UsageError

            raise UsageError(
                "--profile reports dispatch and space counters, which engine "
                "'subst' has none of; use --engine vm, rvm, or machine"
            )
        if engine in ("vm", "rvm"):
            counts = {}
    metrics = None
    if args.profile or args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    result = run(
        source,
        calculus=args.calculus or "S",
        engine=engine,
        semantics=_resolve_semantics(args) or "coercion",
        fuel=args.fuel,
        opt_level=args.opt_level if args.opt_level is not None else 2,
        cache=not args.no_cache,
        trace=args.trace,
        metrics=metrics,
        opcode_counts=counts,
        program_name=args.file,
    )
    if args.profile:
        _emit_profile(counts, result, engine, metrics)
    if args.metrics:
        _write_metrics(metrics, args.metrics)
    return _print_result(result, args.show_space)


def _cmd_compile(args: argparse.Namespace) -> int:
    from .compiler import (
        compile_registers,
        compile_term,
        disassemble,
        disassemble_image,
        disassemble_registers,
        load_image,
        save_image,
        source_fingerprint,
    )

    if _is_image(args.file):
        from .core.errors import UsageError

        if args.output is not None:
            raise UsageError(
                "-o expects a source program to compile; "
                f"{args.file} is already a compiled image"
            )
        image = load_image(args.file)
        text = disassemble_image(image)
        if image.rcode is not None:
            text += "\n" + disassemble_registers(image.rcode)
        print(text)
        return EXIT_VALUE
    source = Path(args.file).read_text()
    term, ty = elaborate_program(parse_program(source))
    code = compile_term(term, mediator=_resolve_semantics(args) or "coercion",
                        opt_level=args.opt_level)
    if args.output is not None:
        save_image(code, args.output, source_hash=source_fingerprint(source),
                   static_type=ty, ir=args.ir)
        print(f"wrote {args.output}")
    elif args.ir == "register":
        print(disassemble_registers(compile_registers(code)))
    else:
        print(disassemble(code))
    return EXIT_VALUE


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from .batch import run_batch

    def emit(result: dict) -> None:
        print(json.dumps(result, sort_keys=True), flush=True)

    metrics = None
    if args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    trace_sink = None
    if args.trace:
        from .obs import JsonLinesSink

        trace_sink = JsonLinesSink(args.trace)
    results, aggregate = run_batch(
        args.paths,
        workers=args.workers,
        fuel=args.fuel,
        semantics=_resolve_semantics(args) or "coercion",
        opt_level=args.opt_level,
        use_cache=not args.no_cache,
        on_result=emit,
        metrics=metrics,
        trace_sink=trace_sink,
    )
    if args.metrics:
        _write_metrics(metrics, args.metrics)
    print(json.dumps({"aggregate": aggregate}, sort_keys=True), flush=True)
    outcomes = aggregate["outcomes"]
    if outcomes["error"]:
        return EXIT_STATIC_ERROR
    if outcomes["timeout"]:
        return EXIT_TIMEOUT
    if outcomes["blame"]:
        return EXIT_BLAME
    return EXIT_VALUE


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .serve.server import ServeConfig, serve

    config = ServeConfig(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        workers=args.workers,
        queue_limit=args.queue_limit,
        semantics=_resolve_semantics(args) or "coercion",
        opt_level=args.opt_level,
        engine=args.engine,
        fuel=args.fuel,
        deadline_s=args.deadline,
        use_cache=not args.no_cache,
        max_requests=args.max_requests,
        max_rss_mb=args.max_rss_mb,
        retries=args.retries,
        grace_s=args.grace,
        faults=args.faults,
    )

    def announce(ready: dict) -> None:
        print(json.dumps(ready, sort_keys=True), flush=True)

    return serve(config, announce=announce)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a program with mediator tracing on and report what the trace saw.

    Prints the result (stdout, same shape as ``run``), a one-line event
    summary, the space maxima, the timeline series with ``--timeline``, and
    — when the run allocated blame — the blame provenance trail: the chain
    of ``#``/``∘`` compositions that produced the failing mediator.  With
    ``-o`` the full event stream is also exported as JSON lines (default)
    or a Chrome trace-event array (``--format chrome``; open in Perfetto).
    Exit codes follow the ``run`` scheme.
    """
    import json
    from collections import Counter

    from .obs import (
        ChromeTraceSink,
        JsonLinesSink,
        ListSink,
        SpaceTimeline,
        TeeSink,
        blame_trail,
        format_trail,
    )

    source = Path(args.file).read_text()
    engine = args.engine or "machine"
    collector = ListSink()
    sink = collector
    if args.output is not None:
        exporter = (ChromeTraceSink(args.output) if args.format == "chrome"
                    else JsonLinesSink(args.output))
        sink = TeeSink([collector, exporter])
    timeline = None
    if args.timeline:
        timeline = SpaceTimeline(inner=sink)
        sink = timeline
    result = run(
        source,
        calculus=args.calculus or "S",
        engine=engine,
        semantics=_resolve_semantics(args) or "coercion",
        fuel=args.fuel,
        opt_level=args.opt_level if args.opt_level is not None else 2,
        cache=not args.no_cache,
        trace=sink,
        program_name=args.file,
    )
    print(result)
    events = collector.events
    kinds = Counter(event["ev"] for event in events)
    summary = " ".join(
        f"{kind}={kinds[kind]}"
        for kind in ("mediator", "install", "merge", "collapse", "apply", "blame")
        if kinds.get(kind)
    )
    print(f"trace: {len(events)} events" + (f" ({summary})" if summary else ""))
    if result.space_stats is not None:
        print(
            "space: pending-mediators max={max_pending_mediators} "
            "pending-size max={max_pending_size}".format(**result.space_stats)
        )
    if timeline is not None:
        print(f"timeline: {json.dumps(timeline.series(), sort_keys=True)}")
    trail = blame_trail(events)
    if trail is not None:
        print(format_trail(trail))
    if args.output is not None:
        print(f"wrote {args.output}", file=sys.stderr)
    return _OUTCOME_EXIT_CODES[result.kind]


def _cmd_check(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    _, ty = elaborate_program(program)  # TypeCheckError propagates to main()
    print(f"well typed : {ty}")
    return EXIT_VALUE


def _cmd_translate(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    term, _ = elaborate_program(program)
    if args.to == "b":
        print(term_to_str(term))
    elif args.to == "c":
        print(term_to_str(b_to_c(term)))
    else:
        print(term_to_str(b_to_s(term)))
    return EXIT_VALUE


def _cmd_space(args: argparse.Namespace) -> int:
    n = args.n
    print(f"even/odd boundary workload, n = {n}")
    print(f"{'calculus':>8} {'pending frames':>16} {'pending size':>14} {'kont depth':>12} {'steps':>10}")
    for calculus in ("B", "C", "S"):
        outcome = run_on_machine(even_odd_boundary(n), calculus)
        stats = outcome.stats
        print(
            f"{calculus:>8} {stats['max_pending_mediators']:>16} "
            f"{stats['max_pending_size']:>14} {stats['max_kont_depth']:>12} {stats['steps']:>10}"
        )
    return EXIT_VALUE


def _cmd_experiment(args: argparse.Namespace) -> int:
    """Rational-programmer blame evaluation over migration lattices.

    Emits one JSON line per trail (stdout, or ``--output``) followed by the
    aggregate report (``{"aggregate": ...}``); ``--report`` additionally
    writes the aggregate to a file.  Exit code 0 when every trail ran, 2
    for usage errors (unknown semantics, no programs).
    """
    import json
    from pathlib import Path

    from .core.errors import UsageError
    from .experiment import ExperimentConfig, run_experiment

    programs: list[tuple[str, str]] = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.glob("*.grad"))
        else:
            files = [path]
        for file in files:
            programs.append((str(file), file.read_text()))
    if args.generate:
        from .gen import generate_corpus

        programs.extend(
            generate_corpus(args.generate, seed=args.seed, bindings=args.bindings)
        )
    if not programs:
        raise UsageError("experiment needs .grad paths and/or --generate N")

    semantics = tuple(s.strip() for s in args.semantics.split(",") if s.strip())
    config = ExperimentConfig(
        semantics=semantics,
        engine=args.engine,
        opt_level=args.opt_level,
        fuel=args.fuel,
        workers=args.workers,
        max_configs=args.max_configs,
        starts_per_fault=args.starts,
        faults_per_program=args.faults_per_program,
        seed=args.seed,
    )

    out = open(args.output, "w") if args.output else sys.stdout

    def emit(record: dict) -> None:
        print(json.dumps(record, sort_keys=True), file=out, flush=True)

    try:
        _, report = run_experiment(programs, config, emit=emit)
    finally:
        if out is not sys.stdout:
            out.close()
    print(json.dumps({"aggregate": report}, sort_keys=True), flush=True)
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
    return EXIT_VALUE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gradual",
        description="Gradually typed language toolchain from 'Blame and Coercion' (PLDI 2015).",
        epilog="exit codes: 0 value, 1 blame, 2 static/parse error, 3 timeout",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="run a gradual program",
        epilog="exit codes: 0 value, 1 blame, 2 static/parse error, 3 timeout",
    )
    run_parser.add_argument("file")
    # Defaults are resolved in _cmd_run (None = not passed), so running a
    # compiled image can reject flags the image has already fixed.
    run_parser.add_argument("--calculus", choices=["B", "C", "S", "b", "c", "s"], default=None,
                            help="calculus to evaluate (default S)")
    run_parser.add_argument("--engine", choices=["vm", "rvm", "machine", "subst"], default=None,
                            help="execution engine: the CEK machine (default), the λS "
                                 "stack bytecode VM, the register VM (packed-stream "
                                 "dispatch; fastest), or the substitution-based "
                                 "reference oracle")
    run_parser.add_argument("--semantics", choices=list(SEMANTICS_NAMES), default=None,
                            help="enforcement semantics of the λS machine/VM: coercion "
                                 "(Natural via canonical coercions merged with #, the "
                                 "default), threesome (Natural via labeled types merged "
                                 "with ∘), transient (shallow tag checks; blame labels "
                                 "may differ from Natural), or erasure (no enforcement; "
                                 "never exits 1)")
    run_parser.add_argument("--mediator", choices=list(NATURAL_SEMANTICS_NAMES), default=None,
                            help="deprecated alias for --semantics (Natural backends "
                                 "only; warns on stderr)")
    run_parser.add_argument("--small-step", action="store_true",
                            help="alias for --engine subst (the paper-faithful small-step reducer)")
    run_parser.add_argument("-O", "--opt-level", type=int, choices=[0, 1, 2], default=None,
                            help="bytecode optimizer level for the vm engine: 0 none, "
                                 "1 static coercion elision + pre-composition, "
                                 "2 (default) superinstructions + inline mediator caches")
    run_parser.add_argument("--show-space", action="store_true", help="print space statistics")
    run_parser.add_argument("--profile", action="store_true",
                            help="dump dispatch counts (vm/rvm), inline-mediator-cache "
                                 "hit rates, the space profile, and pipeline-phase "
                                 "timings as one JSON object on stderr (vm, rvm, and "
                                 "machine engines)")
    run_parser.add_argument("--trace", default=None, metavar="FILE",
                            help="record mediator lifecycle events (install/merge/"
                                 "collapse/apply/blame) as JSON lines into FILE; "
                                 "the traced outcome is bit-identical to an untraced run")
    run_parser.add_argument("--metrics", default=None, metavar="FILE",
                            help="write a metrics snapshot (counters, gauges, "
                                 "histograms, phase timings) as JSON into FILE")
    run_parser.add_argument("--fuel", type=int, default=None)
    run_parser.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk compile cache (vm/rvm engines; "
                                 "other engines never cache)")
    run_parser.set_defaults(handler=_cmd_run)

    trace_parser = sub.add_parser(
        "trace", help="run a program with mediator tracing and show the trace",
        epilog="exit codes: 0 value, 1 blame, 2 static/parse error, 3 timeout",
    )
    trace_parser.add_argument("file")
    trace_parser.add_argument("--calculus", choices=["B", "C", "S", "b", "c", "s"],
                              default=None, help="calculus to evaluate (default S)")
    trace_parser.add_argument("--engine", choices=["vm", "rvm", "machine"], default=None,
                              help="execution engine (default machine; the subst "
                                   "oracle has no mediator hooks and cannot trace)")
    trace_parser.add_argument("--semantics", choices=list(SEMANTICS_NAMES), default=None,
                              help="enforcement semantics to trace under (default coercion)")
    trace_parser.add_argument("--mediator", choices=list(NATURAL_SEMANTICS_NAMES),
                              default=None,
                              help="deprecated alias for --semantics")
    trace_parser.add_argument("-O", "--opt-level", type=int, choices=[0, 1, 2],
                              default=None)
    trace_parser.add_argument("--format", choices=["jsonl", "chrome"], default="jsonl",
                              help="export format for -o: JSON lines (default) or a "
                                   "Chrome trace-event array for chrome://tracing "
                                   "or Perfetto")
    trace_parser.add_argument("-o", "--output", default=None, metavar="FILE",
                              help="export the full event stream here")
    trace_parser.add_argument("--timeline", action="store_true",
                              help="print the steps × pending-mediators space "
                                   "timeline series as JSON")
    trace_parser.add_argument("--fuel", type=int, default=None)
    trace_parser.add_argument("--no-cache", action="store_true")
    trace_parser.set_defaults(handler=_cmd_trace)

    compile_parser = sub.add_parser(
        "compile", help="lower a program to λS bytecode: print the disassembly "
                        "or write a serialized .gradb image"
    )
    compile_parser.add_argument("file")
    compile_parser.add_argument("--semantics", choices=list(SEMANTICS_NAMES), default=None,
                                help="enforcement semantics of the mediator pool: interned "
                                     "canonical coercions (coercion, the default), "
                                     "pre-translated threesomes, transient tag checks, or "
                                     "the erased no-op token")
    compile_parser.add_argument("--mediator", choices=list(NATURAL_SEMANTICS_NAMES),
                                default=None,
                                help="deprecated alias for --semantics")
    compile_parser.add_argument("-O", "--opt-level", type=int, choices=[0, 1, 2], default=2,
                                help="optimizer level to disassemble at (default 2; "
                                     "compare against -O0 to see the rewrites)")
    compile_parser.add_argument("--ir", choices=["stack", "register"], default="stack",
                                help="instruction representation: the stack bytecode "
                                     "(default) or the packed register streams the rvm "
                                     "engine executes (-o images carry both IRs' code "
                                     "when register)")
    compile_parser.add_argument("-o", "--output", default=None, metavar="IMAGE",
                                help="serialize a versioned binary .gradb image here "
                                     "instead of printing the disassembly")
    compile_parser.set_defaults(handler=_cmd_compile)

    batch_parser = sub.add_parser(
        "batch", help="compile a corpus once and run it across a worker pool",
        epilog="per-program results stream as JSON lines, then one aggregate line; "
               "exit code is the most severe outcome (2 error, 3 timeout, 1 blame, 0 value)",
    )
    batch_parser.add_argument("paths", nargs="+", metavar="PATH",
                              help="directories of *.grad programs, manifest files "
                                   "(one path per line), or program files")
    batch_parser.add_argument("--workers", type=int, default=1,
                              help="multiprocessing pool size (default 1: run inline)")
    batch_parser.add_argument("--semantics", choices=list(SEMANTICS_NAMES), default=None,
                              help="enforcement semantics to compile and run the corpus "
                                   "under (default coercion)")
    batch_parser.add_argument("--mediator", choices=list(NATURAL_SEMANTICS_NAMES),
                              default=None,
                              help="deprecated alias for --semantics")
    batch_parser.add_argument("-O", "--opt-level", type=int, choices=[0, 1, 2], default=2)
    batch_parser.add_argument("--fuel", type=int, default=None)
    batch_parser.add_argument("--no-cache", action="store_true",
                              help="bypass the on-disk compile cache")
    batch_parser.add_argument("--trace", default=None, metavar="FILE",
                              help="trace every program's run into FILE as JSON "
                                   "lines (forces inline execution: the tracer "
                                   "cannot span a worker pool)")
    batch_parser.add_argument("--metrics", default=None, metavar="FILE",
                              help="write the batch metrics snapshot (outcome/cache "
                                   "counters, per-program timing histograms) as "
                                   "JSON into FILE; the same snapshot is embedded "
                                   "in the aggregate line")
    batch_parser.set_defaults(handler=_cmd_batch)

    serve_parser = sub.add_parser(
        "serve", help="run the persistent evaluation service",
        epilog="prints one JSON 'ready' line (pid + bound address) when "
               "listening; SIGTERM drains gracefully (exit 0), a second "
               "SIGTERM force-exits 1",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="TCP port (default 0: pick an ephemeral port, "
                                   "reported in the ready line)")
    serve_parser.add_argument("--socket", default=None, metavar="PATH",
                              help="serve on a Unix socket at PATH instead of TCP")
    serve_parser.add_argument("--workers", type=int, default=1,
                              help="persistent worker processes (default 1)")
    serve_parser.add_argument("--queue-limit", type=int, default=16,
                              help="max admitted run requests before shedding "
                                   "with the 'overloaded' outcome (default 16)")
    serve_parser.add_argument("--engine", choices=["vm", "rvm"], default="vm",
                              help="default engine for requests that name none")
    serve_parser.add_argument("--semantics", choices=list(SEMANTICS_NAMES), default=None,
                              help="default enforcement semantics (default coercion)")
    serve_parser.add_argument("--mediator", choices=list(NATURAL_SEMANTICS_NAMES),
                              default=None,
                              help="deprecated alias for --semantics")
    serve_parser.add_argument("-O", "--opt-level", type=int, choices=[0, 1, 2], default=2)
    serve_parser.add_argument("--fuel", type=int, default=None,
                              help="default per-request fuel (engine steps before "
                                   "a timeout outcome)")
    serve_parser.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                              help="default per-request wall-clock deadline "
                                   "(cooperative cancellation to a timeout outcome)")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="bypass the on-disk compile cache")
    serve_parser.add_argument("--max-requests", type=int, default=0,
                              help="recycle a worker after this many requests "
                                   "(0 = never; warm state re-seeds from the "
                                   "compile cache)")
    serve_parser.add_argument("--max-rss-mb", type=int, default=0,
                              help="recycle a worker whose RSS exceeds this "
                                   "(0 = never)")
    serve_parser.add_argument("--retries", type=int, default=2,
                              help="re-dispatches after a worker crash before the "
                                   "request fails as worker-lost (default 2)")
    serve_parser.add_argument("--grace", type=float, default=5.0, metavar="SECONDS",
                              help="wall-clock slack past a request's deadline "
                                   "before the worker is presumed hung and killed")
    serve_parser.add_argument("--faults", default=None, metavar="SPEC",
                              help="fault-injection spec site:prob[:limit],... "
                                   "(default: $REPRO_GRADUAL_FAULTS); sites: "
                                   "worker_kill, slow_compile, torn_write")
    serve_parser.set_defaults(handler=_cmd_serve)

    check_parser = sub.add_parser("check", help="gradually type check a program")
    check_parser.add_argument("file")
    check_parser.set_defaults(handler=_cmd_check)

    translate_parser = sub.add_parser("translate", help="print a program's cast/coercion form")
    translate_parser.add_argument("file")
    translate_parser.add_argument("--to", choices=["b", "c", "s"], default="b")
    translate_parser.set_defaults(handler=_cmd_translate)

    space_parser = sub.add_parser("space", help="run the space-efficiency experiment")
    space_parser.add_argument("n", type=int, nargs="?", default=1000)
    space_parser.set_defaults(handler=_cmd_space)

    experiment_parser = sub.add_parser(
        "experiment",
        help="rational-programmer blame evaluation over migration lattices",
        epilog=(
            "plants type-level faults, follows blame labels across typed/untyped "
            "splits of each program's bindings, and reports localization rates "
            "and trail lengths per enforcement semantics"
        ),
    )
    experiment_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=".grad files or directories of .grad programs")
    experiment_parser.add_argument(
        "--generate", type=int, default=0, metavar="N",
        help="add N seeded generated programs to the corpus")
    experiment_parser.add_argument(
        "--bindings", type=int, default=5,
        help="definitions per generated program (lattice size 2^bindings)")
    experiment_parser.add_argument(
        "--semantics", default="coercion,threesome,transient,erasure",
        metavar="LIST", help="comma-separated enforcement semantics to sweep "
        "(erasure is the null baseline)")
    experiment_parser.add_argument(
        "--workers", type=int, default=2,
        help="worker-pool processes (0 runs inline in-process)")
    experiment_parser.add_argument(
        "--engine", choices=["vm", "rvm"], default="vm")
    experiment_parser.add_argument(
        "-O", "--opt-level", type=int, choices=[0, 1, 2], default=2)
    experiment_parser.add_argument("--fuel", type=int, default=200_000)
    experiment_parser.add_argument(
        "--max-configs", type=int, default=64,
        help="lattice cutoff: enumerate fully below, sample above")
    experiment_parser.add_argument(
        "--starts", type=int, default=4,
        help="trail starting configurations per fault")
    experiment_parser.add_argument(
        "--faults-per-program", type=int, default=4)
    experiment_parser.add_argument("--seed", type=int, default=0)
    experiment_parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write per-trail JSON lines here instead of stdout")
    experiment_parser.add_argument(
        "--report", default=None, metavar="FILE",
        help="also write the aggregate report to FILE as JSON")
    experiment_parser.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, dispatch, and map every failure to the exit-code scheme.

    All static failures — unreadable files, parse errors (which carry
    line/column), type errors (which carry source locations), and invalid
    engine/calculus/mediator combinations — are caught uniformly here and
    reported as one-line diagnostics on stderr with exit code 2.  Dynamic
    outcomes (blame = 1, timeout = 3) are exit codes, not exceptions.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_STATIC_ERROR
    except TypeCheckError as exc:
        print(f"static type error: {exc}", file=sys.stderr)
        return EXIT_STATIC_ERROR
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename}", file=sys.stderr)
        return EXIT_STATIC_ERROR
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_STATIC_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
