"""repro — a reproduction of "Blame and Coercion: Together Again for the First Time".

The package provides three calculi for gradual typing and the translations
between them:

* :mod:`repro.lambda_b` — the blame calculus λB (casts with blame labels);
* :mod:`repro.lambda_c` — the coercion calculus λC (Henglein coercions);
* :mod:`repro.lambda_s` — the space-efficient coercion calculus λS
  (canonical coercions with the composition operator ``#``);
* :mod:`repro.translate` — the translations ``|·|BC``, ``|·|CB``, ``|·|CS``,
  ``|·|SC`` and ``|·|BS``;
* :mod:`repro.core` — types, blame labels, subtyping, the shared term AST;
* :mod:`repro.surface` — a gradually typed surface language with cast
  insertion into λB;
* :mod:`repro.machine` — CEK-style abstract machines with space profiling;
* :mod:`repro.properties` — executable checkers for the paper's metatheory;
* :mod:`repro.threesomes`, :mod:`repro.supercoercions` — the related-work
  baselines of Section 6;
* :mod:`repro.gen` — random generators for property tests and benchmarks.

Quickstart::

    from repro import surface, lambda_b, translate, lambda_s

    program = surface.parse("((lambda ([x : int]) (* x x)) (: 7 ?))")
    cast_term = surface.insert_casts(program)
    print(lambda_b.run(cast_term))                     # runs in λB
    print(lambda_s.run(translate.b_to_s(cast_term)))   # runs space-efficiently in λS
"""

from . import (
    api,
    core,
    gen,
    lambda_b,
    lambda_c,
    lambda_s,
    machine,
    properties,
    supercoercions,
    surface,
    threesomes,
    translate,
)
from .api import RunConfig, RunResult, resolve_config, run
from .core import (
    BOOL,
    DYN,
    INT,
    STR,
    UNIT,
    BaseType,
    FunType,
    Label,
    ProdType,
    Type,
    label,
)

__version__ = "0.7.0"

__all__ = [
    "api",
    "core",
    "gen",
    "lambda_b",
    "lambda_c",
    "lambda_s",
    "machine",
    "properties",
    "supercoercions",
    "surface",
    "threesomes",
    "translate",
    "BOOL",
    "DYN",
    "INT",
    "STR",
    "UNIT",
    "BaseType",
    "FunType",
    "Label",
    "ProdType",
    "RunConfig",
    "RunResult",
    "Type",
    "label",
    "resolve_config",
    "run",
    "__version__",
]
