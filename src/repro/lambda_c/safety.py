"""Blame safety for λC (Figure 3, Proposition 5).

The definition is "pleasingly simple": a coercion is safe for ``q`` if it
does not mention label ``q``; a term is safe for ``q`` when every coercion in
it is, and it does not already contain ``blame q``.
"""

from __future__ import annotations

from ..core.labels import Label
from ..core.terms import Blame, Coerce, Term, subterms
from .coercions import coercion_safe_for, labels_of


def term_safe_for(term: Term, q: Label) -> bool:
    """The judgement ``M safe q`` for λC terms."""
    for sub in subterms(term):
        if isinstance(sub, Coerce) and not coercion_safe_for(sub.coercion, q):
            return False
        if isinstance(sub, Blame) and sub.label == q:
            return False
    return True


def mentioned_labels(term: Term) -> set[Label]:
    """All blame labels mentioned by coercions or blame nodes in a term."""
    result: set[Label] = set()
    for sub in subterms(term):
        if isinstance(sub, Coerce):
            result |= labels_of(sub.coercion)
        elif isinstance(sub, Blame):
            result.add(sub.label)
    return result


def safe_labels_among(term: Term, labels) -> set[Label]:
    return {q for q in labels if term_safe_for(term, q)}
