"""Syntax of the coercion calculus λC (Figure 3): values and well-formedness.

λC terms are the shared terms plus coercion applications ``M⟨c⟩`` where ``c``
is a λC coercion; casts are *not* λC terms.  Values are::

    V, W ::= k | λx:A.N | V⟨c → d⟩ | V⟨G!⟩ | V⟨c × d⟩ | (V, W)
"""

from __future__ import annotations

from ..core.terms import (
    Blame,
    Cast,
    Coerce,
    Const,
    Lam,
    Pair,
    Term,
    subterms,
)
from .coercions import Coercion, FunCoercion, Inject, ProdCoercion


def is_lambda_c_term(term: Term) -> bool:
    """Does ``term`` use only λC constructors (no casts, only λC coercions)?"""
    for sub in subterms(term):
        if isinstance(sub, Cast):
            return False
        if isinstance(sub, Coerce) and not isinstance(sub.coercion, Coercion):
            return False
    return True


def is_value(term: Term) -> bool:
    """Is ``term`` a λC value?"""
    if isinstance(term, (Const, Lam)):
        return True
    if isinstance(term, Pair):
        return is_value(term.left) and is_value(term.right)
    if isinstance(term, Coerce):
        if not is_value(term.subject):
            return False
        return isinstance(term.coercion, (FunCoercion, ProdCoercion, Inject))
    return False


def is_uncoerced_value(term: Term) -> bool:
    """A value with no top-level coercion."""
    return is_value(term) and not isinstance(term, Coerce)


def coercions_in(term: Term) -> list[Coercion]:
    """All coercions applied anywhere in a term."""
    return [t.coercion for t in subterms(term) if isinstance(t, Coerce)]


def blames_in(term: Term) -> list[Blame]:
    return [t for t in subterms(term) if isinstance(t, Blame)]
