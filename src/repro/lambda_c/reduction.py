"""Small-step reduction for the coercion calculus λC (Figure 3).

The rules, with ``V`` ranging over values::

    V⟨id_A⟩            →  V
    (V⟨c → d⟩) W       →  (V (W⟨c⟩))⟨d⟩
    V⟨G!⟩⟨G?p⟩         →  V
    V⟨G!⟩⟨H?p⟩         →  blame p            (G ≠ H)
    V⟨c ; d⟩           →  V⟨c⟩⟨d⟩
    V⟨⊥GpH⟩            →  blame p
    E[blame p]         →  blame p            (E ≠ □)

plus the standard rules and the product extension (``fst``/``snd`` push the
component coercion through a product-coercion proxy).

The congruence structure (evaluation contexts) is *identical* to λB's, which
is what makes the translation ``|·|BC`` a lockstep bisimulation
(Proposition 11) — one step here corresponds to exactly one step there.
"""

from __future__ import annotations

from typing import Iterator

from ..core.errors import EvaluationError, StuckError
from ..core.labels import Label
from ..core.ops import op_spec
from ..core.terms import (
    App,
    Blame,
    Coerce,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
    free_vars,
    fresh_name,
    subst,
)
from ..lambda_b.reduction import DEFAULT_FUEL, Outcome
from .coercions import (
    Fail,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
)
from .syntax import is_value


# ---------------------------------------------------------------------------
# Evaluation contexts
# ---------------------------------------------------------------------------


def _active_child(term: Term) -> Term | None:
    """The eval-position child of ``term`` that is not yet a value (if any)."""
    if isinstance(term, Op):
        for arg in term.args:
            if not is_value(arg):
                return arg
        return None
    if isinstance(term, App):
        if not is_value(term.fun):
            return term.fun
        if not is_value(term.arg):
            return term.arg
        return None
    if isinstance(term, Coerce):
        return None if is_value(term.subject) else term.subject
    if isinstance(term, If):
        return None if is_value(term.cond) else term.cond
    if isinstance(term, Let):
        return None if is_value(term.bound) else term.bound
    if isinstance(term, Fix):
        return None if is_value(term.fun) else term.fun
    if isinstance(term, Pair):
        if not is_value(term.left):
            return term.left
        if not is_value(term.right):
            return term.right
        return None
    if isinstance(term, (Fst, Snd)):
        return None if is_value(term.arg) else term.arg
    return None


def blame_in_evaluation_position(term: Term) -> Label | None:
    """If ``term`` decomposes as ``E[blame p]`` with ``E ≠ □``, return ``p``."""
    current = term
    while True:
        child = _active_child(current)
        if child is None:
            return None
        if isinstance(child, Blame):
            return child.label
        current = child


# ---------------------------------------------------------------------------
# Top-level reduction rules
# ---------------------------------------------------------------------------


def _reduce_coerce(term: Coerce) -> Term:
    """Reduce a coercion application whose subject is a value."""
    value, coercion = term.subject, term.coercion

    if isinstance(coercion, Identity):
        return value

    if isinstance(coercion, Sequence):
        return Coerce(Coerce(value, coercion.first), coercion.second)

    if isinstance(coercion, Fail):
        return Blame(coercion.label)

    if isinstance(coercion, Project):
        if isinstance(value, Coerce) and isinstance(value.coercion, Inject):
            if value.coercion.ground == coercion.ground:
                return value.subject
            return Blame(coercion.label)
        raise StuckError(f"projection applied to a non-injected value: {term}")

    # Function, product, and injection coercions over values are themselves
    # values and never reach this point.
    raise StuckError(f"no coercion rule applies to {term}")


def _reduce_redex(term: Term) -> Term:
    if isinstance(term, Op):
        spec = op_spec(term.op)
        operands = []
        for arg in term.args:
            if not isinstance(arg, Const):
                raise StuckError(f"operator {term.op!r} applied to a non-constant: {arg}")
            operands.append(arg.value)
        return Const(spec.apply(operands), spec.result_type)

    if isinstance(term, App):
        fun, arg = term.fun, term.arg
        if isinstance(fun, Lam):
            return subst(fun.body, fun.param, arg)
        if isinstance(fun, Coerce) and isinstance(fun.coercion, FunCoercion):
            coercion = fun.coercion
            return Coerce(App(fun.subject, Coerce(arg, coercion.dom)), coercion.cod)
        raise StuckError(f"application of a non-function value: {term}")

    if isinstance(term, Coerce):
        return _reduce_coerce(term)

    if isinstance(term, If):
        if isinstance(term.cond, Const) and isinstance(term.cond.value, bool):
            return term.then_branch if term.cond.value else term.else_branch
        raise StuckError(f"if-condition is not a boolean constant: {term.cond}")

    if isinstance(term, Let):
        return subst(term.body, term.name, term.bound)

    if isinstance(term, Fix):
        fun_type = term.fun_type
        param = fresh_name("x", free_vars(term.fun))
        unrolled = Lam(param, fun_type.dom, App(Fix(term.fun, fun_type), Var(param)))
        return App(term.fun, unrolled)

    if isinstance(term, Fst):
        target = term.arg
        if isinstance(target, Pair):
            return target.left
        if isinstance(target, Coerce) and isinstance(target.coercion, ProdCoercion):
            return Coerce(Fst(target.subject), target.coercion.left)
        raise StuckError(f"fst of a non-pair value: {term}")

    if isinstance(term, Snd):
        target = term.arg
        if isinstance(target, Pair):
            return target.right
        if isinstance(target, Coerce) and isinstance(target.coercion, ProdCoercion):
            return Coerce(Snd(target.subject), target.coercion.right)
        raise StuckError(f"snd of a non-pair value: {term}")

    if isinstance(term, Var):
        raise StuckError(f"free variable during evaluation: {term.name}")

    raise StuckError(f"no reduction rule applies to {term}")


def _step_inner(term: Term) -> Term:
    if isinstance(term, Op):
        for index, arg in enumerate(term.args):
            if not is_value(arg):
                new_args = list(term.args)
                new_args[index] = _step_inner(arg)
                return Op(term.op, tuple(new_args))
        return _reduce_redex(term)
    if isinstance(term, App):
        if not is_value(term.fun):
            return App(_step_inner(term.fun), term.arg)
        if not is_value(term.arg):
            return App(term.fun, _step_inner(term.arg))
        return _reduce_redex(term)
    if isinstance(term, Coerce):
        if not is_value(term.subject):
            return Coerce(_step_inner(term.subject), term.coercion)
        return _reduce_redex(term)
    if isinstance(term, If):
        if not is_value(term.cond):
            return If(_step_inner(term.cond), term.then_branch, term.else_branch)
        return _reduce_redex(term)
    if isinstance(term, Let):
        if not is_value(term.bound):
            return Let(term.name, _step_inner(term.bound), term.body)
        return _reduce_redex(term)
    if isinstance(term, Fix):
        if not is_value(term.fun):
            return Fix(_step_inner(term.fun), term.fun_type)
        return _reduce_redex(term)
    if isinstance(term, Pair):
        if not is_value(term.left):
            return Pair(_step_inner(term.left), term.right)
        if not is_value(term.right):
            return Pair(term.left, _step_inner(term.right))
        raise StuckError("a pair of values is a value; no step")
    if isinstance(term, Fst):
        if not is_value(term.arg):
            return Fst(_step_inner(term.arg))
        return _reduce_redex(term)
    if isinstance(term, Snd):
        if not is_value(term.arg):
            return Snd(_step_inner(term.arg))
        return _reduce_redex(term)
    return _reduce_redex(term)


def step(term: Term) -> Term | None:
    """Perform one λC reduction step (``None`` when ``term`` is a value or blame)."""
    if is_value(term) or isinstance(term, Blame):
        return None
    label = blame_in_evaluation_position(term)
    if label is not None:
        return Blame(label)
    return _step_inner(term)


# ---------------------------------------------------------------------------
# Multi-step evaluation
# ---------------------------------------------------------------------------


def trace(term: Term, fuel: int = DEFAULT_FUEL) -> Iterator[Term]:
    current = term
    yield current
    for _ in range(fuel):
        nxt = step(current)
        if nxt is None:
            return
        current = nxt
        yield current


def run(term: Term, fuel: int = DEFAULT_FUEL) -> Outcome:
    """Evaluate a λC term for at most ``fuel`` steps and report the outcome."""
    current = term
    for steps in range(fuel + 1):
        if isinstance(current, Blame):
            return Outcome("blame", label=current.label, steps=steps)
        if is_value(current):
            return Outcome("value", term=current, steps=steps)
        nxt = step(current)
        if nxt is None:  # pragma: no cover - unreachable for well-typed terms
            raise EvaluationError(f"term neither value nor blame yet has no step: {current}")
        current = nxt
    return Outcome("timeout", term=current, steps=fuel)
