"""λC — the coercion calculus of Figure 3 (Henglein's coercions with blame)."""

from .coercions import (
    Coercion,
    Fail,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
    check_coercion,
    coercion_safe_for,
    coercion_source,
    coercion_target,
    height,
    identity,
    labels_of,
    sequence,
    size,
)
from .reduction import run, step, trace
from .safety import mentioned_labels, term_safe_for
from .syntax import coercions_in, is_lambda_c_term, is_value
from .typecheck import check, type_of, well_typed

__all__ = [
    "Coercion",
    "Fail",
    "FunCoercion",
    "Identity",
    "Inject",
    "ProdCoercion",
    "Project",
    "Sequence",
    "check_coercion",
    "coercion_safe_for",
    "coercion_source",
    "coercion_target",
    "height",
    "identity",
    "labels_of",
    "sequence",
    "size",
    "run",
    "step",
    "trace",
    "mentioned_labels",
    "term_safe_for",
    "coercions_in",
    "is_lambda_c_term",
    "is_value",
    "check",
    "type_of",
    "well_typed",
]
