"""Coercions of the coercion calculus λC (Figure 3).

The grammar is Henglein's, with a blame label on projections (as in Siek &
Wadler 2010) and an explicit failure coercion::

    c, d ::= id_A | G! | G?p | c → d | c × d | c ; d | ⊥GpH

(``c × d`` is the product extension the paper anticipates.)  Coercion typing::

    id_A : A ⇒ A        G! : G ⇒ ?        G?p : ? ⇒ G

    c : A' ⇒ A   d : B ⇒ B'            c : A ⇒ B   d : B ⇒ C
    ---------------------------        -----------------------
    c → d : A→B ⇒ A'→B'                 c ; d : A ⇒ C

    A ≠ ?    A ~ G    G ≠ H
    ------------------------
    ⊥GpH : A ⇒ B

The failure coercion may be used at many types; following the paper's
informal ``⊥GpH_{A⇒B}`` notation, our :class:`Fail` node carries optional
source/target annotations that translations and composition fill in when the
types are known.

The module also defines the *height* of a coercion (used by the space bound,
Proposition 14) and coercion safety ``c safe q`` ("a coercion is safe for q
if it does not mention label q").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.errors import CoercionTypeError
from ..core.labels import Label
from ..core.types import (
    DYN,
    UNKNOWN,
    DynType,
    FunType,
    ProdType,
    Type,
    compatible,
    is_ground,
    types_equal,
)


class Coercion:
    """Abstract base class of λC coercions."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - overridden below
        return coercion_to_str(self)

    def __repr__(self) -> str:
        return coercion_to_str(self)


@dataclass(frozen=True, repr=False)
class Identity(Coercion):
    """The identity coercion ``id_A``."""

    type: Type


@dataclass(frozen=True, repr=False)
class Inject(Coercion):
    """Injection ``G!`` from ground type ``G`` into the dynamic type."""

    ground: Type

    def __post_init__(self) -> None:
        if not is_ground(self.ground):
            raise CoercionTypeError(f"injection requires a ground type, got {self.ground}")


@dataclass(frozen=True, repr=False)
class Project(Coercion):
    """Projection ``G?p`` from the dynamic type to ground type ``G``, blaming ``p`` on failure."""

    ground: Type
    label: Label

    def __post_init__(self) -> None:
        if not is_ground(self.ground):
            raise CoercionTypeError(f"projection requires a ground type, got {self.ground}")


@dataclass(frozen=True, repr=False)
class FunCoercion(Coercion):
    """Function coercion ``c → d`` (contravariant in ``c``, covariant in ``d``)."""

    dom: Coercion
    cod: Coercion


@dataclass(frozen=True, repr=False)
class ProdCoercion(Coercion):
    """Product coercion ``c × d`` (covariant in both components; extension)."""

    left: Coercion
    right: Coercion


@dataclass(frozen=True, repr=False)
class Sequence(Coercion):
    """Composition ``c ; d``: first ``c``, then ``d``."""

    first: Coercion
    second: Coercion


@dataclass(frozen=True, repr=False, eq=False)
class Fail(Coercion):
    """The failure coercion ``⊥GpH``.

    ``source``/``target`` are the optional informal annotations ``A ⇒ B`` of
    the paper; they are not part of coercion identity (they are excluded from
    equality) but are carried along so type checking and the coercion-to-cast
    translation can recover the types in play.
    """

    source_ground: Type
    label: Label
    target_ground: Type
    source: Type | None = None
    target: Type | None = None

    def __post_init__(self) -> None:
        if not is_ground(self.source_ground) or not is_ground(self.target_ground):
            raise CoercionTypeError("⊥GpH requires ground types G and H")
        if self.source_ground == self.target_ground:
            raise CoercionTypeError("⊥GpH requires G ≠ H")

    def key(self) -> tuple:
        """Identity of the failure coercion ignoring the informal annotations."""
        return (self.source_ground, self.label, self.target_ground)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fail):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash((Fail, self.key()))


# ---------------------------------------------------------------------------
# Typing
# ---------------------------------------------------------------------------


def coercion_source(c: Coercion) -> Type:
    """The source type of a coercion (``UNKNOWN`` when under-determined)."""
    if isinstance(c, Identity):
        return c.type
    if isinstance(c, Inject):
        return c.ground
    if isinstance(c, Project):
        return DYN
    if isinstance(c, FunCoercion):
        return FunType(coercion_target(c.dom), coercion_source(c.cod))
    if isinstance(c, ProdCoercion):
        return ProdType(coercion_source(c.left), coercion_source(c.right))
    if isinstance(c, Sequence):
        return coercion_source(c.first)
    if isinstance(c, Fail):
        return c.source if c.source is not None else UNKNOWN
    raise CoercionTypeError(f"unknown coercion node: {c!r}")


def coercion_target(c: Coercion) -> Type:
    """The target type of a coercion (``UNKNOWN`` when under-determined)."""
    if isinstance(c, Identity):
        return c.type
    if isinstance(c, Inject):
        return DYN
    if isinstance(c, Project):
        return c.ground
    if isinstance(c, FunCoercion):
        return FunType(coercion_source(c.dom), coercion_target(c.cod))
    if isinstance(c, ProdCoercion):
        return ProdType(coercion_target(c.left), coercion_target(c.right))
    if isinstance(c, Sequence):
        return coercion_target(c.second)
    if isinstance(c, Fail):
        return c.target if c.target is not None else UNKNOWN
    raise CoercionTypeError(f"unknown coercion node: {c!r}")


def check_coercion(c: Coercion, source: Type) -> Type:
    """Check that ``c`` coerces from ``source`` and return its target type.

    Raises :class:`CoercionTypeError` when ``c`` cannot be applied at
    ``source``.  For :class:`Fail` the source only has to be a non-dynamic
    type compatible with ``G``; the target is the annotation (or ``UNKNOWN``).
    """
    from ..core.types import UnknownType

    if isinstance(source, UnknownType):
        # The subject is `blame p` (any type); trust the coercion's own typing.
        return coercion_target(c)
    if isinstance(c, Identity):
        if not types_equal(c.type, source):
            raise CoercionTypeError(f"id_{c.type} applied at {source}")
        return c.type
    if isinstance(c, Inject):
        if not types_equal(c.ground, source):
            raise CoercionTypeError(f"{c.ground}! applied at {source}")
        return DYN
    if isinstance(c, Project):
        if not types_equal(source, DYN):
            raise CoercionTypeError(f"{c.ground}?{c.label} applied at non-dynamic {source}")
        return c.ground
    if isinstance(c, FunCoercion):
        if not isinstance(source, FunType):
            raise CoercionTypeError(f"function coercion applied at non-function {source}")
        new_dom = coercion_source(c.dom)
        dom_target = check_coercion(c.dom, new_dom)
        if not types_equal(dom_target, source.dom):
            raise CoercionTypeError(
                f"function coercion domain mismatch: {dom_target} vs {source.dom}"
            )
        new_cod = check_coercion(c.cod, source.cod)
        return FunType(new_dom, new_cod)
    if isinstance(c, ProdCoercion):
        if not isinstance(source, ProdType):
            raise CoercionTypeError(f"product coercion applied at non-product {source}")
        return ProdType(check_coercion(c.left, source.left), check_coercion(c.right, source.right))
    if isinstance(c, Sequence):
        middle = check_coercion(c.first, source)
        return check_coercion(c.second, middle)
    if isinstance(c, Fail):
        if isinstance(source, DynType):
            raise CoercionTypeError("⊥GpH may not be applied at the dynamic type")
        if not compatible(source, c.source_ground):
            raise CoercionTypeError(
                f"⊥{c.source_ground}{c.label}{c.target_ground} applied at {source}, "
                f"which is not compatible with {c.source_ground}"
            )
        return c.target if c.target is not None else UNKNOWN
    raise CoercionTypeError(f"unknown coercion node: {c!r}")


def well_formed(c: Coercion) -> bool:
    """Is the coercion internally well-typed (composition middles agree)?"""
    try:
        _ = check_coercion(c, coercion_source(c))
        return True
    except CoercionTypeError:
        return False


# ---------------------------------------------------------------------------
# Height (Figure 3) and size
# ---------------------------------------------------------------------------


def height(c: Coercion) -> int:
    """Height of a coercion; note composition does *not* increase height."""
    if isinstance(c, (Identity, Inject, Project, Fail)):
        return 1
    if isinstance(c, FunCoercion):
        return max(height(c.dom), height(c.cod)) + 1
    if isinstance(c, ProdCoercion):
        return max(height(c.left), height(c.right)) + 1
    if isinstance(c, Sequence):
        return max(height(c.first), height(c.second))
    raise CoercionTypeError(f"unknown coercion node: {c!r}")


def size(c: Coercion) -> int:
    """Number of coercion constructors."""
    if isinstance(c, (Identity, Inject, Project, Fail)):
        return 1
    if isinstance(c, FunCoercion):
        return 1 + size(c.dom) + size(c.cod)
    if isinstance(c, ProdCoercion):
        return 1 + size(c.left) + size(c.right)
    if isinstance(c, Sequence):
        return 1 + size(c.first) + size(c.second)
    raise CoercionTypeError(f"unknown coercion node: {c!r}")


def subcoercions(c: Coercion) -> Iterator[Coercion]:
    yield c
    if isinstance(c, FunCoercion):
        yield from subcoercions(c.dom)
        yield from subcoercions(c.cod)
    elif isinstance(c, ProdCoercion):
        yield from subcoercions(c.left)
        yield from subcoercions(c.right)
    elif isinstance(c, Sequence):
        yield from subcoercions(c.first)
        yield from subcoercions(c.second)


# ---------------------------------------------------------------------------
# Safety (Figure 3): a coercion is safe for q iff it does not mention q
# ---------------------------------------------------------------------------


def coercion_safe_for(c: Coercion, q: Label) -> bool:
    """The judgement ``c safe q``."""
    for sub in subcoercions(c):
        if isinstance(sub, Project) and sub.label == q:
            return False
        if isinstance(sub, Fail) and sub.label == q:
            return False
    return True


def labels_of(c: Coercion) -> set[Label]:
    """All blame labels mentioned by a coercion."""
    result: set[Label] = set()
    for sub in subcoercions(c):
        if isinstance(sub, Project):
            result.add(sub.label)
        elif isinstance(sub, Fail):
            result.add(sub.label)
    return result


# ---------------------------------------------------------------------------
# Construction helpers and pretty printing
# ---------------------------------------------------------------------------


def identity(ty: Type) -> Identity:
    return Identity(ty)


def sequence(*coercions: Coercion) -> Coercion:
    """Left-nested composition of several coercions; identity if none given."""
    if not coercions:
        return Identity(DYN)
    result = coercions[0]
    for c in coercions[1:]:
        result = Sequence(result, c)
    return result


# ---------------------------------------------------------------------------
# Interning (hash-consing) — see repro.core.intern
# ---------------------------------------------------------------------------

from ..core.intern import Interner as _Interner  # noqa: E402  (layered import)
from ..core.intern import intern_type as _intern_type  # noqa: E402

_interned = _Interner("coercions_c")


def intern_coercion(c: Coercion) -> Coercion:
    """The canonical representative of a λC coercion; idempotent.

    Pointer equality on canonical coercions coincides with structural
    equality (for :class:`Fail`, whose equality ignores the informal
    source/target annotations, each annotation variant keeps its own
    canonical node so the annotations survive interning).
    """
    if _interned.is_canonical(c):
        return c
    aliased = _interned.alias_of(c)
    if aliased is not None:
        return aliased
    canon = _intern_coercion_node(c)
    _interned.remember_alias(c, canon)
    return canon


def _intern_coercion_node(c: Coercion) -> Coercion:
    if isinstance(c, Identity):
        ty = _intern_type(c.type)
        return _interned.canonical(
            ("id", id(ty)), lambda: c if c.type is ty else Identity(ty)
        )
    if isinstance(c, Inject):
        ground = _intern_type(c.ground)
        return _interned.canonical(
            ("inj", id(ground)), lambda: c if c.ground is ground else Inject(ground)
        )
    if isinstance(c, Project):
        ground = _intern_type(c.ground)
        return _interned.canonical(
            ("proj", id(ground), c.label),
            lambda: c if c.ground is ground else Project(ground, c.label),
        )
    if isinstance(c, FunCoercion):
        dom = intern_coercion(c.dom)
        cod = intern_coercion(c.cod)
        return _interned.canonical(
            ("fun", id(dom), id(cod)),
            lambda: c if (c.dom is dom and c.cod is cod) else FunCoercion(dom, cod),
        )
    if isinstance(c, ProdCoercion):
        left = intern_coercion(c.left)
        right = intern_coercion(c.right)
        return _interned.canonical(
            ("prod", id(left), id(right)),
            lambda: c if (c.left is left and c.right is right) else ProdCoercion(left, right),
        )
    if isinstance(c, Sequence):
        first = intern_coercion(c.first)
        second = intern_coercion(c.second)
        return _interned.canonical(
            ("seq", id(first), id(second)),
            lambda: c if (c.first is first and c.second is second) else Sequence(first, second),
        )
    if isinstance(c, Fail):
        sg = _intern_type(c.source_ground)
        tg = _intern_type(c.target_ground)
        src = _intern_type(c.source) if c.source is not None else None
        tgt = _intern_type(c.target) if c.target is not None else None
        key = ("fail", id(sg), c.label, id(tg),
               id(src) if src is not None else None,
               id(tgt) if tgt is not None else None)
        return _interned.canonical(key, lambda: Fail(sg, c.label, tg, src, tgt))
    raise CoercionTypeError(f"cannot intern unknown coercion node: {c!r}")


def is_interned_coercion(c: Coercion) -> bool:
    return _interned.is_canonical(c)


def coercion_to_str(c: Coercion) -> str:
    if isinstance(c, Identity):
        return f"id[{c.type}]"
    if isinstance(c, Inject):
        return f"{c.ground}!"
    if isinstance(c, Project):
        return f"{c.ground}?{c.label}"
    if isinstance(c, FunCoercion):
        return f"({coercion_to_str(c.dom)} -> {coercion_to_str(c.cod)})"
    if isinstance(c, ProdCoercion):
        return f"({coercion_to_str(c.left)} x {coercion_to_str(c.right)})"
    if isinstance(c, Sequence):
        return f"({coercion_to_str(c.first)} ; {coercion_to_str(c.second)})"
    if isinstance(c, Fail):
        return f"Fail[{c.source_ground},{c.label},{c.target_ground}]"
    raise CoercionTypeError(f"unknown coercion node: {c!r}")
