"""Type checking for the coercion calculus λC (Figure 3).

The only non-standard rule is coercion application::

    Γ ⊢ M : A      c : A ⇒ B
    -------------------------
    Γ ⊢ M⟨c⟩ : B

Everything else is shared with λB and delegated to the same helpers.
"""

from __future__ import annotations

from ..core.env import EMPTY_ENV, TypeEnv
from ..core.errors import CoercionTypeError, TypeCheckError
from ..core.ops import op_spec
from ..core.terms import (
    App,
    Blame,
    Cast,
    Coerce,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
)
from ..core.types import (
    BOOL,
    UNKNOWN,
    FunType,
    ProdType,
    Type,
    UnknownType,
    types_equal,
)
from .coercions import Coercion, check_coercion


def type_of(term: Term, env: TypeEnv = EMPTY_ENV) -> Type:
    """Synthesise the type of a λC term, raising :class:`TypeCheckError` on failure."""
    if isinstance(term, Const):
        return term.type

    if isinstance(term, Var):
        return env.lookup(term.name)

    if isinstance(term, Op):
        spec = op_spec(term.op)
        if len(term.args) != spec.arity:
            raise TypeCheckError(
                f"operator {term.op!r} expects {spec.arity} arguments, got {len(term.args)}"
            )
        for arg, expected in zip(term.args, spec.arg_types):
            actual = type_of(arg, env)
            if not types_equal(actual, expected):
                raise TypeCheckError(
                    f"operator {term.op!r}: argument has type {actual}, expected {expected}"
                )
        return spec.result_type

    if isinstance(term, Lam):
        body_type = type_of(term.body, env.extend(term.param, term.param_type))
        return FunType(term.param_type, body_type)

    if isinstance(term, App):
        fun_type = type_of(term.fun, env)
        arg_type = type_of(term.arg, env)
        if isinstance(fun_type, UnknownType):
            return UNKNOWN
        if not isinstance(fun_type, FunType):
            raise TypeCheckError(f"application of a non-function of type {fun_type}")
        if not types_equal(arg_type, fun_type.dom):
            raise TypeCheckError(f"argument has type {arg_type}, expected {fun_type.dom}")
        return fun_type.cod

    if isinstance(term, Coerce):
        if not isinstance(term.coercion, Coercion):
            raise TypeCheckError(
                f"λC coercion application carries a non-λC coercion: {term.coercion!r}"
            )
        subject_type = type_of(term.subject, env)
        try:
            return check_coercion(term.coercion, subject_type)
        except CoercionTypeError as exc:
            raise TypeCheckError(str(exc)) from exc

    if isinstance(term, Cast):
        raise TypeCheckError("casts are not λC terms; translate them with |·|BC first")

    if isinstance(term, Blame):
        return UNKNOWN

    if isinstance(term, If):
        cond_type = type_of(term.cond, env)
        if not types_equal(cond_type, BOOL):
            raise TypeCheckError(f"if-condition has type {cond_type}, expected bool")
        then_type = type_of(term.then_branch, env)
        else_type = type_of(term.else_branch, env)
        if not types_equal(then_type, else_type):
            raise TypeCheckError(
                f"if-branches have different types: {then_type} vs {else_type}"
            )
        return else_type if isinstance(then_type, UnknownType) else then_type

    if isinstance(term, Let):
        bound_type = type_of(term.bound, env)
        return type_of(term.body, env.extend(term.name, bound_type))

    if isinstance(term, Fix):
        fun_type = type_of(term.fun, env)
        expected = FunType(term.fun_type, term.fun_type)
        if not types_equal(fun_type, expected):
            raise TypeCheckError(f"fix expects a functional of type {expected}, got {fun_type}")
        return term.fun_type

    if isinstance(term, Pair):
        return ProdType(type_of(term.left, env), type_of(term.right, env))

    if isinstance(term, Fst):
        arg_type = type_of(term.arg, env)
        if isinstance(arg_type, UnknownType):
            return UNKNOWN
        if not isinstance(arg_type, ProdType):
            raise TypeCheckError(f"fst of a non-pair of type {arg_type}")
        return arg_type.left

    if isinstance(term, Snd):
        arg_type = type_of(term.arg, env)
        if isinstance(arg_type, UnknownType):
            return UNKNOWN
        if not isinstance(arg_type, ProdType):
            raise TypeCheckError(f"snd of a non-pair of type {arg_type}")
        return arg_type.right

    raise TypeCheckError(f"not a λC term: {term!r}")


def check(term: Term, expected: Type, env: TypeEnv = EMPTY_ENV) -> None:
    actual = type_of(term, env)
    if not types_equal(actual, expected):
        raise TypeCheckError(f"term has type {actual}, expected {expected}")


def well_typed(term: Term, env: TypeEnv = EMPTY_ENV) -> bool:
    try:
        type_of(term, env)
        return True
    except TypeCheckError:
        return False
