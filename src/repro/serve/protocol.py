"""The serve wire protocol: newline-delimited JSON requests and responses.

One JSON object per line in each direction.  A client sends *requests*; the
server answers each with exactly one *response* object echoing the
request's ``id`` (``null`` when the request carried none).  Operations:

``run`` (the default when ``op`` is absent)
    Evaluate a program.  Fields:

    * ``source`` — surface program text, *or* ``source_hash`` — the hex
      SHA-256 of previously-compiled source (the compile-cache address);
      a hash-only request that misses the cache fails with an ``error``
      response rather than compiling nothing.
    * ``engine`` — ``"vm"`` (default) or ``"rvm"``.
    * ``semantics`` — an enforcement-semantics name (default from the
      server's ``--semantics``).
    * ``opt_level`` — 0/1/2 (default from the server).
    * ``fuel`` — engine steps before a ``timeout`` outcome.
    * ``deadline_s`` — wall-clock seconds before cooperative cancellation
      (also a ``timeout`` outcome — exit-3 semantics are preserved).

    The response is the batch runner's JSON record (``kind``, ``value`` /
    ``blame``, ``steps``, ``max_pending_mediators``, ``cache``, timings)
    plus ``id``.  ``kind`` is always one of :data:`TERMINAL_KINDS`:
    ``value``, ``blame``, ``timeout``, ``error``, or ``overloaded`` (the
    load-shed outcome — the request was rejected at admission, not queued).

``ping``
    Liveness probe; response ``{"id": ..., "ok": true}``.

``stats``
    Metrics snapshot: ``{"id": ..., "ok": true, "metrics": {...},
    "pool": {...}}``.

``shutdown``
    Begin a graceful drain (same path as SIGTERM): in-flight requests
    complete, new connections are rejected, the server exits 0.
"""

from __future__ import annotations

import json

#: Every ``run`` response's ``kind`` is exactly one of these.
TERMINAL_KINDS = ("value", "blame", "timeout", "error", "overloaded")

#: Recognized request operations.
OPS = ("run", "ping", "stats", "shutdown")

#: Engines a request may name (the serving pipeline is compiled-only).
SERVE_ENGINES = ("vm", "rvm")


def encode_line(obj: dict) -> bytes:
    """One response/request as a JSON line (UTF-8, trailing newline)."""
    return json.dumps(obj, sort_keys=True).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one request line; raises ``ValueError`` on garbage."""
    obj = json.loads(line.decode())
    if not isinstance(obj, dict):
        raise ValueError("request must be a JSON object")
    return obj


def error_response(request_id: object, message: str) -> dict:
    return {"id": request_id, "kind": "error", "error": message}


def normalize_run_request(obj: dict, defaults: dict) -> dict:
    """Validate a ``run`` request and fill server defaults into a pool job.

    Returns the job dict the worker pool executes; raises ``ValueError``
    with a client-presentable message on anything malformed.  ``defaults``
    carries the server's ``semantics`` / ``opt_level`` / ``engine`` /
    ``fuel`` / ``deadline_s`` / ``cache_dir`` / ``use_cache``.
    """
    source = obj.get("source")
    source_hash = obj.get("source_hash")
    if source is None and source_hash is None:
        raise ValueError("run request needs 'source' or 'source_hash'")
    if source is not None and not isinstance(source, str):
        raise ValueError("'source' must be a string")
    if source_hash is not None and not isinstance(source_hash, str):
        raise ValueError("'source_hash' must be a string")

    engine = obj.get("engine", defaults["engine"])
    if engine not in SERVE_ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of {SERVE_ENGINES})")
    semantics = obj.get("semantics", obj.get("mediator", defaults["semantics"]))
    opt_level = obj.get("opt_level", defaults["opt_level"])
    if not isinstance(opt_level, int) or isinstance(opt_level, bool):
        raise ValueError(f"opt_level must be 0, 1, or 2, got {opt_level!r}")
    # The shared validation path: the same checks every other entrypoint
    # runs, re-raised with the protocol's client-presentable error type.
    from ..api import resolve_config
    from ..core.errors import UsageError

    try:
        resolve_config(engine=engine, semantics=semantics, opt_level=opt_level)
    except (UsageError, ValueError) as exc:
        raise ValueError(str(exc)) from None
    fuel = obj.get("fuel", defaults["fuel"])
    if fuel is not None and (not isinstance(fuel, int) or fuel <= 0):
        raise ValueError(f"fuel must be a positive integer, got {fuel!r}")
    deadline_s = obj.get("deadline_s", defaults["deadline_s"])
    if deadline_s is not None and (
        not isinstance(deadline_s, (int, float)) or deadline_s <= 0
    ):
        raise ValueError(f"deadline_s must be a positive number, got {deadline_s!r}")

    return {
        "op": "run_source",
        "source": source,
        "source_hash": source_hash,
        "engine": engine,
        "semantics": semantics,
        "opt_level": opt_level,
        "fuel": fuel,
        "deadline_s": deadline_s,
        "cache_dir": defaults["cache_dir"],
        "use_cache": defaults["use_cache"],
    }
