"""A small synchronous client for the serve protocol.

Used by the tests, the smoke script, and ``benchmarks/bench_serve.py`` —
and usable from a REPL::

    from repro.serve.client import ServeClient
    with ServeClient.connect_tcp("127.0.0.1", 7777) as client:
        client.run("((lambda ([x : int]) x) 42)")

One socket, one request in flight at a time (the server answers a
connection's requests in order, so a pipelined client would work, but the
lockstep client is what keeps chaos runs deterministic).
"""

from __future__ import annotations

import json
import socket

from .protocol import decode_line, encode_line


class ServeClient:
    """One connection to a running ``repro-gradual serve``."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._reader = sock.makefile("rb")

    @classmethod
    def connect_tcp(
        cls, host: str, port: int, timeout: float | None = 30.0
    ) -> "ServeClient":
        return cls(socket.create_connection((host, port), timeout=timeout))

    @classmethod
    def connect_unix(cls, path: str, timeout: float | None = 30.0) -> "ServeClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return cls(sock)

    @classmethod
    def from_ready(cls, ready: dict | str, timeout: float | None = 30.0) -> "ServeClient":
        """Connect from the server's ``ready`` announcement (dict or line)."""
        if isinstance(ready, str):
            ready = json.loads(ready)
        if "socket" in ready:
            return cls.connect_unix(ready["socket"], timeout=timeout)
        return cls.connect_tcp(ready["host"], ready["port"], timeout=timeout)

    def request(self, obj: dict) -> dict:
        """Send one request object and block for its response."""
        self._sock.sendall(encode_line(obj))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    def run(self, source: str | None = None, **fields) -> dict:
        """A ``run`` request; ``fields`` may carry ``source_hash``, ``id``,
        ``engine``, ``semantics``, ``opt_level``, ``fuel``, ``deadline_s``."""
        obj = {"op": "run", **fields}
        if source is not None:
            obj["source"] = source
        return self.request(obj)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
