"""``repro-gradual serve``: a fault-tolerant persistent evaluation service.

The package splits along the process boundary:

* :mod:`repro.serve.protocol` — the newline-delimited JSON wire format and
  request validation (shared by server and client);
* :mod:`repro.serve.pool` — the persistent worker pool: warm interned
  tables and hot images, crash detection with bounded retry, cooperative
  deadlines, worker recycling, and the ``worker_kill`` fault hook;
* :mod:`repro.serve.server` — the asyncio front end: admission control
  with load shedding, metrics, and graceful SIGTERM drain;
* :mod:`repro.serve.client` — a small synchronous client (tests, smoke,
  benchmarks).
"""

from .client import ServeClient
from .pool import WorkerPool
from .protocol import TERMINAL_KINDS, decode_line, encode_line
from .server import ServeConfig, Server, serve

__all__ = [
    "ServeClient",
    "ServeConfig",
    "Server",
    "TERMINAL_KINDS",
    "WorkerPool",
    "decode_line",
    "encode_line",
    "serve",
]
