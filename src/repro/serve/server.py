"""The ``repro-gradual serve`` front end: asyncio over the worker pool.

One asyncio event loop accepts connections (TCP or a Unix socket), parses
newline-delimited JSON requests, and dispatches ``run`` jobs to the
persistent :class:`~repro.serve.pool.WorkerPool` through a thread-pool
executor sized to the worker count.  Requests on one connection are handled
serially (a response is written before the next line is read — which is
what makes single-connection chaos runs deterministic); concurrency comes
from concurrent connections.

Admission control is a counted gate, not a real queue: at most
``queue_limit`` run requests may be admitted (waiting for an executor
thread or executing) at once; a request beyond that is *shed* immediately
with the ``overloaded`` terminal kind — the client learns it was never
attempted, rather than waiting behind an unbounded backlog.

Shutdown is a drain: the first SIGTERM/SIGINT (or a ``shutdown`` request)
stops accepting connections and new run requests, lets admitted requests
finish and their responses flush, retires the pool, sweeps the compile
cache (deleting any torn entry a chaos run left behind), and exits 0.  A
second signal hard-exits 1 immediately.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry
from .pool import DEFAULT_GRACE_S, WorkerPool
from .protocol import decode_line, encode_line, error_response, normalize_run_request


@dataclass
class ServeConfig:
    """Everything ``repro-gradual serve`` is configured by."""

    host: str = "127.0.0.1"
    port: int = 0
    socket_path: str | None = None  # serve on a Unix socket instead of TCP
    workers: int = 1
    queue_limit: int = 16
    semantics: str = "coercion"
    opt_level: int = 2
    engine: str = "vm"
    fuel: int | None = None
    deadline_s: float | None = None
    cache_dir: str | None = None
    use_cache: bool = True
    max_requests: int = 0  # recycle a worker after this many jobs (0 = never)
    max_rss_mb: int = 0  # recycle a worker past this RSS (0 = never)
    retries: int = 2
    backoff_s: float = 0.05
    grace_s: float = DEFAULT_GRACE_S
    faults: str | None = None  # fault spec (default: the environment)
    faults_seed: int | None = None


class Server:
    """One serving process: pool, executor, listener, and drain logic."""

    def __init__(self, config: ServeConfig, metrics: MetricsRegistry | None = None):
        from ..api import resolve_config

        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Fail fast at startup through the shared validation path: the same
        # resolve_config every other entrypoint uses (per-request overrides
        # re-validate in normalize_run_request).
        run_defaults = resolve_config(
            engine=config.engine,
            semantics=config.semantics,
            opt_level=config.opt_level,
            fuel=config.fuel,
            cache=config.use_cache,
            cache_dir=config.cache_dir,
        )
        self._defaults = {
            "semantics": run_defaults.semantics,
            "opt_level": run_defaults.opt_level,
            "engine": run_defaults.engine,
            "fuel": config.fuel,
            "deadline_s": config.deadline_s,
            "cache_dir": run_defaults.cache_dir,
            "use_cache": run_defaults.cache,
        }
        self._pool: WorkerPool | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._admitted = 0
        self._draining = False
        self._drain_event: asyncio.Event | None = None
        self.address: tuple | None = None  # set once listening

    # -- metrics (the registry is shared with pool threads) -----------------

    def _metric(self, kind: str, name: str, value=None) -> None:
        with self._pool.metrics_lock:
            if kind == "counter":
                self.metrics.counter(name).inc()
            elif kind == "gauge":
                self.metrics.gauge(name).set(value)
            else:
                self.metrics.histogram(name).observe(value)

    # -- request handling ---------------------------------------------------

    def _run_in_thread(self, job: dict) -> dict:
        # Executor thread: note when the job left the admission queue, so
        # the event loop can split queue wait from service time.
        started = time.perf_counter()
        result = self._pool.execute(job)
        result["_dequeued_s"] = started
        return result

    async def _dispatch(self, obj: dict) -> dict:
        request_id = obj.get("id")
        op = obj.get("op", "run")
        if op == "ping":
            return {"id": request_id, "ok": True, "draining": self._draining}
        if op == "stats":
            with self._pool.metrics_lock:
                snapshot = self.metrics.snapshot()
            return {
                "id": request_id,
                "ok": True,
                "metrics": snapshot,
                "pool": self._pool.info(),
            }
        if op == "shutdown":
            self.begin_drain()
            return {"id": request_id, "ok": True, "draining": True}
        if op != "run":
            return error_response(request_id, f"unknown op {op!r}")
        if self._draining:
            return error_response(request_id, "server is draining")
        try:
            job = normalize_run_request(obj, self._defaults)
        except ValueError as exc:
            return error_response(request_id, str(exc))

        self._metric("counter", "serve.requests")
        if self._admitted >= self.config.queue_limit:
            # Shed at admission: the job was never queued, never attempted.
            self._metric("counter", "serve.shed")
            self._metric("counter", "serve.outcome.overloaded")
            return {
                "id": request_id,
                "kind": "overloaded",
                "error": (
                    f"queue full ({self.config.queue_limit} requests admitted); "
                    "retry later"
                ),
            }
        self._admitted += 1
        self._metric("gauge", "serve.queue.depth", self._admitted)
        queued_s = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(self._executor, self._run_in_thread, job)
        finally:
            self._admitted -= 1
            self._metric("gauge", "serve.queue.depth", self._admitted)
        done_s = time.perf_counter()
        dequeued_s = result.pop("_dequeued_s", queued_s)
        self._metric("counter", f"serve.outcome.{result.get('kind', 'error')}")
        self._metric("histogram", "serve.queue_s", dequeued_s - queued_s)
        self._metric("histogram", "serve.latency_s", done_s - queued_s)
        for key, metric in (("compile_s", "serve.compile_s"), ("run_s", "serve.run_s")):
            if key in result:
                self._metric("histogram", metric, result[key])
        result["id"] = request_id
        return result

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        self._metric("counter", "serve.connections")
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    obj = decode_line(line)
                except ValueError as exc:
                    response = error_response(None, f"bad request: {exc}")
                else:
                    response = await self._dispatch(obj)
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- lifecycle ----------------------------------------------------------

    def begin_drain(self) -> None:
        """First call starts the graceful drain; a second force-exits 1."""
        if self._draining:
            if self._pool is not None:
                self._pool.kill_all()
            os._exit(1)
        self._draining = True
        if self._drain_event is not None:
            self._drain_event.set()

    async def run(self, announce=None) -> int:
        """Serve until drained; returns the process exit code (0).

        ``announce`` (optional callable) receives one JSON-ready dict when
        the server is listening — the CLI prints it so scripts can learn
        the ephemeral port / socket path and the pid to signal.
        """
        config = self.config
        self._drain_event = asyncio.Event()
        self._pool = WorkerPool(
            config.workers,
            faults=config.faults,
            seed=config.faults_seed,
            retries=config.retries,
            backoff_s=config.backoff_s,
            grace_s=config.grace_s,
            max_requests=config.max_requests,
            max_rss_mb=config.max_rss_mb,
            metrics=self.metrics,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="serve"
        )
        if config.socket_path is not None:
            self._asyncio_server = await asyncio.start_unix_server(
                self._handle_connection, path=config.socket_path
            )
            self.address = ("unix", config.socket_path)
        else:
            self._asyncio_server = await asyncio.start_server(
                self._handle_connection, config.host, config.port
            )
            bound = self._asyncio_server.sockets[0].getsockname()
            self.address = ("tcp", bound[0], bound[1])

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

        if announce is not None:
            ready = {"event": "ready", "pid": os.getpid(), "workers": config.workers}
            if self.address[0] == "unix":
                ready["socket"] = self.address[1]
            else:
                ready["host"], ready["port"] = self.address[1], self.address[2]
            announce(ready)

        await self._drain_event.wait()

        # Drain: no new connections, no new admissions (dispatch rejects
        # while draining), admitted requests run to their terminal response.
        self._asyncio_server.close()
        await self._asyncio_server.wait_closed()
        while self._admitted > 0:
            await asyncio.sleep(0.01)
        # Let in-flight response writes flush before dropping connections.
        await asyncio.sleep(0.05)
        for writer in list(self._writers):
            writer.close()
        self._executor.shutdown(wait=True)
        self._pool.shutdown()
        if config.use_cache:
            from ..compiler.cache import sweep_cache

            kept, removed = sweep_cache(config.cache_dir, self.metrics)
            if removed:
                print(
                    f"serve: cache sweep removed {removed} corrupt/orphaned "
                    f"entries ({kept} kept)",
                    file=sys.stderr,
                )
        return 0


def serve(config: ServeConfig, announce=None) -> int:
    """Run a server to completion (the CLI entry point)."""
    return asyncio.run(Server(config).run(announce=announce))
