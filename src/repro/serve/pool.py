"""The persistent worker pool: warm workers, crash recovery, recycling.

This is the execution substrate behind ``repro-gradual serve`` (and the
multi-worker path of ``repro-gradual batch``).  Each worker is a long-lived
process holding the state that makes requests cheap the second time:

* the interned type/coercion/labeled-type/threesome/transient tables and
  the memoised ``#``/``∘`` composition caches (process-global, so they
  warm automatically as requests flow);
* the serialize layer's decode memo (re-interning a cached image is a
  dictionary lookup per node after the first load);
* a bounded per-worker memo of hot deserialized images, so a repeated
  ``(source, semantics, opt level, IR)`` skips even the image decode.

The robustness contract, which the chaos tests hold the pool to:

* **Every job gets exactly one terminal result.**  A worker crash
  (detected via pipe EOF / process death) triggers at-most-``retries``
  re-dispatches with exponential backoff on a fresh worker; past that the
  job fails as an ``error`` result with ``"reason": "worker-lost"`` —
  never silently dropped, never hung (the failure mode of a bare
  ``multiprocessing.Pool``, whose ``imap_unordered`` waits forever for a
  SIGKILLed worker's task).
* **Deadlines are cooperative first, forceful second.**  The worker arms
  ``SIGALRM`` for the job's ``deadline_s`` and turns expiry into a
  ``timeout`` result (exit-3 semantics preserved, worker survives with its
  warm tables).  If the worker stays silent past ``deadline_s + grace_s``
  the parent kills and replaces it, still reporting ``timeout``.
* **Workers are recycled, not leaked.**  After ``max_requests`` jobs or
  when the worker's RSS exceeds ``max_rss_mb``, the parent retires it
  gracefully and spawns a replacement whose warm state re-seeds from the
  on-disk compile cache on first touch.
* **Faults are injected deterministically.**  The coordinator draws
  ``worker_kill`` per dispatch from its own seeded stream (so a kill
  scoped ``worker_kill:1.0:1`` fires on exactly one dispatch and the retry
  survives); workers install the same spec with a per-slot salt, which
  arms the ``slow_compile``/``torn_write`` hooks inside the compile cache
  and the image writer.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from contextlib import contextmanager

from ..core.faults import FAULTS_ENV, FaultPlan

#: How workers announce crash-simulation compliance (never seen by callers;
#: the parent only ever observes the SIGKILL).
_KILL_FLAG = "_kill"

#: Sentinel results from the parent-side await loop.
_CRASHED = object()
_HUNG = object()

#: Default wall-clock grace beyond a job's deadline before the parent
#: declares the worker hung and replaces it.
DEFAULT_GRACE_S = 5.0

#: Hot deserialized images kept per worker (insertion-order eviction).
_IMAGE_MEMO_CAP = 64


class _DeadlineExceeded(Exception):
    """Raised inside a worker by the SIGALRM handler at the job deadline."""


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _rss_kb() -> int:
    import resource

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    import sys

    return rss // 1024 if sys.platform == "darwin" else rss


@contextmanager
def _deadline(seconds: float | None):
    """Cooperative cancellation: raise :class:`_DeadlineExceeded` after
    ``seconds`` of wall clock.  A no-op when ``seconds`` is ``None`` or the
    platform has no ``SIGALRM`` (the parent's hard kill still applies)."""
    if seconds is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(_signum, _frame):
        raise _DeadlineExceeded()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _obtain_image(job: dict, memo: dict):
    """The image for a ``run_source`` job, through memo → cache → compile.

    Returns ``(LoadedImage, cache_status)`` where status is ``"warm"``
    (worker-resident), ``"hit"``/``"miss"``/``"recovered"`` (compile
    cache), or ``"off"`` (caching disabled).  Raises ``ReproError`` for
    front-end failures and unknown hashes.
    """
    from ..compiler.cache import cache_lookup, cached_compile
    from ..compiler.serialize import source_fingerprint
    from ..core.errors import ReproError
    from ..surface.interp import compile_source

    source = job.get("source")
    semantics = job["semantics"]
    opt_level = job["opt_level"]
    ir = "register" if job["engine"] == "rvm" else "stack"
    source_hash = job.get("source_hash")
    if source_hash is None:
        source_hash = source_fingerprint(source)
    key = (source_hash, semantics, opt_level, ir)
    image = memo.get(key)
    if image is not None:
        return image, "warm"

    use_cache = job.get("use_cache", True)
    cache_dir = job.get("cache_dir")
    status = None
    if use_cache:
        image = cache_lookup(source_hash, opt_level, semantics, cache_dir, ir)
        if image is not None:
            status = "hit"
    if image is None:
        if source is None:
            raise ReproError(
                f"source_hash {source_hash[:12]}… is not in the compile cache "
                "and the request carried no source"
            )
        term, ty = compile_source(source)
        if use_cache:
            found = cached_compile(
                term, source_hash=source_hash, static_type=ty,
                mediator=semantics, opt_level=opt_level,
                cache_dir=cache_dir, ir=ir,
            )
            image, status = found.image, found.status
        else:
            from ..compiler.serialize import FORMAT_VERSION, ImageInfo, LoadedImage
            from ..compiler.vm import compile_term

            code = compile_term(term, mediator=semantics, opt_level=opt_level)
            rcode = None
            if ir == "register":
                from ..compiler.regalloc import compile_registers

                rcode = compile_registers(code)
            info = ImageInfo(FORMAT_VERSION, source_hash, opt_level, semantics, ty, ir)
            image = LoadedImage(code, info, rcode)
            status = "off"

    if len(memo) >= _IMAGE_MEMO_CAP:
        memo.pop(next(iter(memo)))
    memo[key] = image
    return image, status


def _run_image(image, engine: str, fuel: int | None) -> dict:
    """Execute a loaded image and shape the batch-runner result fields."""
    from ..core.fuel import DEFAULT_RVM_FUEL, DEFAULT_VM_FUEL

    started = time.perf_counter()
    if engine == "rvm":
        from ..compiler.rvm import run_rcode

        outcome = run_rcode(image.rcode, fuel if fuel is not None else DEFAULT_RVM_FUEL)
    else:
        from ..compiler.vm import run_code

        outcome = run_code(image.code, fuel if fuel is not None else DEFAULT_VM_FUEL)
    finished = time.perf_counter()
    stats = outcome.stats or {}
    result = {
        "kind": outcome.kind,
        "steps": stats.get("steps", 0),
        "max_pending_mediators": stats.get("max_pending_mediators", 0),
        "run_s": finished - started,
    }
    if outcome.is_value:
        result["value"] = outcome.python_value()
        if image.info.static_type is not None:
            result["type"] = str(image.info.static_type)
    elif outcome.is_blame:
        result["blame"] = str(outcome.label)
    return result


def _handle_job(job: dict, memo: dict) -> dict:
    """One job to one result dict, inside the worker."""
    from ..core.errors import ReproError

    op = job.get("op")
    if op == "run_image":
        from ..compiler.serialize import deserialize_image

        started = time.perf_counter()
        with _deadline(job.get("deadline_s")):
            try:
                image = deserialize_image(job["image"], validate=False)
            except ReproError as exc:
                return {"kind": "error", "error": str(exc)}
            loaded = time.perf_counter()
            result = _run_image(image, job.get("engine", "vm"), job.get("fuel"))
        result["load_s"] = loaded - started
        return result
    if op == "run_source":
        started = time.perf_counter()
        with _deadline(job.get("deadline_s")):
            try:
                image, status = _obtain_image(job, memo)
            except ReproError as exc:
                return {"kind": "error", "error": str(exc), "cache": None}
            loaded = time.perf_counter()
            result = _run_image(image, job["engine"], job.get("fuel"))
        result["cache"] = status
        result["compile_s"] = loaded - started
        return result
    return {"kind": "error", "error": f"unknown pool op: {op!r}"}


def _worker_main(conn, slot: int, faults_spec: str, seed: int) -> None:
    """The worker process loop: recv a job, send exactly one result."""
    from ..core.faults import set_plan

    set_plan(
        FaultPlan.from_spec(faults_spec, seed=seed, salt=f"worker{slot}")
        if faults_spec.strip()
        else None
    )
    memo: dict = {}
    served = 0
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if job is None:
            break
        if job.get(_KILL_FLAG):
            # Simulated crash: die as abruptly as the OOM killer would.
            os.kill(os.getpid(), signal.SIGKILL)
        served += 1
        try:
            result = _handle_job(job, memo)
        except _DeadlineExceeded:
            result = {
                "kind": "timeout",
                "reason": "deadline",
                "deadline_s": job.get("deadline_s"),
                "steps": 0,
                "max_pending_mediators": 0,
            }
        except Exception as exc:  # a worker bug must not kill the worker
            result = {"kind": "error", "error": f"worker exception: {exc!r}"}
        if "program" in job:
            result["program"] = job["program"]
        result["served"] = served
        result["rss_kb"] = _rss_kb()
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _Worker:
    """Parent-side handle: the process, its pipe, and its request count."""

    __slots__ = ("slot", "process", "conn", "served")

    def __init__(self, slot: int, faults_spec: str, seed: int):
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        self.slot = slot
        self.conn = parent_conn
        self.served = 0
        self.process = multiprocessing.Process(
            target=_worker_main,
            args=(child_conn, slot, faults_spec, seed),
            daemon=True,
            name=f"repro-serve-worker-{slot}",
        )
        self.process.start()
        child_conn.close()

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass
        self.process.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def retire(self, timeout: float = 1.0) -> None:
        """Graceful stop: shutdown sentinel, short join, then force."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


class WorkerPool:
    """A fixed-size pool of persistent workers with crash recovery.

    Thread-safe: ``execute`` may be called from many threads (the serve
    front end runs one executor thread per worker); each call checks a
    worker out of the free queue for the duration of the job, including
    retries and replacement after a crash.

    ``faults`` is a spec string for :class:`~repro.core.faults.FaultPlan`
    (default: the ``REPRO_GRADUAL_FAULTS`` environment variable).  The
    coordinator draws ``worker_kill`` per dispatch; the spec is also
    installed inside every worker (per-slot salt) for the compile-path
    hooks.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    the ``serve.worker.*`` counters and the ``serve.inflight`` gauges;
    updates are lock-guarded, so one registry can serve the whole server.
    """

    def __init__(
        self,
        size: int = 1,
        *,
        faults: str | None = None,
        seed: int | None = None,
        retries: int = 2,
        backoff_s: float = 0.05,
        grace_s: float = DEFAULT_GRACE_S,
        max_requests: int = 0,
        max_rss_mb: int = 0,
        metrics=None,
        poll_interval_s: float = 0.02,
    ) -> None:
        from ..core.faults import _env_seed

        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if faults is None:
            faults = os.environ.get(FAULTS_ENV, "")
        self.size = size
        self.retries = retries
        self.backoff_s = backoff_s
        self.grace_s = grace_s
        self.max_requests = max_requests
        self.max_rss_kb = max_rss_mb * 1024
        self.metrics = metrics
        self.poll_interval_s = poll_interval_s
        self._faults_spec = faults
        self._seed = seed if seed is not None else _env_seed()
        self._plan = (
            FaultPlan.from_spec(faults, seed=self._seed, salt="pool")
            if faults.strip()
            else None
        )
        self._lock = threading.Lock()
        #: Shared with the serving front end: every update of ``metrics``
        #: (which is not itself thread-safe) happens under this one lock.
        self.metrics_lock = self._lock
        self._closed = False
        self._inflight = 0
        self.counters: dict[str, int] = {
            "served": 0, "crashes": 0, "retries": 0, "recycled": 0,
            "lost": 0, "deadline_kills": 0,
        }
        self._free: queue.Queue[_Worker] = queue.Queue()
        self._workers: list[_Worker] = []
        for slot in range(size):
            worker = _Worker(slot, self._faults_spec, self._seed)
            self._workers.append(worker)
            self._free.put(worker)

    # -- bookkeeping --------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] += n
            if self.metrics is not None:
                self.metrics.counter(f"serve.worker.{name}").inc(n)

    def _track_inflight(self, delta: int) -> None:
        with self._lock:
            self._inflight += delta
            if self.metrics is not None:
                self.metrics.gauge("serve.inflight").set(self._inflight)
                self.metrics.gauge("serve.inflight.high").high(self._inflight)

    def _replace(self, worker: _Worker, *, force: bool) -> _Worker:
        """Retire or kill ``worker`` and return a fresh one in its slot."""
        if force:
            worker.kill()
        else:
            worker.retire()
        fresh = _Worker(worker.slot, self._faults_spec, self._seed)
        with self._lock:
            self._workers[self._workers.index(worker)] = fresh
        return fresh

    # -- the job loop -------------------------------------------------------

    def _await_result(self, worker: _Worker, hard_deadline: float | None):
        """Poll for one result; ``_CRASHED``/``_HUNG`` on failure."""
        start = time.monotonic()
        while True:
            if hard_deadline is not None:
                remaining = hard_deadline - (time.monotonic() - start)
                if remaining <= 0:
                    return _HUNG
                interval = min(self.poll_interval_s, remaining)
            else:
                interval = self.poll_interval_s
            try:
                if worker.conn.poll(interval):
                    return worker.conn.recv()
            except (EOFError, OSError):
                return _CRASHED
            if not worker.process.is_alive():
                # Drain a result sent in the instant before death.
                try:
                    if worker.conn.poll(0):
                        return worker.conn.recv()
                except (EOFError, OSError):
                    pass
                return _CRASHED

    def execute(self, job: dict) -> dict:
        """Run one job to exactly one terminal result dict.

        Crash → at-most-``retries`` re-dispatches (exponential backoff),
        then an ``error`` result with ``"reason": "worker-lost"``.  A
        worker silent past ``deadline_s + grace_s`` is killed and the job
        reported as ``timeout`` (a hang is not retried: it would hang
        again).
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        deadline_s = job.get("deadline_s")
        hard_deadline = None if deadline_s is None else deadline_s + self.grace_s
        worker = self._free.get()
        self._track_inflight(1)
        attempts = 0
        try:
            while True:
                attempts += 1
                dispatch = job
                if self._plan is not None and self._plan.fires("worker_kill"):
                    dispatch = {**job, _KILL_FLAG: True}
                crashed = False
                try:
                    worker.conn.send(dispatch)
                except (BrokenPipeError, OSError):
                    crashed = True
                result = self._await_result(worker, hard_deadline) if not crashed else _CRASHED
                if result is _HUNG:
                    self._count("deadline_kills")
                    worker = self._replace(worker, force=True)
                    self._count("served")
                    return {
                        "kind": "timeout",
                        "reason": "deadline",
                        "deadline_s": deadline_s,
                        "steps": 0,
                        "max_pending_mediators": 0,
                        "attempts": attempts,
                        **({"program": job["program"]} if "program" in job else {}),
                    }
                if result is _CRASHED:
                    self._count("crashes")
                    worker = self._replace(worker, force=True)
                    if attempts > self.retries:
                        self._count("lost")
                        self._count("served")
                        return {
                            "kind": "error",
                            "error": (
                                f"worker lost: crashed on all {attempts} "
                                "dispatch attempts"
                            ),
                            "reason": "worker-lost",
                            "attempts": attempts,
                            **({"program": job["program"]} if "program" in job else {}),
                        }
                    self._count("retries")
                    time.sleep(self.backoff_s * (2 ** (attempts - 1)))
                    continue
                worker.served = result.pop("served", worker.served + 1)
                rss_kb = result.pop("rss_kb", 0)
                if attempts > 1:
                    result["attempts"] = attempts
                if (self.max_requests and worker.served >= self.max_requests) or (
                    self.max_rss_kb and rss_kb > self.max_rss_kb
                ):
                    self._count("recycled")
                    worker = self._replace(worker, force=False)
                self._count("served")
                return result
        finally:
            self._track_inflight(-1)
            self._free.put(worker)

    # -- lifecycle ----------------------------------------------------------

    def info(self) -> dict:
        """JSON-ready pool statistics (the ``stats`` request's ``pool``)."""
        with self._lock:
            alive = sum(1 for w in self._workers if w.process.is_alive())
            return {"size": self.size, "alive": alive, **self.counters}

    def kill_all(self) -> None:
        """SIGKILL every worker immediately — the force-exit path, where
        orphaned workers must not outlive the server (they hold its stdio
        pipes open, among other things)."""
        self._closed = True
        for worker in list(self._workers):
            try:
                worker.process.kill()
            except (OSError, ValueError):
                pass

    def shutdown(self) -> None:
        """Retire every worker.  Callers must have drained in-flight jobs."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.retire()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
