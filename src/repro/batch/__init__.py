"""Batch execution: compile a corpus of gradual programs once, run them in
parallel.

The runner (:mod:`repro.batch.runner`) is the fleet-scale counterpart of
``repro-gradual run``: it discovers a corpus (directories, manifest files,
or individual programs), compiles each program to a ``.gradb`` bytecode
image exactly once — through the content-addressed compile cache, so a warm
corpus costs no front-end work at all — and then *ships the serialized
images* to a ``multiprocessing`` worker pool for execution.  Workers never
see source text: an image deserializes into re-interned canonical pool
entries in each worker process, which is precisely the property the image
format guarantees (:mod:`repro.compiler.serialize`).

Results stream back as they complete, one JSON-compatible dict per program
(outcome kind, value or blame label, steps, ``max_pending_mediators``,
compile/load/run timings, cache status), followed by aggregated shard
statistics.  ``repro-gradual batch`` renders them as JSON-lines.
"""

from .runner import (
    aggregate_results,
    discover_programs,
    run_batch,
)

__all__ = [
    "aggregate_results",
    "discover_programs",
    "run_batch",
]
