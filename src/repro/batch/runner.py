"""The batch runner: corpus discovery, compile-once, parallel execution.

The pipeline has two phases with different parallelism profiles:

1. **Compile** (in the coordinating process, through the compile cache):
   every program is parsed, elaborated, lowered, and optimized at most once
   — and not at all when the cache is warm — yielding one serialized
   ``.gradb`` image per program.  Front-end errors (unreadable files, parse
   errors, type errors) are captured as per-program ``"error"`` results
   here; they never reach a worker.

2. **Execute** (across the fault-tolerant :class:`~repro.serve.pool.WorkerPool`):
   each worker receives the program name, the image bytes, and the fuel,
   deserializes the image — re-interning its pool into the worker's own
   canonical nodes — and runs it on the VM.  A worker that dies mid-job
   (SIGKILL, OOM) is detected and replaced: the job is retried on a fresh
   worker, and past the retry budget it is reported as an ``"error"``
   result with ``"reason": "worker-lost"`` — the record is never silently
   dropped and the run never hangs (both of which a bare
   ``multiprocessing.Pool`` does).  With ``workers=1`` everything runs
   inline in the coordinating process (no pool, no pickling), which is
   also the deterministic-ordering mode the tests use.

Results are JSON-ready dicts, streamed through an ``on_result`` callback as
they complete and aggregated by :func:`aggregate_results`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..core.errors import ReproError

#: Manifest suffixes: a text file listing one program path per line
#: (relative paths resolve against the manifest's directory; blank lines and
#: ``#`` comments are skipped).
MANIFEST_SUFFIXES = (".txt", ".list", ".manifest")

#: Surface-program suffix discovered when a directory is given.
PROGRAM_SUFFIX = ".grad"


def discover_programs(paths: Sequence[str | Path]) -> list[Path]:
    """Expand directories, manifests, and files into the corpus to run.

    Directories contribute their ``*.grad`` files (sorted, recursively);
    manifests contribute the paths they list; anything else is taken as a
    program file itself.  Order is deterministic: inputs in argument order,
    directory contents sorted.  Duplicates (same resolved path) are kept
    once, first occurrence wins.
    """
    corpus: list[Path] = []
    seen: set[Path] = set()

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            corpus.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for program in sorted(path.rglob(f"*{PROGRAM_SUFFIX}")):
                add(program)
        elif path.suffix in MANIFEST_SUFFIXES:
            try:
                lines = path.read_text().splitlines()
            except OSError as exc:
                raise FileNotFoundError(str(path)) from exc
            for line in lines:
                entry = line.strip()
                if entry and not entry.startswith("#"):
                    add(path.parent / entry)
        else:
            add(path)
    return corpus


def _compile_one(path: Path, config) -> tuple[bytes | None, dict]:
    """Phase 1 for one program: image bytes to ship, plus partial result.

    ``config`` is the resolved :class:`~repro.api.RunConfig` of the batch —
    its ``semantics``, ``opt_level``, ``cache``, and ``cache_dir`` drive the
    compile exactly as they would a single :func:`repro.api.run`.
    """
    from ..compiler.serialize import serialize_image, source_fingerprint
    from ..compiler.vm import compile_term
    from ..surface.interp import compile_source

    mediator = config.semantics
    opt_level = config.opt_level
    cache_dir = config.cache_dir
    name = str(path)
    started = time.perf_counter()
    try:
        source = path.read_text()
    except OSError as exc:
        return None, {"program": name, "kind": "error", "error": f"unreadable: {exc}"}
    try:
        if config.cache:
            from ..compiler.cache import cache_lookup, cache_path, cached_compile

            source_hash = source_fingerprint(source)
            entry = cache_path(source_hash, opt_level, mediator, cache_dir)
            image = cache_lookup(source_hash, opt_level, mediator, cache_dir)
            if image is not None:
                # The exact bytes to ship are already on disk — no need to
                # re-encode the image the lookup just validated.  (The
                # re-serialize fallback covers a concurrent eviction.)
                try:
                    data = entry.read_bytes()
                except OSError:
                    data = serialize_image(
                        image.code,
                        source_hash=image.info.source_hash,
                        static_type=image.info.static_type,
                    )
                return data, {
                    "program": name,
                    "cache": "hit",
                    "compile_s": time.perf_counter() - started,
                }
            term, ty = compile_source(source)
            found = cached_compile(term, source_hash=source_hash, static_type=ty,
                                   mediator=mediator, opt_level=opt_level,
                                   cache_dir=cache_dir)
            try:
                data = found.path.read_bytes()
            except OSError:  # the cache write failed (read-only/full disk)
                data = serialize_image(found.image.code, source_hash=source_hash,
                                       static_type=ty)
            return data, {
                "program": name,
                "cache": found.status,
                "compile_s": time.perf_counter() - started,
            }
        term, ty = compile_source(source)
        code = compile_term(term, mediator=mediator, opt_level=opt_level)
        data = serialize_image(code, source_hash=source_fingerprint(source),
                               static_type=ty)
        return data, {
            "program": name,
            "cache": "off",
            "compile_s": time.perf_counter() - started,
        }
    except ReproError as exc:
        return None, {"program": name, "kind": "error", "error": str(exc)}


def _execute_job(job: tuple[str, bytes, int]) -> dict:
    """Phase 2, in a worker: deserialize the image and run it on the VM."""
    from ..compiler.serialize import deserialize_image
    from ..compiler.vm import run_code

    name, data, fuel = job
    started = time.perf_counter()
    try:
        # Built by phase 1 in the coordinating process — same trust domain,
        # so the crafted-image bounds validation is skipped.
        image = deserialize_image(data, validate=False)
    except ReproError as exc:  # pragma: no cover - ships what phase 1 built
        return {"program": name, "kind": "error", "error": str(exc)}
    loaded = time.perf_counter()
    outcome = run_code(image.code, fuel)
    finished = time.perf_counter()
    stats = outcome.stats or {}
    result = {
        "program": name,
        "kind": outcome.kind,
        "steps": stats.get("steps", 0),
        "max_pending_mediators": stats.get("max_pending_mediators", 0),
        "load_s": loaded - started,
        "run_s": finished - loaded,
    }
    if outcome.is_value:
        result["value"] = outcome.python_value()
        if image.info.static_type is not None:
            result["type"] = str(image.info.static_type)
    elif outcome.is_blame:
        result["blame"] = str(outcome.label)
    return result


def run_batch(
    paths: Sequence[str | Path],
    workers: int = 1,
    fuel: int | None = None,
    mediator: str | None = None,
    opt_level: int = 2,
    use_cache: bool = True,
    cache_dir: str | None = None,
    on_result: Callable[[dict], None] | None = None,
    metrics=None,
    trace_sink=None,
    semantics: str | None = None,
    faults: str | None = None,
    config=None,
) -> tuple[list[dict], dict]:
    """Compile a corpus once and execute it across a worker pool.

    ``config`` (a :class:`~repro.api.RunConfig`) is the preferred way to
    select the run knobs; it is resolved through
    :func:`repro.api.resolve_config` — the same validation path as every
    other entrypoint.  The individual kwargs survive as a shim: ``semantics``
    names the enforcement semantics (any entry of the
    :data:`~repro.semantics.SEMANTICS` registry), overriding the deprecated
    ``mediator`` spelling, which warns via
    :func:`repro.api.reconcile_semantics`.

    Returns ``(results, aggregate)``: one dict per program (see
    :func:`_execute_job` for the execution fields; front-end failures carry
    ``kind="error"``) and the aggregated shard statistics.  ``on_result``
    is invoked with each result as it completes — with ``workers > 1``
    completion order is nondeterministic, so every result repeats its
    program name.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) aggregates
    the shard results in the coordinating process — outcome and cache
    counters plus ``batch.{compile_s,load_s,run_s}`` histograms (fixed
    buckets, so shard timings fold in by plain addition regardless of which
    worker produced them) — and its snapshot is embedded in the aggregate
    (``aggregate["metrics"]``), never as an extra stream line.
    ``trace_sink`` traces every program's run into one sink; tracing forces
    inline execution (the tracer is process-global state a pool cannot
    share), with each run's ``run_start`` carrying the program name.

    ``faults`` is a fault-injection spec for the worker pool (see
    :mod:`repro.core.faults`; default: the ``REPRO_GRADUAL_FAULTS``
    environment variable) — the chaos tests use it to SIGKILL workers
    mid-corpus and assert every program still gets a terminal record.
    """
    from ..api import RunConfig, reconcile_semantics, resolve_config

    if config is None:
        config = RunConfig(
            engine="vm",
            semantics=reconcile_semantics(semantics, mediator) or "coercion",
            opt_level=opt_level,
            fuel=fuel,
            cache=use_cache,
            cache_dir=cache_dir,
        )
    config = resolve_config(config)  # fail fast on any invalid knob
    wall_start = time.perf_counter()
    corpus = discover_programs(paths)
    fuel = config.fuel  # resolve_config filled the engine default

    results: list[dict] = []
    jobs: list[tuple[str, bytes, int]] = []
    compile_meta: dict[str, dict] = {}

    def note(result: dict) -> None:
        if metrics is None:
            return
        metrics.counter(f"batch.outcome.{result.get('kind', 'error')}").inc()
        status = result.get("cache")
        if status is not None:
            metrics.counter(f"batch.cache.{status}").inc()
        for key in ("compile_s", "load_s", "run_s"):
            if key in result:
                metrics.histogram(f"batch.{key}").observe(result[key])

    for path in corpus:
        data, meta = _compile_one(path, config)
        if data is None:
            note(meta)
            results.append(meta)
            if on_result is not None:
                on_result(meta)
        else:
            compile_meta[meta["program"]] = meta
            jobs.append((meta["program"], data, fuel))

    def finish(result: dict) -> None:
        result = {**compile_meta[result["program"]], **result}
        note(result)
        results.append(result)
        if on_result is not None:
            on_result(result)

    if trace_sink is not None:
        from ..obs.trace import Tracer, activate, deactivate

        tracer = Tracer(trace_sink)
        activate(tracer)
        try:
            for job in jobs:
                tracer.program = job[0]
                finish(_execute_job(job))
        finally:
            deactivate()
            trace_sink.close()
    elif workers <= 1 or len(jobs) <= 1:
        for job in jobs:
            finish(_execute_job(job))
    else:
        from concurrent.futures import ThreadPoolExecutor, as_completed

        from ..serve.pool import WorkerPool

        size = min(workers, len(jobs))
        with WorkerPool(size, faults=faults) as pool, ThreadPoolExecutor(size) as dispatch:
            futures = [
                dispatch.submit(
                    pool.execute,
                    {"op": "run_image", "program": name, "image": data, "fuel": fuel},
                )
                for name, data, fuel in jobs
            ]
            for future in as_completed(futures):
                finish(future.result())

    aggregate = aggregate_results(results)
    aggregate["workers"] = 1 if trace_sink is not None else workers
    aggregate["wall_s"] = time.perf_counter() - wall_start
    if metrics is not None:
        aggregate["metrics"] = metrics.snapshot()
    return results, aggregate


def aggregate_results(results: Iterable[dict]) -> dict:
    """Shard statistics over per-program results (JSON-ready)."""
    results = list(results)
    kinds = {"value": 0, "blame": 0, "timeout": 0, "error": 0}
    cache = {"hit": 0, "miss": 0, "recovered": 0, "off": 0}
    aggregate = {
        "programs": len(results),
        "steps_total": 0,
        "max_pending_mediators": 0,
        "compile_s_total": 0.0,
        "run_s_total": 0.0,
    }
    for result in results:
        kind = result.get("kind", "error")
        kinds[kind] = kinds.get(kind, 0) + 1
        status = result.get("cache")
        if status in cache:
            cache[status] += 1
        aggregate["steps_total"] += result.get("steps", 0)
        aggregate["max_pending_mediators"] = max(
            aggregate["max_pending_mediators"], result.get("max_pending_mediators", 0)
        )
        aggregate["compile_s_total"] += result.get("compile_s", 0.0)
        aggregate["run_s_total"] += result.get("run_s", 0.0)
    aggregate["outcomes"] = kinds
    aggregate["cache"] = cache
    return aggregate
