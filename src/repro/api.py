"""The one front door for running gradual programs: ``RunConfig`` in, ``RunResult`` out.

Every execution entrypoint in the repo — ``repro-gradual run``, the batch
runner, the serve protocol, the experiment driver, and the legacy
``run_source``/``run_term`` kwarg shims in :mod:`repro.surface.interp` —
builds on the same two functions here:

* :func:`resolve_config` — the single validation path for the run knobs
  (engine, enforcement semantics, calculus, optimizer level, fuel, cache).
  It returns a *fully resolved* :class:`RunConfig`: the engine actually
  selected, the effective fuel, the IR the compiled engines will execute,
  and ``cache`` normalized to whether the run can actually cache.  Invalid
  combinations fail here, identically, no matter which entrypoint was used.
* :func:`run` — the façade: ``run(source_or_term, config)`` executes a
  surface program (a ``str``) or an elaborated λB term on the resolved
  configuration and returns a :class:`RunResult` that *carries* that
  configuration (plus the compile-cache status), so every record downstream
  is self-describing.

The legacy ``mediator=`` spelling of the semantics axis funnels through
exactly one deprecation site, :func:`reconcile_semantics`; nothing else in
the codebase interprets ``mediator`` anymore.

Example::

    from repro.api import RunConfig, run

    cfg = RunConfig(engine="vm", semantics="threesome", opt_level=2)
    result = run("((lambda ([x : int]) (* x x)) 6)", cfg)
    assert result.value == 36 and result.config.engine == "vm"
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from .compiler.opt import DEFAULT_OPT_LEVEL, OPT_LEVELS
from .core.errors import UsageError
from .core.fuel import (
    DEFAULT_MACHINE_FUEL,
    DEFAULT_RVM_FUEL,
    DEFAULT_SUBST_FUEL,
    DEFAULT_VM_FUEL,
)
from .core.labels import Label
from .core.terms import Term
from .core.types import Type
from .lambda_b import reduction as reduction_b
from .lambda_c import reduction as reduction_c
from .lambda_s import reduction as reduction_s
from .machine import run_on_machine
from .obs.metrics import phase, record_run
from .semantics import SEMANTICS_NAMES
from .translate import b_to_c, c_to_s

#: The four execution engines: the stack bytecode VM, the register VM
#: (packed-stream dispatch over the register IR — the fastest engine), the
#: CEK machine, and the substitution-based reference oracle.
#: :data:`~repro.semantics.SEMANTICS_NAMES` is the second axis: the
#: enforcement semantics of the λS machine and both VMs.
ENGINES = ("vm", "rvm", "machine", "subst")

#: The two compiled engines: λS only, ``opt_level`` applies, cacheable.
VM_ENGINES = ("vm", "rvm")

#: Default fuel per engine, in that engine's own step unit.  All four come
#: from :mod:`repro.core.fuel`, the single source of fuel defaults.
DEFAULT_FUEL = {
    "vm": DEFAULT_VM_FUEL,
    "rvm": DEFAULT_RVM_FUEL,
    "machine": DEFAULT_MACHINE_FUEL,
    "subst": DEFAULT_SUBST_FUEL,
}

#: The instruction representation each compiled engine executes; the tree
#: interpreters have none.
IR_FOR_ENGINE = {"vm": "stack", "rvm": "register"}


@dataclass(frozen=True)
class RunConfig:
    """Every knob of one program run, as a frozen value.

    ``engine`` × ``semantics`` × ``calculus`` select the backend (see the
    :mod:`repro.surface.interp` module docstring for the matrix);
    ``opt_level`` is the bytecode optimizer's ``-O`` level; ``fuel`` is the
    step budget (``None`` = the engine's default, filled in by
    :func:`resolve_config`); ``cache``/``cache_dir`` route compiled engines
    through the on-disk compile cache; ``ir`` names the compiled
    instruction representation (derived from the engine when ``None``);
    ``trace`` is a mediator-event sink — or a path to write JSON lines to —
    active for the duration of the run; ``metrics`` is a
    :class:`~repro.obs.metrics.MetricsRegistry` collecting phase timings
    and outcome counters.

    Instances are immutable; derive variants with ``dataclasses.replace``.
    """

    engine: str = "machine"
    semantics: str = "coercion"
    calculus: str = "S"
    opt_level: int = DEFAULT_OPT_LEVEL
    fuel: int | None = None
    cache: bool = False
    cache_dir: str | None = None
    ir: str | None = None
    trace: object = None
    metrics: object = None

    def describe(self) -> dict:
        """The JSON-ready projection of the configuration (the experiment
        records embed it); the unserializable sinks become booleans."""
        return {
            "engine": self.engine,
            "semantics": self.semantics,
            "calculus": self.calculus,
            "opt_level": self.opt_level,
            "fuel": self.fuel,
            "cache": self.cache,
            "ir": self.ir,
            "traced": self.trace is not None,
        }


_MEDIATOR_KWARG_NOTE = (
    "mediator= is deprecated; spell the enforcement semantics with "
    "semantics= (or RunConfig.semantics)"
)


def reconcile_semantics(semantics: str | None, mediator: str | None, *,
                        emit=None, conflict: str = "prefer-semantics") -> str | None:
    """Collapse the legacy ``mediator`` spelling into ``semantics``.

    This is the **only** place in the codebase that interprets the
    deprecated spelling: the ``mediator=`` kwargs of ``run_source`` /
    ``run_term`` / ``run_batch`` and the CLI ``--mediator`` flag all funnel
    here.  Returns the semantics name, or ``None`` when neither was given
    (callers apply their own default).

    ``emit`` overrides how the deprecation is reported (the CLI prints to
    stderr; the default is a :class:`DeprecationWarning`).  ``conflict``
    selects what happens when both spellings are given and disagree:
    ``"prefer-semantics"`` (the historical kwarg behavior — the new
    spelling wins) or ``"error"`` (the CLI behavior — a
    :class:`UsageError`).
    """
    if mediator is None:
        return semantics
    if emit is None:
        warnings.warn(_MEDIATOR_KWARG_NOTE, DeprecationWarning, stacklevel=3)
    else:
        emit(mediator)
    if semantics is not None and semantics != mediator:
        if conflict == "error":
            raise UsageError(
                f"--mediator {mediator} contradicts --semantics {semantics}; "
                "drop the deprecated --mediator flag"
            )
        return semantics
    return mediator


def resolve_config(config: RunConfig | None = None, **overrides) -> RunConfig:
    """Validate and complete a run configuration — the single validation path.

    Starts from ``config`` (or the default :class:`RunConfig`), applies any
    keyword ``overrides`` (field name → value; ``None`` overrides are
    ignored for the knobs whose ``None`` means "default"), and returns the
    fully-resolved configuration: calculus uppercased, fuel filled from the
    engine default, ``ir`` derived from the engine, and ``cache`` narrowed
    to the engines that can actually cache.  Raises exactly the errors the
    historical per-entrypoint validation raised: ``ValueError`` for an
    unknown engine, :class:`UsageError` for everything else.
    """
    base = config if config is not None else RunConfig()
    if overrides:
        base = replace(base, **overrides)

    engine = base.engine or "machine"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    calculus = (base.calculus or "S").upper()
    if base.semantics not in SEMANTICS_NAMES:
        raise UsageError(
            f"unknown semantics {base.semantics!r}; expected one of {SEMANTICS_NAMES}"
        )
    if base.opt_level not in OPT_LEVELS:
        raise UsageError(
            f"unknown optimization level {base.opt_level!r}; "
            f"expected one of {OPT_LEVELS}"
        )
    if engine in VM_ENGINES and calculus != "S":
        raise UsageError(
            f"engine {engine!r} implements λS only (requested calculus {calculus!r}); "
            "use engine='machine' for λB or λC"
        )
    if engine == "subst" and base.semantics != "coercion":
        raise UsageError(
            "engine 'subst' reduces coercion terms literally and supports "
            f"only the 'coercion' semantics (requested {base.semantics!r}); "
            "use engine='machine' or engine='vm'"
        )
    ir = IR_FOR_ENGINE.get(engine)
    if base.ir is not None and base.ir != ir:
        raise UsageError(
            f"ir {base.ir!r} does not apply to engine {engine!r}"
            + (f" (its IR is {ir!r})" if ir else " (tree interpreters have no IR)")
        )
    fuel = base.fuel if base.fuel is not None else DEFAULT_FUEL[engine]
    return replace(base, engine=engine, calculus=calculus, ir=ir, fuel=fuel,
                   cache=base.cache and engine in VM_ENGINES)


@dataclass(frozen=True)
class RunResult:
    """The outcome of running a surface program.

    ``kind`` is ``"value"``, ``"blame"``, or ``"timeout"``; the timeout shape
    is identical for every engine (``steps`` holds the fuel spent).
    ``config`` is the fully-resolved :class:`RunConfig` the run executed
    under (the engine actually used, the effective fuel and opt level) and
    ``cache_status`` the compile-cache disposition (``"hit"``, ``"miss"``,
    ``"recovered"``, or ``None`` when the run never touched the cache) — so
    a result is self-describing without re-deriving what ran.
    """

    kind: str  # 'value' | 'blame' | 'timeout'
    value: object = None
    blame_label: Label | None = None
    type: Type | None = None
    calculus: str = "S"
    engine: str = "machine"
    mediator: str = "coercion"
    space_stats: dict | None = None
    steps: int = 0
    cache_status: str | None = None
    config: RunConfig | None = None

    @property
    def semantics(self) -> str:
        """The enforcement semantics this run executed under (see
        :data:`repro.semantics.SEMANTICS`); an alias of ``mediator``."""
        return self.mediator

    @property
    def is_value(self) -> bool:
        return self.kind == "value"

    @property
    def is_blame(self) -> bool:
        return self.kind == "blame"

    @property
    def is_timeout(self) -> bool:
        return self.kind == "timeout"

    def __str__(self) -> str:  # pragma: no cover - presentation
        if self.kind == "value":
            return f"{self.value!r} : {self.type}"
        if self.kind == "blame":
            return f"blame {self.blame_label}"
        return f"timeout after {self.steps} {self.engine} steps"


def _from_machine_outcome(outcome, ty, calculus: str, engine: str,
                          mediator: str = "coercion",
                          config: RunConfig | None = None,
                          cache_status: str | None = None) -> RunResult:
    """Map a :class:`~repro.machine.cek.MachineOutcome` (machine or VM) to a
    :class:`RunResult` — one code path so the outcome shapes stay uniform."""
    steps = (outcome.stats or {}).get("steps", 0)
    if outcome.is_value:
        return RunResult("value", outcome.python_value(), type=ty, calculus=calculus,
                         engine=engine, mediator=mediator, space_stats=outcome.stats,
                         steps=steps, cache_status=cache_status, config=config)
    if outcome.is_blame:
        return RunResult("blame", blame_label=outcome.label, type=ty, calculus=calculus,
                         engine=engine, mediator=mediator, space_stats=outcome.stats,
                         steps=steps, cache_status=cache_status, config=config)
    return RunResult("timeout", type=ty, calculus=calculus, engine=engine,
                     mediator=mediator, space_stats=outcome.stats, steps=steps,
                     cache_status=cache_status, config=config)


def _maybe_tracing(trace: object, program: str | None):
    """A ``tracing`` context for ``RunConfig.trace`` (sink or path), or a no-op."""
    from contextlib import nullcontext

    if trace is None:
        return nullcontext()
    from .obs import JsonLinesSink, tracing

    sink = JsonLinesSink(trace) if isinstance(trace, str) else trace
    return tracing(sink, program=program or "<api.run>")


def run(source_or_term, config: RunConfig | None = None, *,
        type: Type | None = None, source_hash: str | None = None,
        opcode_counts: dict | None = None, program_name: str | None = None,
        **overrides) -> RunResult:
    """Run a surface program (``str``) or an elaborated λB term.

    The single execution façade: resolves ``config`` (plus field
    ``overrides``) through :func:`resolve_config`, dispatches on the input
    kind, and returns a :class:`RunResult` carrying the resolved
    configuration.  For sources on a caching engine the compiled image is
    looked up in — and stored to — the on-disk compile cache, keyed on the
    source text; a warm run skips the whole front end.

    ``type`` (term inputs) is the term's static type, if known;
    ``source_hash`` (term inputs) addresses the compile cache when the term
    was compiled from known source; ``opcode_counts`` (compiled engines) is
    an optional dict filled with per-opcode dispatch counts;
    ``program_name`` labels the trace stream when ``config.trace`` is set.
    """
    cfg = resolve_config(config, **overrides)
    with _maybe_tracing(cfg.trace, program_name):
        if isinstance(source_or_term, str):
            return _run_source(source_or_term, cfg, opcode_counts)
        if not isinstance(source_or_term, Term):
            raise TypeError(
                "run() takes surface source (str) or an elaborated λB Term, "
                f"got {source_or_term.__class__.__name__}"
            )
        return _run_term(source_or_term, type, cfg, source_hash, opcode_counts)


def _run_source(source: str, cfg: RunConfig, opcode_counts: dict | None) -> RunResult:
    """The source path: warm-cache fast path, else front end + term path."""
    # Late import both ways: interp imports this module for the shims, and
    # the front end stays monkeypatchable at ``interp.compile_source``.
    from .surface import interp

    metrics = cfg.metrics
    if cfg.cache:
        from .compiler.cache import cache_lookup
        from .compiler.serialize import source_fingerprint

        source_hash = source_fingerprint(source)
        image = cache_lookup(source_hash, cfg.opt_level, cfg.semantics,
                             cfg.cache_dir, cfg.ir, metrics=metrics)
        if image is not None:
            if cfg.engine == "rvm":
                from .compiler.rvm import run_rcode

                with phase(metrics, "run"):
                    outcome = run_rcode(image.rcode, cfg.fuel,
                                        opcode_counts=opcode_counts)
            else:
                from .compiler.vm import run_code

                with phase(metrics, "run"):
                    outcome = run_code(image.code, cfg.fuel,
                                       opcode_counts=opcode_counts)
            record_run(metrics, outcome.kind, outcome.stats, cfg.engine)
            return _from_machine_outcome(outcome, image.info.static_type, "S",
                                         cfg.engine, cfg.semantics, config=cfg,
                                         cache_status="hit")
        term, ty = interp.compile_source(source, metrics)
        return _run_term(term, ty, cfg, source_hash, opcode_counts)
    term, ty = interp.compile_source(source, metrics)
    return _run_term(term, ty, cfg, None, opcode_counts)


def _run_term(term: Term, ty: Type | None, cfg: RunConfig,
              source_hash: str | None, opcode_counts: dict | None) -> RunResult:
    """The term path: compiled engines (optionally through the cache), the
    CEK machine, or the substitution oracle — all validated already."""
    metrics = cfg.metrics
    engine, semantics, calculus, fuel = cfg.engine, cfg.semantics, cfg.calculus, cfg.fuel

    if engine in VM_ENGINES:
        cache_status = None
        if cfg.cache:
            from .compiler.cache import cached_compile

            found = cached_compile(term, source_hash=source_hash, static_type=ty,
                                   mediator=semantics, opt_level=cfg.opt_level,
                                   cache_dir=cfg.cache_dir, ir=cfg.ir,
                                   metrics=metrics)
            if ty is None:
                ty = found.image.info.static_type
            cache_status = found.status
            if engine == "rvm":
                from .compiler.rvm import run_rcode

                with phase(metrics, "run"):
                    outcome = run_rcode(found.image.rcode, fuel,
                                        opcode_counts=opcode_counts)
            else:
                from .compiler.vm import run_code

                with phase(metrics, "run"):
                    outcome = run_code(found.image.code, fuel,
                                       opcode_counts=opcode_counts)
        elif engine == "rvm":
            from .compiler.rvm import compile_term_registers, run_rcode

            rcode = compile_term_registers(term, mediator=semantics,
                                           opt_level=cfg.opt_level, metrics=metrics)
            with phase(metrics, "run"):
                outcome = run_rcode(rcode, fuel, opcode_counts=opcode_counts)
        else:
            from .compiler.vm import compile_term, run_code

            code = compile_term(term, mediator=semantics, opt_level=cfg.opt_level,
                                metrics=metrics)
            with phase(metrics, "run"):
                outcome = run_code(code, fuel, opcode_counts=opcode_counts)
        record_run(metrics, outcome.kind, outcome.stats, engine)
        return _from_machine_outcome(outcome, ty, calculus, engine, semantics,
                                     config=cfg, cache_status=cache_status)

    if engine == "machine":
        # run_on_machine validates the calculus × semantics combination.
        with phase(metrics, "run"):
            outcome = run_on_machine(term, calculus, fuel, mediator=semantics)
        record_run(metrics, outcome.kind, outcome.stats, engine)
        return _from_machine_outcome(outcome, ty, calculus, engine, semantics,
                                     config=cfg)

    with phase(metrics, "run"):
        if calculus == "B":
            outcome = reduction_b.run(term, fuel)
        elif calculus == "C":
            outcome = reduction_c.run(b_to_c(term), fuel)
        elif calculus == "S":
            outcome = reduction_s.run(c_to_s(b_to_c(term)), fuel)
        else:
            raise ValueError(f"unknown calculus {calculus!r}")
    record_run(metrics, outcome.kind, {"steps": outcome.steps}, engine)
    if outcome.is_value:
        # Same projection as the machine/VM engines' python_value(), so every
        # engine's RunResult.value is directly comparable.
        from .properties.bisimulation import reducer_value_to_python

        value = reducer_value_to_python(outcome.term)
        return RunResult("value", value, type=ty, calculus=calculus, engine=engine,
                         steps=outcome.steps, config=cfg)
    if outcome.is_blame:
        return RunResult("blame", blame_label=outcome.label, type=ty,
                         calculus=calculus, engine=engine, steps=outcome.steps,
                         config=cfg)
    return RunResult("timeout", type=ty, calculus=calculus, engine=engine,
                     steps=outcome.steps, config=cfg)


__all__ = [
    "DEFAULT_FUEL",
    "ENGINES",
    "IR_FOR_ENGINE",
    "RunConfig",
    "RunResult",
    "VM_ENGINES",
    "reconcile_semantics",
    "resolve_config",
    "run",
]
