"""The single source of truth for default fuel budgets.

Every engine bounds its run with *fuel* measured in its own step unit —
VM instructions, CEK machine transitions, small-step reductions — and each
used to declare its default budget in its own module.  That invited drift:
a CLI default, an engine default, and an oracle default disagreeing means
the same program "times out" after different amounts of work depending on
which entry point ran it.  All defaults now live here and are imported
everywhere (``repro.compiler.vm``, ``repro.machine.cek``,
``repro.surface.interp``, the reducers), so changing a budget is a one-line
edit with one observable meaning.

The budgets are deliberately different numbers: a VM instruction is much
cheaper than a machine transition, which is much cheaper than a substitution
step, so equal wall-clock patience corresponds to very different step
counts per engine.
"""

from __future__ import annotations

#: Bytecode-VM fuel, in VM instructions (the cheapest step unit).
DEFAULT_VM_FUEL = 20_000_000

#: Register-VM fuel, in register instructions.  One register instruction
#: does the work of roughly two stack instructions (operands ride in the
#: instruction; fused pairs are one dispatch), so the same budget buys the
#: rvm engine *more* program than the stack VM — deliberately: fuel bounds
#: patience, not work, and the two engines' timeouts should agree on the
#: programs the oracles compare.
DEFAULT_RVM_FUEL = 20_000_000

#: CEK-machine fuel, in machine transitions.
DEFAULT_MACHINE_FUEL = 5_000_000

#: Substitution-engine fuel used by the interp/CLI front end, in reduction
#: steps (the most expensive step unit — each step rebuilds terms).
DEFAULT_SUBST_FUEL = 200_000

#: Default fuel of the reducers' own ``run``/``trace`` entry points, used by
#: the property checkers that drive the reducers directly.
DEFAULT_REDUCTION_FUEL = 100_000
