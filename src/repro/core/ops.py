"""Primitive operators on base types.

Figure 1: "Each operator ``op`` on base types is specified by a total meaning
function ``[[op]]`` that preserves types: if ``op : ι⃗ → ι`` and ``k⃗ : ι⃗``,
then ``[[op]](k⃗) = k`` with ``k : ι``."

Every operator registered here is total on well-typed constant arguments;
in particular division and modulo are made total by mapping division by zero
to ``0`` (documented deviation in DESIGN.md).  Operators only consume and
produce *base-type* constants, exactly as in the paper — higher-order
behaviour always goes through application and casts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .errors import EvaluationError, TypeCheckError
from .types import BOOL, INT, STR, UNIT, BaseType, Type


@dataclass(frozen=True)
class OpSpec:
    """Signature and meaning function of a primitive operator.

    Attributes:
        name: the operator's surface name (e.g. ``"+"``).
        arg_types: the base types of the operands, ``ι⃗``.
        result_type: the base type of the result, ``ι``.
        meaning: the total meaning function ``[[op]]``.
    """

    name: str
    arg_types: tuple[BaseType, ...]
    result_type: BaseType
    meaning: Callable[..., object]

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    def apply(self, args: Sequence[object]) -> object:
        """Apply the meaning function, checking arity."""
        if len(args) != self.arity:
            raise EvaluationError(
                f"operator {self.name!r} expects {self.arity} arguments, got {len(args)}"
            )
        return self.meaning(*args)


def _total_div(a: int, b: int) -> int:
    return 0 if b == 0 else a // b


def _total_mod(a: int, b: int) -> int:
    return 0 if b == 0 else a % b


def _build_registry() -> dict[str, OpSpec]:
    specs = [
        # Integer arithmetic.
        OpSpec("+", (INT, INT), INT, lambda a, b: a + b),
        OpSpec("-", (INT, INT), INT, lambda a, b: a - b),
        OpSpec("*", (INT, INT), INT, lambda a, b: a * b),
        OpSpec("/", (INT, INT), INT, _total_div),
        OpSpec("%", (INT, INT), INT, _total_mod),
        OpSpec("neg", (INT,), INT, lambda a: -a),
        OpSpec("abs", (INT,), INT, abs),
        OpSpec("min", (INT, INT), INT, min),
        OpSpec("max", (INT, INT), INT, max),
        OpSpec("inc", (INT,), INT, lambda a: a + 1),
        OpSpec("dec", (INT,), INT, lambda a: a - 1),
        # Integer comparisons.
        OpSpec("=", (INT, INT), BOOL, lambda a, b: a == b),
        OpSpec("<", (INT, INT), BOOL, lambda a, b: a < b),
        OpSpec("<=", (INT, INT), BOOL, lambda a, b: a <= b),
        OpSpec(">", (INT, INT), BOOL, lambda a, b: a > b),
        OpSpec(">=", (INT, INT), BOOL, lambda a, b: a >= b),
        OpSpec("zero?", (INT,), BOOL, lambda a: a == 0),
        OpSpec("even?", (INT,), BOOL, lambda a: a % 2 == 0),
        OpSpec("odd?", (INT,), BOOL, lambda a: a % 2 == 1),
        # Booleans.
        OpSpec("not", (BOOL,), BOOL, lambda a: not a),
        OpSpec("and", (BOOL, BOOL), BOOL, lambda a, b: a and b),
        OpSpec("or", (BOOL, BOOL), BOOL, lambda a, b: a or b),
        OpSpec("bool=", (BOOL, BOOL), BOOL, lambda a, b: a == b),
        # Strings.
        OpSpec("string-append", (STR, STR), STR, lambda a, b: a + b),
        OpSpec("string-length", (STR,), INT, len),
        OpSpec("string=", (STR, STR), BOOL, lambda a, b: a == b),
        OpSpec("int->string", (INT,), STR, str),
        # Unit.
        OpSpec("unit", (), UNIT, lambda: None),
    ]
    return {spec.name: spec for spec in specs}


#: Registry of the built-in operators, keyed by name.
OPS: Mapping[str, OpSpec] = _build_registry()


def op_spec(name: str) -> OpSpec:
    """Look up an operator, raising :class:`TypeCheckError` if unknown."""
    try:
        return OPS[name]
    except KeyError as exc:
        raise TypeCheckError(f"unknown primitive operator: {name!r}") from exc


def op_exists(name: str) -> bool:
    return name in OPS


def constant_type(value: object) -> Type:
    """The base type of a Python constant used as ``k : ι``."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, str):
        return STR
    if value is None:
        return UNIT
    raise TypeCheckError(f"no base type for constant {value!r}")


def check_constant(value: object, ty: Type) -> bool:
    """Does the Python constant ``value`` inhabit base type ``ty``?"""
    try:
        return constant_type(value) == ty
    except TypeCheckError:
        return False
