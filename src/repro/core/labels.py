"""Blame labels with involutive complement.

Section 2 of the paper: "Let p, q range over blame labels.  To indicate on
which side of a cast blame lays, each blame label p has a complement p̄.
Complement is involutive, p̄̄ = p."

A label therefore consists of a name and a polarity.  ``complement`` flips the
polarity; applying it twice returns the original label.  The distinguished
label ``BULLET`` plays the role of the paper's ``•`` — a label attached to
casts that can never allocate blame (used by the coercion-to-cast translation
of Figure 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class Label:
    """A blame label ``p`` or its complement ``p̄``.

    Attributes:
        name: the human-readable label name (typically a source location or a
            freshly generated identifier such as ``"p3"``).
        positive: ``True`` for ``p`` itself, ``False`` for the complement
            ``p̄``.  Positive blame means the fault lies with the term inside
            the cast; negative blame means the fault lies with the context.
    """

    name: str
    positive: bool = True

    def complement(self) -> "Label":
        """Return ``p̄`` for ``p`` and ``p`` for ``p̄`` (involutive)."""
        return Label(self.name, not self.positive)

    @property
    def is_negative(self) -> bool:
        return not self.positive

    def base(self) -> "Label":
        """Return the positive version of this label."""
        return self if self.positive else Label(self.name, True)

    def same_base(self, other: "Label") -> bool:
        """True when two labels differ at most in polarity."""
        return self.name == other.name

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name if self.positive else f"~{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Label({self.name!r}, positive={self.positive})"


#: The paper's ``•`` label: "a blame label in casts where the label is
#: irrelevant because the cast cannot allocate blame" (Figure 4).
BULLET = Label("•")


def label(name: str) -> Label:
    """Convenience constructor for a positive label."""
    return Label(name, True)


class LabelSupply:
    """A supply of fresh blame labels.

    The embedding of the dynamically typed λ-calculus (Figure 1) and the
    surface-language cast-insertion pass both "introduce a fresh label for
    each cast"; they draw the labels from an instance of this class so tests
    can reproduce label assignment deterministically.
    """

    def __init__(self, prefix: str = "p", start: int = 1):
        self._prefix = prefix
        self._counter = itertools.count(start)

    def fresh(self, hint: str | None = None) -> Label:
        """Return a fresh positive label, optionally embedding a hint."""
        index = next(self._counter)
        if hint:
            return Label(f"{self._prefix}{index}:{hint}", True)
        return Label(f"{self._prefix}{index}", True)

    def fresh_many(self, count: int) -> Iterator[Label]:
        for _ in range(count):
            yield self.fresh()


def complement(p: Label) -> Label:
    """Free-function form of :meth:`Label.complement`."""
    return p.complement()
