"""Immutable type environments ``Γ`` shared by every type checker."""

from __future__ import annotations

from typing import Iterator, Mapping

from .errors import TypeCheckError
from .types import Type


class TypeEnv:
    """An immutable mapping from variable names to types.

    Extension returns a new environment; the original is never mutated, so
    environments can be shared freely between recursive calls of the type
    checkers.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[str, Type] | None = None):
        self._bindings: dict[str, Type] = dict(bindings or {})

    @staticmethod
    def empty() -> "TypeEnv":
        return TypeEnv()

    def extend(self, name: str, ty: Type) -> "TypeEnv":
        """Return ``Γ, x:A``."""
        new = dict(self._bindings)
        new[name] = ty
        return TypeEnv(new)

    def lookup(self, name: str) -> Type:
        """Look up ``x`` in ``Γ``, raising :class:`TypeCheckError` if unbound."""
        try:
            return self._bindings[name]
        except KeyError as exc:
            raise TypeCheckError(f"unbound variable: {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TypeEnv) and self._bindings == other._bindings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}: {v}" for k, v in sorted(self._bindings.items()))
        return f"TypeEnv({{{inner}}})"


EMPTY_ENV = TypeEnv()
