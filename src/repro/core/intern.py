"""Hash-consing (interning) for types and coercions.

The space-efficient machine composes, compares, and hashes the same handful
of types and coercions millions of times: every ``#`` merge on the even/odd
workload rebuilds a structurally identical canonical coercion, and every
cast rule compares types structurally.  Interning gives every structurally
equal value a single canonical representative, so

* structural equality on canonical representatives is pointer equality
  (``intern(a) is intern(b)``  iff  ``a == b``), and
* derived operations — the compatibility predicates in
  :mod:`repro.core.types` and λS composition ``#`` — can be memoised on the
  *identity* of canonical nodes, turning a structural recursion into a
  dictionary hit.

The tables key children by ``id`` of their (already canonical) nodes, so an
intern lookup costs O(1) per node rather than a structural hash; canonical
nodes are kept alive for the lifetime of the process, which keeps the ids
stable.  The per-language intern functions live next to the classes they
canonicalise: :func:`intern_type` here, ``intern_coercion`` in
:mod:`repro.lambda_c.coercions`, and ``intern_space`` in
:mod:`repro.lambda_s.coercions`.
"""

from __future__ import annotations

from typing import Callable, Hashable

from .types import (
    BASE_TYPES,
    DYN,
    GROUND_FUN,
    GROUND_PROD,
    UNKNOWN,
    BaseType,
    DynType,
    FunType,
    ProdType,
    Type,
    UnknownType,
)


class Interner:
    """A hash-consing table for one family of immutable tree values.

    ``canonical(key, build)`` returns the canonical node for ``key``,
    constructing it with ``build()`` on first sight.  ``key`` must determine
    the node up to structural equality and should reference children by the
    ``id`` of their canonical representatives (cheap to hash).  Canonical
    nodes are retained forever, so their ids are stable cache keys.
    """

    __slots__ = ("name", "_by_key", "_canonical_ids", "_aliases", "hits", "misses")

    def __init__(self, name: str):
        self.name = name
        self._by_key: dict[Hashable, object] = {}
        self._canonical_ids: set[int] = set()
        # Non-canonical nodes we have interned before, mapped to their
        # canonical representative.  The aliased node itself is retained so
        # its id cannot be reused; this is what makes re-interning the same
        # AST node (e.g. a Coerce's coercion, once per loop iteration) O(1).
        # Bounded: evicting an entry is always safe (the node just re-interns
        # through the canonical table), so long-lived processes don't retain
        # every transient object ever interned.
        self._aliases: dict[int, tuple[object, object]] = {}
        self.hits = 0
        self.misses = 0
        _REGISTRY[name] = self

    def is_canonical(self, node: object) -> bool:
        """Has ``node`` itself been issued by this table?"""
        return id(node) in self._canonical_ids

    def alias_of(self, node: object) -> object | None:
        """The canonical representative recorded for this exact node, if any."""
        entry = self._aliases.get(id(node))
        if entry is None:
            return None
        self.hits += 1
        return entry[1]

    MAX_ALIASES = 1 << 16

    def remember_alias(self, node: object, canonical: object) -> None:
        if node is canonical:
            return
        if len(self._aliases) >= self.MAX_ALIASES:
            # FIFO eviction: drop the oldest alias.  Its node may then be
            # garbage collected and its id reused, but the entry is gone, so
            # a stale hit is impossible.
            self._aliases.pop(next(iter(self._aliases)))
        self._aliases[id(node)] = (node, canonical)

    def canonical(self, key: Hashable, build: Callable[[], object]) -> object:
        found = self._by_key.get(key)
        if found is not None:
            self.hits += 1
            return found
        node = build()
        self._by_key[key] = node
        self._canonical_ids.add(id(node))
        self.misses += 1
        return node

    def seed(self, key: Hashable, node: object) -> object:
        """Install ``node`` as the canonical representative for ``key``."""
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        self._by_key[key] = node
        self._canonical_ids.add(id(node))
        return node

    def __len__(self) -> int:
        return len(self._by_key)

    def stats(self) -> dict[str, int]:
        return {"entries": len(self._by_key), "hits": self.hits, "misses": self.misses}


_REGISTRY: dict[str, Interner] = {}


def intern_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/size statistics for every intern table (diagnostics, benchmarks)."""
    return {name: table.stats() for name, table in _REGISTRY.items()}


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

_types = Interner("types")

# Seed the well-known singletons so interning maps onto the module constants.
_types.seed(("dyn",), DYN)
_types.seed(("unknown",), UNKNOWN)
for _base in BASE_TYPES:
    _types.seed(("base", _base.name), _base)
_types.seed(("fun", id(DYN), id(DYN)), GROUND_FUN)
_types.seed(("prod", id(DYN), id(DYN)), GROUND_PROD)


def intern_type(ty: Type) -> Type:
    """The canonical representative of ``ty``; idempotent, O(1) when canonical.

    ``intern_type(a) is intern_type(b)``  iff  ``a == b``.
    """
    if _types.is_canonical(ty):
        return ty
    aliased = _types.alias_of(ty)
    if aliased is not None:
        return aliased
    if isinstance(ty, DynType):
        canon = _types.canonical(("dyn",), lambda: ty)
    elif isinstance(ty, UnknownType):
        canon = _types.canonical(("unknown",), lambda: ty)
    elif isinstance(ty, BaseType):
        canon = _types.canonical(("base", ty.name), lambda: ty)
    elif isinstance(ty, FunType):
        dom = intern_type(ty.dom)
        cod = intern_type(ty.cod)
        canon = _types.canonical(
            ("fun", id(dom), id(cod)),
            lambda: ty if (ty.dom is dom and ty.cod is cod) else FunType(dom, cod),
        )
    elif isinstance(ty, ProdType):
        left = intern_type(ty.left)
        right = intern_type(ty.right)
        canon = _types.canonical(
            ("prod", id(left), id(right)),
            lambda: ty if (ty.left is left and ty.right is right) else ProdType(left, right),
        )
    else:
        raise TypeError(f"cannot intern unknown type node: {ty!r}")
    _types.remember_alias(ty, canon)
    return canon


def is_interned_type(ty: Type) -> bool:
    return _types.is_canonical(ty)
