"""Deterministic fault injection for chaos testing the runtime layer.

The serving stack (and anything else that opts in) is exercised under
*injected* failures — worker crashes, slow compiles, torn cache writes —
instead of waiting for production to produce them.  The injector is
deliberately boring:

* **A fault plan is a parsed spec string.**  ``REPRO_GRADUAL_FAULTS``
  holds comma-separated ``site:probability[:limit]`` entries, e.g.::

      REPRO_GRADUAL_FAULTS=worker_kill:0.1,slow_compile:0.05,torn_write:0.02
      REPRO_GRADUAL_FAULTS=worker_kill:1.0:1      # fire exactly once

  ``site`` names an injection point (the catalogue lives with each hook:
  ``worker_kill`` in :mod:`repro.serve.pool`, ``slow_compile`` in
  :mod:`repro.compiler.cache`, ``torn_write`` in
  :mod:`repro.compiler.serialize`); ``probability`` is the per-draw firing
  chance; the optional ``limit`` caps total firings so a fault can be
  scoped to "the first request" in smoke tests.

* **Every draw is seeded.**  Each site gets its own :class:`random.Random`
  stream keyed on ``(seed, salt, site)`` — ``REPRO_GRADUAL_FAULTS_SEED``
  (default :data:`DEFAULT_FAULT_SEED`) crossed with a per-process salt —
  so the *sequence of decisions at a site* is a pure function of the seed,
  and a chaos run replays bit-identically when requests arrive in the same
  order.

* **Absence is free.**  Producers guard every hook with
  ``plan = current_plan()`` / ``if plan is not None``; with the environment
  variable unset the plan is ``None`` and the hot paths never construct
  anything.
"""

from __future__ import annotations

import os
import random
import time

#: Environment variable holding the fault spec (empty/unset = no faults).
FAULTS_ENV = "REPRO_GRADUAL_FAULTS"

#: Environment variable overriding the fault RNG seed.
FAULTS_SEED_ENV = "REPRO_GRADUAL_FAULTS_SEED"

#: Default seed for fault draws (the repo-wide reproducibility seed).
DEFAULT_FAULT_SEED = 20150613


class FaultSpecError(ValueError):
    """A fault spec string could not be parsed."""


def parse_spec(spec: str) -> dict[str, tuple[float, int | None]]:
    """Parse ``site:prob[:limit],...`` into ``{site: (prob, limit)}``.

    Raises :class:`FaultSpecError` on malformed entries — a chaos run with
    a typo'd spec must fail loudly, not silently run fault-free.
    """
    sites: dict[str, tuple[float, int | None]] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise FaultSpecError(
                f"malformed fault entry {entry!r} (expected site:prob[:limit])"
            )
        site = parts[0].strip()
        try:
            prob = float(parts[1])
        except ValueError as exc:
            raise FaultSpecError(f"malformed fault probability in {entry!r}") from exc
        if not 0.0 <= prob <= 1.0:
            raise FaultSpecError(f"fault probability out of [0, 1] in {entry!r}")
        limit: int | None = None
        if len(parts) == 3:
            try:
                limit = int(parts[2])
            except ValueError as exc:
                raise FaultSpecError(f"malformed fault limit in {entry!r}") from exc
            if limit < 0:
                raise FaultSpecError(f"negative fault limit in {entry!r}")
        if not site:
            raise FaultSpecError(f"empty fault site in {entry!r}")
        sites[site] = (prob, limit)
    return sites


class FaultPlan:
    """Seeded, per-site fault decisions parsed from a spec string.

    One plan per process (or per logical actor — the pool coordinator and
    each worker carry their own salt, so their draw streams are
    independent but individually reproducible).
    """

    def __init__(
        self,
        sites: dict[str, tuple[float, int | None]],
        seed: int = DEFAULT_FAULT_SEED,
        salt: str = "",
    ) -> None:
        self.sites = dict(sites)
        self.seed = seed
        self.salt = salt
        self.fired: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}

    @classmethod
    def from_spec(
        cls, spec: str, seed: int | None = None, salt: str = ""
    ) -> "FaultPlan":
        if seed is None:
            seed = _env_seed()
        return cls(parse_spec(spec), seed=seed, salt=salt)

    def spec(self) -> str:
        """Re-render the plan as a spec string (for shipping to workers)."""
        parts = []
        for site, (prob, limit) in self.sites.items():
            entry = f"{site}:{prob}"
            if limit is not None:
                entry += f":{limit}"
            parts.append(entry)
        return ",".join(parts)

    def fires(self, site: str) -> bool:
        """Draw the next decision for ``site``; ``False`` for unknown sites.

        Each call consumes one draw from the site's seeded stream, and a
        site past its ``limit`` stops firing (the draw is still consumed,
        keeping later decisions aligned with an unlimited run).
        """
        entry = self.sites.get(site)
        if entry is None:
            return False
        prob, limit = entry
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.seed}:{self.salt}:{site}")
        hit = rng.random() < prob
        if not hit:
            return False
        if limit is not None and self.fired.get(site, 0) >= limit:
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        return True

    def delay(self, site: str, duration_s: float = 0.05) -> bool:
        """Sleep ``duration_s`` if the site fires (the slow-path fault)."""
        if self.fires(site):
            time.sleep(duration_s)
            return True
        return False


def _env_seed() -> int:
    raw = os.environ.get(FAULTS_SEED_ENV)
    if raw:
        try:
            return int(raw)
        except ValueError as exc:
            raise FaultSpecError(f"malformed {FAULTS_SEED_ENV}: {raw!r}") from exc
    return DEFAULT_FAULT_SEED


#: The process-global plan.  ``_UNSET`` distinguishes "not initialized yet"
#: from "initialized to None" (no faults configured).
_UNSET = object()
_PLAN: object = _UNSET


def current_plan() -> FaultPlan | None:
    """The process's active fault plan, or ``None`` when faults are off.

    Lazily initialized from :data:`FAULTS_ENV` on first call; hooks call
    this once per injection point and skip everything when it is ``None``.
    """
    global _PLAN
    if _PLAN is _UNSET:
        spec = os.environ.get(FAULTS_ENV, "")
        _PLAN = FaultPlan.from_spec(spec) if spec.strip() else None
    return _PLAN  # type: ignore[return-value]


def set_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` as the process-global plan (workers and tests)."""
    global _PLAN
    _PLAN = plan


def reset_plan() -> None:
    """Forget the cached plan so the next :func:`current_plan` re-reads the
    environment (test isolation)."""
    global _PLAN
    _PLAN = _UNSET
