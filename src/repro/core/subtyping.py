"""Subtyping, blame safety for casts, and the meet over naive subtyping.

This module implements Figure 2 of the paper:

* ordinary subtyping ``A <: B`` — characterises casts that never blame;
* positive subtyping ``A <:+ B`` — casts that never allocate *positive* blame;
* negative subtyping ``A <:− B`` — casts that never allocate *negative* blame;
* naive subtyping ``A <:n B`` — ``A`` is more precise than ``B``;
* the safe-cast judgement ``(A ⇒p B) safe q``;

together with the Tangram lemma (Lemma 4) as executable checks, the pointed
types ``S, T ::= ι | S → T | S × T | ? | ⊥`` of Section 5.2, and the meet
``A & B`` (greatest lower bound with respect to naive subtyping) used by the
Fundamental Property of Casts (Lemmas 20 and 21).

Products (the paper's anticipated extension) are covariant in every relation,
in both components.
"""

from __future__ import annotations

from dataclasses import dataclass

from .labels import Label
from .types import (
    DYN,
    BaseType,
    DynType,
    FunType,
    ProdType,
    Type,
    is_ground,
)


# ---------------------------------------------------------------------------
# Pointed types (Section 5.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class BottomType(Type):
    """The pointed type ``⊥``, below every type in naive subtyping."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "⊥"


BOT = BottomType()


def contains_bottom(ty: Type) -> bool:
    """Does a pointed type mention ``⊥`` anywhere?"""
    if isinstance(ty, BottomType):
        return True
    if isinstance(ty, FunType):
        return contains_bottom(ty.dom) or contains_bottom(ty.cod)
    if isinstance(ty, ProdType):
        return contains_bottom(ty.left) or contains_bottom(ty.right)
    return False


# ---------------------------------------------------------------------------
# The four subtyping relations (Figure 2)
# ---------------------------------------------------------------------------


def subtype(a: Type, b: Type) -> bool:
    """Ordinary subtyping ``A <: B``: the cast ``A ⇒ B`` never yields blame.

    Rules: ``ι <: ι``; contravariant/covariant function rule; covariant
    product rule; ``A <: ?`` when ``A <: G`` for the ground type of ``A``;
    and ``? <: ?`` (needed for reflexivity, cf. Wadler & Findler 2009).
    """
    if isinstance(a, BottomType):
        return True
    if isinstance(a, DynType) and isinstance(b, DynType):
        return True
    if isinstance(a, BaseType) and isinstance(b, BaseType):
        return a == b
    if isinstance(a, FunType) and isinstance(b, FunType):
        return subtype(b.dom, a.dom) and subtype(a.cod, b.cod)
    if isinstance(a, ProdType) and isinstance(b, ProdType):
        return subtype(a.left, b.left) and subtype(a.right, b.right)
    if isinstance(b, DynType) and not isinstance(a, DynType):
        # A <: ?  iff  A <: G where G is the ground type of A.
        if isinstance(a, BaseType):
            return True
        if isinstance(a, FunType):
            return subtype(DYN, a.dom) and subtype(a.cod, DYN)
        if isinstance(a, ProdType):
            return subtype(a.left, DYN) and subtype(a.right, DYN)
    return False


def subtype_pos(a: Type, b: Type) -> bool:
    """Positive subtyping ``A <:+ B``: the cast never allocates positive blame."""
    if isinstance(a, BottomType):
        return True
    if isinstance(b, DynType):
        return True  # A <:+ ?
    if isinstance(a, BaseType) and isinstance(b, BaseType):
        return a == b
    if isinstance(a, FunType) and isinstance(b, FunType):
        return subtype_neg(b.dom, a.dom) and subtype_pos(a.cod, b.cod)
    if isinstance(a, ProdType) and isinstance(b, ProdType):
        return subtype_pos(a.left, b.left) and subtype_pos(a.right, b.right)
    return False


def subtype_neg(a: Type, b: Type) -> bool:
    """Negative subtyping ``A <:− B``: the cast never allocates negative blame."""
    if isinstance(a, BottomType):
        return True
    if isinstance(a, DynType):
        return True  # ? <:− B
    if isinstance(a, BaseType) and isinstance(b, BaseType):
        return a == b
    if isinstance(a, FunType) and isinstance(b, FunType):
        return subtype_pos(b.dom, a.dom) and subtype_neg(a.cod, b.cod)
    if isinstance(a, ProdType) and isinstance(b, ProdType):
        return subtype_neg(a.left, b.left) and subtype_neg(a.right, b.right)
    if isinstance(b, DynType):
        # A <:− ?  iff  A <:− G where G grounds A.
        if isinstance(a, BaseType):
            return True
        if isinstance(a, FunType):
            return subtype_pos(DYN, a.dom) and subtype_neg(a.cod, DYN)
        if isinstance(a, ProdType):
            return subtype_neg(a.left, DYN) and subtype_neg(a.right, DYN)
    return False


def subtype_naive(a: Type, b: Type) -> bool:
    """Naive subtyping ``A <:n B``: type ``A`` is more precise than type ``B``.

    Characterised by covariance everywhere; ``?`` is the least precise type
    and the pointed type ``⊥`` is more precise than everything.
    """
    if isinstance(a, BottomType):
        return True
    if isinstance(b, DynType):
        return True
    if isinstance(a, BaseType) and isinstance(b, BaseType):
        return a == b
    if isinstance(a, FunType) and isinstance(b, FunType):
        return subtype_naive(a.dom, b.dom) and subtype_naive(a.cod, b.cod)
    if isinstance(a, ProdType) and isinstance(b, ProdType):
        return subtype_naive(a.left, b.left) and subtype_naive(a.right, b.right)
    return False


# ---------------------------------------------------------------------------
# Tangram lemma (Lemma 4) as executable checks
# ---------------------------------------------------------------------------


def tangram_subtype(a: Type, b: Type) -> bool:
    """Lemma 4(1): ``A <: B`` iff ``A <:+ B`` and ``A <:− B``."""
    return subtype_pos(a, b) and subtype_neg(a, b)


def tangram_naive(a: Type, b: Type) -> bool:
    """Lemma 4(2): ``A <:n B`` iff ``A <:+ B`` and ``B <:− A``."""
    return subtype_pos(a, b) and subtype_neg(b, a)


# ---------------------------------------------------------------------------
# Safe-cast judgement (Figure 2)
# ---------------------------------------------------------------------------


def cast_safe_for(source: Type, cast_label: Label, target: Type, q: Label) -> bool:
    """The judgement ``(A ⇒p B) safe q``.

    A cast is safe for ``q`` when evaluating it can never allocate blame to
    ``q``: either ``q`` is neither ``p`` nor ``p̄``, or ``q = p`` and
    ``A <:+ B``, or ``q = p̄`` and ``A <:− B``.
    """
    p = cast_label
    if q != p and q != p.complement():
        return True
    if q == p and subtype_pos(source, target):
        return True
    if q == p.complement() and subtype_neg(source, target):
        return True
    return False


# ---------------------------------------------------------------------------
# Meet over naive subtyping (Section 5.2)
# ---------------------------------------------------------------------------


def meet(a: Type, b: Type) -> Type:
    """The meet ``A & B``: greatest lower bound with respect to ``<:n``.

    The result is a pointed type and may contain ``⊥`` (when the two types
    disagree on a base-type position).
    """
    if isinstance(a, BottomType) or isinstance(b, BottomType):
        return BOT
    if isinstance(a, DynType):
        return b
    if isinstance(b, DynType):
        return a
    if isinstance(a, BaseType) and isinstance(b, BaseType):
        return a if a == b else BOT
    if isinstance(a, FunType) and isinstance(b, FunType):
        return FunType(meet(a.dom, b.dom), meet(a.cod, b.cod))
    if isinstance(a, ProdType) and isinstance(b, ProdType):
        return ProdType(meet(a.left, b.left), meet(a.right, b.right))
    return BOT


def join(a: Type, b: Type) -> Type | None:
    """The join (least upper bound) with respect to ``<:n``, if it exists.

    Used by the surface language to give a type to ``if`` branches.  Returns
    ``None`` when the two types have no upper bound other than ``?`` at an
    incompatible position — in that case the surface checker uses ``?``.
    """
    if isinstance(a, BottomType):
        return b
    if isinstance(b, BottomType):
        return a
    if isinstance(a, DynType) or isinstance(b, DynType):
        return DYN
    if isinstance(a, BaseType) and isinstance(b, BaseType):
        return a if a == b else None
    if isinstance(a, FunType) and isinstance(b, FunType):
        dom = join(a.dom, b.dom)
        cod = join(a.cod, b.cod)
        if dom is None or cod is None:
            return None
        return FunType(dom, cod)
    if isinstance(a, ProdType) and isinstance(b, ProdType):
        left = join(a.left, b.left)
        right = join(a.right, b.right)
        if left is None or right is None:
            return None
        return ProdType(left, right)
    return None


def gradual_meet(a: Type, b: Type) -> Type | None:
    """The "consistency meet" used by the surface language.

    Like :func:`meet` but returns ``None`` instead of introducing ``⊥`` —
    the surface language has no pointed types, so an incompatible position
    means the two types are simply not consistent.
    """
    result = meet(a, b)
    return None if contains_bottom(result) else result


# ---------------------------------------------------------------------------
# Precision helpers used in a few property tests
# ---------------------------------------------------------------------------


def is_more_precise(a: Type, b: Type) -> bool:
    """Alias for ``A <:n B`` (A is at least as precise as B)."""
    return subtype_naive(a, b)


def naive_upper_bounds(a: Type, b: Type, candidates) -> list[Type]:
    """All candidate types ``C`` with ``A & B <:n C`` — parameter space of Lemma 20."""
    lower = meet(a, b)
    return [c for c in candidates if subtype_naive(lower, c)]


def ground_subtype_facts(a: Type) -> dict[str, bool]:
    """Small diagnostic summary used by the CLI's ``explain`` command."""
    return {
        "is_ground": is_ground(a),
        "subtype_of_dyn": subtype(a, DYN),
        "pos_subtype_of_dyn": subtype_pos(a, DYN),
        "neg_subtype_of_dyn": subtype_neg(a, DYN),
        "naive_subtype_of_dyn": subtype_naive(a, DYN),
    }
