"""The type structure of the three calculi (Figure 1, "Syntax").

Types are::

    A, B, C ::= ι | A → B | A × B | ?

where ``ι`` ranges over base types and ``?`` is the dynamic type.  Ground
types are::

    G, H ::= ι | ? → ? | ? × ?

Products are the extension the paper explicitly anticipates ("it adapts if we
permit other ground types, such as product G = ? × ?"); the whole library
treats them uniformly with functions.

The module also provides the compatibility relation ``A ~ B`` and the
grounding function of Lemma 1 (every non-dynamic type is compatible with a
unique ground type).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator


class Type:
    """Abstract base class for types.

    Concrete types are immutable dataclasses, so they hash and compare
    structurally and can be used as dictionary keys (the space-efficient
    calculus relies on this when memoising compositions).
    """

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - overridden
        return type_to_str(self)

    def __repr__(self) -> str:
        return type_to_str(self)


@dataclass(frozen=True, repr=False)
class BaseType(Type):
    """A base type ``ι`` such as ``int`` or ``bool``."""

    name: str


@dataclass(frozen=True, repr=False)
class FunType(Type):
    """A function type ``A → B``."""

    dom: Type
    cod: Type


@dataclass(frozen=True, repr=False)
class ProdType(Type):
    """A product type ``A × B`` (paper's suggested extension)."""

    left: Type
    right: Type


@dataclass(frozen=True, repr=False)
class DynType(Type):
    """The dynamic type ``?``."""


@dataclass(frozen=True, repr=False)
class UnknownType(Type):
    """Internal wildcard used to give ``blame p`` a type.

    The paper's typing rule allows ``blame p`` to take any type.  To keep type
    synthesis total, ``blame p`` synthesises ``UnknownType``, and the type
    checkers treat it as equal to every type.  It never appears in user
    programs, coercions, or casts.
    """


# ---------------------------------------------------------------------------
# Singletons
# ---------------------------------------------------------------------------

DYN = DynType()
UNKNOWN = UnknownType()

INT = BaseType("int")
BOOL = BaseType("bool")
STR = BaseType("str")
UNIT = BaseType("unit")

#: Base types known to the primitive operators.  Users may introduce
#: additional base types simply by constructing ``BaseType("name")``.
BASE_TYPES: tuple[BaseType, ...] = (INT, BOOL, STR, UNIT)

#: The ground function type ``? → ?``.
GROUND_FUN = FunType(DYN, DYN)

#: The ground product type ``? × ?``.
GROUND_PROD = ProdType(DYN, DYN)


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


def is_base(ty: Type) -> bool:
    """Is ``ty`` a base type ``ι``?"""
    return isinstance(ty, BaseType)


def is_dyn(ty: Type) -> bool:
    """Is ``ty`` the dynamic type ``?``?"""
    return isinstance(ty, DynType)


def is_fun(ty: Type) -> bool:
    return isinstance(ty, FunType)


def is_prod(ty: Type) -> bool:
    return isinstance(ty, ProdType)


def is_ground(ty: Type) -> bool:
    """Is ``ty`` a ground type ``G`` (a base type, ``?→?``, or ``?×?``)?"""
    if isinstance(ty, BaseType):
        return True
    if isinstance(ty, FunType):
        return ty == GROUND_FUN
    if isinstance(ty, ProdType):
        return ty == GROUND_PROD
    return False


def _types_equal_impl(a: Type, b: Type, rec) -> bool:
    """The one definition of wildcard equality; ``rec`` is the recursion target,
    so the memoized and unmemoized versions share this body and cannot diverge."""
    if isinstance(a, UnknownType) or isinstance(b, UnknownType):
        return True
    if isinstance(a, FunType) and isinstance(b, FunType):
        return rec(a.dom, b.dom) and rec(a.cod, b.cod)
    if isinstance(a, ProdType) and isinstance(b, ProdType):
        return rec(a.left, b.left) and rec(a.right, b.right)
    return a == b


def types_equal_unmemoized(a: Type, b: Type) -> bool:
    """Reference implementation of :func:`types_equal` (no caching)."""
    return _types_equal_impl(a, b, types_equal_unmemoized)


@lru_cache(maxsize=None)
def _types_equal_memo(a: Type, b: Type) -> bool:
    return _types_equal_impl(a, b, _types_equal_memo)


def types_equal(a: Type, b: Type) -> bool:
    """Structural equality that lets the wildcard :data:`UNKNOWN` match anything.

    Memoised: on interned types (see :mod:`repro.core.intern`) the identity
    fast path makes repeated comparisons O(1).
    """
    if a is b:
        return True
    return _types_equal_memo(a, b)


# ---------------------------------------------------------------------------
# Compatibility and grounding (Figure 1, Lemma 1)
# ---------------------------------------------------------------------------


def _compatible_impl(a: Type, b: Type, rec) -> bool:
    """The one definition of ``A ~ B``; ``rec`` is the recursion target, so the
    memoized and unmemoized versions share this body and cannot diverge."""
    if isinstance(a, UnknownType) or isinstance(b, UnknownType):
        return True
    if isinstance(a, DynType) or isinstance(b, DynType):
        return True
    if isinstance(a, BaseType) and isinstance(b, BaseType):
        return a == b
    if isinstance(a, FunType) and isinstance(b, FunType):
        return rec(a.dom, b.dom) and rec(a.cod, b.cod)
    if isinstance(a, ProdType) and isinstance(b, ProdType):
        return rec(a.left, b.left) and rec(a.right, b.right)
    return False


def compatible_unmemoized(a: Type, b: Type) -> bool:
    """Reference implementation of :func:`compatible` (no caching)."""
    return _compatible_impl(a, b, compatible_unmemoized)


@lru_cache(maxsize=None)
def _compatible_memo(a: Type, b: Type) -> bool:
    return _compatible_impl(a, b, _compatible_memo)


def compatible(a: Type, b: Type) -> bool:
    """The compatibility relation ``A ~ B``.

    Two types are compatible if either is ``?``, they are the same base type,
    or they are both function (resp. product) types with compatible
    components.  Note function compatibility is *not* contravariant — it just
    asks for compatibility of domains and of codomains.

    Memoised: the machine asks the same compatibility questions on every
    boundary crossing, so repeated queries are dictionary hits.
    """
    return _compatible_memo(a, b)


def ground_of_unmemoized(ty: Type) -> Type:
    """Reference implementation of :func:`ground_of` (no caching)."""
    if isinstance(ty, DynType):
        raise ValueError("the dynamic type ? has no associated ground type")
    if isinstance(ty, BaseType):
        return ty
    if isinstance(ty, FunType):
        return GROUND_FUN
    if isinstance(ty, ProdType):
        return GROUND_PROD
    raise ValueError(f"not a groundable type: {ty!r}")


@lru_cache(maxsize=None)
def _ground_of_memo(ty: Type) -> Type:
    return ground_of_unmemoized(ty)


def ground_of(ty: Type) -> Type:
    """Lemma 1(1): for ``A ≠ ?`` return the unique ground type ``G`` with ``A ~ G``.

    Raises ``ValueError`` for the dynamic type, which has no grounding.
    """
    if isinstance(ty, DynType):
        raise ValueError("the dynamic type ? has no associated ground type")
    return _ground_of_memo(ty)


def grounds_to(ty: Type, ground: Type) -> bool:
    """Does ``ty`` ground to ``ground`` (i.e. ``ty ≠ ?`` and ``ty ~ ground``)?"""
    if isinstance(ty, DynType):
        return False
    return ground_of(ty) == ground


def needs_ground_factoring(ty: Type) -> bool:
    """Side condition ``A ≠ ?``, ``A ≠ G``, ``A ~ G`` of the factoring rules.

    True when a cast between ``ty`` and ``?`` must factor through the ground
    type of ``ty`` (Figure 1, fifth and sixth reduction rules).
    """
    if isinstance(ty, DynType):
        return False
    return not is_ground(ty)


# ---------------------------------------------------------------------------
# Metrics and enumeration helpers
# ---------------------------------------------------------------------------


def type_height(ty: Type) -> int:
    """Height of a type: 1 for leaves, 1 + max of children otherwise."""
    if isinstance(ty, FunType):
        return 1 + max(type_height(ty.dom), type_height(ty.cod))
    if isinstance(ty, ProdType):
        return 1 + max(type_height(ty.left), type_height(ty.right))
    return 1


def type_size(ty: Type) -> int:
    """Number of constructors in a type."""
    if isinstance(ty, FunType):
        return 1 + type_size(ty.dom) + type_size(ty.cod)
    if isinstance(ty, ProdType):
        return 1 + type_size(ty.left) + type_size(ty.right)
    return 1


def subterms(ty: Type) -> Iterator[Type]:
    """All subterms of a type, including itself (pre-order)."""
    yield ty
    if isinstance(ty, FunType):
        yield from subterms(ty.dom)
        yield from subterms(ty.cod)
    elif isinstance(ty, ProdType):
        yield from subterms(ty.left)
        yield from subterms(ty.right)


@lru_cache(maxsize=None)
def _all_types_cached(depth: int, leaves: tuple[Type, ...], include_prod: bool) -> tuple[Type, ...]:
    if depth <= 1:
        return leaves
    smaller = _all_types_cached(depth - 1, leaves, include_prod)
    result: list[Type] = list(smaller)
    for dom in smaller:
        for cod in smaller:
            result.append(FunType(dom, cod))
            if include_prod:
                result.append(ProdType(dom, cod))
    # Deduplicate while preserving order.
    seen: set[Type] = set()
    unique: list[Type] = []
    for ty in result:
        if ty not in seen:
            seen.add(ty)
            unique.append(ty)
    return tuple(unique)


def all_types(
    depth: int,
    leaves: Iterable[Type] = (DYN, INT, BOOL),
    include_products: bool = False,
) -> tuple[Type, ...]:
    """Enumerate every type of height at most ``depth`` over the given leaves.

    Used by the exhaustive "small-case" tests for the subtyping lemmas.  The
    enumeration grows quickly, so callers keep ``depth`` at 3 or below.
    """
    return _all_types_cached(depth, tuple(leaves), include_products)


# ---------------------------------------------------------------------------
# Pretty-printing
# ---------------------------------------------------------------------------


def type_to_str(ty: Type) -> str:
    """Render a type using the paper's notation."""
    if isinstance(ty, DynType):
        return "?"
    if isinstance(ty, UnknownType):
        return "<any>"
    if isinstance(ty, BaseType):
        return ty.name
    if isinstance(ty, FunType):
        dom = type_to_str(ty.dom)
        if isinstance(ty.dom, (FunType, ProdType)):
            dom = f"({dom})"
        return f"{dom} -> {type_to_str(ty.cod)}"
    if isinstance(ty, ProdType):
        left = type_to_str(ty.left)
        right = type_to_str(ty.right)
        if isinstance(ty.left, (FunType, ProdType)):
            left = f"({left})"
        if isinstance(ty.right, (FunType, ProdType)):
            right = f"({right})"
        return f"{left} * {right}"
    raise TypeError(f"unknown type node: {ty!r}")
