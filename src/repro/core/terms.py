"""The shared term language of λB, λC, and λS.

Figure 1 (λB), Figure 3 (λC) and Figure 5 (λS) share all the standard
λ-calculus constructs (shown in gray in the paper); they differ only in the
node used to mediate between types:

* λB uses casts ``M : A ⇒p B`` — the :class:`Cast` node;
* λC and λS use coercion application ``M⟨c⟩`` — the :class:`Coerce` node,
  whose ``coercion`` field holds a λC coercion (:mod:`repro.lambda_c.coercions`)
  or a λS space-efficient coercion (:mod:`repro.lambda_s.coercions`).

Keeping a single AST lets the translations of Figures 4 and 6 be expressed as
straightforward structural rewrites, and lets substitution, free-variable
computation and pretty-printing be written once.

In addition to the paper's constructs we include the conventional ``if``,
``let``, ``fix`` and pair constructs (documented extension; they contain no
casts and translate homomorphically).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Sequence

from .labels import Label
from .types import FunType, Type


class Term:
    """Abstract base class for terms."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - convenience
        from .pretty import term_to_str

        return term_to_str(self)


# ---------------------------------------------------------------------------
# Standard constructs (gray in Figure 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const(Term):
    """A constant ``k`` of base type ``ι``."""

    value: object
    type: Type


@dataclass(frozen=True)
class Op(Term):
    """A primitive operator application ``op(M⃗)``."""

    op: str
    args: tuple[Term, ...]


@dataclass(frozen=True)
class Var(Term):
    """A variable ``x``."""

    name: str


@dataclass(frozen=True)
class Lam(Term):
    """A λ-abstraction ``λx:A. N``."""

    param: str
    param_type: Type
    body: Term


@dataclass(frozen=True)
class App(Term):
    """An application ``L M``."""

    fun: Term
    arg: Term


@dataclass(frozen=True)
class Blame(Term):
    """The term ``blame p`` — the observable outcome of a failed cast."""

    label: Label


# ---------------------------------------------------------------------------
# Calculus-specific mediation nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Cast(Term):
    """A λB cast ``M : A ⇒p B``."""

    subject: Term
    source: Type
    target: Type
    label: Label


@dataclass(frozen=True)
class Coerce(Term):
    """A coercion application ``M⟨c⟩`` (λC) or ``M⟨s⟩`` (λS)."""

    subject: Term
    coercion: object


# ---------------------------------------------------------------------------
# Documented standard extensions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class If(Term):
    """A conditional ``if L then M else N`` with a boolean scrutinee."""

    cond: Term
    then_branch: Term
    else_branch: Term


@dataclass(frozen=True)
class Let(Term):
    """A call-by-value let binding ``let x = M in N``."""

    name: str
    bound: Term
    body: Term


@dataclass(frozen=True)
class Fix(Term):
    """A call-by-value fixed point.

    ``Fix(fun, fun_type)`` expects ``fun : (A→B) → (A→B)`` and produces a
    recursive function of type ``fun_type = A→B``.  It unrolls lazily:
    ``fix V  →  V (λx:A. (fix V) x)``.
    """

    fun: Term
    fun_type: FunType


@dataclass(frozen=True)
class Pair(Term):
    """A pair introduction ``(M, N)``."""

    left: Term
    right: Term


@dataclass(frozen=True)
class Fst(Term):
    """First projection."""

    arg: Term


@dataclass(frozen=True)
class Snd(Term):
    """Second projection."""

    arg: Term


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------


def children(term: Term) -> tuple[Term, ...]:
    """The immediate subterms of a term, in evaluation order."""
    if isinstance(term, (Const, Var, Blame)):
        return ()
    if isinstance(term, Op):
        return term.args
    if isinstance(term, Lam):
        return (term.body,)
    if isinstance(term, App):
        return (term.fun, term.arg)
    if isinstance(term, Cast):
        return (term.subject,)
    if isinstance(term, Coerce):
        return (term.subject,)
    if isinstance(term, If):
        return (term.cond, term.then_branch, term.else_branch)
    if isinstance(term, Let):
        return (term.bound, term.body)
    if isinstance(term, Fix):
        return (term.fun,)
    if isinstance(term, Pair):
        return (term.left, term.right)
    if isinstance(term, Fst):
        return (term.arg,)
    if isinstance(term, Snd):
        return (term.arg,)
    raise TypeError(f"unknown term node: {term!r}")


def map_children(term: Term, fn: Callable[[Term], Term]) -> Term:
    """Rebuild ``term`` with ``fn`` applied to each immediate subterm."""
    if isinstance(term, (Const, Var, Blame)):
        return term
    if isinstance(term, Op):
        return replace(term, args=tuple(fn(a) for a in term.args))
    if isinstance(term, Lam):
        return replace(term, body=fn(term.body))
    if isinstance(term, App):
        return App(fn(term.fun), fn(term.arg))
    if isinstance(term, Cast):
        return replace(term, subject=fn(term.subject))
    if isinstance(term, Coerce):
        return replace(term, subject=fn(term.subject))
    if isinstance(term, If):
        return If(fn(term.cond), fn(term.then_branch), fn(term.else_branch))
    if isinstance(term, Let):
        return replace(term, bound=fn(term.bound), body=fn(term.body))
    if isinstance(term, Fix):
        return replace(term, fun=fn(term.fun))
    if isinstance(term, Pair):
        return Pair(fn(term.left), fn(term.right))
    if isinstance(term, Fst):
        return Fst(fn(term.arg))
    if isinstance(term, Snd):
        return Snd(fn(term.arg))
    raise TypeError(f"unknown term node: {term!r}")


def subterms(term: Term) -> Iterator[Term]:
    """All subterms of a term, including itself (pre-order)."""
    yield term
    for child in children(term):
        yield from subterms(child)


# ---------------------------------------------------------------------------
# Variables and substitution
# ---------------------------------------------------------------------------

_fresh_counter = itertools.count()


def fresh_name(base: str = "x", avoid: frozenset[str] | set[str] = frozenset()) -> str:
    """Return a variable name not occurring in ``avoid``."""
    root = base.split("%")[0] or "x"
    candidate = root
    while candidate in avoid:
        candidate = f"{root}%{next(_fresh_counter)}"
    return candidate


def free_vars(term: Term) -> frozenset[str]:
    """The free variables of a term."""
    if isinstance(term, Var):
        return frozenset({term.name})
    if isinstance(term, Lam):
        return free_vars(term.body) - {term.param}
    if isinstance(term, Let):
        return free_vars(term.bound) | (free_vars(term.body) - {term.name})
    result: frozenset[str] = frozenset()
    for child in children(term):
        result |= free_vars(child)
    return result


def is_closed(term: Term) -> bool:
    return not free_vars(term)


def subst(term: Term, name: str, value: Term) -> Term:
    """Capture-avoiding substitution ``term[name := value]``."""
    value_fvs = free_vars(value)

    def go(t: Term) -> Term:
        if isinstance(t, Var):
            return value if t.name == name else t
        if isinstance(t, Lam):
            if t.param == name:
                return t
            if t.param in value_fvs and name in free_vars(t.body):
                fresh = fresh_name(t.param, value_fvs | free_vars(t.body))
                renamed = subst(t.body, t.param, Var(fresh))
                return Lam(fresh, t.param_type, go(renamed))
            return Lam(t.param, t.param_type, go(t.body))
        if isinstance(t, Let):
            new_bound = go(t.bound)
            if t.name == name:
                return Let(t.name, new_bound, t.body)
            if t.name in value_fvs and name in free_vars(t.body):
                fresh = fresh_name(t.name, value_fvs | free_vars(t.body))
                renamed = subst(t.body, t.name, Var(fresh))
                return Let(fresh, new_bound, go(renamed))
            return Let(t.name, new_bound, go(t.body))
        return map_children(t, go)

    return go(term)


# ---------------------------------------------------------------------------
# Metrics and structural utilities
# ---------------------------------------------------------------------------


def term_size(term: Term) -> int:
    """Number of AST nodes in a term (coercions/casts count as one node each)."""
    return 1 + sum(term_size(child) for child in children(term))


def count_casts(term: Term) -> int:
    """Number of :class:`Cast` nodes in a term."""
    return sum(1 for t in subterms(term) if isinstance(t, Cast))


def count_coercions(term: Term) -> int:
    """Number of :class:`Coerce` nodes in a term."""
    return sum(1 for t in subterms(term) if isinstance(t, Coerce))


def max_adjacent_coercions(term: Term) -> int:
    """Length of the longest chain of immediately nested coercion applications.

    λS keeps this at 1 for any term in evaluation position; λC lets it grow —
    this metric is the per-term witness of the space-efficiency claim.
    """

    def chain(t: Term) -> int:
        if isinstance(t, Coerce):
            return 1 + chain(t.subject)
        if isinstance(t, Cast):
            return 1 + chain(t.subject)
        return 0

    best = 0
    for t in subterms(term):
        best = max(best, chain(t))
    return best


def erase(term: Term) -> Term:
    """Remove every cast and coercion, yielding the underlying untyped term.

    Used to compare values across calculi (the bisimulations of Propositions
    11 and 16 relate terms that erase to the same underlying term).
    """
    if isinstance(term, Cast):
        return erase(term.subject)
    if isinstance(term, Coerce):
        return erase(term.subject)
    return map_children(term, erase)


def alpha_equal(a: Term, b: Term) -> bool:
    """α-equivalence of terms (coercions and casts compared structurally)."""

    def go(x: Term, y: Term, env_x: dict[str, int], env_y: dict[str, int], depth: int) -> bool:
        if type(x) is not type(y):
            return False
        if isinstance(x, Var):
            bx = env_x.get(x.name)
            by = env_y.get(y.name)
            if bx is None and by is None:
                return x.name == y.name
            return bx == by
        if isinstance(x, Lam):
            if x.param_type != y.param_type:
                return False
            ex = dict(env_x)
            ey = dict(env_y)
            ex[x.param] = depth
            ey[y.param] = depth
            return go(x.body, y.body, ex, ey, depth + 1)
        if isinstance(x, Let):
            if not go(x.bound, y.bound, env_x, env_y, depth):
                return False
            ex = dict(env_x)
            ey = dict(env_y)
            ex[x.name] = depth
            ey[y.name] = depth
            return go(x.body, y.body, ex, ey, depth + 1)
        if isinstance(x, Const):
            return x.value == y.value and x.type == y.type
        if isinstance(x, Op):
            if x.op != y.op or len(x.args) != len(y.args):
                return False
            return all(go(cx, cy, env_x, env_y, depth) for cx, cy in zip(x.args, y.args))
        if isinstance(x, Blame):
            return x.label == y.label
        if isinstance(x, Cast):
            if (x.source, x.target, x.label) != (y.source, y.target, y.label):
                return False
        if isinstance(x, Coerce):
            if x.coercion != y.coercion:
                return False
        if isinstance(x, Fix):
            if x.fun_type != y.fun_type:
                return False
        cx = children(x)
        cy = children(y)
        if len(cx) != len(cy):
            return False
        return all(go(a_, b_, env_x, env_y, depth) for a_, b_ in zip(cx, cy))

    return go(a, b, {}, {}, 0)


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def const_int(value: int) -> Const:
    from .types import INT

    return Const(value, INT)


def const_bool(value: bool) -> Const:
    from .types import BOOL

    return Const(value, BOOL)


def const_str(value: str) -> Const:
    from .types import STR

    return Const(value, STR)


def const_unit() -> Const:
    from .types import UNIT

    return Const(None, UNIT)


def apply_many(fun: Term, args: Sequence[Term]) -> Term:
    """Curried application of several arguments."""
    result = fun
    for arg in args:
        result = App(result, arg)
    return result


def lam_many(params: Sequence[tuple[str, Type]], body: Term) -> Term:
    """Curried abstraction over several parameters."""
    result = body
    for name, ty in reversed(list(params)):
        result = Lam(name, ty, result)
    return result
