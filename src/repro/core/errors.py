"""Exception hierarchy shared by every calculus in the reproduction.

The paper distinguishes three observable outcomes of evaluation: convergence
to a value, allocation of blame to a label, and divergence (Definition 6).
``BlameError`` models the second outcome when an evaluator surfaces blame to
its Python caller; divergence is modelled by ``FuelExhausted`` since the
library evaluates with an explicit step budget.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class TypeCheckError(ReproError):
    """A term, cast, or coercion failed to type check."""


class CoercionTypeError(TypeCheckError):
    """A coercion was used at a type that does not match its shape."""


class ParseError(ReproError):
    """The surface-language parser rejected the input program."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BlameError(ReproError):
    """Evaluation allocated blame to a label (the paper's ``blame p`` outcome)."""

    def __init__(self, label):
        super().__init__(f"blame {label}")
        self.label = label


class StuckError(ReproError):
    """A term is neither a value, nor blame, nor reducible.

    Type safety (Proposition 3) guarantees this never happens for well-typed
    terms; raising instead of silently looping makes violations loud in the
    test suite.
    """


class FuelExhausted(ReproError):
    """The evaluator ran out of reduction steps (stands in for divergence)."""

    def __init__(self, fuel: int, term=None):
        super().__init__(f"evaluation did not finish within {fuel} steps")
        self.fuel = fuel
        self.term = term


class EvaluationError(ReproError):
    """An internal invariant of an evaluator was violated (e.g. bad operands)."""


class CompileError(ReproError):
    """The bytecode compiler rejected a term it cannot lower."""


class UsageError(ReproError, ValueError):
    """An invalid engine/calculus combination or similar caller mistake.

    Doubles as a :class:`ValueError` so library callers can keep catching
    that, while the CLI's single ``except ReproError`` reports it cleanly.
    """
