"""Pretty-printing of terms, casts, and coercions in the paper's notation.

The printers aim to make test failures and blame messages readable: a λB cast
prints as ``M : A =>p B``, a coercion application as ``M<c>``, and the
canonical coercions of λS print exactly as the grammar of Figure 5.
"""

from __future__ import annotations

from .terms import (
    App,
    Blame,
    Cast,
    Coerce,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
)
from .types import Type, type_to_str


def _atomic(term: Term) -> bool:
    return isinstance(term, (Const, Var, Blame))


def _paren(text: str, needed: bool) -> str:
    return f"({text})" if needed else text


def const_to_str(value: object) -> str:
    if value is None:
        return "unit"
    if isinstance(value, bool):
        return "#t" if value else "#f"
    if isinstance(value, str):
        return repr(value)
    return str(value)


def term_to_str(term: Term) -> str:
    """Render a term of any of the three calculi."""
    if isinstance(term, Const):
        return const_to_str(term.value)
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Blame):
        return f"blame {term.label}"
    if isinstance(term, Op):
        args = ", ".join(term_to_str(a) for a in term.args)
        return f"{term.op}({args})"
    if isinstance(term, Lam):
        return f"\\{term.param}:{type_to_str(term.param_type)}. {term_to_str(term.body)}"
    if isinstance(term, App):
        fun = _paren(term_to_str(term.fun), isinstance(term.fun, (Lam, Cast, Coerce, If, Let, Fix)))
        arg = _paren(term_to_str(term.arg), not _atomic(term.arg))
        return f"{fun} {arg}"
    if isinstance(term, Cast):
        subject = _paren(term_to_str(term.subject), not _atomic(term.subject))
        return (
            f"{subject} : {type_to_str(term.source)} =>{term.label} {type_to_str(term.target)}"
        )
    if isinstance(term, Coerce):
        subject = _paren(term_to_str(term.subject), not _atomic(term.subject))
        return f"{subject}<{term.coercion}>"
    if isinstance(term, If):
        return (
            f"if {term_to_str(term.cond)} then {term_to_str(term.then_branch)} "
            f"else {term_to_str(term.else_branch)}"
        )
    if isinstance(term, Let):
        return f"let {term.name} = {term_to_str(term.bound)} in {term_to_str(term.body)}"
    if isinstance(term, Fix):
        return f"fix[{type_to_str(term.fun_type)}] {_paren(term_to_str(term.fun), not _atomic(term.fun))}"
    if isinstance(term, Pair):
        return f"({term_to_str(term.left)}, {term_to_str(term.right)})"
    if isinstance(term, Fst):
        return f"fst {_paren(term_to_str(term.arg), not _atomic(term.arg))}"
    if isinstance(term, Snd):
        return f"snd {_paren(term_to_str(term.arg), not _atomic(term.arg))}"
    raise TypeError(f"unknown term node: {term!r}")


def cast_to_str(source: Type, label, target: Type) -> str:
    """Render a bare cast ``A =>p B``."""
    return f"{type_to_str(source)} =>{label} {type_to_str(target)}"


def summary(term: Term, max_length: int = 120) -> str:
    """A truncated rendering for progress/debug messages."""
    text = term_to_str(term)
    if len(text) <= max_length:
        return text
    return text[: max_length - 3] + "..."
