"""Translations between the three calculi (Figures 4 and 6).

* ``|·|BC`` — :func:`repro.translate.b_to_c.term_to_lambda_c` (casts → coercions)
* ``|·|CB`` — :func:`repro.translate.c_to_b.term_to_lambda_b` (coercions → cast sequences)
* ``|·|CS`` — :func:`repro.translate.c_to_s.term_to_lambda_s` (coercions → canonical coercions)
* ``|·|SC`` — :func:`repro.translate.s_to_c.term_to_lambda_c` (the inclusion)
* ``|·|BS`` — :func:`repro.translate.b_to_s.term_to_lambda_s_from_b` (the composite)
"""

from .b_to_c import cast_to_coercion
from .b_to_c import term_to_lambda_c as b_to_c
from .b_to_s import cast_to_space
from .b_to_s import term_to_lambda_s_from_b as b_to_s
from .c_to_b import (
    CastSpec,
    apply_cast_sequence,
    coercion_to_casts,
    concat,
    reverse_complement,
)
from .c_to_b import term_to_lambda_b as c_to_b
from .c_to_s import coercion_to_space
from .c_to_s import term_to_lambda_s as c_to_s
from .s_to_c import space_to_coercion
from .s_to_c import term_to_lambda_c as s_to_c

__all__ = [
    "cast_to_coercion",
    "b_to_c",
    "cast_to_space",
    "b_to_s",
    "CastSpec",
    "apply_cast_sequence",
    "coercion_to_casts",
    "concat",
    "reverse_complement",
    "c_to_b",
    "coercion_to_space",
    "c_to_s",
    "space_to_coercion",
    "s_to_c",
]
