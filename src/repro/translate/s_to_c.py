"""The inclusion of λS into λC (``|·|SC``).

Every space-efficient coercion *is* a coercion, so the translation simply
re-expresses the canonical grammar with λC constructors.  Because this
direction is an inclusion, full abstraction from λC to λS (Proposition 18)
follows easily from the bisimulation of Proposition 16.
"""

from __future__ import annotations

from ..core.errors import TypeCheckError
from ..core.terms import Cast, Coerce, Term, map_children
from ..core.types import DYN
from ..lambda_c.coercions import (
    Coercion,
    Fail,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
)
from ..lambda_s.coercions import (
    FailS,
    FunCo,
    IdBase,
    IdDyn,
    Injection,
    ProdCo,
    Projection,
    SpaceCoercion,
)


def space_to_coercion(s: SpaceCoercion) -> Coercion:
    """Read a canonical coercion back as a λC coercion."""
    if isinstance(s, IdDyn):
        return Identity(DYN)
    if isinstance(s, IdBase):
        return Identity(s.base)
    if isinstance(s, Projection):
        return Sequence(Project(s.ground, s.label), space_to_coercion(s.body))
    if isinstance(s, Injection):
        return Sequence(space_to_coercion(s.body), Inject(s.ground))
    if isinstance(s, FailS):
        return Fail(s.source_ground, s.label, s.target_ground, source=s.source, target=s.target)
    if isinstance(s, FunCo):
        return FunCoercion(space_to_coercion(s.dom), space_to_coercion(s.cod))
    if isinstance(s, ProdCo):
        return ProdCoercion(space_to_coercion(s.left), space_to_coercion(s.right))
    raise TypeCheckError(f"unknown canonical coercion: {s!r}")


def term_to_lambda_c(term: Term) -> Term:
    """Read a λS term back as a λC term."""
    if isinstance(term, Coerce):
        if not isinstance(term.coercion, SpaceCoercion):
            raise TypeCheckError("the input to |·|SC must be a λS term")
        return Coerce(term_to_lambda_c(term.subject), space_to_coercion(term.coercion))
    if isinstance(term, Cast):
        raise TypeCheckError("the input to |·|SC must be a λS term (no casts)")
    return map_children(term, term_to_lambda_c)


stoc = term_to_lambda_c
