"""The composite translation ``|·|BS = |·|CS ∘ |·|BC`` (Section 5.2).

Used to prove (here: check) the Fundamental Property of Casts: if
``A & B <:n C`` then ``|A ⇒p B|BS = |A ⇒p C|BS # |C ⇒p B|BS`` (Lemma 20),
hence ``M : A ⇒p B`` is contextually equivalent to ``M : A ⇒p C ⇒p B``
(Lemma 21).
"""

from __future__ import annotations

from ..core.labels import Label
from ..core.terms import Term
from ..core.types import Type
from ..lambda_s.coercions import SpaceCoercion
from .b_to_c import cast_to_coercion, term_to_lambda_c
from .c_to_s import coercion_to_space, term_to_lambda_s


def cast_to_space(source: Type, label: Label, target: Type) -> SpaceCoercion:
    """``|A ⇒p B|BS``: the canonical coercion of a cast."""
    return coercion_to_space(cast_to_coercion(source, label, target))


def term_to_lambda_s_from_b(term: Term) -> Term:
    """``|M|BS``: translate a λB term all the way to λS."""
    return term_to_lambda_s(term_to_lambda_c(term))


btos = term_to_lambda_s_from_b
