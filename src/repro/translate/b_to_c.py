"""Translation from λB to λC (Figure 4, ``|·|BC``): compile casts to coercions.

The cast translation::

    |ι ⇒p ι|        = idι
    |A→B ⇒p A'→B'|  = |A' ⇒p̄ A| → |B ⇒p B'|
    |A×B ⇒p A'×B'|  = |A ⇒p A'| × |B ⇒p B'|           (extension)
    |? ⇒p ?|        = id?
    |G ⇒p ?|        = G!
    |A ⇒p ?|        = |A ⇒p G| ; G!                    (A ≠ ?, A ≠ G, A ~ G)
    |? ⇒p G|        = G?p
    |? ⇒p A|        = G?p ; |G ⇒p A|                   (A ≠ ?, A ≠ G, A ~ G)

It extends to terms by replacing every cast with the corresponding coercion.
The translation is designed so that λB and λC run in lockstep
(Proposition 11); Proposition 10 says it preserves typing and blame safety.
"""

from __future__ import annotations

from ..core.errors import TypeCheckError
from ..core.labels import Label
from ..core.terms import Cast, Coerce, Term, map_children
from ..core.types import (
    BaseType,
    DynType,
    FunType,
    ProdType,
    Type,
    compatible,
    ground_of,
    is_ground,
)
from ..lambda_c.coercions import (
    Coercion,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
)


def cast_to_coercion(source: Type, label: Label, target: Type) -> Coercion:
    """The coercion ``|A ⇒p B|BC`` for a compatible pair of types."""
    if isinstance(source, DynType) and isinstance(target, DynType):
        return Identity(source)

    if isinstance(source, BaseType) and isinstance(target, BaseType):
        if source != target:
            raise TypeCheckError(f"cast between incompatible base types {source} and {target}")
        return Identity(source)

    if isinstance(source, FunType) and isinstance(target, FunType):
        dom = cast_to_coercion(target.dom, label.complement(), source.dom)
        cod = cast_to_coercion(source.cod, label, target.cod)
        return FunCoercion(dom, cod)

    if isinstance(source, ProdType) and isinstance(target, ProdType):
        left = cast_to_coercion(source.left, label, target.left)
        right = cast_to_coercion(source.right, label, target.right)
        return ProdCoercion(left, right)

    if isinstance(target, DynType):
        if is_ground(source):
            return Inject(source)
        ground = ground_of(source)
        return Sequence(cast_to_coercion(source, label, ground), Inject(ground))

    if isinstance(source, DynType):
        if is_ground(target):
            return Project(target, label)
        ground = ground_of(target)
        return Sequence(Project(ground, label), cast_to_coercion(ground, label, target))

    if not compatible(source, target):
        raise TypeCheckError(f"cast between incompatible types {source} and {target}")
    raise TypeCheckError(f"no translation for cast {source} => {target}")  # pragma: no cover


def term_to_lambda_c(term: Term) -> Term:
    """Translate a λB term to λC by compiling every cast to a coercion."""
    if isinstance(term, Cast):
        subject = term_to_lambda_c(term.subject)
        return Coerce(subject, cast_to_coercion(term.source, term.label, term.target))
    if isinstance(term, Coerce):
        raise TypeCheckError("the input to |·|BC must be a λB term (no coercions)")
    return map_children(term, term_to_lambda_c)


# A conventional short alias matching the paper's notation.
btoc = term_to_lambda_c
