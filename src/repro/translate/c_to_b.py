"""Translation from λC back to λB (Figure 4, ``|·|CB``): coercions to cast sequences.

A single coercion may mention many blame labels while a cast carries exactly
one, so a coercion translates to a *sequence* of casts ``Z``::

    |id_A|   = []
    |G!|     = [G ⇒• ?]
    |G?p|    = [? ⇒p G]
    |c → d|  = (Z̄_c → B) ++ (A' → Z_d)       where c→d : A→B ⇒ A'→B'
    |c × d|  = (Z_c × B) ++ (A' × Z_d)        (extension; covariant, no complement)
    |c ; d|  = Z_c ++ Z_d
    |⊥GpH_{A⇒B}| = [A ⇒• G, G ⇒• ?, ? ⇒p H, H ⇒• B]

where ``Z → B`` (resp. ``B → Z``) maps every type in the sequence to a
function type, ``Z̄`` reverses the sequence and complements every label, and
``•`` is the distinguished label of casts that can never allocate blame.

Lemma 8 (checked behaviourally in the test suite): translating λC to λB and
back again yields a term contextually equivalent to the original.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import TypeCheckError
from ..core.labels import BULLET, Label
from ..core.terms import Cast, Coerce, Term, map_children
from ..core.types import DYN, FunType, ProdType, Type, compatible
from ..lambda_c.coercions import (
    Coercion,
    Fail,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
    coercion_source,
    coercion_target,
)


@dataclass(frozen=True)
class CastSpec:
    """One element ``A ⇒p B`` of a cast sequence ``Z``."""

    source: Type
    label: Label
    target: Type

    def complement(self) -> "CastSpec":
        """Swap source and target and complement the label (one step of ``Z̄``)."""
        return CastSpec(self.target, self.label.complement(), self.source)


CastSequence = tuple[CastSpec, ...]


# ---------------------------------------------------------------------------
# Sequence combinators (Figure 4, bottom)
# ---------------------------------------------------------------------------


def reverse_complement(seq: CastSequence) -> CastSequence:
    """``Z̄``: reverse the sequence and complement all the blame labels."""
    return tuple(spec.complement() for spec in reversed(seq))


def arrow_right(seq: CastSequence, cod: Type) -> CastSequence:
    """``Z → B``: map every type ``A_i`` in the sequence to ``A_i → B``."""
    return tuple(
        CastSpec(FunType(spec.source, cod), spec.label, FunType(spec.target, cod)) for spec in seq
    )


def arrow_left(dom: Type, seq: CastSequence) -> CastSequence:
    """``B → Z``: map every type ``A_i`` in the sequence to ``B → A_i``."""
    return tuple(
        CastSpec(FunType(dom, spec.source), spec.label, FunType(dom, spec.target)) for spec in seq
    )


def prod_right(seq: CastSequence, right: Type) -> CastSequence:
    """``Z × B``: map every type ``A_i`` to ``A_i × B``."""
    return tuple(
        CastSpec(ProdType(spec.source, right), spec.label, ProdType(spec.target, right))
        for spec in seq
    )


def prod_left(left: Type, seq: CastSequence) -> CastSequence:
    """``A × Z``: map every type ``B_i`` to ``A × B_i``."""
    return tuple(
        CastSpec(ProdType(left, spec.source), spec.label, ProdType(left, spec.target))
        for spec in seq
    )


def concat(first: CastSequence, second: CastSequence) -> CastSequence:
    """``Z ++ Z'``, checking that the sequences meet at the same type."""
    if first and second and first[-1].target != second[0].source:
        raise TypeCheckError(
            f"cast sequences do not compose: {first[-1].target} vs {second[0].source}"
        )
    return first + second


# ---------------------------------------------------------------------------
# Coercions to cast sequences
# ---------------------------------------------------------------------------


def coercion_to_casts(c: Coercion) -> CastSequence:
    """The cast sequence ``|c|CB`` of Figure 4."""
    if isinstance(c, Identity):
        return ()

    if isinstance(c, Inject):
        return (CastSpec(c.ground, BULLET, DYN),)

    if isinstance(c, Project):
        return (CastSpec(DYN, c.label, c.ground),)

    if isinstance(c, FunCoercion):
        source = coercion_source(c)
        target = coercion_target(c)
        if not isinstance(source, FunType) or not isinstance(target, FunType):
            raise TypeCheckError(f"function coercion with non-function typing: {c}")
        cod_of_source = source.cod  # B in  c→d : A→B ⇒ A'→B'
        dom_of_target = target.dom  # A'
        dom_part = arrow_right(reverse_complement(coercion_to_casts(c.dom)), cod_of_source)
        cod_part = arrow_left(dom_of_target, coercion_to_casts(c.cod))
        return concat(dom_part, cod_part)

    if isinstance(c, ProdCoercion):
        source = coercion_source(c)
        target = coercion_target(c)
        if not isinstance(source, ProdType) or not isinstance(target, ProdType):
            raise TypeCheckError(f"product coercion with non-product typing: {c}")
        left_part = prod_right(coercion_to_casts(c.left), source.right)
        right_part = prod_left(target.left, coercion_to_casts(c.right))
        return concat(left_part, right_part)

    if isinstance(c, Sequence):
        return concat(coercion_to_casts(c.first), coercion_to_casts(c.second))

    if isinstance(c, Fail):
        source = c.source if c.source is not None else c.source_ground
        target = c.target if c.target is not None else c.target_ground
        prefix = []
        if source != c.source_ground:
            prefix.append(CastSpec(source, BULLET, c.source_ground))
        middle = [
            CastSpec(c.source_ground, BULLET, DYN),
            CastSpec(DYN, c.label, c.target_ground),
        ]
        suffix = []
        if target != c.target_ground:
            if compatible(c.target_ground, target):
                suffix.append(CastSpec(c.target_ground, BULLET, target))
            else:
                # The informal target is not compatible with H; route through ?.
                # These casts are never reached at run time (the projection to H
                # has already allocated blame), they only keep the sequence
                # well-typed.
                suffix.append(CastSpec(c.target_ground, BULLET, DYN))
                suffix.append(CastSpec(DYN, BULLET, target))
        return tuple(prefix + middle + suffix)

    raise TypeCheckError(f"unknown coercion node: {c!r}")


def apply_cast_sequence(term: Term, seq: CastSequence) -> Term:
    """Wrap ``term`` in the casts of ``seq``, innermost first."""
    result = term
    for spec in seq:
        result = Cast(result, spec.source, spec.target, spec.label)
    return result


def term_to_lambda_b(term: Term) -> Term:
    """Translate a λC term to λB by expanding every coercion into casts."""
    if isinstance(term, Coerce):
        subject = term_to_lambda_b(term.subject)
        if not isinstance(term.coercion, Coercion):
            raise TypeCheckError("the input to |·|CB must be a λC term")
        return apply_cast_sequence(subject, coercion_to_casts(term.coercion))
    if isinstance(term, Cast):
        raise TypeCheckError("the input to |·|CB must be a λC term (no casts)")
    return map_children(term, term_to_lambda_b)


ctob = term_to_lambda_b
