"""Translation from λC to λS (Figure 6, ``|·|CS``): normalise coercions.

::

    |id?|    = id?
    |idι|    = idι
    |id_{A→B}| = |id_A| → |id_B|
    |id_{A×B}| = |id_A| × |id_B|
    |G?p|    = G?p ; |id_G|
    |G!|     = |id_G| ; G!
    |c → d|  = |c| → |d|
    |c × d|  = |c| × |d|
    |c ; d|  = |c| # |d|
    |⊥GpH|   = ⊥GpH

The image of the translation is a coercion in canonical form; composition in
the source maps to the composition operator ``#`` of Figure 5, which is what
makes the translation both a normaliser and the bridge of the bisimulation of
Proposition 16.
"""

from __future__ import annotations

from ..core.errors import TypeCheckError
from ..core.terms import Cast, Coerce, Term, map_children
from ..lambda_c.coercions import (
    Coercion,
    Fail,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
)
from ..lambda_s.coercions import (
    FailS,
    FunCo,
    GroundCoercion,
    Injection,
    ProdCo,
    Projection,
    SpaceCoercion,
    compose,
    identity_for,
)


def coercion_to_space(c: Coercion) -> SpaceCoercion:
    """The canonical coercion ``|c|CS`` of Figure 6."""
    if isinstance(c, Identity):
        return identity_for(c.type)

    if isinstance(c, Project):
        ground_identity = identity_for(c.ground)
        if not isinstance(ground_identity, GroundCoercion):
            raise TypeCheckError(f"identity at {c.ground} is not a ground coercion")
        return Projection(c.ground, c.label, ground_identity)

    if isinstance(c, Inject):
        ground_identity = identity_for(c.ground)
        if not isinstance(ground_identity, GroundCoercion):
            raise TypeCheckError(f"identity at {c.ground} is not a ground coercion")
        return Injection(ground_identity, c.ground)

    if isinstance(c, FunCoercion):
        return FunCo(coercion_to_space(c.dom), coercion_to_space(c.cod))

    if isinstance(c, ProdCoercion):
        return ProdCo(coercion_to_space(c.left), coercion_to_space(c.right))

    if isinstance(c, Sequence):
        return compose(coercion_to_space(c.first), coercion_to_space(c.second))

    if isinstance(c, Fail):
        return FailS(c.source_ground, c.label, c.target_ground, source=c.source, target=c.target)

    raise TypeCheckError(f"unknown coercion node: {c!r}")


def term_to_lambda_s(term: Term) -> Term:
    """Translate a λC term to λS by normalising every coercion."""
    if isinstance(term, Coerce):
        if not isinstance(term.coercion, Coercion):
            raise TypeCheckError("the input to |·|CS must be a λC term")
        return Coerce(term_to_lambda_s(term.subject), coercion_to_space(term.coercion))
    if isinstance(term, Cast):
        raise TypeCheckError("the input to |·|CS must be a λC term (no casts)")
    return map_children(term, term_to_lambda_s)


ctos = term_to_lambda_s
