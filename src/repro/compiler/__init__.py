"""Bytecode compiler and coercion-aware VM — the fast λS engine.

The pipeline (surface → λB → λC → λS → bytecode → VM)::

    elaborated λB term
        │  b_to_c, c_to_s            (Figures 4 & 6)
        ▼
    λS term
        │  repro.compiler.lower      lexical addressing, pre-interned coercions
        ▼
    CodeObject over a ConstantPool   (repro.compiler.bytecode)
        │  repro.compiler.vm         integer dispatch, pending-coercion slot
        │  repro.compiler.regalloc   stack → register IR, packed word streams
        ▼                            (repro.compiler.rvm: the fastest engine)
    MachineOutcome (value / blame / timeout) with space statistics

The CEK machine (:mod:`repro.machine`) remains the oracle for both VMs:
``repro.properties.bisimulation.check_vm_oracle`` runs them against both
the machine and the substitution reducers and compares observables.
"""

from __future__ import annotations

from .bytecode import (
    SUPERINSTRUCTIONS,
    CodeObject,
    ConstantPool,
    all_code_objects,
    opcode_fingerprint,
)
from .cache import CacheOutcome, cache_path, cached_compile, default_cache_dir
from .disasm import (
    disassemble,
    disassemble_image,
    disassemble_registers,
    instruction_streams,
    parse_disassembly,
    parse_register_disassembly,
    register_streams,
)
from .lower import lower_program
from .opt import DEFAULT_OPT_LEVEL, OPT_LEVELS, hot_pairs, optimize
from .regalloc import RCode, all_rcodes, compile_registers, register_fingerprint
from .rvm import (
    RVM,
    THE_RVM,
    RClosure,
    compile_term_registers,
    run_on_rvm,
    run_rcode,
)
from .serialize import (
    FORMAT_VERSION,
    GRADB_MAGIC,
    GRADB_SUFFIX,
    ImageError,
    ImageInfo,
    LoadedImage,
    deserialize_image,
    load_image,
    save_image,
    serialize_image,
    source_fingerprint,
)
from .vm import (
    DEFAULT_VM_FUEL,
    THE_VM,
    VM,
    VMClosure,
    compile_term,
    run_code,
    run_on_vm,
)

__all__ = [
    "CodeObject",
    "ConstantPool",
    "SUPERINSTRUCTIONS",
    "all_code_objects",
    "opcode_fingerprint",
    "CacheOutcome",
    "cache_path",
    "cached_compile",
    "default_cache_dir",
    "disassemble",
    "disassemble_image",
    "disassemble_registers",
    "instruction_streams",
    "parse_disassembly",
    "parse_register_disassembly",
    "register_streams",
    "FORMAT_VERSION",
    "GRADB_MAGIC",
    "GRADB_SUFFIX",
    "ImageError",
    "ImageInfo",
    "LoadedImage",
    "deserialize_image",
    "load_image",
    "save_image",
    "serialize_image",
    "source_fingerprint",
    "lower_program",
    "DEFAULT_OPT_LEVEL",
    "OPT_LEVELS",
    "optimize",
    "hot_pairs",
    "DEFAULT_VM_FUEL",
    "THE_VM",
    "VM",
    "VMClosure",
    "compile_term",
    "run_code",
    "run_on_vm",
    "RCode",
    "all_rcodes",
    "compile_registers",
    "register_fingerprint",
    "RVM",
    "THE_RVM",
    "RClosure",
    "compile_term_registers",
    "run_on_rvm",
    "run_rcode",
]
