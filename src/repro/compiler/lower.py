"""Lowering: elaborated λS terms → flat bytecode (:mod:`repro.compiler.bytecode`).

The compiler walks the term once, tracking *tail position* so that the space
discipline of λS survives the change of representation:

* an application in tail position becomes ``TAILCALL`` (frame reuse);
* a coercion in tail position becomes ``COMPOSE s`` *before* the subject is
  compiled — the coercion is merged into the live frame's single pending
  slot with ``#``, and the subject's tail call (if any) then reuses the
  frame.  ``⟨s⟩(f x)`` in tail position therefore runs in constant space,
  exactly like the λS machine merging adjacent ``KMediate`` frames;
* everywhere else a coercion is an immediate ``COERCE s`` on the value just
  computed (value-level composition is handled by the mediation policy).

Variables are resolved to frame slots at compile time (lexical addressing):
no environment dictionaries exist at run time.  Closures capture the values
of their free variables at ``MAKE_CLOSURE`` time, which is sound because
bindings are immutable in this language.

Only λS terms are compilable: λB casts and λC coercions must be translated
first (``run_on_vm`` does this), mirroring how ``run_on_machine`` translates
per calculus.  Identity coercions (``id?``, ``idι``) are dropped at compile
time — applying them is a no-op on every machine value.
"""

from __future__ import annotations

from ..core.errors import CompileError
from ..core.intern import intern_type
from ..core.terms import (
    App,
    Blame,
    Cast,
    Coerce,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
    free_vars,
)
from ..lambda_s.coercions import IdBase, IdDyn, SpaceCoercion, intern_space
from .bytecode import (
    BLAME,
    CALL,
    COERCE,
    COMPOSE,
    FST,
    JUMP,
    JUMP_IF_FALSE,
    LOAD,
    MAKE_CLOSURE,
    MAKE_FIX,
    PAIR,
    PRIM,
    PUSH_CONST,
    RETURN,
    SND,
    STORE,
    TAILCALL,
    CodeObject,
    ConstantPool,
)


class _CodeBuilder:
    """Mutable state for one code object under construction."""

    def __init__(self, name: str, pool: ConstantPool, free: tuple[str, ...], param: str | None):
        self.name = name
        self.pool = pool
        self.instructions: list[tuple[int, int]] = []
        # Scope entries are (name, slot); resolution searches from the end so
        # the latest binding of a shadowed name wins.
        self.scope: list[tuple[str, int]] = []
        self.n_free = len(free)
        self.param = param
        self.local_names: list[str] = list(free)
        for f in free:
            self.scope.append((f, self.local_names.index(f)))
        if param is not None:
            slot = len(self.local_names)
            self.local_names.append(param)
            self.scope.append((param, slot))

    def emit(self, opcode: int, operand: int = 0) -> int:
        self.instructions.append((opcode, operand))
        return len(self.instructions) - 1

    def patch(self, index: int, operand: int) -> None:
        opcode, _ = self.instructions[index]
        self.instructions[index] = (opcode, operand)

    def here(self) -> int:
        return len(self.instructions)

    def resolve(self, name: str) -> int:
        for bound, slot in reversed(self.scope):
            if bound == name:
                return slot
        raise CompileError(f"unbound variable in compiled code: {name!r}")

    def new_slot(self, name: str) -> int:
        slot = len(self.local_names)
        self.local_names.append(name)
        return slot

    def finish(self) -> CodeObject:
        self.emit(RETURN)
        return CodeObject(
            self.name,
            self.instructions,
            self.pool,
            self.n_free,
            len(self.local_names),
            self.param,
            tuple(self.local_names),
        )


def _is_identity(s: SpaceCoercion) -> bool:
    return isinstance(s, (IdDyn, IdBase))


def _compile(builder: _CodeBuilder, term: Term, tail: bool) -> None:
    pool = builder.pool

    if isinstance(term, Const):
        builder.emit(PUSH_CONST, pool.add_machine_const(term.value, intern_type(term.type)))
        return
    if isinstance(term, Var):
        builder.emit(LOAD, builder.resolve(term.name))
        return
    if isinstance(term, Lam):
        _compile_closure(builder, term)
        return
    if isinstance(term, Blame):
        builder.emit(BLAME, pool.add_label(term.label))
        return
    if isinstance(term, Coerce):
        coercion = term.coercion
        if not isinstance(coercion, SpaceCoercion):
            raise CompileError(
                f"the VM compiles λS terms only; found a λC coercion {coercion!r} "
                "(translate with c_to_s first)"
            )
        canon = intern_space(coercion)
        if _is_identity(canon):
            _compile(builder, term.subject, tail)
            return
        if tail:
            # Merge into the frame's pending slot *before* entering the
            # subject: its tail call then reuses the frame and the composed
            # coercion is applied once, on the way out.
            builder.emit(COMPOSE, pool.add_coercion(canon))
            _compile(builder, term.subject, tail=True)
        else:
            _compile(builder, term.subject, tail=False)
            builder.emit(COERCE, pool.add_coercion(canon))
        return
    if isinstance(term, Cast):
        raise CompileError(
            "the VM compiles λS terms only; found a λB cast (translate with b_to_s first)"
        )
    if isinstance(term, App):
        _compile(builder, term.fun, tail=False)
        _compile(builder, term.arg, tail=False)
        builder.emit(TAILCALL if tail else CALL)
        return
    if isinstance(term, If):
        _compile(builder, term.cond, tail=False)
        jump_false = builder.emit(JUMP_IF_FALSE)
        _compile(builder, term.then_branch, tail)
        jump_end = builder.emit(JUMP)
        builder.patch(jump_false, builder.here())
        _compile(builder, term.else_branch, tail)
        builder.patch(jump_end, builder.here())
        return
    if isinstance(term, Let):
        _compile(builder, term.bound, tail=False)
        slot = builder.new_slot(term.name)
        builder.emit(STORE, slot)
        builder.scope.append((term.name, slot))
        _compile(builder, term.body, tail)
        builder.scope.pop()
        return
    if isinstance(term, Fix):
        _compile(builder, term.fun, tail=False)
        builder.emit(MAKE_FIX, pool.add_const(intern_type(term.fun_type)))
        return
    if isinstance(term, Op):
        for arg in term.args:
            _compile(builder, arg, tail=False)
        builder.emit(PRIM, pool.add_prim(term.op))
        return
    if isinstance(term, Pair):
        _compile(builder, term.left, tail=False)
        _compile(builder, term.right, tail=False)
        builder.emit(PAIR)
        return
    if isinstance(term, Fst):
        _compile(builder, term.arg, tail=False)
        builder.emit(FST)
        return
    if isinstance(term, Snd):
        _compile(builder, term.arg, tail=False)
        builder.emit(SND)
        return
    raise CompileError(f"cannot lower unknown term node: {term!r}")


def _compile_closure(builder: _CodeBuilder, lam: Lam) -> None:
    free = tuple(sorted(free_vars(lam)))
    child = _CodeBuilder(f"λ{lam.param}", builder.pool, free, lam.param)
    _compile(child, lam.body, tail=True)
    code = child.finish()
    index = builder.pool.add_code(code)
    for name in free:
        builder.emit(LOAD, builder.resolve(name))
    builder.emit(MAKE_CLOSURE, index)


def lower_program(
    term_s: Term, name: str = "<main>", mediator: str = "coercion"
) -> CodeObject:
    """Compile a closed λS term to the entry code object of a program.

    ``mediator`` names the enforcement semantics of the program's mediator
    pool (and hence of every ``COERCE``/``COMPOSE`` operand) — any entry of
    the :data:`~repro.semantics.SEMANTICS` registry: interned canonical
    coercions (``"coercion"``, the default), pre-translated interned
    threesomes (``"threesome"``), transient tag checks (``"transient"``),
    or the erased no-op token (``"erasure"``).  Identity coercions are
    dropped either way — they are identities in every backend.
    """
    from ..semantics import SEMANTICS

    if mediator not in SEMANTICS:
        raise CompileError(f"unknown mediator backend {mediator!r}")
    pool = ConstantPool(mediator=mediator)
    builder = _CodeBuilder(name, pool, free=(), param=None)
    _compile(builder, term_s, tail=True)
    return builder.finish()
