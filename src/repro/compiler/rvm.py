"""The register VM — the packed-stream dispatch core for λS.

Executes the register IR of :mod:`repro.compiler.regalloc`: one Python-level
loop over flat word streams.  Same observable semantics as the stack VM
(:mod:`repro.compiler.vm`) — same mediator backends, same blame, same
single ``pending`` slot per frame, same inline mediator caches — with the
per-instruction Python-object overhead cut four ways:

* **no operand stack.**  Values live in a frame-local register file (a flat
  list, pre-filled from the code object's ``blank`` template with the
  constants the code reads pinned at the top); instructions read operands
  by plain index — ``regs[w]`` — and write one destination.  The stack
  VM's ``append``/``pop`` traffic, and every ``LOAD``/``PUSH_CONST``/
  ``STORE`` dispatch that only fed it, is gone.
* **no instruction objects.**  The loop reads opcode and operand words
  straight out of a localized tuple of ints (``RCode.stream``); there is
  no per-instruction tuple to index and unpack.
* **structural and peephole fusion.**  A primitive reads its inputs and
  writes its destination in one instruction, a compare feeding a branch is
  one ``BR_PRIM``, and at ``-O2`` the hottest adjacent pairs are single
  fused instructions (``COMPOSE;COERCE``, ``PRIM2;TAILCALL``, …) — a
  boundary tail loop runs in ~3 dispatches per iteration against the
  ``-O2`` stack VM's ~5 plus cheaper dispatches.
* **no accounting calls.**  The space-profile counters
  (:class:`~repro.machine.profiler.MachineStats`) are kept in loop-local
  integers and stored back on exit, so the per-iteration mediator
  bookkeeping is integer arithmetic instead of method calls.

The mediation discipline itself is ported *verbatim* from the stack VM —
the same ``COMPOSE``-into-the-slot merge, the same ``TAILCALL`` frame
reuse, the same proxy unwrap at call sites, the same per-site inline
caches keyed on interned mediator identity (allocated at ``-O2``, absent
below; a fused pair's halves cache at ``pc`` and ``pc+1``) — so
``max_pending_mediators == 1`` on boundary tail loops holds with the same
accounting, and ``check_vm_oracle``/``check_mediator_oracle`` compare the
two engines' space profiles directly.  One allocation the stack VM makes
is skipped rather than ported: unrolling ``fix`` reuses the (immutable,
field-equal) ``MFixWrap`` being applied as the wrapper it passes on,
instead of building a fresh one per iteration.

The interpreter's shared instruction cores (coerce, compose, primitive,
call, return) are deliberately *copied* into each fused handler rather
than factored into functions — a Python call per instruction would cost
more than the fused dispatch saves.  The base handlers hold the canonical
copies; keep the fused copies textually identical to them.
"""

from __future__ import annotations

from ..core.errors import EvaluationError
from ..core.fuel import DEFAULT_VM_FUEL
from ..core.terms import Term
from ..machine.cek import MachineOutcome
from ..machine.policy import MachineBlame
from ..machine.profiler import MachineStats
from ..machine.values import MConst, MFixWrap, MFunctionValue, MPair, MProxy
from ..obs.trace import current_tracer
from .opt import DEFAULT_OPT_LEVEL
from .regalloc import (
    R_BLAME,
    R_BR_FALSE,
    R_BR_PRIM1,
    R_BR_PRIM2,
    R_CALL,
    R_CLOSURE,
    R_CLOSURE_BR_PRIM1,
    R_CLOSURE_RETURN,
    R_COERCE,
    R_COERCE_BR_PRIM1,
    R_COERCE_CALL,
    R_COERCE_COERCE,
    R_COERCE_TAILCALL,
    R_COMPOSE,
    R_COMPOSE_COERCE,
    R_COMPOSE_PRIM2,
    R_FIX,
    R_FST,
    R_JUMP,
    R_MOVE,
    R_MOVE_PRIM2,
    R_PAIR,
    R_PRIM1,
    R_PRIM2,
    R_PRIM2_CALL,
    R_PRIM2_RETURN,
    R_PRIM2_TAILCALL,
    R_PRIMN,
    R_RETURN,
    R_SND,
    R_TAILCALL,
    RCode,
    _convert_code,
)
from ..semantics import policy_for
from .vm import _make_fix_apply_code, _pool_tables, _project


class RClosure(MFunctionValue):
    """A compiled function: its register code plus the captured free values."""

    __slots__ = ("code", "free")

    def __init__(self, code: RCode, free: tuple):
        self.code = code
        self.free = free

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<rvm-closure {self.code.name}>"


def _make_fix_rcode(opt_level: int) -> RCode:
    """The fix-unrolling step as register code (``CALL r3, r0, r1;
    TAILCALL r3, r2`` — registers ``[V, wrap, arg, tmp]``), converted from
    the stack VM's fix-apply stack code so the two engines unroll
    identically.  ``opt_level=2`` gives the call sites inline-cache cells."""
    stack_code = _make_fix_apply_code()
    stack_code.opt_level = opt_level
    return _convert_code(stack_code, stack_code.pool)


_RFIX_APPLY = _make_fix_rcode(0)
_RFIX_APPLY_O2 = _make_fix_rcode(2)


def _fix_rcode_o2_for_run() -> RCode:
    """A clone of the ``-O2`` fix stub with *fresh* inline-cache cells —
    the cells are run state (they feed ``cache_hits``/``cache_misses``), so
    a process-global stub would leak them across runs; see the stack VM's
    ``_fix_apply_o2_for_run``."""
    template = _RFIX_APPLY_O2
    return RCode(
        template.name, template.words, template.pool, template.n_free,
        template.n_regs, template.const_regs, template.param,
        template.local_names, opt_level=template.opt_level,
    )


class RVM:
    """Executes one register-compiled program.  Stateless between runs."""

    def run(
        self,
        code: RCode,
        fuel: int = DEFAULT_VM_FUEL,
        opcode_counts: dict | None = None,
    ) -> MachineOutcome:
        stats = MachineStats()
        counts = opcode_counts
        if counts is not None:
            stats.opcode_counts = counts
        pool = code.pool
        consts = pool.consts
        coercions = pool.coercions
        labels = pool.labels
        prims = pool.prims
        rcodes = getattr(pool, "rcodes", ())

        policy = policy_for(pool.mediator)
        # The observability hook: fetched once per run, tested with one
        # `is not None` at mediator lifecycle sites only — never on the
        # per-dispatch path — so untraced runs pay ~nothing and traced
        # outcomes stay bit-identical (the tracer reads, never writes).
        tracer = current_tracer()
        if tracer is not None:
            tracer.run_start("rvm", policy)
        apply_co = policy.apply
        co_size = policy.size
        classify = policy.classify
        compose_pending = policy.compose
        is_fun_proxy = policy.is_fun_proxy
        fun_parts = policy.fun_parts

        # MachineStats counters as loop locals; stored back via _store_stats.
        applications = 0
        hits = 0
        misses = 0
        kd_max = 0  # max_kont_depth
        pm = 0  # pending_mediators (always 0 or 1: one slot per live frame)
        ps = 0  # pending_size
        pm_max = 0
        ps_max = 0
        merges = 0

        # Opcode numbers as loop locals: every test in the chain below is a
        # LOAD_FAST instead of a global lookup.  The family bands (see
        # regalloc's numbering) are caught by range tests.
        COERCE_BR_PRIM1 = R_COERCE_BR_PRIM1
        COMPOSE_COERCE = R_COMPOSE_COERCE
        CLOSURE_BR_PRIM1 = R_CLOSURE_BR_PRIM1
        COMPOSE_PRIM2 = R_COMPOSE_PRIM2
        BR_PRIM2 = R_BR_PRIM2
        PRIM2 = R_PRIM2
        MOVE_PRIM2 = R_MOVE_PRIM2
        BR_PRIM1 = R_BR_PRIM1
        BR_FALSE = R_BR_FALSE
        MOVE = R_MOVE
        JUMP = R_JUMP
        CLOSURE = R_CLOSURE
        PRIM1 = R_PRIM1
        FIX = R_FIX
        PAIR = R_PAIR
        FST = R_FST
        SND = R_SND
        PRIMN = R_PRIMN
        BLAME = R_BLAME
        COMPOSE = R_COMPOSE
        TAILCALL = R_TAILCALL
        CALL = R_CALL
        RETURN = R_RETURN
        COERCE = R_COERCE

        frames: list = []  # caller frames: (stream, pc, regs, pending, caches, dst)
        stream = code.stream
        pc = 0
        regs: list = code.blank.copy()
        pending = None  # the frame's single pending result coercion
        caches = code.caches  # per-site inline-cache cells (None below -O2)
        stats.inline_caches = caches is not None
        co_actions, co_sizes = _pool_tables(pool, policy)
        fix_code = _fix_rcode_o2_for_run() if caches is not None else _RFIX_APPLY
        fix_stream = fix_code.stream
        # (fix V)'s unrolling is deterministic — the language is pure — so
        # the closure it produces is memoized per wrapper identity the first
        # time it returns, and later applications of the same wrapper jump
        # straight to it, skipping the unrolling call entirely.  The wrapper
        # is kept in the value to hold its id.  The profile maxima are
        # unaffected: the first unrolling already set them.
        unrolled: dict = {}

        try:
            for executed in range(fuel):
                op = stream[pc]
                if counts is not None:
                    counts[op] = counts.get(op, 0) + 1

                if op == COERCE_BR_PRIM1:
                    # [op, dst, src, co, prim, a, target]  (fused ⇒ -O2)
                    value = regs[stream[pc + 2]]
                    applications += 1
                    if value.__class__ is MProxy:
                        cell = caches[pc]
                        mediator = value.mediator
                        if cell is not None and mediator is cell[0]:
                            hits += 1
                            composed = cell[1]
                            act = cell[2]
                        else:
                            misses += 1
                            composed = compose_pending(mediator, coercions[stream[pc + 3]])
                            act = classify(composed)
                            caches[pc] = [mediator, composed, act]
                        if tracer is not None:
                            tracer.absorb(executed + 1, coercions[stream[pc + 3]],
                                          mediator, composed, pm, ps)
                        if act == 1:  # ACT_WRAP
                            value = MProxy(value.under, composed)
                        elif act == 0:  # ACT_IDENTITY
                            value = value.under
                        else:
                            value = apply_co(value.under, composed)
                    else:
                        coercion_index = stream[pc + 3]
                        act = co_actions[coercion_index]
                        if tracer is not None:
                            tracer.apply(executed + 1, coercions[coercion_index])
                        if act == 1:
                            value = MProxy(value, coercions[coercion_index])
                        elif act != 0:
                            value = apply_co(value, coercions[coercion_index])
                    regs[stream[pc + 1]] = value
                    a = regs[stream[pc + 5]]
                    fn, _arity, result_type, name = prims[stream[pc + 4]]
                    if a.__class__ is not MConst:
                        raise EvaluationError(
                            f"operator {name!r} applied to a non-constant: {a!r}"
                        )
                    cond = fn(a.value)
                    if cond is False:
                        pc = stream[pc + 6]
                    elif cond is True:
                        pc += 7
                    else:
                        raise EvaluationError(
                            f"if-condition is not a boolean: {MConst(cond, result_type)!r}"
                        )
                elif op == COMPOSE_COERCE:
                    # [op, co1, dst, src, co2]  (fused ⇒ -O2)
                    coercion = coercions[stream[pc + 1]]
                    if pending is None:
                        pending = coercion
                        pm += 1
                        ps += co_sizes[stream[pc + 1]]
                        if pm > pm_max:
                            pm_max = pm
                        if ps > ps_max:
                            ps_max = ps
                        if tracer is not None:
                            tracer.install(executed + 1, coercion, pm, ps)
                    else:
                        cell = caches[pc]
                        if cell is not None and pending is cell[0]:
                            hits += 1
                            ps += cell[3] - cell[2]
                            merges += 1
                            if ps > ps_max:
                                ps_max = ps
                            if tracer is not None:
                                tracer.merge(executed + 1, coercion, pending, cell[1], pm, ps)
                            pending = cell[1]
                        else:
                            misses += 1
                            merged = compose_pending(coercion, pending)
                            size_in = co_size(pending)
                            size_merged = co_size(merged)
                            ps += size_merged - size_in
                            merges += 1
                            if ps > ps_max:
                                ps_max = ps
                            caches[pc] = [pending, merged, size_in, size_merged]
                            if tracer is not None:
                                tracer.merge(executed + 1, coercion, pending, merged, pm, ps)
                            pending = merged
                    value = regs[stream[pc + 3]]
                    applications += 1
                    if value.__class__ is MProxy:
                        cell = caches[pc + 1]
                        mediator = value.mediator
                        if cell is not None and mediator is cell[0]:
                            hits += 1
                            composed = cell[1]
                            act = cell[2]
                        else:
                            misses += 1
                            composed = compose_pending(mediator, coercions[stream[pc + 4]])
                            act = classify(composed)
                            caches[pc + 1] = [mediator, composed, act]
                        if tracer is not None:
                            tracer.absorb(executed + 1, coercions[stream[pc + 4]],
                                          mediator, composed, pm, ps)
                        if act == 1:  # ACT_WRAP
                            value = MProxy(value.under, composed)
                        elif act == 0:  # ACT_IDENTITY
                            value = value.under
                        else:
                            value = apply_co(value.under, composed)
                    else:
                        coercion_index = stream[pc + 4]
                        act = co_actions[coercion_index]
                        if tracer is not None:
                            tracer.apply(executed + 1, coercions[coercion_index])
                        if act == 1:
                            value = MProxy(value, coercions[coercion_index])
                        elif act != 0:
                            value = apply_co(value, coercions[coercion_index])
                    regs[stream[pc + 2]] = value
                    pc += 5
                elif op > 19:
                    # The family bands: calls 20–25, returns 26–28,
                    # coerces 29–30 — each shares one instruction core.
                    if op < 26:
                        # ---- call family: prefix work, then the call core
                        if op == TAILCALL:
                            # [op, fun, arg]
                            fun = regs[stream[pc + 1]]
                            arg = regs[stream[pc + 2]]
                            if stream is fix_stream:
                                # the unrolling tail call: `fun` is (V wrap),
                                # regs[1] the wrapper — memoize the unrolling
                                unrolled[id(regs[1])] = (regs[1], fun)
                            tail = True
                            site = pc
                        elif op == CALL:
                            # [op, dst, fun, arg]
                            fun = regs[stream[pc + 2]]
                            arg = regs[stream[pc + 3]]
                            tail = False
                            site = pc
                            rpc = pc + 4
                            rdst = stream[pc + 1]
                        elif op == R_PRIM2_TAILCALL:
                            # [op, dst, prim, a, b, fun, arg]  (fused ⇒ -O2)
                            a = regs[stream[pc + 3]]
                            b = regs[stream[pc + 4]]
                            fn, _arity, result_type, name = prims[stream[pc + 2]]
                            if a.__class__ is not MConst or b.__class__ is not MConst:
                                raise EvaluationError(
                                    f"operator {name!r} applied to a non-constant"
                                )
                            regs[stream[pc + 1]] = MConst(fn(a.value, b.value), result_type)
                            fun = regs[stream[pc + 5]]
                            arg = regs[stream[pc + 6]]
                            tail = True
                            site = pc + 1
                        elif op == R_COERCE_TAILCALL:
                            # [op, dst, src, co, fun, arg]  (fused ⇒ -O2)
                            value = regs[stream[pc + 2]]
                            applications += 1
                            if value.__class__ is MProxy:
                                cell = caches[pc]
                                mediator = value.mediator
                                if cell is not None and mediator is cell[0]:
                                    hits += 1
                                    composed = cell[1]
                                    act = cell[2]
                                else:
                                    misses += 1
                                    composed = compose_pending(
                                        mediator, coercions[stream[pc + 3]]
                                    )
                                    act = classify(composed)
                                    caches[pc] = [mediator, composed, act]
                                if tracer is not None:
                                    tracer.absorb(executed + 1, coercions[stream[pc + 3]],
                                                  mediator, composed, pm, ps)
                                if act == 1:  # ACT_WRAP
                                    value = MProxy(value.under, composed)
                                elif act == 0:  # ACT_IDENTITY
                                    value = value.under
                                else:
                                    value = apply_co(value.under, composed)
                            else:
                                coercion_index = stream[pc + 3]
                                act = co_actions[coercion_index]
                                if tracer is not None:
                                    tracer.apply(executed + 1, coercions[coercion_index])
                                if act == 1:
                                    value = MProxy(value, coercions[coercion_index])
                                elif act != 0:
                                    value = apply_co(value, coercions[coercion_index])
                            regs[stream[pc + 1]] = value
                            fun = regs[stream[pc + 4]]
                            arg = regs[stream[pc + 5]]
                            tail = True
                            site = pc + 1
                        elif op == R_COERCE_CALL:
                            # [op, dst1, src, co, dst2, fun, arg]  (fused ⇒ -O2)
                            value = regs[stream[pc + 2]]
                            applications += 1
                            if value.__class__ is MProxy:
                                cell = caches[pc]
                                mediator = value.mediator
                                if cell is not None and mediator is cell[0]:
                                    hits += 1
                                    composed = cell[1]
                                    act = cell[2]
                                else:
                                    misses += 1
                                    composed = compose_pending(
                                        mediator, coercions[stream[pc + 3]]
                                    )
                                    act = classify(composed)
                                    caches[pc] = [mediator, composed, act]
                                if tracer is not None:
                                    tracer.absorb(executed + 1, coercions[stream[pc + 3]],
                                                  mediator, composed, pm, ps)
                                if act == 1:  # ACT_WRAP
                                    value = MProxy(value.under, composed)
                                elif act == 0:  # ACT_IDENTITY
                                    value = value.under
                                else:
                                    value = apply_co(value.under, composed)
                            else:
                                coercion_index = stream[pc + 3]
                                act = co_actions[coercion_index]
                                if tracer is not None:
                                    tracer.apply(executed + 1, coercions[coercion_index])
                                if act == 1:
                                    value = MProxy(value, coercions[coercion_index])
                                elif act != 0:
                                    value = apply_co(value, coercions[coercion_index])
                            regs[stream[pc + 1]] = value
                            fun = regs[stream[pc + 5]]
                            arg = regs[stream[pc + 6]]
                            tail = False
                            site = pc + 1
                            rpc = pc + 7
                            rdst = stream[pc + 4]
                        else:  # R_PRIM2_CALL
                            # [op, dst1, prim, a, b, dst2, fun, arg]  (fused ⇒ -O2)
                            a = regs[stream[pc + 3]]
                            b = regs[stream[pc + 4]]
                            fn, _arity, result_type, name = prims[stream[pc + 2]]
                            if a.__class__ is not MConst or b.__class__ is not MConst:
                                raise EvaluationError(
                                    f"operator {name!r} applied to a non-constant"
                                )
                            regs[stream[pc + 1]] = MConst(fn(a.value, b.value), result_type)
                            fun = regs[stream[pc + 6]]
                            arg = regs[stream[pc + 7]]
                            tail = False
                            site = pc + 1
                            rpc = pc + 8
                            rdst = stream[pc + 5]
                        # ---- the call core (canonical copy)
                        result_co = None
                        if fun.__class__ is MFixWrap:
                            memo = unrolled.get(id(fun))
                            if memo is not None:
                                fun = memo[1]
                        if fun.__class__ is MProxy:
                            # Unwrap proxy layers: coerce the argument now,
                            # defer the result coercion into a pending slot.
                            cell = caches[site] if caches is not None else None
                            if cell is not None and fun.mediator is cell[0]:
                                # Cache hit: dom/cod and the dom action
                                # resolved by one pointer compare.
                                applications += 1
                                hits += 1
                                dom = cell[1]
                                act = cell[3]
                                if tracer is not None:
                                    tracer.apply(executed + 1, dom)
                                if act == 1:  # ACT_WRAP
                                    if arg.__class__ is MProxy:
                                        arg = apply_co(arg, dom)
                                    else:
                                        arg = MProxy(arg, dom)
                                elif act != 0:  # not ACT_IDENTITY
                                    arg = apply_co(arg, dom)
                                result_co = cell[2]
                                fun = fun.under
                            else:
                                first = caches is not None
                                if first:
                                    misses += 1
                                while fun.__class__ is MProxy:
                                    mediator = fun.mediator
                                    if not is_fun_proxy(mediator):
                                        break
                                    applications += 1
                                    dom, cod = fun_parts(mediator)
                                    if tracer is not None:
                                        tracer.apply(executed + 1, dom)
                                    if first:
                                        caches[site] = [
                                            mediator, dom, cod, classify(dom),
                                            None, None, None, 0, 0,
                                        ]
                                        first = False
                                    arg = apply_co(arg, dom)
                                    result_co = (
                                        cod if result_co is None
                                        else compose_pending(cod, result_co)
                                    )
                                    fun = fun.under
                        if fun.__class__ is RClosure:
                            callee = fun.code
                            new_regs = callee.blank.copy()
                            n_free = callee.n_free
                            if n_free:
                                new_regs[:n_free] = fun.free
                            new_regs[n_free] = arg
                        elif fun.__class__ is MFixWrap:
                            # (fix V) W → (V wrap) W; `fun` doubles as the
                            # wrapper (immutable and field-equal to a fresh
                            # one), saving an allocation per unrolling.
                            callee = fix_code
                            new_regs = [fun.functional, fun, arg, None]
                        else:
                            raise EvaluationError(
                                f"application of a non-function value: {fun!r}"
                            )
                        if not tail:
                            frames.append((stream, rpc, regs, pending, caches, rdst))
                            depth = len(frames)
                            if depth > kd_max:
                                kd_max = depth
                            pending = result_co
                            if result_co is not None:
                                pm += 1
                                ps += co_size(result_co)
                                if pm > pm_max:
                                    pm_max = pm
                                if ps > ps_max:
                                    ps_max = ps
                                if tracer is not None:
                                    tracer.install(executed + 1, result_co, pm, ps)
                        else:  # reuse the frame, keep the pending slot
                            if result_co is not None:
                                if pending is None:
                                    pending = result_co
                                    pm += 1
                                    ps += co_size(result_co)
                                    if pm > pm_max:
                                        pm_max = pm
                                    if ps > ps_max:
                                        ps_max = ps
                                    if tracer is not None:
                                        tracer.install(executed + 1, result_co, pm, ps)
                                else:
                                    cell = caches[site] if caches is not None else None
                                    if (
                                        cell is not None
                                        and result_co is cell[4]
                                        and pending is cell[5]
                                    ):
                                        hits += 1
                                        ps += cell[8] - cell[7]
                                        merges += 1
                                        if ps > ps_max:
                                            ps_max = ps
                                        if tracer is not None:
                                            tracer.merge(executed + 1, result_co,
                                                         pending, cell[6], pm, ps)
                                        pending = cell[6]
                                    else:
                                        if cell is not None:
                                            misses += 1
                                        merged = compose_pending(result_co, pending)
                                        size_in = co_size(pending)
                                        size_merged = co_size(merged)
                                        ps += size_merged - size_in
                                        merges += 1
                                        if ps > ps_max:
                                            ps_max = ps
                                        if cell is not None:
                                            cell[4] = result_co
                                            cell[5] = pending
                                            cell[6] = merged
                                            cell[7] = size_in
                                            cell[8] = size_merged
                                        if tracer is not None:
                                            tracer.merge(executed + 1, result_co,
                                                         pending, merged, pm, ps)
                                        pending = merged
                        stream = callee.stream
                        pc = 0
                        regs = new_regs
                        caches = callee.caches
                    elif op < 29:
                        # ---- return family: prefix work, then the return core
                        if op == RETURN:
                            # [op, src]
                            value = regs[stream[pc + 1]]
                            site = pc
                        elif op == R_PRIM2_RETURN:
                            # [op, dst, prim, a, b, src]  (fused ⇒ -O2)
                            a = regs[stream[pc + 3]]
                            b = regs[stream[pc + 4]]
                            fn, _arity, result_type, name = prims[stream[pc + 2]]
                            if a.__class__ is not MConst or b.__class__ is not MConst:
                                raise EvaluationError(
                                    f"operator {name!r} applied to a non-constant"
                                )
                            regs[stream[pc + 1]] = MConst(fn(a.value, b.value), result_type)
                            value = regs[stream[pc + 5]]
                            site = pc + 1
                        else:  # R_CLOSURE_RETURN
                            # [op, dst, code, n, srcs…, src]  (fused ⇒ -O2)
                            n_free = stream[pc + 3]
                            if n_free:
                                base = pc + 4
                                free = tuple(
                                    [regs[stream[base + k]] for k in range(n_free)]
                                )
                            else:
                                free = ()
                            regs[stream[pc + 1]] = RClosure(rcodes[stream[pc + 2]], free)
                            value = regs[stream[pc + 4 + n_free]]
                            site = pc + 1
                        # ---- the return core (canonical copy)
                        if pending is not None:
                            applications += 1
                            if caches is not None and value.__class__ is not MProxy:
                                cell = caches[site]
                                if cell is not None and pending is cell[0]:
                                    hits += 1
                                    act = cell[1]
                                    pm -= 1
                                    ps -= cell[2]
                                else:
                                    misses += 1
                                    act = classify(pending)
                                    size = co_size(pending)
                                    caches[site] = [pending, act, size]
                                    pm -= 1
                                    ps -= size
                                if tracer is not None:
                                    tracer.collapse(executed + 1, pending, pm, ps)
                                if act == 1:  # ACT_WRAP
                                    value = MProxy(value, pending)
                                elif act != 0:
                                    value = apply_co(value, pending)
                            else:
                                pm -= 1
                                ps -= co_size(pending)
                                if tracer is not None:
                                    tracer.collapse(executed + 1, pending, pm, ps)
                                value = apply_co(value, pending)
                        if not frames:
                            stats.steps = executed + 1
                            _store_stats(
                                stats, kd_max, pm_max, ps_max, merges,
                                applications, hits, misses,
                            )
                            snapshot = stats.snapshot()
                            if tracer is not None:
                                tracer.run_end("value", snapshot)
                            return MachineOutcome(
                                "value", value=value, stats=snapshot
                            )
                        stream, pc, regs, pending, caches, dst = frames.pop()
                        regs[dst] = value
                    else:
                        # ---- coerce family (29 COERCE, 30 COERCE_COERCE)
                        # [op, dst, src, co(, dst2, src2, co2)]
                        value = regs[stream[pc + 2]]
                        applications += 1
                        if caches is not None:
                            # (canonical copy of the -O2 coerce core)
                            if value.__class__ is MProxy:
                                cell = caches[pc]
                                mediator = value.mediator
                                if cell is not None and mediator is cell[0]:
                                    hits += 1
                                    composed = cell[1]
                                    act = cell[2]
                                else:
                                    misses += 1
                                    composed = compose_pending(
                                        mediator, coercions[stream[pc + 3]]
                                    )
                                    act = classify(composed)
                                    caches[pc] = [mediator, composed, act]
                                if tracer is not None:
                                    tracer.absorb(executed + 1, coercions[stream[pc + 3]],
                                                  mediator, composed, pm, ps)
                                if act == 1:  # ACT_WRAP
                                    value = MProxy(value.under, composed)
                                elif act == 0:  # ACT_IDENTITY
                                    value = value.under
                                else:
                                    value = apply_co(value.under, composed)
                            else:
                                coercion_index = stream[pc + 3]
                                act = co_actions[coercion_index]
                                if tracer is not None:
                                    tracer.apply(executed + 1, coercions[coercion_index])
                                if act == 1:
                                    value = MProxy(value, coercions[coercion_index])
                                elif act != 0:
                                    value = apply_co(value, coercions[coercion_index])
                        else:
                            if tracer is not None:
                                tracer.apply(executed + 1, coercions[stream[pc + 3]])
                            value = apply_co(value, coercions[stream[pc + 3]])
                        regs[stream[pc + 1]] = value
                        if op == COERCE:
                            pc += 4
                        else:  # R_COERCE_COERCE second half  (fused ⇒ -O2)
                            value = regs[stream[pc + 5]]
                            applications += 1
                            if value.__class__ is MProxy:
                                cell = caches[pc + 1]
                                mediator = value.mediator
                                if cell is not None and mediator is cell[0]:
                                    hits += 1
                                    composed = cell[1]
                                    act = cell[2]
                                else:
                                    misses += 1
                                    composed = compose_pending(
                                        mediator, coercions[stream[pc + 6]]
                                    )
                                    act = classify(composed)
                                    caches[pc + 1] = [mediator, composed, act]
                                if tracer is not None:
                                    tracer.absorb(executed + 1, coercions[stream[pc + 6]],
                                                  mediator, composed, pm, ps)
                                if act == 1:  # ACT_WRAP
                                    value = MProxy(value.under, composed)
                                elif act == 0:  # ACT_IDENTITY
                                    value = value.under
                                else:
                                    value = apply_co(value.under, composed)
                            else:
                                coercion_index = stream[pc + 6]
                                act = co_actions[coercion_index]
                                if tracer is not None:
                                    tracer.apply(executed + 1, coercions[coercion_index])
                                if act == 1:
                                    value = MProxy(value, coercions[coercion_index])
                                elif act != 0:
                                    value = apply_co(value, coercions[coercion_index])
                            regs[stream[pc + 4]] = value
                            pc += 7
                elif op == CLOSURE_BR_PRIM1:
                    # [op, dst, code, n, srcs…, prim, a, target]  (fused ⇒ -O2)
                    n_free = stream[pc + 3]
                    if n_free:
                        base = pc + 4
                        free = tuple([regs[stream[base + k]] for k in range(n_free)])
                    else:
                        free = ()
                    regs[stream[pc + 1]] = RClosure(rcodes[stream[pc + 2]], free)
                    base = pc + 4 + n_free
                    a = regs[stream[base + 1]]
                    fn, _arity, result_type, name = prims[stream[base]]
                    if a.__class__ is not MConst:
                        raise EvaluationError(
                            f"operator {name!r} applied to a non-constant: {a!r}"
                        )
                    cond = fn(a.value)
                    if cond is False:
                        pc = stream[base + 2]
                    elif cond is True:
                        pc = base + 3
                    else:
                        raise EvaluationError(
                            f"if-condition is not a boolean: {MConst(cond, result_type)!r}"
                        )
                elif op == COMPOSE_PRIM2:
                    # [op, co, dst, prim, a, b]  (fused ⇒ -O2)
                    coercion = coercions[stream[pc + 1]]
                    if pending is None:
                        pending = coercion
                        pm += 1
                        ps += co_sizes[stream[pc + 1]]
                        if pm > pm_max:
                            pm_max = pm
                        if ps > ps_max:
                            ps_max = ps
                        if tracer is not None:
                            tracer.install(executed + 1, coercion, pm, ps)
                    else:
                        cell = caches[pc]
                        if cell is not None and pending is cell[0]:
                            hits += 1
                            ps += cell[3] - cell[2]
                            merges += 1
                            if ps > ps_max:
                                ps_max = ps
                            if tracer is not None:
                                tracer.merge(executed + 1, coercion, pending, cell[1], pm, ps)
                            pending = cell[1]
                        else:
                            misses += 1
                            merged = compose_pending(coercion, pending)
                            size_in = co_size(pending)
                            size_merged = co_size(merged)
                            ps += size_merged - size_in
                            merges += 1
                            if ps > ps_max:
                                ps_max = ps
                            caches[pc] = [pending, merged, size_in, size_merged]
                            if tracer is not None:
                                tracer.merge(executed + 1, coercion, pending, merged, pm, ps)
                            pending = merged
                    a = regs[stream[pc + 4]]
                    b = regs[stream[pc + 5]]
                    fn, _arity, result_type, name = prims[stream[pc + 3]]
                    if a.__class__ is not MConst or b.__class__ is not MConst:
                        raise EvaluationError(
                            f"operator {name!r} applied to a non-constant"
                        )
                    regs[stream[pc + 2]] = MConst(fn(a.value, b.value), result_type)
                    pc += 6
                elif op == BR_PRIM2:
                    # [op, prim, a, b, target]
                    a = regs[stream[pc + 2]]
                    b = regs[stream[pc + 3]]
                    fn, _arity, result_type, name = prims[stream[pc + 1]]
                    if a.__class__ is not MConst or b.__class__ is not MConst:
                        raise EvaluationError(
                            f"operator {name!r} applied to a non-constant"
                        )
                    cond = fn(a.value, b.value)
                    if cond is False:
                        pc = stream[pc + 4]
                    elif cond is True:
                        pc += 5
                    else:
                        raise EvaluationError(
                            f"if-condition is not a boolean: {MConst(cond, result_type)!r}"
                        )
                elif op == PRIM2:
                    # [op, dst, prim, a, b]  — the canonical prim2 core
                    a = regs[stream[pc + 3]]
                    b = regs[stream[pc + 4]]
                    fn, _arity, result_type, name = prims[stream[pc + 2]]
                    if a.__class__ is not MConst or b.__class__ is not MConst:
                        raise EvaluationError(
                            f"operator {name!r} applied to a non-constant"
                        )
                    regs[stream[pc + 1]] = MConst(fn(a.value, b.value), result_type)
                    pc += 5
                elif op == MOVE_PRIM2:
                    # [op, dst1, src1, dst2, prim, a, b]  (fused ⇒ -O2)
                    regs[stream[pc + 1]] = regs[stream[pc + 2]]
                    a = regs[stream[pc + 5]]
                    b = regs[stream[pc + 6]]
                    fn, _arity, result_type, name = prims[stream[pc + 4]]
                    if a.__class__ is not MConst or b.__class__ is not MConst:
                        raise EvaluationError(
                            f"operator {name!r} applied to a non-constant"
                        )
                    regs[stream[pc + 3]] = MConst(fn(a.value, b.value), result_type)
                    pc += 7
                elif op == BR_PRIM1:
                    # [op, prim, a, target]
                    a = regs[stream[pc + 2]]
                    fn, _arity, result_type, name = prims[stream[pc + 1]]
                    if a.__class__ is not MConst:
                        raise EvaluationError(
                            f"operator {name!r} applied to a non-constant: {a!r}"
                        )
                    cond = fn(a.value)
                    if cond is False:
                        pc = stream[pc + 3]
                    elif cond is True:
                        pc += 4
                    else:
                        raise EvaluationError(
                            f"if-condition is not a boolean: {MConst(cond, result_type)!r}"
                        )
                elif op == BR_FALSE:
                    # [op, src, target]
                    cond = regs[stream[pc + 1]]
                    if cond.__class__ is not MConst or not isinstance(cond.value, bool):
                        raise EvaluationError(f"if-condition is not a boolean: {cond!r}")
                    if cond.value:
                        pc += 3
                    else:
                        pc = stream[pc + 2]
                elif op == MOVE:
                    regs[stream[pc + 1]] = regs[stream[pc + 2]]
                    pc += 3
                elif op == JUMP:
                    pc = stream[pc + 1]
                elif op == CLOSURE:
                    # [op, dst, code, n, srcs…]  — the canonical closure core
                    n_free = stream[pc + 3]
                    if n_free:
                        base = pc + 4
                        free = tuple([regs[stream[base + k]] for k in range(n_free)])
                    else:
                        free = ()
                    regs[stream[pc + 1]] = RClosure(rcodes[stream[pc + 2]], free)
                    pc += 4 + n_free
                elif op == COMPOSE:
                    # [op, co]  — the canonical compose core (+ -O0 fallback)
                    coercion = coercions[stream[pc + 1]]
                    if pending is None:
                        pending = coercion
                        pm += 1
                        ps += co_sizes[stream[pc + 1]]
                        if pm > pm_max:
                            pm_max = pm
                        if ps > ps_max:
                            ps_max = ps
                        if tracer is not None:
                            tracer.install(executed + 1, coercion, pm, ps)
                    elif caches is not None:
                        cell = caches[pc]
                        if cell is not None and pending is cell[0]:
                            hits += 1
                            ps += cell[3] - cell[2]
                            merges += 1
                            if ps > ps_max:
                                ps_max = ps
                            if tracer is not None:
                                tracer.merge(executed + 1, coercion, pending, cell[1], pm, ps)
                            pending = cell[1]
                        else:
                            misses += 1
                            merged = compose_pending(coercion, pending)
                            size_in = co_size(pending)
                            size_merged = co_size(merged)
                            ps += size_merged - size_in
                            merges += 1
                            if ps > ps_max:
                                ps_max = ps
                            caches[pc] = [pending, merged, size_in, size_merged]
                            if tracer is not None:
                                tracer.merge(executed + 1, coercion, pending, merged, pm, ps)
                            pending = merged
                    else:
                        merged = compose_pending(coercion, pending)
                        ps += co_size(merged) - co_size(pending)
                        merges += 1
                        if ps > ps_max:
                            ps_max = ps
                        if tracer is not None:
                            tracer.merge(executed + 1, coercion, pending, merged, pm, ps)
                        pending = merged
                    pc += 2
                elif op == PRIM1:
                    # [op, dst, prim, a]
                    a = regs[stream[pc + 3]]
                    fn, _arity, result_type, name = prims[stream[pc + 2]]
                    if a.__class__ is not MConst:
                        raise EvaluationError(
                            f"operator {name!r} applied to a non-constant: {a!r}"
                        )
                    regs[stream[pc + 1]] = MConst(fn(a.value), result_type)
                    pc += 4
                elif op == FIX:
                    # [op, dst, src, type-const]
                    regs[stream[pc + 1]] = MFixWrap(
                        regs[stream[pc + 2]], consts[stream[pc + 3]]
                    )
                    pc += 4
                elif op == PAIR:
                    # [op, dst, left, right]
                    regs[stream[pc + 1]] = MPair(
                        regs[stream[pc + 2]], regs[stream[pc + 3]]
                    )
                    pc += 4
                elif op == FST or op == SND:
                    # [op, dst, src]
                    regs[stream[pc + 1]] = _project(
                        regs[stream[pc + 2]], op == FST, policy
                    )
                    pc += 3
                elif op == PRIMN:
                    # [op, dst, prim, n, srcs…]
                    fn, _arity, result_type, name = prims[stream[pc + 2]]
                    n = stream[pc + 3]
                    raw = []
                    base = pc + 4
                    for k in range(n):
                        operand_value = regs[stream[base + k]]
                        if operand_value.__class__ is not MConst:
                            raise EvaluationError(
                                f"operator {name!r} applied to a non-constant"
                            )
                        raw.append(operand_value.value)
                    regs[stream[pc + 1]] = MConst(fn(*raw), result_type)
                    pc += 4 + n
                elif op == BLAME:
                    raise MachineBlame(labels[stream[pc + 1]])
                else:  # pragma: no cover - defensive
                    raise EvaluationError(f"unknown register opcode: {op}")
        except MachineBlame as blame:
            stats.steps = executed + 1
            _store_stats(stats, kd_max, pm_max, ps_max, merges, applications, hits, misses)
            snapshot = stats.snapshot()
            if tracer is not None:
                tracer.blame(executed + 1, blame.label)
                tracer.run_end("blame", snapshot)
            return MachineOutcome("blame", label=blame.label, stats=snapshot)

        stats.steps = fuel
        _store_stats(stats, kd_max, pm_max, ps_max, merges, applications, hits, misses)
        snapshot = stats.snapshot()
        if tracer is not None:
            tracer.run_end("timeout", snapshot)
        return MachineOutcome("timeout", stats=snapshot)


def _store_stats(
    stats: MachineStats,
    kd_max: int,
    pm_max: int,
    ps_max: int,
    merges: int,
    applications: int,
    hits: int,
    misses: int,
) -> None:
    """Store the loop-local counters back into the shared stats object."""
    stats.max_kont_depth = kd_max
    stats.max_pending_mediators = pm_max
    stats.max_pending_size = ps_max
    stats.merges = merges
    stats.mediator_applications = applications
    stats.cache_hits = hits
    stats.cache_misses = misses


#: The shared, stateless register VM instance.
THE_RVM = RVM()


def compile_term_registers(
    term_b: Term, mediator: str = "coercion", opt_level: int = DEFAULT_OPT_LEVEL,
    metrics=None,
) -> RCode:
    """Compile an elaborated λB term through the full pipeline — translate,
    lower, optimize (``opt_level`` shapes elision, fusion, and cache
    allocation), then register-allocate — into code ready for
    :func:`run_rcode`.  ``metrics`` gets the ``lower``/``optimize`` phases
    (via :func:`~repro.compiler.vm.compile_term`) plus ``regalloc``."""
    from ..obs.metrics import phase
    from .regalloc import compile_registers
    from .vm import compile_term

    code = compile_term(term_b, mediator=mediator, opt_level=opt_level,
                        metrics=metrics)
    with phase(metrics, "regalloc"):
        return compile_registers(code)


def run_on_rvm(
    term_b: Term,
    fuel: int = DEFAULT_VM_FUEL,
    mediator: str = "coercion",
    opt_level: int = DEFAULT_OPT_LEVEL,
    opcode_counts: dict | None = None,
) -> MachineOutcome:
    """Compile a λB term to register code and run it (λS semantics)."""
    return THE_RVM.run(compile_term_registers(term_b, mediator=mediator, opt_level=opt_level),
                       fuel, opcode_counts=opcode_counts)


def run_rcode(
    code: RCode, fuel: int = DEFAULT_VM_FUEL, opcode_counts: dict | None = None
) -> MachineOutcome:
    """Run already register-compiled code on the shared RVM instance."""
    return THE_RVM.run(code, fuel, opcode_counts=opcode_counts)
