"""Disassembler and constant-pool pretty-printer for compiled programs.

``disassemble`` renders a whole program — the entry code object, every
nested code object, and the shared constant pool — as text::

    code 0 <main>  (free=0, param=-, locals=2)
       0  PUSH_CONST    0        ; 200 : int
       1  MAKE_CLOSURE  1        ; code 1 λn
       ...

    pool coercions:
       0: (id[bool] ; bool!)

The instruction stream is machine-readable: :func:`parse_disassembly`
recovers the exact ``(opcode, operand)`` lists from the text, and the round
trip ``parse_disassembly(disassemble(code)) == instruction_streams(code)``
is asserted by the test suite.  Pool entries are printed with their pretty
forms for debugging; they are referenced by index, not re-parsed.
"""

from __future__ import annotations

import re

from ..core.errors import CompileError
from .bytecode import (
    BLAME,
    COERCE,
    COMPOSE,
    JUMP,
    JUMP_IF_FALSE,
    LOAD,
    MAKE_CLOSURE,
    MAKE_FIX,
    NO_OPERAND,
    OPCODE_NAMES,
    OPCODES_BY_NAME,
    PRIM,
    PUSH_CONST,
    STORE,
    SUPERINSTRUCTIONS,
    CodeObject,
    all_code_objects,
    unpack_operands,
)
from .regalloc import (
    R_OPCODE_NAMES,
    R_OPCODES_BY_NAME,
    R_SIGS,
    all_rcodes,
    instruction_width,
)

_INSTR_RE = re.compile(r"^\s*(\d+)\s+([A-Z][A-Z_0-9]*)(?:\s+(-?\d+))?\s*(?:;.*)?$")
_CODE_RE = re.compile(r"^code\s+(\d+)\s+(\S+)")
_RINSTR_RE = re.compile(r"^\s*(\d+)\s+([A-Z][A-Z_0-9]*)((?:\s+\d+)*)\s*(?:;.*)?$")
_RCODE_RE = re.compile(r"^rcode\s+(\d+)\s+(\S+)")


def _comment(code: CodeObject, opcode: int, operand: int) -> str:
    pool = code.pool
    if opcode == PUSH_CONST or opcode == MAKE_FIX:
        return str(pool.consts[operand])
    if opcode == LOAD or opcode == STORE:
        names = code.local_names
        return names[operand] if operand < len(names) else "?"
    if opcode == COERCE or opcode == COMPOSE:
        return str(pool.coercions[operand])
    if opcode == BLAME:
        return str(pool.labels[operand])
    if opcode == PRIM:
        _, arity, _, name = pool.prims[operand]
        return f"{name}/{arity}"
    if opcode == MAKE_CLOSURE:
        child = pool.codes[operand]
        return f"code {operand + 1} {child.name}"
    if opcode == JUMP or opcode == JUMP_IF_FALSE:
        return f"-> {operand}"
    if opcode in SUPERINSTRUCTIONS:
        # Decode the fused operand and describe both halves, so an -O2
        # stream reads like the pair it replaced.
        op1, op2 = SUPERINSTRUCTIONS[opcode]
        a, b = unpack_operands(opcode, operand)
        parts = []
        for sub_op, sub_operand in ((op1, a), (op2, b)):
            sub_comment = _comment(code, sub_op, sub_operand)
            if sub_op in NO_OPERAND:
                parts.append(OPCODE_NAMES[sub_op])
            elif sub_comment:
                parts.append(f"{OPCODE_NAMES[sub_op]} {sub_operand} [{sub_comment}]")
            else:
                parts.append(f"{OPCODE_NAMES[sub_op]} {sub_operand}")
        return " + ".join(parts)
    return ""


def disassemble(code: CodeObject) -> str:
    """Render a compiled program (entry code + nested codes + pools) as text."""
    lines: list[str] = []
    for index, obj in enumerate(all_code_objects(code)):
        param = obj.param if obj.param is not None else "-"
        lines.append(
            f"code {index} {obj.name}  (free={obj.n_free}, param={param}, locals={obj.n_locals})"
        )
        for pc, (opcode, operand) in enumerate(obj.instructions):
            name = OPCODE_NAMES[opcode]
            comment = _comment(obj, opcode, operand)
            suffix = f"        ; {comment}" if comment else ""
            if opcode in NO_OPERAND:
                lines.append(f"  {pc:4d}  {name}{suffix}")
            else:
                lines.append(f"  {pc:4d}  {name:<18} {operand}{suffix}")
        lines.append("")

    pool = code.pool
    if pool.consts:
        lines.append("pool consts:")
        for i, value in enumerate(pool.consts):
            lines.append(f"  {i}: {value}")
        lines.append("")
    if pool.coercions:
        lines.append("pool coercions:")
        for i, coercion in enumerate(pool.coercions):
            lines.append(f"  {i}: {coercion}")
        lines.append("")
    if pool.labels:
        lines.append("pool labels:")
        for i, label in enumerate(pool.labels):
            lines.append(f"  {i}: {label}")
        lines.append("")
    if pool.prims:
        lines.append("pool prims:")
        for i, (_, arity, result_type, name) in enumerate(pool.prims):
            lines.append(f"  {i}: {name}/{arity} -> {result_type}")
        lines.append("")
    return "\n".join(lines)


def disassemble_image(image) -> str:
    """Disassemble a loaded ``.gradb`` image with its provenance header.

    The provenance lines are comments (``;`` prefixed), so the output still
    satisfies the :func:`parse_disassembly` round trip — an image
    disassembly minus its header is byte-identical to the disassembly of
    the same program compiled in memory (asserted by the test suite).
    """
    info = image.info
    lines = [
        f"; gradb image v{info.format_version}",
        f"; mediator={info.mediator} opt-level={info.opt_level} ir={info.ir}",
        f"; source-hash={info.source_hash or '-'}",
        f"; type={info.static_type if info.static_type is not None else '-'}",
        "",
    ]
    return "\n".join(lines) + disassemble(image.code)


def instruction_streams(code: CodeObject) -> list[list[tuple[int, int]]]:
    """The program's raw ``(opcode, operand)`` lists, entry code first."""
    return [list(obj.instructions) for obj in all_code_objects(code)]


def _register_comment(obj, op: int, pc: int) -> str:
    """Describe one register instruction's operands per its signature."""
    pool = obj.pool
    words = obj.words
    parts: list[str] = []
    i = pc + 1
    for ch in R_SIGS[op]:
        w = words[i]
        if ch == "d" or ch == "s":
            parts.append(f"r{w}")
        elif ch == "p":
            _, arity, _, name = pool.prims[w]
            parts.append(f"{name}/{arity}")
        elif ch == "c":
            parts.append(str(pool.coercions[w]))
        elif ch == "k":
            parts.append(str(pool.consts[w]))
        elif ch == "L":
            parts.append(str(pool.labels[w]))
        elif ch == "C":
            # +1: the entry rcode is listed first, shifting the pool's codes
            parts.append(f"rcode {w + 1} {pool.codes[w].name}")
        elif ch == "t":
            parts.append(f"-> {w}")
        elif ch == "n":
            count = w
            regs = words[i + 1 : i + 1 + count]
            parts.append("[" + " ".join(f"r{x}" for x in regs) + "]")
            i += count
        i += 1
    return " ".join(parts)


def disassemble_registers(rcode) -> str:
    """Render a register-compiled program (entry rcode + nested rcodes) as
    text.  Each line is ``pc NAME w1 w2 …`` where ``pc`` is the *word* index
    of the instruction in the packed stream; the comment spells the operands
    out per the opcode's signature.  :func:`parse_register_disassembly`
    recovers the exact word streams (the register round trip)."""
    lines: list[str] = []
    for index, obj in enumerate(all_rcodes(rcode)):
        param = obj.param if obj.param is not None else "-"
        pinned = ",".join(map(str, obj.const_regs)) if obj.const_regs else "-"
        lines.append(
            f"rcode {index} {obj.name}  (free={obj.n_free}, param={param}, "
            f"regs={obj.n_regs}, pinned-consts={pinned})"
        )
        words = obj.words
        pc = 0
        end = len(words)
        while pc < end:
            op = words[pc]
            width = instruction_width(op, words, pc)
            name = R_OPCODE_NAMES[op]
            operands = " ".join(str(w) for w in words[pc + 1 : pc + width])
            comment = _register_comment(obj, op, pc)
            suffix = f"        ; {comment}" if comment else ""
            if operands:
                lines.append(f"  {pc:4d}  {name:<22} {operands}{suffix}")
            else:
                lines.append(f"  {pc:4d}  {name}{suffix}")
            pc += width
        lines.append("")
    return "\n".join(lines)


def register_streams(rcode) -> list[list[int]]:
    """The program's raw packed word streams, entry rcode first."""
    return [list(obj.words) for obj in all_rcodes(rcode)]


def parse_register_disassembly(text: str) -> list[list[int]]:
    """Recover the packed word streams from register disassembly text."""
    streams: list[list[int]] = []
    current: list[int] | None = None
    for line in text.splitlines():
        if _RCODE_RE.match(line):
            current = []
            streams.append(current)
            continue
        if current is None or not line.strip() or line.startswith("pool"):
            current = None if (line.startswith("pool") or not line.strip()) else current
            continue
        match = _RINSTR_RE.match(line)
        if not match:
            raise CompileError(f"unparseable register disassembly line: {line!r}")
        pc, name, operands = match.groups()
        opcode = R_OPCODES_BY_NAME.get(name)
        if opcode is None:
            raise CompileError(f"unknown register opcode in disassembly: {name!r}")
        if int(pc) != len(current):
            raise CompileError(f"out-of-order pc in register disassembly: {line!r}")
        current.append(opcode)
        current.extend(int(w) for w in operands.split())
    return streams


def parse_disassembly(text: str) -> list[list[tuple[int, int]]]:
    """Recover the instruction streams from disassembly text (the round trip)."""
    streams: list[list[tuple[int, int]]] = []
    current: list[tuple[int, int]] | None = None
    for line in text.splitlines():
        if _CODE_RE.match(line):
            current = []
            streams.append(current)
            continue
        if current is None or not line.strip() or line.startswith("pool"):
            current = None if (line.startswith("pool") or not line.strip()) else current
            continue
        match = _INSTR_RE.match(line)
        if not match:
            raise CompileError(f"unparseable disassembly line: {line!r}")
        pc, name, operand = match.groups()
        opcode = OPCODES_BY_NAME.get(name)
        if opcode is None:
            raise CompileError(f"unknown opcode in disassembly: {name!r}")
        if int(pc) != len(current):
            raise CompileError(f"out-of-order pc in disassembly: {line!r}")
        current.append((opcode, int(operand) if operand is not None else 0))
    return streams
