"""Content-addressed on-disk compile cache for ``.gradb`` images.

Compilation is pure: the image produced for a program depends only on the
program text (equivalently, its elaborated term), the optimizer level, the
mediator backend, and the toolchain's format/instruction-set version.  So a
compiled image is cached under a key that is exactly that tuple, hashed::

    ~/.cache/repro-gradual/<k[:2]>/<k>.gradb
    k = sha256(format version ‖ opcode fingerprint ‖ [IR ‖ register
               fingerprint] ‖ source hash ‖ opt level ‖ mediator)

(the IR axis — stack vs register — is keyed so register images never
collide with stack images of the same source/level/mediator)

and a warm ``run`` deserializes the image instead of re-running the whole
parse → type check → elaborate → translate → lower → optimize pipeline.
There is no invalidation protocol: keys are content-addressed, so a changed
program, a different ``-O`` level or mediator, or a new format/opcode-set
version simply misses and compiles fresh.  Entries are written atomically
(:func:`~repro.compiler.serialize.save_image` writes a temp sibling and
``os.replace``\\ s it), and a corrupt or truncated entry — detected by the
image checksum on load — is deleted and recompiled rather than surfaced.

The cache directory resolves, in order: an explicit ``cache_dir`` argument,
``$REPRO_GRADUAL_CACHE_DIR``, ``$XDG_CACHE_HOME/repro-gradual``, and
``~/.cache/repro-gradual``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

from ..core.terms import Term
from ..core.types import Type
from .bytecode import opcode_fingerprint
from .regalloc import register_fingerprint
from .serialize import (
    FORMAT_VERSION,
    GRADB_MAGIC,
    GRADB_SUFFIX,
    ImageError,
    LoadedImage,
    load_image,
    save_image,
    source_fingerprint,
)

#: Environment variable overriding the cache location (highest precedence
#: after an explicit ``cache_dir`` argument).
CACHE_DIR_ENV = "REPRO_GRADUAL_CACHE_DIR"


def default_cache_dir() -> Path:
    """The resolved on-disk cache directory (not created until first write)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-gradual"


def cache_key(source_hash: str, opt_level: int, mediator: str, ir: str = "stack") -> str:
    """The content address of one compilation: hex SHA-256 over every input
    that can change the produced image.  ``ir`` is an axis of the key, so a
    register image never collides with a stack image of the same source —
    and register keys also cover the register instruction set's own
    fingerprint (a renumbering invalidates register entries only)."""
    from ..semantics import resolve

    digest = hashlib.sha256()
    digest.update(f"gradb-v{FORMAT_VERSION}\x00".encode())
    digest.update(opcode_fingerprint())
    if ir != "stack":
        digest.update(f"\x00ir={ir}\x00".encode())
        digest.update(register_fingerprint())
    # The enforcement-semantics axis comes from the registry, so renaming or
    # re-versioning a backend's key invalidates exactly its own entries.
    axis = resolve(mediator).cache_key
    digest.update(f"\x00{source_hash}\x00{opt_level}\x00{axis}".encode())
    return digest.hexdigest()


def cache_path(
    source_hash: str,
    opt_level: int,
    mediator: str,
    cache_dir: str | os.PathLike | None = None,
    ir: str = "stack",
) -> Path:
    """Where the image for this compilation lives (two-level fan-out, so a
    large cache does not pile every entry into one directory)."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    key = cache_key(source_hash, opt_level, mediator, ir)
    return root / key[:2] / (key + GRADB_SUFFIX)


@dataclass
class CacheOutcome:
    """One cache consultation: the loaded/compiled image and how it was found.

    ``status`` is ``"hit"`` (deserialized from disk), ``"miss"`` (compiled
    and stored), or ``"recovered"`` (a corrupt entry was deleted, then
    compiled and stored fresh).
    """

    image: LoadedImage
    status: str
    path: Path


def _try_load(path: Path, metrics=None) -> LoadedImage | None:
    """Load a cache entry, deleting it if it is corrupt or unreadable.

    Entries were written by this library into the user's own cache, so the
    crafted-image bounds validation is skipped (the checksum still catches
    corruption — the failure mode a cache actually has).

    Corruption here means *anything* short of a loadable image: a bad CRC,
    but also the zero-length or truncated-header entries a crash
    mid-``os.replace`` leaves behind on filesystems that do not order data
    and rename, and any decoder surprise (``MemoryError``/``OverflowError``
    from a garbage length prefix).  Every such entry is deleted and counted
    as a miss — the cache recompiles; it never raises.
    """
    try:
        size = path.stat().st_size
    except OSError:
        return None
    corrupt = False
    if size < len(GRADB_MAGIC) + 5:
        # Too short to even hold the magic and the CRC trailer: a torn
        # write for certain.  Skip the parse and go straight to recovery.
        corrupt = True
    else:
        try:
            return load_image(path, validate=False)
        except (ImageError, OSError, MemoryError, OverflowError, ValueError):
            corrupt = True
    if corrupt:
        if metrics is not None:
            metrics.counter("cache.corrupt").inc()
        try:
            path.unlink()
        except OSError:
            pass
    return None


def cache_lookup(
    source_hash: str,
    opt_level: int,
    mediator: str,
    cache_dir: str | os.PathLike | None = None,
    ir: str = "stack",
    metrics=None,
) -> LoadedImage | None:
    """The cached image for this compilation, or ``None`` on a miss.

    A corrupt entry counts as a miss (and is deleted); this is the warm
    path of ``run_source``, which skips parsing, elaboration, lowering,
    and optimization entirely when it returns an image.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) gets the
    ``cache`` phase timer and the ``cache.hit``/``cache.corrupt`` counters;
    the miss itself is counted by :func:`cached_compile`, which every miss
    falls through to — so the two callers never double-count.
    """
    from ..obs.metrics import phase

    with phase(metrics, "cache"):
        image = _try_load(
            cache_path(source_hash, opt_level, mediator, cache_dir, ir), metrics
        )
    if image is not None and metrics is not None:
        metrics.counter("cache.hit").inc()
    return image


def cached_compile(
    term: Term,
    source_hash: str | None = None,
    static_type: Type | None = None,
    mediator: str = "coercion",
    opt_level: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    ir: str = "stack",
    metrics=None,
) -> CacheOutcome:
    """Compile a λB term through the cache.

    ``source_hash`` identifies the program; when the caller has no source
    text (the term-level API), the pretty-printed elaborated term stands in
    — it is deterministic and captures exactly what is compiled.  On a hit
    the stored image is deserialized (re-interned, ready to run); on a miss
    — or after deleting a corrupt entry — the term is compiled, stored
    atomically, and returned without a second round trip through disk.

    ``ir="register"`` caches (and on a hit returns) an image that carries
    the packed register streams too, under its own key.

    ``metrics`` gets the ``cache`` phase timer (load + store; compilation is
    timed by its own ``lower``/``optimize``/``regalloc`` phases) and the
    ``cache.{hit,miss,recovered,corrupt}`` counters.
    """
    from ..core.faults import current_plan
    from ..core.pretty import term_to_str
    from ..obs.metrics import phase
    from .opt import DEFAULT_OPT_LEVEL
    from .vm import compile_term

    if opt_level is None:
        opt_level = DEFAULT_OPT_LEVEL
    if source_hash is None:
        source_hash = source_fingerprint(term_to_str(term))
    path = cache_path(source_hash, opt_level, mediator, cache_dir, ir)
    existed = path.exists()
    with phase(metrics, "cache"):
        image = _try_load(path, metrics)
    if image is not None:
        if metrics is not None:
            metrics.counter("cache.hit").inc()
        return CacheOutcome(image, "hit", path)

    plan = current_plan()
    if plan is not None:
        # Fault hook `slow_compile`: a compile that stalls (page cache
        # miss, contended CPU) — the serving layer's deadline must cover it.
        plan.delay("slow_compile", 0.1)
    code = compile_term(term, mediator=mediator, opt_level=opt_level, metrics=metrics)
    with phase(metrics, "cache"):
        try:
            save_image(code, path, source_hash=source_hash,
                       static_type=static_type, ir=ir)
        except OSError:
            pass  # a read-only or full cache degrades to compile-always
    from .serialize import ImageInfo

    rcode = None
    if ir == "register":
        from .regalloc import compile_registers

        with phase(metrics, "regalloc"):
            rcode = compile_registers(code)
    info = ImageInfo(FORMAT_VERSION, source_hash, opt_level, mediator, static_type, ir)
    status = "recovered" if existed else "miss"
    if metrics is not None:
        metrics.counter(f"cache.{status}").inc()
    return CacheOutcome(LoadedImage(code, info, rcode), status, path)


def sweep_cache(
    cache_dir: str | os.PathLike | None = None, metrics=None
) -> tuple[int, int]:
    """Scan the cache and delete every entry that does not load cleanly.

    Returns ``(kept, removed)``.  ``removed`` counts corrupt/truncated
    entries *and* orphaned ``*.tmp`` siblings left by a crash between
    ``tempfile.mkstemp`` and ``os.replace``.  The serving layer runs this
    on graceful shutdown, so a chaos run (torn-write injection and all)
    leaves the cache with no corrupt entries; it is also safe to call any
    time — entries a sweep deletes would have been deleted-and-recompiled
    on their next lookup anyway.
    """
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    kept = removed = 0
    if not root.is_dir():
        return kept, removed
    for entry in sorted(root.rglob("*.tmp")):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            pass
    for entry in sorted(root.rglob(f"*{GRADB_SUFFIX}")):
        if _try_load(entry, metrics) is None:
            removed += 1
        else:
            kept += 1
    return kept, removed
