"""The bytecode optimizer: static mediator work + peephole superinstructions.

This stage sits between :mod:`repro.compiler.lower` and the VM and moves
work out of the hot loop, at three levels (``optimize(code, level)``,
surfaced as ``-O``/``--opt-level`` with ``-O2`` the default):

``-O0``
    Nothing: the instruction stream exactly as lowered (the PR-2/PR-3
    baseline, kept runnable as the optimizer's own oracle).

``-O1`` — **static coercion elision and pre-composition.**
    The paper's point is that composition ``#`` is a *compile-time-friendly*
    operator: it is total, canonical, and associative.  So whatever the
    compiler can already see, it composes ahead of execution:

    * a ``COERCE``/``COMPOSE`` whose operand is (or normalizes to) the
      canonical identity at its type is dropped — applying it is a no-op on
      every machine value;
    * statically adjacent ``COERCE s₁; COERCE s₂`` become one
      ``COERCE (s₁ # s₂)``; adjacent ``COMPOSE s₁; COMPOSE s₂`` become one
      ``COMPOSE (s₂ # s₁)`` (a ``COMPOSE`` prepends to the pending slot, so
      the *later* instruction applies first).  Chains collapse to fixpoint,
      and a chain that normalizes to the identity disappears entirely.

    Both rewrites go through the pool's own mediator representation — the
    memoised ``#`` for canonical coercions, threesome composition ``∘`` for
    a threesome pool — so both backends are optimized by the same pass.

``-O2`` — **peephole superinstructions + inline mediator caches.**
    Statically adjacent pairs that a dynamic-frequency count (gathered via
    ``MachineStats``/:func:`hot_pairs` over the ``bench_vm`` workloads)
    showed hot are fused into the superinstructions of
    :data:`repro.compiler.bytecode.SUPERINSTRUCTIONS`, saving a dispatch
    and usually a stack round trip each.  ``-O2`` also allocates the
    per-site inline-cache cells (``CodeObject.caches``) that let the VM's
    mediator opcodes replace policy calls and memo-dictionary lookups with
    pointer compares on interned mediator identity (see
    :mod:`repro.compiler.vm`).

Jumps are remapped across every rewrite; a pair is never fused when its
second instruction is a jump target (control could enter between the
halves).  The optimizer never changes observables — values, blame labels,
λS's space guarantee (a tail loop's ``max_pending_mediators`` stays 1; an
elided identity can only *shrink* the footprint) — which
``check_vm_oracle``/``check_mediator_oracle`` assert by running ``-O0``
against ``-O2`` on both mediator backends.
"""

from __future__ import annotations

from ..machine.policy import MediationPolicy
from ..semantics import policy_for
from .bytecode import (
    COERCE,
    COMPOSE,
    FUSED_LIMIT,
    JUMP,
    JUMP_IF_FALSE,
    NO_OPERAND,
    PRIM_JUMP_IF_FALSE,
    PUSH_PRIM,
    SUPERINSTRUCTIONS,
    CodeObject,
    all_code_objects,
    pack_operands,
)

#: Optimization levels understood by ``optimize`` (and ``-O`` on the CLI).
OPT_LEVELS = (0, 1, 2)

#: The default level everywhere: full optimization.
DEFAULT_OPT_LEVEL = 2

#: ``(op1, op2) -> fused`` — the peephole table, inverted from the opcode
#: metadata so the two stay in sync by construction.
_FUSIONS: dict[tuple[int, int], int] = {
    pair: fused for fused, pair in SUPERINSTRUCTIONS.items()
}

_JUMPS = (JUMP, JUMP_IF_FALSE)


def _jump_targets(insns: list[tuple[int, int]]) -> set[int]:
    return {operand for op, operand in insns if op in _JUMPS}


def _remap_jumps(insns: list[tuple[int, int]], old2new: list[int]) -> list[tuple[int, int]]:
    return [
        (op, old2new[operand] if op in _JUMPS else operand) for op, operand in insns
    ]


# ---------------------------------------------------------------------------
# -O1: identity elision and static pre-composition
# ---------------------------------------------------------------------------


def _elide_and_precompose(code: CodeObject, policy: MediationPolicy) -> bool:
    """One rewrite pass over one code object; True if anything changed.

    Drops identity ``COERCE``/``COMPOSE`` and merges adjacent same-kind
    pairs through the backend's composition.  Deleted instructions remap to
    the next surviving one, so jumps into an elided site keep their meaning.
    """
    insns = code.instructions
    pool = code.pool
    targets = _jump_targets(insns)
    new: list[tuple[int, int]] = []
    old2new: list[int] = []
    changed = False
    i, n = 0, len(insns)
    while i < n:
        op, operand = insns[i]
        if op == COERCE or op == COMPOSE:
            mediator = pool.coercions[operand]
            if policy.is_identity(mediator):
                old2new.append(len(new))
                i += 1
                changed = True
                continue
            if i + 1 < n and insns[i + 1][0] == op and (i + 1) not in targets:
                other = pool.coercions[insns[i + 1][1]]
                # COERCE applies in stream order; COMPOSE prepends to the
                # pending slot, so the later instruction applies first.
                if op == COERCE:
                    merged = policy.compose(mediator, other)
                else:
                    merged = policy.compose(other, mediator)
                old2new.append(len(new))
                old2new.append(len(new))
                if not policy.is_identity(merged):
                    new.append((op, pool.add_canonical_mediator(merged)))
                i += 2
                changed = True
                continue
        old2new.append(len(new))
        new.append((op, operand))
        i += 1
    old2new.append(len(new))  # jumps may target the end of the stream
    if changed:
        code.instructions = _remap_jumps(new, old2new)
    return changed


# ---------------------------------------------------------------------------
# -O2: peephole superinstruction fusion
# ---------------------------------------------------------------------------


def _fusable(code: CodeObject, i: int, targets: set[int]) -> int | None:
    """The fused opcode for the pair at ``i``, or None."""
    insns = code.instructions
    op1, a = insns[i]
    op2, b = insns[i + 1]
    fused = _FUSIONS.get((op1, op2))
    if fused is None or (i + 1) in targets:
        return None
    # Both halves carry an operand: they must fit the packing.  (Remapped
    # jump targets only shrink, so checking the old values is safe.)
    if op1 not in NO_OPERAND and op2 not in NO_OPERAND:
        if a >= FUSED_LIMIT or b >= FUSED_LIMIT:
            return None
    # The fully inlined primitive superinstructions handle unary and binary
    # operators (the whole registry today); leave anything else unfused.
    if fused == PUSH_PRIM and code.pool.prims[b][1] > 2:
        return None
    if fused == PRIM_JUMP_IF_FALSE and code.pool.prims[a][1] > 2:
        return None
    return fused


def _fuse_superinstructions(code: CodeObject) -> None:
    insns = code.instructions
    targets = _jump_targets(insns)
    n = len(insns)

    # Phase 1: greedy left-to-right pairing decisions.
    decisions: list[tuple[int, int | None]] = []  # (old index, fused opcode | None)
    i = 0
    while i < n:
        fused = _fusable(code, i, targets) if i + 1 < n else None
        decisions.append((i, fused))
        i += 2 if fused is not None else 1

    # Phase 2: the old→new pc map (a fused pair's second half maps to the
    # fused instruction; no jump can target it — _fusable guaranteed that).
    old2new = [0] * (n + 1)
    for new_index, (old_index, fused) in enumerate(decisions):
        old2new[old_index] = new_index
        if fused is not None:
            old2new[old_index + 1] = new_index
    old2new[n] = len(decisions)

    # Phase 3: emit, remapping jump operands (packed or plain).
    new: list[tuple[int, int]] = []
    for old_index, fused in decisions:
        op1, a = insns[old_index]
        if op1 in _JUMPS:
            a = old2new[a]
        if fused is None:
            new.append((op1, a))
            continue
        op2, b = insns[old_index + 1]
        if op2 in _JUMPS:
            b = old2new[b]
        new.append((fused, pack_operands(op1, a, op2, b)))
    code.instructions = new


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def optimize(code: CodeObject, level: int = DEFAULT_OPT_LEVEL) -> CodeObject:
    """Optimize a compiled program in place (entry + nested codes); returns it.

    ``level`` is clamped to :data:`OPT_LEVELS`; level 0 returns the program
    untouched (and un-cached: exactly what the lowering pass produced).
    """
    if level not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {level!r}; expected one of {OPT_LEVELS}")
    code.opt_level = level
    if level == 0:
        return code
    policy = policy_for(code.pool.mediator)
    for obj in all_code_objects(code):
        while _elide_and_precompose(obj, policy):
            pass
        if level >= 2:
            _fuse_superinstructions(obj)
            obj.caches = [None] * len(obj.instructions)
        obj.opt_level = level
    return code


# ---------------------------------------------------------------------------
# The measurement tool behind the superinstruction set
# ---------------------------------------------------------------------------


def hot_pairs(code: CodeObject, fuel: int | None = None) -> list[tuple[tuple[int, int], int]]:
    """Dynamic frequencies of statically adjacent opcode pairs in one run.

    Runs the program on the VM with pair profiling on (the counts ride on
    the run's ``MachineStats`` snapshot) and returns ``((op1, op2), count)``
    sorted hottest first.  This is the measurement that chose the
    :data:`~repro.compiler.bytecode.SUPERINSTRUCTIONS` set; it stays in the
    tree so future opcode proposals can be justified the same way.
    """
    from .vm import DEFAULT_VM_FUEL, THE_VM

    counts: dict[tuple[int, int], int] = {}
    THE_VM.run(code, fuel if fuel is not None else DEFAULT_VM_FUEL, pair_counts=counts)
    return sorted(counts.items(), key=lambda item: item[1], reverse=True)
