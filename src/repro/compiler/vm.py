"""The coercion-aware bytecode VM — the fast λS engine.

One Python-level loop executes the flat instruction stream produced by
:mod:`repro.compiler.lower`.  Dispatch is an integer comparison chain ordered
by dynamic frequency (the closest Python gets to threaded code); every
operand is a pool index resolved at compile time, so the hot loop touches no
term, type, or name structure at all.  Compare the CEK machine, which pays
an ``isinstance`` ladder over AST nodes plus an environment-dictionary copy
per binding on every step.

Space efficiency lives in one slot per call frame: ``pending``, the single
canonical coercion to apply to the frame's eventual result.

* ``COMPOSE s`` merges ``s`` into the live frame's slot with the memoised
  ``#`` — it never pushes a frame;
* ``TAILCALL`` reuses the frame (the slot survives, composed);
* unwrapping a function proxy folds the proxy's codomain coercion into the
  same discipline: ``CALL`` seeds the callee's slot, ``TAILCALL`` composes
  into the caller's.

So at any instant each frame holds at most one pending coercion — composed,
never stacked — and a boundary-crossing tail loop runs with
``max_pending_mediators == 1`` no matter how many iterations it makes.  The
shared :class:`~repro.machine.profiler.MachineStats` accounting makes this
directly comparable with the CEK machine's numbers (and is asserted by
``tests/test_compiler.py`` and ``benchmarks/bench_vm.py``).

The VM executes λS only; ``run_on_vm`` translates a λB program first,
mirroring ``run_on_machine``.

The pending-mediator *representation* is pluggable (:data:`VM_BACKENDS`,
selected by the constant pool's ``mediator`` field): canonical coercions
merged with the memoised ``#`` (the default), or threesomes — interned
labeled types merged with memoised labeled-type composition ``∘``
(``compile_term(term, mediator="threesome")``).  Both backends share the
machine's :class:`~repro.machine.policy.MediationPolicy` semantics, so the
space discipline above is representation-independent — asserted end to end
by ``check_mediator_oracle``.
"""

from __future__ import annotations

from ..core.errors import EvaluationError
from ..core.terms import Term
from ..machine.cek import MachineOutcome
from ..machine.policy import SPACE_POLICY, THREESOME_POLICY, MachineBlame, MediationPolicy
from ..machine.profiler import MachineStats
from ..machine.values import MConst, MFixWrap, MFunctionValue, MPair, MProxy
from .bytecode import (
    BLAME,
    CALL,
    COERCE,
    COMPOSE,
    FST,
    JUMP,
    JUMP_IF_FALSE,
    LOAD,
    MAKE_CLOSURE,
    MAKE_FIX,
    PAIR,
    PRIM,
    PUSH_CONST,
    RETURN,
    SND,
    STORE,
    TAILCALL,
    CodeObject,
    ConstantPool,
)

DEFAULT_VM_FUEL = 20_000_000


class VMClosure(MFunctionValue):
    """A compiled function: its code object plus the captured free values."""

    __slots__ = ("code", "free")

    def __init__(self, code: CodeObject, free: tuple):
        self.code = code
        self.free = free

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<vm-closure {self.code.name}>"


def _make_fix_apply_code() -> CodeObject:
    """The built-in unrolling step ``(fix V) W → (V (fix V-wrapper)) W``.

    Locals: ``[functional, wrapper, argument]``.  The final ``TAILCALL``
    reuses the frame, so fix unrolling itself costs no stack.
    """
    instructions = [(LOAD, 0), (LOAD, 1), (CALL, 0), (LOAD, 2), (TAILCALL, 0)]
    return CodeObject("<fix-apply>", instructions, ConstantPool(), 0, 3, None, ("V", "wrap", "arg"))


_FIX_APPLY = _make_fix_apply_code()


#: Mediator backends the VM can execute, keyed by each policy's declared
#: representation (matching the pool's ``mediator`` field): λS canonical
#: coercions merged with the memoised ``#``, or threesomes merged with
#: memoised labeled-type composition ``∘``.  Both are
#: :class:`~repro.machine.policy.MediationPolicy` instances, so the VM and
#: the CEK machine share one mediation semantics per backend.
VM_BACKENDS: dict[str, MediationPolicy] = {
    policy.mediator: policy for policy in (SPACE_POLICY, THREESOME_POLICY)
}


def _project(value, first: bool, policy: MediationPolicy):
    """Project a pair (or pair proxy) — mirrors the CEK machine's ``_project``."""
    if isinstance(value, MPair):
        return value.left if first else value.right
    if isinstance(value, MProxy) and policy.is_prod_proxy(value.mediator):
        left, right = policy.prod_parts(value.mediator)
        part = left if first else right
        return policy.apply(_project(value.under, first, policy), part)
    raise EvaluationError(f"projection of a non-pair value: {value!r}")


class VM:
    """Executes one compiled program.  Stateless between runs; reusable."""

    def run(self, code: CodeObject, fuel: int = DEFAULT_VM_FUEL) -> MachineOutcome:
        stats = MachineStats()
        pool = code.pool
        consts = pool.consts
        coercions = pool.coercions
        labels = pool.labels
        prims = pool.prims
        codes = pool.codes

        # The pool declares which mediator representation its entries use;
        # hoist that backend's methods into loop locals.
        policy = VM_BACKENDS[pool.mediator]
        apply_co = policy.apply
        co_size = policy.size
        compose_pending = policy.compose
        is_fun_proxy = policy.is_fun_proxy
        fun_parts = policy.fun_parts
        applications = 0

        stack: list = []  # the operand stack, shared across frames
        frames: list = []  # saved caller frames: (insns, pc, locals, pending)
        insns = code.instructions
        pc = 0
        locals_: list = [None] * code.n_locals
        pending = None  # the frame's single pending result coercion

        try:
            for executed in range(fuel):
                op, operand = insns[pc]
                pc += 1

                if op == LOAD:
                    stack.append(locals_[operand])
                elif op == PUSH_CONST:
                    stack.append(consts[operand])
                elif op == PRIM:
                    fn, arity, result_type, name = prims[operand]
                    if arity == 1:
                        a = stack[-1]
                        if a.__class__ is not MConst:
                            raise EvaluationError(
                                f"operator {name!r} applied to a non-constant: {a!r}"
                            )
                        stack[-1] = MConst(fn(a.value), result_type)
                    elif arity == 2:
                        b = stack.pop()
                        a = stack[-1]
                        if a.__class__ is not MConst or b.__class__ is not MConst:
                            raise EvaluationError(
                                f"operator {name!r} applied to a non-constant"
                            )
                        stack[-1] = MConst(fn(a.value, b.value), result_type)
                    else:
                        raw = []
                        for operand_value in reversed([stack.pop() for _ in range(arity)]):
                            if operand_value.__class__ is not MConst:
                                raise EvaluationError(
                                    f"operator {name!r} applied to a non-constant"
                                )
                            raw.append(operand_value.value)
                        stack.append(MConst(fn(*raw), result_type))
                elif op == JUMP_IF_FALSE:
                    cond = stack.pop()
                    if cond.__class__ is not MConst or not isinstance(cond.value, bool):
                        raise EvaluationError(f"if-condition is not a boolean: {cond!r}")
                    if not cond.value:
                        pc = operand
                elif op == JUMP:
                    pc = operand
                elif op == CALL or op == TAILCALL:
                    arg = stack.pop()
                    fun = stack.pop()
                    result_co = None
                    # Unwrap proxy layers: coerce the argument now, defer the
                    # result coercion into a pending slot.
                    while fun.__class__ is MProxy:
                        mediator = fun.mediator
                        if not is_fun_proxy(mediator):
                            break
                        applications += 1
                        dom, cod = fun_parts(mediator)
                        arg = apply_co(arg, dom)
                        result_co = cod if result_co is None else compose_pending(cod, result_co)
                        fun = fun.under
                    if fun.__class__ is VMClosure:
                        callee = fun.code
                        new_locals = list(fun.free)
                        new_locals.append(arg)
                        extra = callee.n_locals - len(new_locals)
                        if extra:
                            new_locals.extend([None] * extra)
                    elif fun.__class__ is MFixWrap:
                        functional = fun.functional
                        callee = _FIX_APPLY
                        new_locals = [functional, MFixWrap(functional, fun.fun_type), arg]
                    else:
                        raise EvaluationError(f"application of a non-function value: {fun!r}")
                    if op == CALL:
                        frames.append((insns, pc, locals_, pending))
                        stats.note_depth(len(frames))
                        pending = result_co
                        if result_co is not None:
                            stats.push_mediator(co_size(result_co))
                    else:  # TAILCALL: reuse the frame, keep the pending slot
                        if result_co is not None:
                            if pending is None:
                                pending = result_co
                                stats.push_mediator(co_size(result_co))
                            else:
                                merged = compose_pending(result_co, pending)
                                stats.replace_mediator(co_size(pending), co_size(merged))
                                pending = merged
                    insns = callee.instructions
                    pc = 0
                    locals_ = new_locals
                elif op == COMPOSE:
                    coercion = coercions[operand]
                    if pending is None:
                        pending = coercion
                        stats.push_mediator(co_size(coercion))
                    else:
                        merged = compose_pending(coercion, pending)
                        stats.replace_mediator(co_size(pending), co_size(merged))
                        pending = merged
                elif op == COERCE:
                    applications += 1
                    stack[-1] = apply_co(stack[-1], coercions[operand])
                elif op == RETURN:
                    value = stack.pop()
                    if pending is not None:
                        applications += 1
                        stats.pop_mediator(co_size(pending))
                        value = apply_co(value, pending)
                    if not frames:
                        stats.steps = executed + 1
                        stats.mediator_applications = applications
                        return MachineOutcome("value", value=value, stats=stats.snapshot())
                    insns, pc, locals_, pending = frames.pop()
                    stack.append(value)
                elif op == STORE:
                    locals_[operand] = stack.pop()
                elif op == MAKE_CLOSURE:
                    child = codes[operand]
                    n_free = child.n_free
                    if n_free:
                        free = tuple(stack[-n_free:])
                        del stack[-n_free:]
                    else:
                        free = ()
                    stack.append(VMClosure(child, free))
                elif op == MAKE_FIX:
                    stack.append(MFixWrap(stack.pop(), consts[operand]))
                elif op == PAIR:
                    right = stack.pop()
                    stack[-1] = MPair(stack[-1], right)
                elif op == FST:
                    stack[-1] = _project(stack[-1], True, policy)
                elif op == SND:
                    stack[-1] = _project(stack[-1], False, policy)
                elif op == BLAME:
                    raise MachineBlame(labels[operand])
                else:  # pragma: no cover - defensive
                    raise EvaluationError(f"unknown opcode: {op}")
        except MachineBlame as blame:
            stats.steps = executed + 1
            stats.mediator_applications = applications
            return MachineOutcome("blame", label=blame.label, stats=stats.snapshot())

        stats.steps = fuel
        stats.mediator_applications = applications
        return MachineOutcome("timeout", stats=stats.snapshot())


#: The shared, stateless VM instance.
THE_VM = VM()


def compile_term(term_b: Term, mediator: str = "coercion") -> CodeObject:
    """Compile an elaborated λB term: translate ``|·|BC`` then ``|·|CS``, lower.

    ``mediator`` picks the pool representation the VM will execute —
    ``"coercion"`` (canonical coercions, ``#``) or ``"threesome"`` (labeled
    types, ``∘``).
    """
    from ..translate import b_to_c, c_to_s
    from .lower import lower_program

    return lower_program(c_to_s(b_to_c(term_b)), mediator=mediator)


def run_on_vm(
    term_b: Term, fuel: int = DEFAULT_VM_FUEL, mediator: str = "coercion"
) -> MachineOutcome:
    """Compile a λB term to bytecode and run it on the VM (λS semantics)."""
    return THE_VM.run(compile_term(term_b, mediator=mediator), fuel)


def run_code(code: CodeObject, fuel: int = DEFAULT_VM_FUEL) -> MachineOutcome:
    """Run an already-compiled program on the shared VM instance."""
    return THE_VM.run(code, fuel)
