"""The coercion-aware bytecode VM — the fast λS engine.

One Python-level loop executes the flat instruction stream produced by
:mod:`repro.compiler.lower` (and reshaped by :mod:`repro.compiler.opt`).
Dispatch is an integer comparison chain ordered by dynamic frequency (the
closest Python gets to threaded code); every operand is a pool index
resolved at compile time, so the hot loop touches no term, type, or name
structure at all.  Compare the CEK machine, which pays an ``isinstance``
ladder over AST nodes plus an environment-dictionary copy per binding on
every step.

Space efficiency lives in one slot per call frame: ``pending``, the single
canonical coercion to apply to the frame's eventual result.

* ``COMPOSE s`` merges ``s`` into the live frame's slot with the memoised
  ``#`` — it never pushes a frame;
* ``TAILCALL`` reuses the frame (the slot survives, composed);
* unwrapping a function proxy folds the proxy's codomain coercion into the
  same discipline: ``CALL`` seeds the callee's slot, ``TAILCALL`` composes
  into the caller's.

So at any instant each frame holds at most one pending coercion — composed,
never stacked — and a boundary-crossing tail loop runs with
``max_pending_mediators == 1`` no matter how many iterations it makes.  The
shared :class:`~repro.machine.profiler.MachineStats` accounting makes this
directly comparable with the CEK machine's numbers (and is asserted by
``tests/test_compiler.py`` and ``benchmarks/bench_vm.py``).

**Inline mediator caches.**  At ``-O2`` every instruction site owns a cache
cell (``CodeObject.caches``), and the mediator opcodes become monomorphic
inline caches keyed on *interned mediator identity*: a boundary tail loop
re-applies and re-merges the same canonical mediators every iteration, so
after the first trip each ``COERCE``/``COMPOSE``/proxy-unwrap/``RETURN``
does a pointer compare plus a cached result instead of a policy isinstance
ladder and a memo-dictionary lookup.  Cache layout per site kind:

* coerce sites (``COERCE``/``LOAD_COERCE``): ``[proxy_mediator, composed,
  action]`` for proxied subjects; non-proxy subjects use the pool-parallel
  action table (the mediator is fixed per site);
* ``COMPOSE`` sites: ``[pending_in, merged, size_in, size_merged]``;
* call sites: ``[fun_mediator, dom, cod, dom_action, result_co, pending_in,
  merged, size_in, size_merged]`` (unwrap cache + the tail-merge cache);
* ``RETURN`` sites: ``[pending, action, size]``.

Actions are the ``ACT_*`` codes of :mod:`repro.machine.policy`; anything
but identity/wrap falls back to the policy's ``apply`` (which raises blame
exactly as before).  A cache never changes observables — it short-circuits
computations whose results are memoised on the same identities anyway.

The VM executes λS only; ``run_on_vm`` translates a λB program first,
mirroring ``run_on_machine``.

The enforcement *semantics* is pluggable (the
:data:`~repro.semantics.SEMANTICS` registry, selected by the constant
pool's ``mediator`` field): Natural via canonical coercions merged with the
memoised ``#`` (the default), Natural via threesomes merged with ``∘``
(``compile_term(term, mediator="threesome")``), Transient's shallow tag
checks, or Erasure's no-ops.  Every backend is a
:class:`~repro.machine.policy.MediationPolicy` shared with the CEK machine,
so the space discipline above is representation-independent — asserted end
to end by ``check_mediator_oracle`` (which also runs ``-O0`` against
``-O2`` per backend).
"""

from __future__ import annotations

from ..core.errors import EvaluationError
from ..core.fuel import DEFAULT_VM_FUEL
from ..core.terms import Term
from ..machine.cek import MachineOutcome
from ..machine.policy import MachineBlame, MediationPolicy
from ..machine.profiler import MachineStats
from ..machine.values import MConst, MFixWrap, MFunctionValue, MPair, MProxy
from ..obs.trace import current_tracer
from .bytecode import (
    BLAME,
    CALL,
    CLOSURE_RETURN,
    COERCE,
    COMPOSE,
    FST,
    FUSED_MASK,
    FUSED_SHIFT,
    JUMP,
    JUMP_IF_FALSE,
    JUMP_IF_FALSE_LOAD,
    LOAD,
    LOAD2,
    LOAD_CALL,
    LOAD_CLOSURE,
    LOAD_COERCE,
    LOAD_PRIM,
    LOAD_PUSH,
    LOAD_TAILCALL,
    MAKE_CLOSURE,
    MAKE_FIX,
    PAIR,
    PRIM,
    PRIM_JUMP_IF_FALSE,
    PUSH_COERCE,
    PUSH_CONST,
    PUSH_PRIM,
    RETURN,
    SND,
    STORE,
    TAILCALL,
    CodeObject,
    ConstantPool,
)
from ..semantics import policy_for
from .opt import DEFAULT_OPT_LEVEL, optimize


class VMClosure(MFunctionValue):
    """A compiled function: its code object plus the captured free values."""

    __slots__ = ("code", "free")

    def __init__(self, code: CodeObject, free: tuple):
        self.code = code
        self.free = free

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<vm-closure {self.code.name}>"


def _make_fix_apply_code() -> CodeObject:
    """The built-in unrolling step ``(fix V) W → (V (fix V-wrapper)) W``.

    Locals: ``[functional, wrapper, argument]``.  The final ``TAILCALL``
    reuses the frame, so fix unrolling itself costs no stack.
    """
    instructions = [(LOAD, 0), (LOAD, 1), (CALL, 0), (LOAD, 2), (TAILCALL, 0)]
    return CodeObject("<fix-apply>", instructions, ConstantPool(), 0, 3, None, ("V", "wrap", "arg"))


_FIX_APPLY = _make_fix_apply_code()
#: The same unrolling step at ``-O2`` (``LOAD2; CALL; LOAD_TAILCALL``) —
#: picked when the running program itself carries inline caches, so fix
#: loops profit from fusion too while ``-O0`` runs stay byte-identical.
_FIX_APPLY_O2 = optimize(_make_fix_apply_code(), 2)


def _fix_apply_o2_for_run() -> CodeObject:
    """A clone of the ``-O2`` fix-apply stub with *fresh* inline-cache cells.

    The stub itself is immutable and shared, but its cache cells are run
    state: they fill against runtime mediator identities and feed the run's
    ``cache_hits``/``cache_misses``.  Sharing them process-wide would make
    those counters depend on whatever program ran earlier."""
    template = _FIX_APPLY_O2
    code = CodeObject(
        template.name, template.instructions, template.pool, template.n_free,
        template.n_locals, template.param, template.local_names,
    )
    code.opt_level = template.opt_level
    code.caches = [None] * len(template.instructions)
    return code


def _project(value, first: bool, policy: MediationPolicy):
    """Project a pair (or pair proxy) — mirrors the CEK machine's ``_project``."""
    if isinstance(value, MPair):
        return value.left if first else value.right
    if isinstance(value, MProxy) and policy.is_prod_proxy(value.mediator):
        left, right = policy.prod_parts(value.mediator)
        part = left if first else right
        return policy.apply(_project(value.under, first, policy), part)
    raise EvaluationError(f"projection of a non-pair value: {value!r}")


def _pool_tables(pool: ConstantPool, policy: MediationPolicy) -> tuple[list, list]:
    """Pool-parallel ``(actions, sizes)`` of the mediator entries, cached.

    The action of applying a pool mediator to a non-proxy value is fixed per
    entry, so the hot loop can answer it with a list index instead of the
    policy's isinstance ladder.  Recomputed if the pool grew (it never does
    after optimization, but the guard keeps staleness impossible).
    """
    tables = getattr(pool, "_vm_tables", None)
    if tables is None or len(tables[0]) != len(pool.coercions):
        tables = (
            [policy.classify(c) for c in pool.coercions],
            [policy.size(c) for c in pool.coercions],
        )
        pool._vm_tables = tables
    return tables


class VM:
    """Executes one compiled program.  Stateless between runs; reusable."""

    def run(
        self,
        code: CodeObject,
        fuel: int = DEFAULT_VM_FUEL,
        pair_counts: dict | None = None,
        opcode_counts: dict | None = None,
    ) -> MachineOutcome:
        stats = MachineStats()
        profile = pair_counts is not None
        if profile:
            stats.opcode_pairs = pair_counts
        counts = opcode_counts
        if counts is not None:
            stats.opcode_counts = counts
        prev_insns = None
        prev_pc = -2
        prev_op = -1
        pool = code.pool
        consts = pool.consts
        coercions = pool.coercions
        labels = pool.labels
        prims = pool.prims
        codes = pool.codes

        # The pool declares which enforcement semantics its entries use;
        # hoist that backend's policy methods into loop locals.
        policy = policy_for(pool.mediator)
        # The observability hook: fetched once per run, tested with a single
        # `is not None` at mediator lifecycle sites only — never on the
        # per-dispatch path — so untraced runs pay ~nothing and the tracer
        # (which never touches `stats`) cannot perturb outcomes.
        tracer = current_tracer()
        if tracer is not None:
            tracer.run_start("vm", policy)
        apply_co = policy.apply
        co_size = policy.size
        classify = policy.classify
        compose_pending = policy.compose
        is_fun_proxy = policy.is_fun_proxy
        fun_parts = policy.fun_parts
        applications = 0
        hits = 0  # inline mediator-cache consults resolved by pointer compare
        misses = 0

        stack: list = []  # the operand stack, shared across frames
        frames: list = []  # saved caller frames: (insns, pc, locals, pending, caches)
        insns = code.instructions
        pc = 0
        locals_: list = [None] * code.n_locals
        pending = None  # the frame's single pending result coercion
        caches = code.caches  # per-site inline-cache cells (None below -O2)
        stats.inline_caches = caches is not None
        if caches is not None:
            co_actions, co_sizes = _pool_tables(pool, policy)
            fix_code = _fix_apply_o2_for_run()
        else:
            co_actions = co_sizes = ()
            fix_code = _FIX_APPLY

        try:
            for executed in range(fuel):
                op, operand = insns[pc]
                if counts is not None:
                    counts[op] = counts.get(op, 0) + 1
                if profile:
                    # Count *statically adjacent* dynamic pairs only: those
                    # are the pairs a peephole pass could fuse.
                    if insns is prev_insns and pc == prev_pc + 1:
                        pair = (prev_op, op)
                        pair_counts[pair] = pair_counts.get(pair, 0) + 1
                    prev_insns, prev_pc, prev_op = insns, pc, op
                pc += 1

                if op == LOAD:
                    stack.append(locals_[operand])
                elif op == LOAD2:
                    stack.append(locals_[operand >> FUSED_SHIFT])
                    stack.append(locals_[operand & FUSED_MASK])
                elif op == CALL or op == TAILCALL or op == LOAD_CALL or op == LOAD_TAILCALL:
                    if op == CALL or op == TAILCALL:
                        arg = stack.pop()
                        tail = op == TAILCALL
                    else:
                        arg = locals_[operand]
                        tail = op == LOAD_TAILCALL
                    fun = stack.pop()
                    result_co = None
                    # Unwrap proxy layers: coerce the argument now, defer the
                    # result coercion into a pending slot.
                    if fun.__class__ is MProxy:
                        cell = caches[pc - 1] if caches is not None else None
                        if cell is not None and fun.mediator is cell[0]:
                            # Inline-cache hit: dom/cod and the dom action
                            # resolved by one pointer compare.
                            applications += 1
                            hits += 1
                            dom = cell[1]
                            act = cell[3]
                            if tracer is not None:
                                tracer.apply(executed + 1, dom)
                            if act == 1:  # ACT_WRAP
                                if arg.__class__ is MProxy:
                                    arg = apply_co(arg, dom)
                                else:
                                    arg = MProxy(arg, dom)
                            elif act != 0:  # not ACT_IDENTITY
                                arg = apply_co(arg, dom)
                            result_co = cell[2]
                            fun = fun.under
                        else:
                            first = caches is not None
                            if first:
                                misses += 1
                            while fun.__class__ is MProxy:
                                mediator = fun.mediator
                                if not is_fun_proxy(mediator):
                                    break
                                applications += 1
                                dom, cod = fun_parts(mediator)
                                if tracer is not None:
                                    tracer.apply(executed + 1, dom)
                                if first:
                                    caches[pc - 1] = [
                                        mediator, dom, cod, classify(dom),
                                        None, None, None, 0, 0,
                                    ]
                                    first = False
                                arg = apply_co(arg, dom)
                                result_co = (
                                    cod if result_co is None
                                    else compose_pending(cod, result_co)
                                )
                                fun = fun.under
                    if fun.__class__ is VMClosure:
                        callee = fun.code
                        new_locals = list(fun.free)
                        new_locals.append(arg)
                        extra = callee.n_locals - len(new_locals)
                        if extra:
                            new_locals.extend([None] * extra)
                    elif fun.__class__ is MFixWrap:
                        functional = fun.functional
                        callee = fix_code
                        new_locals = [functional, MFixWrap(functional, fun.fun_type), arg]
                    else:
                        raise EvaluationError(f"application of a non-function value: {fun!r}")
                    if not tail:
                        frames.append((insns, pc, locals_, pending, caches))
                        stats.note_depth(len(frames))
                        pending = result_co
                        if result_co is not None:
                            stats.push_mediator(co_size(result_co))
                            if tracer is not None:
                                tracer.install(executed + 1, result_co,
                                               stats.pending_mediators,
                                               stats.pending_size)
                    else:  # reuse the frame, keep the pending slot
                        if result_co is not None:
                            if pending is None:
                                pending = result_co
                                stats.push_mediator(co_size(result_co))
                                if tracer is not None:
                                    tracer.install(executed + 1, result_co,
                                                   stats.pending_mediators,
                                                   stats.pending_size)
                            else:
                                cell = caches[pc - 1] if caches is not None else None
                                if (
                                    cell is not None
                                    and result_co is cell[4]
                                    and pending is cell[5]
                                ):
                                    hits += 1
                                    stats.replace_mediator(cell[7], cell[8])
                                    if tracer is not None:
                                        tracer.merge(executed + 1, result_co,
                                                     pending, cell[6],
                                                     stats.pending_mediators,
                                                     stats.pending_size)
                                    pending = cell[6]
                                else:
                                    if cell is not None:
                                        misses += 1
                                    merged = compose_pending(result_co, pending)
                                    size_in = co_size(pending)
                                    size_merged = co_size(merged)
                                    stats.replace_mediator(size_in, size_merged)
                                    if cell is not None:
                                        cell[4] = result_co
                                        cell[5] = pending
                                        cell[6] = merged
                                        cell[7] = size_in
                                        cell[8] = size_merged
                                    if tracer is not None:
                                        tracer.merge(executed + 1, result_co,
                                                     pending, merged,
                                                     stats.pending_mediators,
                                                     stats.pending_size)
                                    pending = merged
                    insns = callee.instructions
                    pc = 0
                    locals_ = new_locals
                    caches = callee.caches
                elif op == PUSH_CONST:
                    stack.append(consts[operand])
                elif op == PUSH_PRIM:
                    fn, arity, result_type, name = prims[operand & FUSED_MASK]
                    b = consts[operand >> FUSED_SHIFT]
                    if arity == 2:
                        a = stack[-1]
                        if a.__class__ is not MConst:
                            raise EvaluationError(
                                f"operator {name!r} applied to a non-constant: {a!r}"
                            )
                        stack[-1] = MConst(fn(a.value, b.value), result_type)
                    else:  # the optimizer only fuses arity-1/2 primitives
                        stack.append(MConst(fn(b.value), result_type))
                elif op == LOAD_PUSH:
                    stack.append(locals_[operand >> FUSED_SHIFT])
                    stack.append(consts[operand & FUSED_MASK])
                elif op == LOAD_COERCE or op == COERCE:
                    if op == COERCE:
                        value = stack[-1]
                        coercion_index = operand
                        push = False
                    else:
                        value = locals_[operand >> FUSED_SHIFT]
                        coercion_index = operand & FUSED_MASK
                        push = True
                    applications += 1
                    if caches is not None:
                        if value.__class__ is MProxy:
                            cell = caches[pc - 1]
                            mediator = value.mediator
                            if cell is not None and mediator is cell[0]:
                                hits += 1
                                composed = cell[1]
                                act = cell[2]
                            else:
                                misses += 1
                                composed = compose_pending(mediator, coercions[coercion_index])
                                act = classify(composed)
                                caches[pc - 1] = [mediator, composed, act]
                            if tracer is not None:
                                tracer.absorb(executed + 1, coercions[coercion_index],
                                              mediator, composed,
                                              stats.pending_mediators,
                                              stats.pending_size)
                            if act == 1:  # ACT_WRAP
                                value = MProxy(value.under, composed)
                            elif act == 0:  # ACT_IDENTITY
                                value = value.under
                            else:
                                value = apply_co(value.under, composed)
                        else:
                            if tracer is not None:
                                tracer.apply(executed + 1, coercions[coercion_index])
                            act = co_actions[coercion_index]
                            if act == 1:
                                value = MProxy(value, coercions[coercion_index])
                            elif act != 0:
                                value = apply_co(value, coercions[coercion_index])
                    else:
                        if tracer is not None:
                            tracer.apply(executed + 1, coercions[coercion_index])
                        value = apply_co(value, coercions[coercion_index])
                    if push:
                        stack.append(value)
                    else:
                        stack[-1] = value
                elif op == PRIM_JUMP_IF_FALSE:
                    fn, arity, result_type, name = prims[operand >> FUSED_SHIFT]
                    if arity == 2:
                        b = stack.pop()
                        a = stack.pop()
                        if a.__class__ is not MConst or b.__class__ is not MConst:
                            raise EvaluationError(
                                f"operator {name!r} applied to a non-constant"
                            )
                        cond = fn(a.value, b.value)
                    else:
                        a = stack.pop()
                        if a.__class__ is not MConst:
                            raise EvaluationError(
                                f"operator {name!r} applied to a non-constant: {a!r}"
                            )
                        cond = fn(a.value)
                    if not isinstance(cond, bool):
                        raise EvaluationError(
                            f"if-condition is not a boolean: {MConst(cond, result_type)!r}"
                        )
                    if not cond:
                        pc = operand & FUSED_MASK
                elif op == PRIM or op == LOAD_PRIM:
                    if op == LOAD_PRIM:
                        stack.append(locals_[operand >> FUSED_SHIFT])
                        operand = operand & FUSED_MASK
                    fn, arity, result_type, name = prims[operand]
                    if arity == 1:
                        a = stack[-1]
                        if a.__class__ is not MConst:
                            raise EvaluationError(
                                f"operator {name!r} applied to a non-constant: {a!r}"
                            )
                        stack[-1] = MConst(fn(a.value), result_type)
                    elif arity == 2:
                        b = stack.pop()
                        a = stack[-1]
                        if a.__class__ is not MConst or b.__class__ is not MConst:
                            raise EvaluationError(
                                f"operator {name!r} applied to a non-constant"
                            )
                        stack[-1] = MConst(fn(a.value, b.value), result_type)
                    else:
                        raw = []
                        for operand_value in reversed([stack.pop() for _ in range(arity)]):
                            if operand_value.__class__ is not MConst:
                                raise EvaluationError(
                                    f"operator {name!r} applied to a non-constant"
                                )
                            raw.append(operand_value.value)
                        stack.append(MConst(fn(*raw), result_type))
                elif op == JUMP_IF_FALSE:
                    cond = stack.pop()
                    if cond.__class__ is not MConst or not isinstance(cond.value, bool):
                        raise EvaluationError(f"if-condition is not a boolean: {cond!r}")
                    if not cond.value:
                        pc = operand
                elif op == JUMP_IF_FALSE_LOAD:
                    cond = stack.pop()
                    if cond.__class__ is not MConst or not isinstance(cond.value, bool):
                        raise EvaluationError(f"if-condition is not a boolean: {cond!r}")
                    if not cond.value:
                        pc = operand >> FUSED_SHIFT
                    else:
                        stack.append(locals_[operand & FUSED_MASK])
                elif op == JUMP:
                    pc = operand
                elif op == COMPOSE:
                    coercion = coercions[operand]
                    if pending is None:
                        pending = coercion
                        stats.push_mediator(
                            co_sizes[operand] if caches is not None else co_size(coercion)
                        )
                        if tracer is not None:
                            tracer.install(executed + 1, coercion,
                                           stats.pending_mediators, stats.pending_size)
                    elif caches is not None:
                        cell = caches[pc - 1]
                        if cell is not None and pending is cell[0]:
                            hits += 1
                            stats.replace_mediator(cell[2], cell[3])
                            if tracer is not None:
                                tracer.merge(executed + 1, coercion, pending, cell[1],
                                             stats.pending_mediators, stats.pending_size)
                            pending = cell[1]
                        else:
                            misses += 1
                            merged = compose_pending(coercion, pending)
                            size_in = co_size(pending)
                            size_merged = co_size(merged)
                            stats.replace_mediator(size_in, size_merged)
                            caches[pc - 1] = [pending, merged, size_in, size_merged]
                            if tracer is not None:
                                tracer.merge(executed + 1, coercion, pending, merged,
                                             stats.pending_mediators, stats.pending_size)
                            pending = merged
                    else:
                        merged = compose_pending(coercion, pending)
                        stats.replace_mediator(co_size(pending), co_size(merged))
                        if tracer is not None:
                            tracer.merge(executed + 1, coercion, pending, merged,
                                         stats.pending_mediators, stats.pending_size)
                        pending = merged
                elif op == RETURN or op == CLOSURE_RETURN:
                    if op == RETURN:
                        value = stack.pop()
                    else:  # CLOSURE_RETURN: build the closure, return it
                        child = codes[operand]
                        n_free = child.n_free
                        if n_free:
                            free = tuple(stack[-n_free:])
                            del stack[-n_free:]
                        else:
                            free = ()
                        value = VMClosure(child, free)
                    if pending is not None:
                        applications += 1
                        if caches is not None and value.__class__ is not MProxy:
                            cell = caches[pc - 1]
                            if cell is not None and pending is cell[0]:
                                hits += 1
                                act = cell[1]
                                stats.pop_mediator(cell[2])
                            else:
                                misses += 1
                                act = classify(pending)
                                size = co_size(pending)
                                caches[pc - 1] = [pending, act, size]
                                stats.pop_mediator(size)
                            if tracer is not None:
                                tracer.collapse(executed + 1, pending,
                                                stats.pending_mediators,
                                                stats.pending_size)
                            if act == 1:  # ACT_WRAP
                                value = MProxy(value, pending)
                            elif act != 0:
                                value = apply_co(value, pending)
                        else:
                            stats.pop_mediator(co_size(pending))
                            if tracer is not None:
                                tracer.collapse(executed + 1, pending,
                                                stats.pending_mediators,
                                                stats.pending_size)
                            value = apply_co(value, pending)
                    if not frames:
                        stats.steps = executed + 1
                        stats.mediator_applications = applications
                        stats.cache_hits = hits
                        stats.cache_misses = misses
                        snapshot = stats.snapshot()
                        if tracer is not None:
                            tracer.run_end("value", snapshot)
                        return MachineOutcome("value", value=value, stats=snapshot)
                    insns, pc, locals_, pending, caches = frames.pop()
                    stack.append(value)
                elif op == STORE:
                    locals_[operand] = stack.pop()
                elif op == MAKE_CLOSURE or op == LOAD_CLOSURE:
                    if op == LOAD_CLOSURE:
                        stack.append(locals_[operand >> FUSED_SHIFT])
                        operand = operand & FUSED_MASK
                    child = codes[operand]
                    n_free = child.n_free
                    if n_free:
                        free = tuple(stack[-n_free:])
                        del stack[-n_free:]
                    else:
                        free = ()
                    stack.append(VMClosure(child, free))
                elif op == PUSH_COERCE:
                    applications += 1
                    coercion_index = operand & FUSED_MASK
                    value = consts[operand >> FUSED_SHIFT]  # an MConst: never a proxy
                    if tracer is not None:
                        tracer.apply(executed + 1, coercions[coercion_index])
                    act = co_actions[coercion_index]
                    if act == 1:  # ACT_WRAP
                        stack.append(MProxy(value, coercions[coercion_index]))
                    elif act == 0:  # ACT_IDENTITY
                        stack.append(value)
                    else:
                        stack.append(apply_co(value, coercions[coercion_index]))
                elif op == MAKE_FIX:
                    stack.append(MFixWrap(stack.pop(), consts[operand]))
                elif op == PAIR:
                    right = stack.pop()
                    stack[-1] = MPair(stack[-1], right)
                elif op == FST:
                    stack[-1] = _project(stack[-1], True, policy)
                elif op == SND:
                    stack[-1] = _project(stack[-1], False, policy)
                elif op == BLAME:
                    raise MachineBlame(labels[operand])
                else:  # pragma: no cover - defensive
                    raise EvaluationError(f"unknown opcode: {op}")
        except MachineBlame as blame:
            stats.steps = executed + 1
            stats.mediator_applications = applications
            stats.cache_hits = hits
            stats.cache_misses = misses
            snapshot = stats.snapshot()
            if tracer is not None:
                tracer.blame(executed + 1, blame.label)
                tracer.run_end("blame", snapshot)
            return MachineOutcome("blame", label=blame.label, stats=snapshot)

        stats.steps = fuel
        stats.mediator_applications = applications
        stats.cache_hits = hits
        stats.cache_misses = misses
        snapshot = stats.snapshot()
        if tracer is not None:
            tracer.run_end("timeout", snapshot)
        return MachineOutcome("timeout", stats=snapshot)


#: The shared, stateless VM instance.
THE_VM = VM()


def compile_term(
    term_b: Term, mediator: str = "coercion", opt_level: int = DEFAULT_OPT_LEVEL,
    metrics=None,
) -> CodeObject:
    """Compile an elaborated λB term: translate ``|·|BC`` then ``|·|CS``, lower,
    optimize.

    ``mediator`` picks the pool representation the VM will execute —
    ``"coercion"`` (canonical coercions, ``#``) or ``"threesome"`` (labeled
    types, ``∘``); ``opt_level`` is the ``-O`` level (0 none, 1 static
    mediator elision/pre-composition, 2 — the default — superinstructions
    and inline caches too; see :mod:`repro.compiler.opt`).  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) gets the ``lower`` (which
    covers the two translations too) and ``optimize`` phase timers.
    """
    from ..obs.metrics import phase
    from ..translate import b_to_c, c_to_s
    from .lower import lower_program

    with phase(metrics, "lower"):
        code = lower_program(c_to_s(b_to_c(term_b)), mediator=mediator)
    with phase(metrics, "optimize"):
        return optimize(code, opt_level)


def run_on_vm(
    term_b: Term,
    fuel: int = DEFAULT_VM_FUEL,
    mediator: str = "coercion",
    opt_level: int = DEFAULT_OPT_LEVEL,
    opcode_counts: dict | None = None,
) -> MachineOutcome:
    """Compile a λB term to bytecode and run it on the VM (λS semantics)."""
    return THE_VM.run(compile_term(term_b, mediator=mediator, opt_level=opt_level),
                      fuel, opcode_counts=opcode_counts)


def run_code(
    code: CodeObject, fuel: int = DEFAULT_VM_FUEL, opcode_counts: dict | None = None
) -> MachineOutcome:
    """Run an already-compiled program on the shared VM instance."""
    return THE_VM.run(code, fuel, opcode_counts=opcode_counts)
