"""The flat bytecode IR executed by the coercion-aware VM.

The lowering pass (:mod:`repro.compiler.lower`) turns an elaborated λS term
into a :class:`CodeObject`: a flat instruction stream over a shared
:class:`ConstantPool`.  Everything a mediator needs at run time — constants,
canonical coercions, blame labels, operator meaning functions, nested code
objects — is resolved to a small-integer pool index at compile time, so the
VM's hot loop (:mod:`repro.compiler.vm`) dispatches on plain ints and never
inspects term or type structure.

Coercions are **pre-interned** (:func:`repro.lambda_s.coercions.intern_space`)
when they enter the pool: every ``COERCE``/``COMPOSE`` operand is a canonical
node, so the VM's pending-coercion merges hit the memoised ``#``
(:func:`repro.lambda_s.coercions.compose_memo`) on pointer identity.

Instruction set (operands are pool or slot indices; ``·`` = none):

=================  =========  ====================================================
opcode             operand    effect
=================  =========  ====================================================
``PUSH_CONST``     const      push the pooled machine constant
``LOAD``           slot       push the frame local in ``slot``
``STORE``          slot       pop into the frame local ``slot``
``MAKE_CLOSURE``   code       pop ``n_free`` captured values, push a closure
``MAKE_FIX``       const      pop a functional ``V``, push the ``fix V`` wrapper
``CALL``           ·          pop arg and fun, push a new call frame
``TAILCALL``       ·          pop arg and fun, **reuse** the current frame
``RETURN``         ·          pop result, apply the frame's pending coercion, pop frame
``COERCE``         coercion   pop ``v``, push ``v⟨s⟩`` (immediate application)
``COMPOSE``        coercion   merge ``s`` into the frame's pending slot with ``#``
``BLAME``          label      halt with ``blame p``
``JUMP``           pc         unconditional branch
``JUMP_IF_FALSE``  pc         pop a boolean, branch when false
``PRIM``           prim       pop operands, apply the operator meaning function
``PAIR``           ·          pop right and left, push a pair
``FST``/``SND``    ·          pop a pair (or pair proxy), push the projection
=================  =========  ====================================================

``COMPOSE`` + ``TAILCALL`` is the space-efficiency story in two opcodes: a
result coercion in tail position is *composed* into the one pending slot of
the live frame instead of pushing a stack frame whose only job is to apply
it, so boundary-crossing tail loops run in constant space — the VM-level
image of the λS machine's merged ``KMediate`` frames.

**Superinstructions** (emitted by the optimizer, :mod:`repro.compiler.opt`,
at ``-O2``): each fuses one statically adjacent pair that a dynamic
frequency count over the benchmark workloads showed hot, saving a dispatch
— and usually a stack round trip — per execution.  When both halves carry
an operand the two indices are packed into one int as
``(first << FUSED_SHIFT) | second`` (:func:`pack_operands`); when one half
is operand-less the other half's operand is used unpacked.

=======================  ==================  ================================
superinstruction         operands            fuses
=======================  ==================  ================================
``LOAD2``                slot, slot          ``LOAD``; ``LOAD``
``LOAD_PUSH``            slot, const         ``LOAD``; ``PUSH_CONST``
``LOAD_COERCE``          slot, coercion      ``LOAD``; ``COERCE``
``LOAD_PRIM``            slot, prim          ``LOAD``; ``PRIM``
``LOAD_CALL``            slot                ``LOAD``; ``CALL``
``LOAD_TAILCALL``        slot                ``LOAD``; ``TAILCALL``
``LOAD_CLOSURE``         slot, code          ``LOAD``; ``MAKE_CLOSURE``
``PUSH_PRIM``            const, prim         ``PUSH_CONST``; ``PRIM``
``PUSH_COERCE``          const, coercion     ``PUSH_CONST``; ``COERCE``
``PRIM_JUMP_IF_FALSE``   prim, pc            ``PRIM``; ``JUMP_IF_FALSE``
``CLOSURE_RETURN``       code                ``MAKE_CLOSURE``; ``RETURN``
``JUMP_IF_FALSE_LOAD``   pc, slot            ``JUMP_IF_FALSE``; ``LOAD``
=======================  ==================  ================================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache

from ..core.labels import Label
from ..core.ops import OpSpec, op_spec
from ..core.types import Type
from ..lambda_s.coercions import SpaceCoercion, intern_space
from ..machine.values import MConst
from ..semantics import resolve

# Opcodes are plain module-level ints: the VM loads them into loop locals and
# dispatches with integer comparisons ordered by dynamic frequency.
PUSH_CONST = 0
LOAD = 1
STORE = 2
MAKE_CLOSURE = 3
MAKE_FIX = 4
CALL = 5
TAILCALL = 6
RETURN = 7
COERCE = 8
COMPOSE = 9
BLAME = 10
JUMP = 11
JUMP_IF_FALSE = 12
PRIM = 13
PAIR = 14
FST = 15
SND = 16

# Superinstructions (see the module docstring table).  Only the optimizer
# emits these; the lowering pass sticks to the base set.
LOAD2 = 17
LOAD_PUSH = 18
LOAD_COERCE = 19
LOAD_PRIM = 20
LOAD_CALL = 21
LOAD_TAILCALL = 22
LOAD_CLOSURE = 23
PUSH_PRIM = 24
PUSH_COERCE = 25
PRIM_JUMP_IF_FALSE = 26
CLOSURE_RETURN = 27
JUMP_IF_FALSE_LOAD = 28

OPCODE_NAMES = {
    PUSH_CONST: "PUSH_CONST",
    LOAD: "LOAD",
    STORE: "STORE",
    MAKE_CLOSURE: "MAKE_CLOSURE",
    MAKE_FIX: "MAKE_FIX",
    CALL: "CALL",
    TAILCALL: "TAILCALL",
    RETURN: "RETURN",
    COERCE: "COERCE",
    COMPOSE: "COMPOSE",
    BLAME: "BLAME",
    JUMP: "JUMP",
    JUMP_IF_FALSE: "JUMP_IF_FALSE",
    PRIM: "PRIM",
    PAIR: "PAIR",
    FST: "FST",
    SND: "SND",
    LOAD2: "LOAD2",
    LOAD_PUSH: "LOAD_PUSH",
    LOAD_COERCE: "LOAD_COERCE",
    LOAD_PRIM: "LOAD_PRIM",
    LOAD_CALL: "LOAD_CALL",
    LOAD_TAILCALL: "LOAD_TAILCALL",
    LOAD_CLOSURE: "LOAD_CLOSURE",
    PUSH_PRIM: "PUSH_PRIM",
    PUSH_COERCE: "PUSH_COERCE",
    PRIM_JUMP_IF_FALSE: "PRIM_JUMP_IF_FALSE",
    CLOSURE_RETURN: "CLOSURE_RETURN",
    JUMP_IF_FALSE_LOAD: "JUMP_IF_FALSE_LOAD",
}

OPCODES_BY_NAME = {name: code for code, name in OPCODE_NAMES.items()}

#: Opcodes whose operand is meaningless (always encoded as 0).
NO_OPERAND = frozenset({CALL, TAILCALL, RETURN, PAIR, FST, SND})

#: Which base pair each superinstruction fuses, in stream order.  The
#: optimizer's peephole pass and the disassembler's operand decoding both
#: key off this table, so adding a fusion is one entry here plus a dispatch
#: arm in the VM.
SUPERINSTRUCTIONS = {
    LOAD2: (LOAD, LOAD),
    LOAD_PUSH: (LOAD, PUSH_CONST),
    LOAD_COERCE: (LOAD, COERCE),
    LOAD_PRIM: (LOAD, PRIM),
    LOAD_CALL: (LOAD, CALL),
    LOAD_TAILCALL: (LOAD, TAILCALL),
    LOAD_CLOSURE: (LOAD, MAKE_CLOSURE),
    PUSH_PRIM: (PUSH_CONST, PRIM),
    PUSH_COERCE: (PUSH_CONST, COERCE),
    PRIM_JUMP_IF_FALSE: (PRIM, JUMP_IF_FALSE),
    CLOSURE_RETURN: (MAKE_CLOSURE, RETURN),
    JUMP_IF_FALSE_LOAD: (JUMP_IF_FALSE, LOAD),
}

#: Operand packing for superinstructions whose halves both carry an operand:
#: ``(first << FUSED_SHIFT) | second``.  16 bits per half bounds every pool
#: index, frame slot, and jump target a fusable site may reference; the
#: optimizer skips fusion for the (never yet seen) larger operands.
FUSED_SHIFT = 16
FUSED_LIMIT = 1 << FUSED_SHIFT
FUSED_MASK = FUSED_LIMIT - 1


@lru_cache(maxsize=1)
def opcode_fingerprint() -> bytes:
    """An 8-byte digest of the instruction set (names, numbers, fusion table).

    Serialized images (:mod:`repro.compiler.serialize`) embed this
    fingerprint, so an image compiled against a different opcode assignment
    — say, after a superinstruction is added or renumbered — is rejected at
    load time instead of being dispatched wrongly.  Changing anything in
    :data:`OPCODE_NAMES` or :data:`SUPERINSTRUCTIONS` changes the
    fingerprint by construction; no version constant needs manual bumping.
    """
    digest = hashlib.sha256()
    for code in sorted(OPCODE_NAMES):
        digest.update(f"{code}={OPCODE_NAMES[code]};".encode())
    for fused in sorted(SUPERINSTRUCTIONS):
        op1, op2 = SUPERINSTRUCTIONS[fused]
        digest.update(f"{fused}<-{op1}+{op2};".encode())
    digest.update(f"shift={FUSED_SHIFT}".encode())
    return digest.digest()[:8]


def pack_operands(op1: int, a: int, op2: int, b: int) -> int:
    """The fused operand of ``(op1, a); (op2, b)`` (see :data:`FUSED_SHIFT`)."""
    if op2 in NO_OPERAND:
        return a
    if op1 in NO_OPERAND:
        return b
    return (a << FUSED_SHIFT) | b


def unpack_operands(fused_op: int, operand: int) -> tuple[int, int]:
    """Recover the two halves' operands of a superinstruction's operand."""
    op1, op2 = SUPERINSTRUCTIONS[fused_op]
    if op2 in NO_OPERAND:
        return operand, 0
    if op1 in NO_OPERAND:
        return 0, operand
    return operand >> FUSED_SHIFT, operand & FUSED_MASK


@dataclass
class ConstantPool:
    """The shared pools of one compiled program.

    Every nested :class:`CodeObject` of a program references the same pool,
    so equal constants, coercions, labels, and operators are stored once and
    instructions refer to them by index.  Coercions are interned on entry;
    identity of pool entries is therefore stable across compilations of the
    same program (tested by ``tests/test_compiler.py``).

    ``mediator`` names the pool's enforcement semantics — and therefore the
    representation of every ``COERCE``/``COMPOSE`` operand the VM touches:
    each canonical coercion is pre-interned into the backend's runtime form
    by the :data:`~repro.semantics.SEMANTICS` registry's ``pre_intern`` hook
    (canonical coercions for ``"coercion"``, interned runtime threesomes for
    ``"threesome"``, tag-check sequences for ``"transient"``, the single
    no-op token for ``"erasure"``).  The conversion happens once, at
    pool-construction time, so the VM's hot loop never sees another
    representation.
    """

    consts: list[object] = field(default_factory=list)
    coercions: list[object] = field(default_factory=list)  # SpaceCoercion | Threesome
    labels: list[Label] = field(default_factory=list)
    prims: list[tuple] = field(default_factory=list)  # (meaning, arity, result_type, name)
    codes: list["CodeObject"] = field(default_factory=list)
    mediator: str = "coercion"

    def __post_init__(self) -> None:
        self._const_index: dict[object, int] = {}
        self._coercion_index: dict[int, int] = {}
        self._label_index: dict[Label, int] = {}
        self._prim_index: dict[str, int] = {}

    def add_const(self, value: object) -> int:
        key = (type(value).__name__, repr(value))
        idx = self._const_index.get(key)
        if idx is None:
            idx = len(self.consts)
            self.consts.append(value)
            self._const_index[key] = idx
        return idx

    def add_machine_const(self, value: object, ty: Type) -> int:
        return self.add_const(MConst(value, ty))

    def add_coercion(self, coercion: SpaceCoercion) -> int:
        canon = resolve(self.mediator).pre_intern(intern_space(coercion))
        return self.add_canonical_mediator(canon)

    def add_canonical_mediator(self, canon: object) -> int:
        """Pool an *already canonical* mediator in this pool's representation.

        Used by the optimizer, whose pre-composed mediators come out of the
        memoised ``#``/``∘`` already interned in the right representation.
        """
        idx = self._coercion_index.get(id(canon))
        if idx is None:
            idx = len(self.coercions)
            self.coercions.append(canon)
            self._coercion_index[id(canon)] = idx
        return idx

    def add_label(self, lbl: Label) -> int:
        idx = self._label_index.get(lbl)
        if idx is None:
            idx = len(self.labels)
            self.labels.append(lbl)
            self._label_index[lbl] = idx
        return idx

    def add_prim(self, name: str) -> int:
        idx = self._prim_index.get(name)
        if idx is None:
            spec: OpSpec = op_spec(name)
            idx = len(self.prims)
            self.prims.append((spec.meaning, spec.arity, spec.result_type, spec.name))
            self._prim_index[name] = idx
        return idx

    def add_code(self, code: "CodeObject") -> int:
        self.codes.append(code)
        return len(self.codes) - 1


class CodeObject:
    """One compiled function body (or the program's top level).

    Frame locals are laid out as ``[free vars..., parameter, let slots...]``:
    the first ``n_free`` slots are filled from the closure's captured tuple,
    slot ``n_free`` receives the argument, and ``let`` bindings get the rest.
    """

    __slots__ = (
        "name",
        "instructions",
        "pool",
        "n_free",
        "n_locals",
        "param",
        "local_names",
        "caches",
        "opt_level",
    )

    def __init__(
        self,
        name: str,
        instructions: list[tuple[int, int]],
        pool: ConstantPool,
        n_free: int,
        n_locals: int,
        param: str | None,
        local_names: tuple[str, ...],
    ):
        self.name = name
        self.instructions = instructions
        self.pool = pool
        self.n_free = n_free
        self.n_locals = n_locals
        self.param = param
        self.local_names = local_names
        # Set by the optimizer: per-site inline-cache cells (a list parallel
        # to `instructions`, None until `-O2` allocates it; the VM leaves the
        # caches off — the PR-3 baseline — when this is None) and the level
        # the program was optimized at.
        self.caches: list | None = None
        self.opt_level = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<code {self.name}: {len(self.instructions)} instrs, "
            f"{self.n_free} free, {self.n_locals} locals>"
        )


def all_code_objects(code: CodeObject) -> list[CodeObject]:
    """The program's code objects: the entry point followed by the code pool."""
    result = [code]
    for child in code.pool.codes:
        if child is not code:
            result.append(child)
    return result
