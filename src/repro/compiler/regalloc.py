"""Register allocation: stack bytecode → the packed register IR of the rvm.

This pass sits after the optimizer (:mod:`repro.compiler.opt`) and converts
each stack :class:`~repro.compiler.bytecode.CodeObject` into an
:class:`RCode`: a **flat packed word stream** (``array('I')``) over the same
shared constant pool, executed by :mod:`repro.compiler.rvm`.  Four changes
relative to the stack IR, each removing per-instruction Python-object work:

* **registers instead of stack traffic.**  The converter symbolically
  executes the operand stack at compile time: every stack slot at every
  program point is resolved to a *register* — frame locals keep their
  slots, stack temporaries get the registers above them (``n_locals +
  depth``).  ``LOAD``/``PUSH_CONST``/``STORE`` round trips disappear
  entirely; a consumer reads its operands straight out of the register
  file.

* **constants pinned in the register file.**  Each code object's used pool
  constants are appended to its register file as read-only registers
  (``RCode.const_regs``), pre-filled in the frame template
  (``RCode.blank``).  A value operand is then always a plain register
  number — the hot loop reads ``regs[w]`` with no tag test, and constants
  flow into consumers without materialization instructions.

* **packed words instead of object tuples.**  An instruction is an opcode
  word followed by its operand words, all small unsigned ints in one flat
  ``array('I')`` per code object — no per-instruction tuple objects, no
  tuple unpacking in the hot loop.  (The interpreter localizes the words
  into a tuple once per code object — ``RCode.words`` stays the canonical
  packed form that images serialize; see :attr:`RCode.stream`.)

* **structural and peephole fusion.**  A primitive reads both inputs and
  writes its destination in one instruction, and a primitive feeding a
  conditional branch is one compare-and-branch (``BR_PRIM2``) — fusions the
  stack VM needs dynamic profiling and superinstructions for.  On top of
  that, at ``-O2`` the hottest *register-level* adjacent pairs are fused
  into two-in-one instructions (:data:`R_FUSIONS`) — e.g.
  ``COMPOSE;COERCE`` and ``PRIM2;TAILCALL``, the inner-loop shapes of
  boundary-crossing tail recursion — halving dispatches per iteration
  again.

The mediator discipline is untouched: ``COMPOSE``/``COERCE``/call-site
proxy unwrapping convert 1:1 (same pool indices, same order), so the single
pending-coercion slot per frame, the memoised ``#``/``∘`` merges, and the
``-O2`` inline mediator caches carry over unchanged — a boundary tail loop
still runs with ``max_pending_mediators == 1`` (asserted against the stack
VM by ``check_vm_oracle``/``check_mediator_oracle``).

Stack superinstruction input is accepted: an ``-O2`` stack stream is first
expanded back into base pairs (:func:`unfuse`), because the register IR
subsumes those fusions structurally.  Conversion is deterministic, so a
``.gradb`` image may either carry the register words (``ir="register"``) or
be converted after load.

**Instruction signatures.**  Every opcode's operand layout is a signature
string (:data:`R_SIGS`), one character per operand word — the single
source of truth for widths, disassembly, image validation, and the fusion
pass:

=====  =======================================================
char   operand word
=====  =======================================================
``d``  destination register
``s``  source register (a local, a temporary, or a pinned const)
``p``  operator index (``pool.prims``)
``c``  mediator index (``pool.coercions``)
``k``  constant index (``pool.consts`` — ``FIX``'s type annotation)
``C``  code index (``pool.codes``/``pool.rcodes``)
``L``  blame-label index (``pool.labels``)
``t``  branch target (a word pc in this stream)
``n``  source count, followed by that many ``s`` words (``*``)
=====  =======================================================

Base instruction set (fused opcodes concatenate two of these):

==============  ======  =============================================
opcode          sig     effect
==============  ======  =============================================
``MOVE``        d s     ``r[d] = r[s]``
``PRIM1``       d p s   unary operator
``PRIM2``       d p s s binary operator
``PRIMN``       d p n*  n-ary operator
``BR_PRIM1``    p s t   unary operator, branch if false
``BR_PRIM2``    p s s t binary operator, branch if false
``BR_FALSE``    s t     branch if false
``JUMP``        t       unconditional branch
``CALL``        d s s   push a frame; result lands in ``d``
``TAILCALL``    s s     reuse the frame (pending survives)
``RETURN``      s       apply pending, pop the frame
``COERCE``      d s c   immediate mediator application
``COMPOSE``     c       merge into the frame's pending slot
``CLOSURE``     d C n*  build a closure over n captured sources
``FIX``         d s k   wrap a functional as ``fix V``
``PAIR``        d s s   build a pair
``FST``/``SND`` d s     project a pair (or pair proxy)
``BLAME``       L       halt with ``blame p``
==============  ======  =============================================
"""

from __future__ import annotations

import hashlib
from array import array
from functools import lru_cache

from ..core.errors import CompileError
from .bytecode import (
    BLAME,
    CALL,
    COERCE,
    COMPOSE,
    FST,
    JUMP,
    JUMP_IF_FALSE,
    LOAD,
    MAKE_CLOSURE,
    MAKE_FIX,
    PAIR,
    PRIM,
    PUSH_CONST,
    RETURN,
    SND,
    STORE,
    SUPERINSTRUCTIONS,
    TAILCALL,
    CodeObject,
    unpack_operands,
)

# Register opcodes: a numbering space of their own (a register stream is
# never mixed with a stack stream).  The numbering is part of the dispatch
# design: fused superinstructions (-O2 peephole pairs, see below) and their
# bases are arranged so the interpreter's hottest tests come first and the
# three shared-body families sit in contiguous bands it can catch with one
# range test each — calls in 20–25, returns in 26–28, coerces in 29–30.
R_COERCE_BR_PRIM1 = 0
R_COMPOSE_COERCE = 1
R_CLOSURE_BR_PRIM1 = 2
R_COMPOSE_PRIM2 = 3
R_BR_PRIM2 = 4
R_PRIM2 = 5
R_MOVE_PRIM2 = 6
R_BR_PRIM1 = 7
R_BR_FALSE = 8
R_MOVE = 9
R_JUMP = 10
R_CLOSURE = 11
R_PRIM1 = 12
R_FIX = 13
R_PAIR = 14
R_FST = 15
R_SND = 16
R_PRIMN = 17
R_BLAME = 18
R_COMPOSE = 19
R_TAILCALL = 20
R_PRIM2_TAILCALL = 21
R_COERCE_TAILCALL = 22
R_CALL = 23
R_COERCE_CALL = 24
R_PRIM2_CALL = 25
R_RETURN = 26
R_PRIM2_RETURN = 27
R_CLOSURE_RETURN = 28
R_COERCE = 29
R_COERCE_COERCE = 30

#: Fused opcode → its two halves, in execution order.  These are the
#: statically adjacent pairs that dominate the workloads' inner loops —
#: measured the same way the stack VM's superinstruction set was (dynamic
#: pair frequencies over the benchmark workloads).  Operand words are the
#: first half's followed by the second half's; each half keeps its own
#: inline-cache cell (first at the instruction's pc, second at pc+1).
R_FUSED = {
    R_COERCE_BR_PRIM1: (R_COERCE, R_BR_PRIM1),
    R_COMPOSE_COERCE: (R_COMPOSE, R_COERCE),
    R_CLOSURE_BR_PRIM1: (R_CLOSURE, R_BR_PRIM1),
    R_COMPOSE_PRIM2: (R_COMPOSE, R_PRIM2),
    R_MOVE_PRIM2: (R_MOVE, R_PRIM2),
    R_PRIM2_TAILCALL: (R_PRIM2, R_TAILCALL),
    R_COERCE_TAILCALL: (R_COERCE, R_TAILCALL),
    R_COERCE_CALL: (R_COERCE, R_CALL),
    R_PRIM2_CALL: (R_PRIM2, R_CALL),
    R_PRIM2_RETURN: (R_PRIM2, R_RETURN),
    R_CLOSURE_RETURN: (R_CLOSURE, R_RETURN),
    R_COERCE_COERCE: (R_COERCE, R_COERCE),
}

#: Adjacent pair → fused opcode, the peephole table of :func:`fuse_stream`.
R_FUSIONS = {halves: fused for fused, halves in R_FUSED.items()}

_BASE_NAMES = {
    R_MOVE: "MOVE",
    R_PRIM1: "PRIM1",
    R_PRIM2: "PRIM2",
    R_PRIMN: "PRIMN",
    R_BR_PRIM1: "BR_PRIM1",
    R_BR_PRIM2: "BR_PRIM2",
    R_BR_FALSE: "BR_FALSE",
    R_JUMP: "JUMP",
    R_CALL: "CALL",
    R_TAILCALL: "TAILCALL",
    R_RETURN: "RETURN",
    R_COERCE: "COERCE",
    R_COMPOSE: "COMPOSE",
    R_CLOSURE: "CLOSURE",
    R_FIX: "FIX",
    R_PAIR: "PAIR",
    R_FST: "FST",
    R_SND: "SND",
    R_BLAME: "BLAME",
}

R_OPCODE_NAMES = dict(_BASE_NAMES)
for _fused, (_op1, _op2) in R_FUSED.items():
    R_OPCODE_NAMES[_fused] = f"{_BASE_NAMES[_op1]}_{_BASE_NAMES[_op2]}"

R_OPCODES_BY_NAME = {name: code for code, name in R_OPCODE_NAMES.items()}

_BASE_SIGS = {
    R_MOVE: "ds",
    R_PRIM1: "dps",
    R_PRIM2: "dpss",
    R_PRIMN: "dpn",
    R_BR_PRIM1: "pst",
    R_BR_PRIM2: "psst",
    R_BR_FALSE: "st",
    R_JUMP: "t",
    R_CALL: "dss",
    R_TAILCALL: "ss",
    R_RETURN: "s",
    R_COERCE: "dsc",
    R_COMPOSE: "c",
    R_CLOSURE: "dCn",
    R_FIX: "dsk",
    R_PAIR: "dss",
    R_FST: "ds",
    R_SND: "ds",
    R_BLAME: "L",
}

#: Opcode → operand signature (see the module docstring).  A trailing or
#: embedded ``n`` is followed by that many extra ``s`` words at run time.
R_SIGS = dict(_BASE_SIGS)
for _fused, (_op1, _op2) in R_FUSED.items():
    R_SIGS[_fused] = _BASE_SIGS[_op1] + _BASE_SIGS[_op2]

#: Fixed part of each instruction's width in words (opcode word included);
#: every ``n`` in the signature adds its count of source words on top.
R_WIDTHS = {op: 1 + len(sig) for op, sig in R_SIGS.items()}

#: Opcodes whose width depends on an ``n`` operand.
R_VARIABLE = frozenset(op for op, sig in R_SIGS.items() if "n" in sig)


def instruction_width(op: int, words, pc: int) -> int:
    """The full width in words of the instruction at ``pc`` (``op`` =
    ``words[pc]``), counting any variable source lists."""
    width = R_WIDTHS[op]
    if op in R_VARIABLE:
        sig = R_SIGS[op]
        offset = 1
        for ch in sig:
            if ch == "n":
                width += words[pc + offset]
            offset += 1
            if ch == "n":
                offset += words[pc + offset - 1]
    return width


def _operand_offsets(op: int, words, pc: int, kind: str) -> list[int]:
    """Word offsets (relative to ``pc``) of every ``kind`` operand of the
    instruction at ``pc``, expanding ``n`` source lists when ``kind == 's'``."""
    offsets = []
    offset = 1
    for ch in R_SIGS[op]:
        if ch == "n":
            count = words[pc + offset]
            if kind == "s":
                offsets.extend(range(offset + 1, offset + 1 + count))
            offset += 1 + count
        else:
            if ch == kind:
                offsets.append(offset)
            offset += 1
    return offsets


@lru_cache(maxsize=1)
def register_fingerprint() -> bytes:
    """An 8-byte digest of the register instruction set (mirrors
    :func:`~repro.compiler.bytecode.opcode_fingerprint`): serialized register
    streams embed it, so an image from a different register ISA is rejected
    at load time instead of dispatched wrongly."""
    digest = hashlib.sha256()
    for code in sorted(R_OPCODE_NAMES):
        digest.update(f"{code}={R_OPCODE_NAMES[code]}/{R_SIGS[code]};".encode())
    return digest.digest()[:8]


class RCode:
    """One register-code function body over the shared constant pool.

    ``words`` is the canonical packed instruction stream (``array('I')``);
    ``stream`` is the same words localized into a tuple, which is what the
    rvm's dispatch loop indexes (a tuple fetch skips the array item's int
    boxing).  The register file extends the stack code's locals —
    ``[free vars..., parameter, let slots..., stack temporaries...,
    pinned constants...]`` — and ``blank`` is its per-call template with
    the constants (``const_regs``, pool indices in register order) already
    in place: a call frame is ``blank.copy()`` plus the captured values and
    the argument.
    """

    __slots__ = (
        "name",
        "words",
        "stream",
        "pool",
        "n_free",
        "n_regs",
        "const_regs",
        "blank",
        "param",
        "local_names",
        "caches",
        "opt_level",
    )

    def __init__(
        self,
        name: str,
        words: array,
        pool,
        n_free: int,
        n_regs: int,
        const_regs: tuple[int, ...],
        param: str | None,
        local_names: tuple[str, ...],
        opt_level: int = 0,
    ):
        self.name = name
        self.words = words
        self.stream = tuple(words)
        self.pool = pool
        self.n_free = n_free
        self.n_regs = n_regs
        self.const_regs = const_regs
        self.blank = [None] * (n_regs - len(const_regs)) + [
            pool.consts[i] for i in const_regs
        ]
        self.param = param
        self.local_names = local_names
        self.opt_level = opt_level
        # Per-site inline mediator caches, indexed by the pc of the opcode
        # word — pc+1 for the second half of a fused pair (None below -O2,
        # mirroring the stack VM's CodeObject.caches).
        self.caches: list | None = [None] * (len(words) + 1) if opt_level >= 2 else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<rcode {self.name}: {len(self.words)} words, "
            f"{self.n_free} free, {self.n_regs} regs>"
        )


def all_rcodes(rcode: RCode) -> list["RCode"]:
    """The program's register code objects: entry first, then the pool's."""
    result = [rcode]
    for child in rcode.pool.rcodes:
        if child is not rcode:
            result.append(child)
    return result


# ---------------------------------------------------------------------------
# Stack superinstruction expansion
# ---------------------------------------------------------------------------


def unfuse(insns: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Expand ``-O2`` stack superinstructions back into their base pairs.

    The register IR fuses at its own level (operands ride in the
    instruction), so the stack-level pair fusions only obscure the
    conversion.  Jump targets are remapped; no jump can target the second
    half of a fused pair (the optimizer guaranteed that when it fused).
    """
    if not any(op in SUPERINSTRUCTIONS for op, _ in insns):
        return list(insns)
    expanded: list[tuple[int, int]] = []
    old2new = []
    for op, operand in insns:
        old2new.append(len(expanded))
        if op in SUPERINSTRUCTIONS:
            op1, op2 = SUPERINSTRUCTIONS[op]
            a, b = unpack_operands(op, operand)
            expanded.append((op1, a))
            expanded.append((op2, b))
        else:
            expanded.append((op, operand))
    old2new.append(len(expanded))
    return [
        (op, old2new[operand] if op in (JUMP, JUMP_IF_FALSE) else operand)
        for op, operand in expanded
    ]


# ---------------------------------------------------------------------------
# Stack → register conversion
# ---------------------------------------------------------------------------

#: During conversion, a symbolic source ``w`` at or above this base names
#: pool constant ``w - RK`` (below it, register ``w``).  The tag never
#: reaches the final stream: :func:`_pin_constants` rewrites every tagged
#: word to the constant's pinned register.
RK = 1 << 18


class _RBuilder:
    """Mutable state for one register code object under conversion."""

    def __init__(self, obj: CodeObject, insns: list[tuple[int, int]]):
        self.obj = obj
        self.insns = insns
        self.base = obj.n_locals
        self.words: list[int] = []
        self.max_depth = 0
        # stack pc of every jump target (joins need a canonical stack shape).
        self.targets = {operand for op, operand in insns if op in (JUMP, JUMP_IF_FALSE)}
        # stack pc -> word pc, filled as instructions are emitted.
        self.word_of: dict[int, int] = {}
        # (index into words holding a stack-pc target) to patch at the end.
        self.fixups: list[int] = []
        # stack pc -> the canonical symbolic stack entering that join.
        self.saved: dict[int, list[int]] = {}

    def emit(self, *ws: int) -> None:
        self.words.extend(ws)

    def emit_jump_operand(self, stack_target: int) -> None:
        self.fixups.append(len(self.words))
        self.words.append(stack_target)

    def note_depth(self, depth: int) -> None:
        if depth > self.max_depth:
            self.max_depth = depth

    def canonicalize(self, stack: list[int]) -> None:
        """Force every stack entry into its canonical register (``base + d``)
        so join points meet a path-independent register shape."""
        for d, src in enumerate(stack):
            want = self.base + d
            if src != want:
                self.emit(R_MOVE, want, src)
                stack[d] = want
        self.note_depth(len(stack))


def _convert_code(obj: CodeObject, pool) -> RCode:
    b = _RBuilder(obj, unfuse(obj.instructions))
    insns = b.insns
    n = len(insns)
    prims = pool.prims
    stack: list[int] | None = []
    i = 0
    while i < n:
        if i in b.targets:
            if stack is not None:
                b.canonicalize(stack)
                recorded = b.saved.get(i)
                if recorded is None:
                    b.saved[i] = list(stack)
                elif recorded != stack:  # pragma: no cover - compiler invariant
                    raise CompileError(
                        f"inconsistent stack shapes at join {i} in {obj.name}"
                    )
            else:
                recorded = b.saved.get(i)
                if recorded is not None:
                    stack = list(recorded)
                # No recorded shape means every jump here sits in a dead
                # region itself (jumps are forward-only), so the target is
                # just as unreachable — leave ``stack`` as None and skip on.
        if stack is None:
            i += 1  # unreachable (after RETURN/BLAME/JUMP/TAILCALL)
            continue
        b.word_of.setdefault(i, len(b.words))
        op, operand = insns[i]

        if op == LOAD:
            stack.append(operand)
        elif op == PUSH_CONST:
            stack.append(RK + operand)
        elif op == STORE:
            src = stack.pop()
            _flush_slot(b, stack, operand)
            if src != operand:
                b.emit(R_MOVE, operand, src)
        elif op == PRIM:
            arity = prims[operand][1]
            srcs = stack[len(stack) - arity:]
            del stack[len(stack) - arity:]
            nxt = insns[i + 1] if i + 1 < n and (i + 1) not in b.targets else None
            if nxt is not None and nxt[0] == JUMP_IF_FALSE and arity <= 2:
                # Fuse compare-and-branch: the inner-loop shape.
                b.canonicalize(stack)
                b.saved.setdefault(nxt[1], list(stack))
                if arity == 1:
                    b.emit(R_BR_PRIM1, operand, srcs[0])
                else:
                    b.emit(R_BR_PRIM2, operand, srcs[0], srcs[1])
                b.emit_jump_operand(nxt[1])
                i += 2
                continue
            dst, skip = _dest(b, stack, i)
            if arity == 1:
                b.emit(R_PRIM1, dst, operand, srcs[0])
            elif arity == 2:
                b.emit(R_PRIM2, dst, operand, srcs[0], srcs[1])
            else:
                b.emit(R_PRIMN, dst, operand, arity, *srcs)
            if not skip:
                stack.append(dst)
            i += 1 + skip
            continue
        elif op == JUMP_IF_FALSE:
            cond = stack.pop()
            b.canonicalize(stack)
            b.saved.setdefault(operand, list(stack))
            b.emit(R_BR_FALSE, cond)
            b.emit_jump_operand(operand)
        elif op == JUMP:
            b.canonicalize(stack)
            b.saved.setdefault(operand, list(stack))
            b.emit(R_JUMP)
            b.emit_jump_operand(operand)
            stack = None
        elif op == CALL:
            arg = stack.pop()
            fun = stack.pop()
            dst, skip = _dest(b, stack, i)
            b.emit(R_CALL, dst, fun, arg)
            if not skip:
                stack.append(dst)
            i += 1 + skip
            continue
        elif op == TAILCALL:
            arg = stack.pop()
            fun = stack.pop()
            b.emit(R_TAILCALL, fun, arg)
            stack = None
        elif op == RETURN:
            b.emit(R_RETURN, stack.pop())
            stack = None
        elif op == COERCE:
            src = stack.pop()
            dst, skip = _dest(b, stack, i)
            b.emit(R_COERCE, dst, src, operand)
            if not skip:
                stack.append(dst)
            i += 1 + skip
            continue
        elif op == COMPOSE:
            b.emit(R_COMPOSE, operand)
        elif op == MAKE_CLOSURE:
            n_free = pool.codes[operand].n_free
            srcs = stack[len(stack) - n_free:] if n_free else []
            if n_free:
                del stack[len(stack) - n_free:]
            dst, skip = _dest(b, stack, i)
            b.emit(R_CLOSURE, dst, operand, n_free, *srcs)
            if not skip:
                stack.append(dst)
            i += 1 + skip
            continue
        elif op == MAKE_FIX:
            src = stack.pop()
            dst, skip = _dest(b, stack, i)
            b.emit(R_FIX, dst, src, operand)
            if not skip:
                stack.append(dst)
            i += 1 + skip
            continue
        elif op == PAIR:
            right = stack.pop()
            left = stack.pop()
            dst, skip = _dest(b, stack, i)
            b.emit(R_PAIR, dst, left, right)
            if not skip:
                stack.append(dst)
            i += 1 + skip
            continue
        elif op == FST or op == SND:
            src = stack.pop()
            dst, skip = _dest(b, stack, i)
            b.emit(R_FST if op == FST else R_SND, dst, src)
            if not skip:
                stack.append(dst)
            i += 1 + skip
            continue
        elif op == BLAME:
            b.emit(R_BLAME, operand)
            stack = None
        else:  # pragma: no cover - defensive
            raise CompileError(f"cannot register-allocate stack opcode {op}")
        i += 1

    b.word_of.setdefault(n, len(b.words))
    for index in b.fixups:
        b.words[index] = b.word_of[b.words[index]]
    words = b.words
    base_regs = b.base + b.max_depth
    words, const_regs = _pin_constants(words, base_regs)
    if obj.opt_level >= 2:
        words = fuse_stream(words)
    return RCode(
        obj.name,
        array("I", words),
        pool,
        obj.n_free,
        max(base_regs, 1) + len(const_regs),
        const_regs,
        obj.param,
        obj.local_names,
        opt_level=obj.opt_level,
    )


def _flush_slot(b: _RBuilder, stack: list[int], slot: int) -> None:
    """Rescue any symbolic-stack entry still naming ``slot`` before the slot
    is overwritten (moves the copy into its canonical temporary).  The
    lowerer stores each ``let`` slot exactly once, before any load of it, so
    this never fires today — it is insurance against future stack code."""
    for d, src in enumerate(stack):
        if src == slot:
            want = b.base + d
            b.emit(R_MOVE, want, src)
            stack[d] = want
            b.note_depth(d + 1)


def _dest(b: _RBuilder, stack: list[int], i: int) -> tuple[int, int]:
    """The destination register for the producer at stack pc ``i``.

    When the very next stack instruction is a ``STORE`` (binding a ``let``),
    the producer writes the let slot directly and the store is skipped —
    returns ``(slot, 1)``; otherwise the canonical temporary for the current
    depth — ``(base + depth, 0)``.
    """
    nxt = b.insns[i + 1] if i + 1 < len(b.insns) else None
    if nxt is not None and nxt[0] == STORE and (i + 1) not in b.targets:
        _flush_slot(b, stack, nxt[1])
        return nxt[1], 1
    dst = b.base + len(stack)
    b.note_depth(len(stack) + 1)
    return dst, 0


def _pin_constants(words: list[int], base: int) -> tuple[list[int], tuple[int, ...]]:
    """Rewrite ``RK``-tagged source words to pinned constant registers.

    Every distinct pool constant the code reads gets one register above the
    locals and temporaries (``base`` is the first free number — at least 1,
    matching the file's minimum size); the returned pool-index tuple, in
    register order, is what :class:`RCode` pre-fills the frame template
    with.
    """
    base = max(base, 1)
    words = list(words)
    reg_of: dict[int, int] = {}
    pc = 0
    n = len(words)
    while pc < n:
        op = words[pc]
        for offset in _operand_offsets(op, words, pc, "s"):
            w = words[pc + offset]
            if w >= RK:
                reg = reg_of.get(w)
                if reg is None:
                    reg = base + len(reg_of)
                    reg_of[w] = reg
                words[pc + offset] = reg
        pc += instruction_width(op, words, pc)
    return words, tuple(w - RK for w in reg_of)


def fuse_stream(words: list[int]) -> list[int]:
    """Fuse statically adjacent hot pairs (:data:`R_FUSIONS`) into two-in-one
    instructions.  A pair is only fused when no branch lands on its second
    half; branch targets are remapped to the fused layout.  Deterministic,
    so the two mediator backends (and a reserialized image) fuse
    identically."""
    # First pass: instruction starts and the set of branch-target pcs.
    starts = []
    targets = set()
    pc = 0
    n = len(words)
    while pc < n:
        op = words[pc]
        starts.append(pc)
        for offset in _operand_offsets(op, words, pc, "t"):
            targets.add(words[pc + offset])
        pc += instruction_width(op, words, pc)
    # Second pass: greedy left-to-right pairing.
    out: list[int] = []
    new_of: dict[int, int] = {}
    index = 0
    count = len(starts)
    while index < count:
        pc = starts[index]
        op = words[pc]
        width = instruction_width(op, words, pc)
        new_of[pc] = len(out)
        if index + 1 < count:
            nxt_pc = starts[index + 1]
            fused = R_FUSIONS.get((op, words[nxt_pc]))
            if fused is not None and nxt_pc not in targets:
                nxt_width = instruction_width(words[nxt_pc], words, nxt_pc)
                out.append(fused)
                out.extend(words[pc + 1 : pc + width])
                out.extend(words[nxt_pc + 1 : nxt_pc + nxt_width])
                index += 2
                continue
        out.extend(words[pc : pc + width])
        index += 1
    new_of[n] = len(out)
    # Third pass: remap branch targets.
    pc = 0
    n = len(out)
    while pc < n:
        op = out[pc]
        for offset in _operand_offsets(op, out, pc, "t"):
            out[pc + offset] = new_of[out[pc + offset]]
        pc += instruction_width(op, out, pc)
    return out


def compile_registers(code: CodeObject) -> RCode:
    """Convert an optimized stack program into the register IR.

    Every code object of the program is converted over the *same* constant
    pool; the converted children are attached as ``pool.rcodes`` (parallel
    to ``pool.codes``, so ``CLOSURE`` operands keep their indices) and the
    converted entry code is returned.  Conversion is deterministic and
    accepts any ``-O`` level (stack superinstructions are expanded first;
    register-level fusion and inline caches come back at ``-O2``).
    """
    pool = code.pool
    pool.rcodes = [_convert_code(child, pool) for child in pool.codes]
    return _convert_code(code, pool)
