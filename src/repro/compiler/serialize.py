"""Serialized bytecode images — the ``.gradb`` format.

A compiled program (:class:`~repro.compiler.bytecode.CodeObject` plus its
shared :class:`~repro.compiler.bytecode.ConstantPool`) round-trips through a
versioned binary image::

    ┌──────────────────────────────────────────────────────────────────┐
    │ magic  b"GRADB\\0"                                                │
    │ format version (varint)      — FORMAT_VERSION, checked on load   │
    │ opcode fingerprint (8 bytes) — bytecode.opcode_fingerprint()     │
    │ provenance: mediator, opt level, source hash, static type        │
    │ type table     — deduplicated, children before parents           │
    │ label table    — (name, polarity) pairs                          │
    │ const pool     — machine constants and bare types                │
    │ mediator pool  — canonical coercions *or* threesomes             │
    │ prim pool      — operator names (meanings re-resolved on load)   │
    │ code objects   — children first, entry last; packed -O2 operands │
    │                  are stored verbatim                             │
    │ crc32 of everything above (4 bytes)                              │
    └──────────────────────────────────────────────────────────────────┘

Integers are unsigned LEB128 varints (zigzag where negative values occur);
strings are length-prefixed UTF-8.  The format stores *structure*, never
Python objects: no pickle, no code, nothing executable — a ``.gradb`` file
can only describe instructions the VM already has (the opcode fingerprint
rejects images from a different instruction set).

**Load-time re-interning** is the point of the exercise.  Every type, label,
coercion, labeled type, and threesome decoded from an image goes back
through the interners (:func:`~repro.core.intern.intern_type`,
:func:`~repro.lambda_s.coercions.intern_space`,
:func:`~repro.threesomes.runtime.intern_threesome`), so pool entries of a
deserialized image are the *same canonical nodes* a fresh compilation would
produce.  Everything downstream that is keyed on mediator identity — the
memoised ``#``/``∘`` composition caches, the VM's pool-parallel action
tables, and the per-site inline mediator caches — therefore works
identically on a loaded image, which ``tests/test_serialize.py`` asserts by
comparing outcomes, blame labels, step counts, and space profiles against
in-memory compilation (and byte-identical disassembly on top).

Primitive operators are stored by *name* and re-resolved through
:func:`~repro.core.ops.op_spec` on load — meaning functions never touch the
wire, so an image is as portable as the instruction set itself.
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
import zlib
from array import array
from dataclasses import dataclass
from pathlib import Path

from ..core.errors import ReproError
from ..core.intern import intern_type
from ..core.labels import Label
from ..core.types import BaseType, DynType, FunType, ProdType, Type, UnknownType
from ..lambda_s.coercions import (
    FailS,
    FunCo,
    IdBase,
    IdDyn,
    Injection,
    ProdCo,
    Projection,
    SpaceCoercion,
    intern_space,
)
from ..machine.values import MConst
from ..threesomes.labeled_types import (
    LArrow,
    LBase,
    LDyn,
    LFail,
    LProd,
    LabeledType,
)
from ..semantics import SEMANTICS_NAMES
from ..semantics.erasure import ERASED, ErasedMediator
from ..semantics.transient import TransientCheck, intern_transient
from ..threesomes.runtime import Threesome, intern_labeled, intern_threesome
from .bytecode import CodeObject, ConstantPool, opcode_fingerprint
from .regalloc import R_SIGS, RCode, compile_registers, register_fingerprint

#: The on-disk format version.  Bump on any incompatible layout change; the
#: loader rejects mismatches before reading anything version-dependent.
#: v2 added the IR marker and optional register-code sections (PR 6); v1
#: images (stack-only, no IR marker) are rejected with a version mismatch.
FORMAT_VERSION = 2

#: The IR kinds an image can carry.  ``"register"`` images hold the stack
#: sections *plus* a packed register stream per code object, so one image
#: serves both engines.
IMAGE_IRS = ("stack", "register")

#: Every image starts with these six bytes.
GRADB_MAGIC = b"GRADB\x00"

#: Conventional file extension for serialized images.
GRADB_SUFFIX = ".gradb"


class ImageError(ReproError):
    """A ``.gradb`` image could not be read: bad magic, version or opcode-set
    mismatch, truncation, checksum failure, or malformed section contents."""


@dataclass(frozen=True)
class ImageInfo:
    """Provenance carried by an image (everything but the program itself)."""

    format_version: int
    source_hash: str
    opt_level: int
    mediator: str
    static_type: Type | None
    #: Which IR the image carries: ``"stack"`` or ``"register"`` (the latter
    #: includes the stack sections too).
    ir: str = "stack"


@dataclass
class LoadedImage:
    """A deserialized program: the entry code object plus its provenance.

    ``rcode`` is the entry register code when the image carries the register
    IR (``info.ir == "register"``); the pool's ``rcodes`` list is wired up
    alongside it, so the entry is directly runnable on the register VM.
    """

    code: CodeObject
    info: ImageInfo
    rcode: RCode | None = None


def source_fingerprint(text: str) -> str:
    """The content hash used as an image's ``source_hash`` provenance (and as
    one axis of the compile-cache key): hex SHA-256 of the UTF-8 text."""
    return hashlib.sha256(text.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Primitive encoders
# ---------------------------------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    # Arbitrary-precision zigzag (constants are unbounded Python ints).
    return value * 2 if value >= 0 else -value * 2 - 1


def _write_signed(out: bytearray, value: int) -> None:
    _write_varint(out, _zigzag(value))


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


def _write_str(out: bytearray, text: str) -> None:
    data = text.encode()
    _write_varint(out, len(data))
    out.extend(data)


class _Reader:
    """A bounds-checked cursor over the image payload.

    The byte-level readers are deliberately inlined (no ``take`` inside
    ``varint``/``string``): deserialization is the compile cache's warm
    path, and Python function-call overhead on tens of thousands of
    one-byte reads is where a naive decoder spends most of its time.
    """

    def __init__(self, data: bytes):
        self._data = data
        self._len = len(data)
        self._pos = 0

    def take(self, count: int) -> bytes:
        end = self._pos + count
        if end > self._len:
            raise ImageError("truncated image")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def byte(self) -> int:
        pos = self._pos
        if pos >= self._len:
            raise ImageError("truncated image")
        self._pos = pos + 1
        return self._data[pos]

    def varint(self) -> int:
        # No continuation cap: integer *constants* are unbounded Python
        # ints, and termination is already guaranteed because every
        # continuation byte consumes input (the value is O(file size)).
        data = self._data
        pos = self._pos
        limit = self._len
        result = 0
        shift = 0
        while True:
            if pos >= limit:
                raise ImageError("truncated image")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self._pos = pos
                return result
            shift += 7

    def signed(self) -> int:
        return _unzigzag(self.varint())

    def pairs(self, count: int) -> list[tuple[int, int]]:
        """Decode ``count`` varint pairs — the instruction-stream hot loop.

        Nearly every opcode and most operands fit one varint byte, so the
        single-byte case is inlined and the generic continuation loop only
        runs for packed -O2 operands and large pool indices.
        """
        data = self._data
        pos = self._pos
        limit = self._len
        out: list[tuple[int, int]] = []
        append = out.append
        for _ in range(count):
            pair = []
            for _half in (0, 1):
                if pos >= limit:
                    raise ImageError("truncated image")
                byte = data[pos]
                pos += 1
                value = byte & 0x7F
                shift = 7
                while byte & 0x80:
                    if pos >= limit:
                        raise ImageError("truncated image")
                    byte = data[pos]
                    pos += 1
                    value |= (byte & 0x7F) << shift
                    shift += 7
                    if shift > 10 * 7:
                        raise ImageError("malformed varint in image")
                pair.append(value)
            append((pair[0], pair[1]))
        self._pos = pos
        return out

    def string(self) -> str:
        length = self.varint()
        end = self._pos + length
        if end > self._len:
            raise ImageError("truncated image")
        try:
            text = self._data[self._pos:end].decode()
        except UnicodeDecodeError as exc:
            raise ImageError(f"malformed string in image: {exc}") from exc
        self._pos = end
        return text

    def at_end(self) -> bool:
        return self._pos == self._len


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

_TY_DYN, _TY_UNKNOWN, _TY_BASE, _TY_FUN, _TY_PROD = range(5)
_CO_IDDYN, _CO_IDBASE, _CO_PROJ, _CO_INJ, _CO_FAIL, _CO_FUN, _CO_PROD = range(7)
_LT_DYN, _LT_BASE, _LT_ARROW, _LT_PROD, _LT_FAIL = range(5)
_CONST_MCONST, _CONST_TYPE = range(2)
_VAL_INT, _VAL_BOOL, _VAL_STR, _VAL_NONE = range(4)


class _Tables:
    """Deduplicating type/label tables built while the payload is encoded.

    Children are registered before parents, so each table record only refers
    to lower indices and the loader can decode with one forward pass.
    """

    def __init__(self) -> None:
        self.type_records = bytearray()
        self.type_count = 0
        self._type_index: dict[int, int] = {}
        self.label_records = bytearray()
        self.label_count = 0
        self._label_index: dict[Label, int] = {}
        self.co_records = bytearray()
        self.co_count = 0
        self._co_index: dict[int, int] = {}
        self.lt_records = bytearray()
        self.lt_count = 0
        self._lt_index: dict[int, int] = {}
        self.name_records = bytearray()
        self.name_count = 0
        self._name_index: dict[str, int] = {}

    def name_ref(self, name: str) -> int:
        """Index of a string in the shared name table (code/param/local names
        repeat heavily across a program's code objects)."""
        index = self._name_index.get(name)
        if index is None:
            index = self.name_count
            self.name_count += 1
            self._name_index[name] = index
            _write_str(self.name_records, name)
        return index

    def type_ref(self, ty: Type) -> int:
        ty = intern_type(ty)
        index = self._type_index.get(id(ty))
        if index is not None:
            return index
        if isinstance(ty, DynType):
            record = bytes([_TY_DYN])
        elif isinstance(ty, UnknownType):
            record = bytes([_TY_UNKNOWN])
        elif isinstance(ty, BaseType):
            out = bytearray([_TY_BASE])
            _write_str(out, ty.name)
            record = bytes(out)
        elif isinstance(ty, FunType):
            dom = self.type_ref(ty.dom)
            cod = self.type_ref(ty.cod)
            out = bytearray([_TY_FUN])
            _write_varint(out, dom)
            _write_varint(out, cod)
            record = bytes(out)
        elif isinstance(ty, ProdType):
            left = self.type_ref(ty.left)
            right = self.type_ref(ty.right)
            out = bytearray([_TY_PROD])
            _write_varint(out, left)
            _write_varint(out, right)
            record = bytes(out)
        else:
            raise ImageError(f"cannot serialize unknown type node: {ty!r}")
        index = self.type_count
        self.type_count += 1
        self._type_index[id(ty)] = index
        self.type_records.extend(record)
        return index

    def label_ref(self, lbl: Label) -> int:
        index = self._label_index.get(lbl)
        if index is not None:
            return index
        index = self.label_count
        self.label_count += 1
        self._label_index[lbl] = index
        _write_str(self.label_records, lbl.name)
        self.label_records.append(1 if lbl.positive else 0)
        return index


def _tables_coercion_ref(tables: _Tables, s: SpaceCoercion) -> int:
    """Index of a coercion in the image's deduplicated node table.

    Nodes are keyed by interned identity, so shared subtrees — e.g. the
    repeated components of a deep product coercion — are stored (and later
    decoded) exactly once per image.
    """
    s = intern_space(s)
    index = tables._co_index.get(id(s))
    if index is not None:
        return index
    out = bytearray()
    if isinstance(s, IdDyn):
        out.append(_CO_IDDYN)
    elif isinstance(s, IdBase):
        out.append(_CO_IDBASE)
        _write_varint(out, tables.type_ref(s.base))
    elif isinstance(s, Projection):
        body = _tables_coercion_ref(tables, s.body)
        out.append(_CO_PROJ)
        _write_varint(out, tables.type_ref(s.ground))
        _write_varint(out, tables.label_ref(s.label))
        _write_varint(out, body)
    elif isinstance(s, Injection):
        body = _tables_coercion_ref(tables, s.body)
        out.append(_CO_INJ)
        _write_varint(out, body)
        _write_varint(out, tables.type_ref(s.ground))
    elif isinstance(s, FailS):
        out.append(_CO_FAIL)
        _write_varint(out, tables.type_ref(s.source_ground))
        _write_varint(out, tables.label_ref(s.label))
        _write_varint(out, tables.type_ref(s.target_ground))
        _write_signed(out, tables.type_ref(s.source) if s.source is not None else -1)
        _write_signed(out, tables.type_ref(s.target) if s.target is not None else -1)
    elif isinstance(s, FunCo):
        dom = _tables_coercion_ref(tables, s.dom)
        cod = _tables_coercion_ref(tables, s.cod)
        out.append(_CO_FUN)
        _write_varint(out, dom)
        _write_varint(out, cod)
    elif isinstance(s, ProdCo):
        left = _tables_coercion_ref(tables, s.left)
        right = _tables_coercion_ref(tables, s.right)
        out.append(_CO_PROD)
        _write_varint(out, left)
        _write_varint(out, right)
    else:
        raise ImageError(f"cannot serialize unknown canonical coercion: {s!r}")
    index = tables.co_count
    tables.co_count += 1
    tables._co_index[id(s)] = index
    tables.co_records.extend(out)
    return index


def _write_opt_label(out: bytearray, tables: _Tables, lbl: Label | None) -> None:
    _write_signed(out, tables.label_ref(lbl) if lbl is not None else -1)


def _tables_labeled_ref(tables: _Tables, p: LabeledType) -> int:
    """Index of a labeled type in the image's deduplicated node table."""
    p = intern_labeled(p)
    index = tables._lt_index.get(id(p))
    if index is not None:
        return index
    out = bytearray()
    if isinstance(p, LDyn):
        out.append(_LT_DYN)
    elif isinstance(p, LBase):
        out.append(_LT_BASE)
        _write_varint(out, tables.type_ref(p.base))
        _write_opt_label(out, tables, p.label)
    elif isinstance(p, LArrow):
        dom = _tables_labeled_ref(tables, p.dom)
        cod = _tables_labeled_ref(tables, p.cod)
        out.append(_LT_ARROW)
        _write_varint(out, dom)
        _write_varint(out, cod)
        _write_opt_label(out, tables, p.label)
    elif isinstance(p, LProd):
        left = _tables_labeled_ref(tables, p.left)
        right = _tables_labeled_ref(tables, p.right)
        out.append(_LT_PROD)
        _write_varint(out, left)
        _write_varint(out, right)
        _write_opt_label(out, tables, p.label)
    elif isinstance(p, LFail):
        out.append(_LT_FAIL)
        _write_varint(out, tables.label_ref(p.fail_label))
        _write_varint(out, tables.type_ref(p.ground))
        _write_opt_label(out, tables, p.label)
    else:
        raise ImageError(f"cannot serialize unknown labeled type: {p!r}")
    index = tables.lt_count
    tables.lt_count += 1
    tables._lt_index[id(p)] = index
    tables.lt_records.extend(out)
    return index


def _write_mediator(out: bytearray, tables: _Tables, mediator: str, entry: object) -> None:
    if mediator == "coercion":
        if not isinstance(entry, SpaceCoercion):
            raise ImageError(f"coercion pool holds a non-coercion entry: {entry!r}")
        _write_varint(out, _tables_coercion_ref(tables, entry))
    elif mediator == "threesome":
        if not isinstance(entry, Threesome):
            raise ImageError(f"threesome pool holds a non-threesome entry: {entry!r}")
        _write_varint(out, tables.type_ref(entry.source))
        _write_varint(out, _tables_labeled_ref(tables, entry.mid))
        _write_varint(out, tables.type_ref(entry.target))
    elif mediator == "transient":
        if not isinstance(entry, TransientCheck):
            raise ImageError(f"transient pool holds a non-check entry: {entry!r}")
        _write_varint(out, len(entry.checks))
        for ground, label in entry.checks:
            _write_varint(out, tables.type_ref(ground))
            _write_varint(out, tables.label_ref(label))
        _write_opt_label(out, tables, entry.fail)
    elif mediator == "erasure":
        if not isinstance(entry, ErasedMediator):
            raise ImageError(f"erasure pool holds a non-erased entry: {entry!r}")
        # The token carries no data; the entry count alone reconstructs it.
    else:
        raise ImageError(f"cannot serialize mediator pool for semantics {mediator!r}")


def _write_const(out: bytearray, tables: _Tables, entry: object) -> None:
    if isinstance(entry, MConst):
        out.append(_CONST_MCONST)
        value = entry.value
        # bool before int: bool is an int subtype.
        if isinstance(value, bool):
            out.append(_VAL_BOOL)
            out.append(1 if value else 0)
        elif isinstance(value, int):
            out.append(_VAL_INT)
            _write_signed(out, value)
        elif isinstance(value, str):
            out.append(_VAL_STR)
            _write_str(out, value)
        elif value is None:
            out.append(_VAL_NONE)
        else:
            raise ImageError(f"cannot serialize constant value: {value!r}")
        _write_varint(out, tables.type_ref(entry.type))
    elif isinstance(entry, Type):
        out.append(_CONST_TYPE)
        _write_varint(out, tables.type_ref(entry))
    else:
        raise ImageError(f"cannot serialize constant-pool entry: {entry!r}")


def _write_code(out: bytearray, tables: _Tables, obj: CodeObject) -> None:
    _write_varint(out, tables.name_ref(obj.name))
    _write_varint(out, obj.n_free)
    _write_varint(out, obj.n_locals)
    if obj.param is None:
        out.append(0)
    else:
        out.append(1)
        _write_varint(out, tables.name_ref(obj.param))
    _write_varint(out, len(obj.local_names))
    for name in obj.local_names:
        _write_varint(out, tables.name_ref(name))
    _write_varint(out, obj.opt_level)
    _write_varint(out, len(obj.instructions))
    for opcode, operand in obj.instructions:
        _write_varint(out, opcode)
        _write_varint(out, operand)


def _write_rcode(out: bytearray, robj: RCode) -> None:
    """One register section: register-file size, pinned constants, words."""
    _write_varint(out, robj.n_regs)
    _write_varint(out, len(robj.const_regs))
    for index in robj.const_regs:
        _write_varint(out, index)
    _write_varint(out, len(robj.words))
    for word in robj.words:
        _write_varint(out, word)


def serialize_image(
    code: CodeObject,
    source_hash: str = "",
    static_type: Type | None = None,
    ir: str = "stack",
) -> bytes:
    """Encode a compiled program as ``.gradb`` image bytes.

    ``source_hash`` and ``static_type`` are provenance: the content hash of
    the source the program was compiled from (see :func:`source_fingerprint`)
    and the program's static type, so a loaded image can report
    ``value : type`` without re-elaborating anything.

    ``ir="register"`` additionally runs the register converter and appends a
    packed register section per code object (plus the register-opcode
    fingerprint to the header), so the loaded image is directly runnable on
    the register VM without re-converting.
    """
    if ir not in IMAGE_IRS:
        raise ImageError(f"unknown image IR: {ir!r} (expected one of {IMAGE_IRS})")
    pool = code.pool
    tables = _Tables()
    payload = bytearray()

    static_ref = tables.type_ref(static_type) if static_type is not None else -1

    _write_varint(payload, len(pool.consts))
    for entry in pool.consts:
        _write_const(payload, tables, entry)
    _write_varint(payload, len(pool.coercions))
    for entry in pool.coercions:
        _write_mediator(payload, tables, pool.mediator, entry)
    _write_varint(payload, len(pool.labels))
    for lbl in pool.labels:
        _write_varint(payload, tables.label_ref(lbl))
    _write_varint(payload, len(pool.prims))
    for _, _, _, name in pool.prims:
        _write_str(payload, name)
    _write_varint(payload, len(pool.codes))
    for child in pool.codes:
        _write_code(payload, tables, child)
    _write_code(payload, tables, code)
    if ir == "register":
        entry_rcode = compile_registers(code)
        for child_rcode in pool.rcodes:
            _write_rcode(payload, child_rcode)
        _write_rcode(payload, entry_rcode)

    out = bytearray()
    out.extend(GRADB_MAGIC)
    _write_varint(out, FORMAT_VERSION)
    out.extend(opcode_fingerprint())
    _write_str(out, pool.mediator)
    _write_str(out, ir)
    if ir == "register":
        out.extend(register_fingerprint())
    _write_varint(out, code.opt_level)
    _write_str(out, source_hash)
    _write_signed(out, static_ref)
    _write_varint(out, tables.type_count)
    out.extend(tables.type_records)
    _write_varint(out, tables.label_count)
    out.extend(tables.label_records)
    _write_varint(out, tables.co_count)
    out.extend(tables.co_records)
    _write_varint(out, tables.lt_count)
    out.extend(tables.lt_records)
    _write_varint(out, tables.name_count)
    out.extend(tables.name_records)
    out.extend(payload)
    out.extend(zlib.crc32(bytes(out)).to_bytes(4, "big"))
    return bytes(out)


# ---------------------------------------------------------------------------
# Deserialization
# ---------------------------------------------------------------------------


def _read_types(reader: _Reader) -> list[Type]:
    count = reader.varint()
    table: list[Type] = []

    def ref() -> Type:
        index = reader.varint()
        if index >= len(table):
            raise ImageError(f"forward type reference in image: {index}")
        return table[index]

    for _ in range(count):
        tag = reader.byte()
        if tag == _TY_DYN:
            ty = _memo_intern(("tydyn",), DynType, intern_type)
        elif tag == _TY_UNKNOWN:
            ty = _memo_intern(("tyunk",), UnknownType, intern_type)
        elif tag == _TY_BASE:
            name = reader.string()
            ty = _memo_intern(("tybase", name), lambda: BaseType(name), intern_type)
        elif tag == _TY_FUN:
            dom, cod = ref(), ref()
            ty = _memo_intern(
                ("tyfun", id(dom), id(cod)), lambda: FunType(dom, cod), intern_type
            )
        elif tag == _TY_PROD:
            left, right = ref(), ref()
            ty = _memo_intern(
                ("typrod", id(left), id(right)), lambda: ProdType(left, right), intern_type
            )
        else:
            raise ImageError(f"unknown type tag in image: {tag}")
        table.append(ty)
    return table


def _read_labels(reader: _Reader) -> list[Label]:
    count = reader.varint()
    table: list[Label] = []
    for _ in range(count):
        name = reader.string()
        positive = reader.byte()
        if positive not in (0, 1):
            raise ImageError(f"malformed label polarity in image: {positive}")
        table.append(Label(name, bool(positive)))
    return table


def _table_ref(reader: _Reader, table: list, what: str):
    index = reader.varint()
    if index >= len(table):
        raise ImageError(f"out-of-range {what} reference in image: {index}")
    return table[index]


#: Loader-side memo: identity key of a decoded node → its canonical form.
#: ``intern_space``/``intern_labeled`` hash a *fresh* node structurally
#: before finding (or creating) its canonical twin, which is O(subtree) per
#: node; decoded children are already canonical, so a key of child ``id``\ s
#: is exact and O(1).  Canonical nodes are immortal, so the ids — and this
#: memo — stay valid for the life of the process.  This is what makes a
#: warm compile-cache load cheap in a long-lived (serving or batch) process.
_DECODE_MEMO: dict[tuple, object] = {}


def _memo_intern(key: tuple, build, intern) -> object:
    node = _DECODE_MEMO.get(key)
    if node is None:
        node = intern(build())
        _DECODE_MEMO[key] = node
    return node


def _read_coercion_table(
    reader: _Reader, types: list[Type], labels: list[Label]
) -> list[SpaceCoercion]:
    """Decode the deduplicated coercion-node table (children precede parents)."""
    count = reader.varint()
    table: list[SpaceCoercion] = []
    for _ in range(count):
        tag = reader.byte()
        try:
            if tag == _CO_IDDYN:
                node = _memo_intern(("id?",), IdDyn, intern_space)
            elif tag == _CO_IDBASE:
                base = _table_ref(reader, types, "type")
                node = _memo_intern(("idb", id(base)), lambda: IdBase(base), intern_space)
            elif tag == _CO_PROJ:
                ground = _table_ref(reader, types, "type")
                lbl = _table_ref(reader, labels, "label")
                body = _table_ref(reader, table, "coercion")
                node = _memo_intern(
                    ("proj", id(ground), lbl, id(body)),
                    lambda: Projection(ground, lbl, body), intern_space,
                )
            elif tag == _CO_INJ:
                body = _table_ref(reader, table, "coercion")
                ground = _table_ref(reader, types, "type")
                node = _memo_intern(
                    ("inj", id(body), id(ground)),
                    lambda: Injection(body, ground), intern_space,
                )
            elif tag == _CO_FAIL:
                source_ground = _table_ref(reader, types, "type")
                lbl = _table_ref(reader, labels, "label")
                target_ground = _table_ref(reader, types, "type")
                source_ref = reader.signed()
                target_ref = reader.signed()
                source = types[source_ref] if source_ref >= 0 else None
                target = types[target_ref] if target_ref >= 0 else None
                node = _memo_intern(
                    ("fail", id(source_ground), lbl, id(target_ground),
                     id(source) if source is not None else None,
                     id(target) if target is not None else None),
                    lambda: FailS(source_ground, lbl, target_ground, source, target),
                    intern_space,
                )
            elif tag == _CO_FUN:
                dom = _table_ref(reader, table, "coercion")
                cod = _table_ref(reader, table, "coercion")
                node = _memo_intern(
                    ("fun", id(dom), id(cod)), lambda: FunCo(dom, cod), intern_space
                )
            elif tag == _CO_PROD:
                left = _table_ref(reader, table, "coercion")
                right = _table_ref(reader, table, "coercion")
                node = _memo_intern(
                    ("prodco", id(left), id(right)),
                    lambda: ProdCo(left, right), intern_space,
                )
            else:
                raise ImageError(f"unknown coercion tag in image: {tag}")
        except (TypeError, ValueError, IndexError, ReproError) as exc:
            if isinstance(exc, ImageError):
                raise
            raise ImageError(f"malformed coercion in image: {exc}") from exc
        table.append(node)
    return table


def _read_opt_label(reader: _Reader, labels: list[Label]) -> Label | None:
    index = reader.signed()
    if index < 0:
        return None
    if index >= len(labels):
        raise ImageError(f"out-of-range label reference in image: {index}")
    return labels[index]


def _read_labeled_table(
    reader: _Reader, types: list[Type], labels: list[Label]
) -> list[LabeledType]:
    """Decode the deduplicated labeled-type node table."""
    count = reader.varint()
    table: list[LabeledType] = []
    for _ in range(count):
        tag = reader.byte()
        try:
            if tag == _LT_DYN:
                node = _memo_intern(("ldyn",), LDyn, intern_labeled)
            elif tag == _LT_BASE:
                base = _table_ref(reader, types, "type")
                lbl = _read_opt_label(reader, labels)
                node = _memo_intern(
                    ("lbase", id(base), lbl), lambda: LBase(base, lbl), intern_labeled
                )
            elif tag == _LT_ARROW:
                dom = _table_ref(reader, table, "labeled type")
                cod = _table_ref(reader, table, "labeled type")
                lbl = _read_opt_label(reader, labels)
                node = _memo_intern(
                    ("larrow", id(dom), id(cod), lbl),
                    lambda: LArrow(dom, cod, lbl), intern_labeled,
                )
            elif tag == _LT_PROD:
                left = _table_ref(reader, table, "labeled type")
                right = _table_ref(reader, table, "labeled type")
                lbl = _read_opt_label(reader, labels)
                node = _memo_intern(
                    ("lprod", id(left), id(right), lbl),
                    lambda: LProd(left, right, lbl), intern_labeled,
                )
            elif tag == _LT_FAIL:
                fail_label = _table_ref(reader, labels, "label")
                ground = _table_ref(reader, types, "type")
                lbl = _read_opt_label(reader, labels)
                node = _memo_intern(
                    ("lfail", fail_label, id(ground), lbl),
                    lambda: LFail(fail_label, ground, lbl), intern_labeled,
                )
            else:
                raise ImageError(f"unknown labeled-type tag in image: {tag}")
        except (TypeError, ValueError, ReproError) as exc:
            if isinstance(exc, ImageError):
                raise
            raise ImageError(f"malformed labeled type in image: {exc}") from exc
        table.append(node)
    return table


def _read_const(reader: _Reader, types: list[Type]) -> object:
    tag = reader.byte()
    if tag == _CONST_MCONST:
        value_tag = reader.byte()
        if value_tag == _VAL_INT:
            value: object = _unzigzag(reader.varint())
        elif value_tag == _VAL_BOOL:
            raw = reader.byte()
            if raw not in (0, 1):
                raise ImageError(f"malformed boolean constant in image: {raw}")
            value = bool(raw)
        elif value_tag == _VAL_STR:
            value = reader.string()
        elif value_tag == _VAL_NONE:
            value = None
        else:
            raise ImageError(f"unknown constant-value tag in image: {value_tag}")
        return MConst(value, _table_ref(reader, types, "type"))
    if tag == _CONST_TYPE:
        return _table_ref(reader, types, "type")
    raise ImageError(f"unknown constant tag in image: {tag}")


def _read_names(reader: _Reader) -> list[str]:
    return [reader.string() for _ in range(reader.varint())]


def _read_code(reader: _Reader, pool: ConstantPool, names: list[str]) -> CodeObject:
    name = _table_ref(reader, names, "name")
    n_free = reader.varint()
    n_locals = reader.varint()
    flag = reader.byte()
    if flag == 1:
        param: str | None = _table_ref(reader, names, "name")
    elif flag == 0:
        param = None
    else:
        raise ImageError(f"malformed parameter flag in image: {flag}")
    local_names = tuple(_table_ref(reader, names, "name") for _ in range(reader.varint()))
    opt_level = reader.varint()
    instructions = reader.pairs(reader.varint())
    obj = CodeObject(name, instructions, pool, n_free, n_locals, param, local_names)
    obj.opt_level = opt_level
    if opt_level >= 2:
        # Re-allocate the per-site inline-cache cells exactly as the
        # optimizer does; the cells refill against re-interned mediators.
        obj.caches = [None] * len(instructions)
    return obj


def _read_rcode(reader: _Reader, pool: ConstantPool, obj: CodeObject) -> RCode:
    """Decode one register section; shape metadata comes from the stack
    code object it parallels (same name, frees, parameter, opt level)."""
    n_regs = reader.varint()
    const_regs = tuple(reader.varint() for _ in range(reader.varint()))
    for index in const_regs:
        if index >= len(pool.consts):
            raise ImageError(f"out-of-range pinned constant in image: {index}")
    words = array("I", (reader.varint() for _ in range(reader.varint())))
    try:
        return RCode(
            obj.name, words, pool, obj.n_free, n_regs, const_regs,
            obj.param, obj.local_names, obj.opt_level,
        )
    except (OverflowError, ValueError) as exc:
        raise ImageError(f"malformed register section in image: {exc}") from exc


def _validate_registers(robj: RCode) -> None:
    """Reject register streams that are mis-shaped or index outside their
    register file or pools (the register twin of :func:`_validate_image`)."""
    from .regalloc import R_OPCODE_NAMES, instruction_width

    pool = robj.pool
    words = robj.words
    n = len(words)
    n_regs = robj.n_regs
    kind_limits = {
        "c": len(pool.coercions),
        "p": len(pool.prims),
        "k": len(pool.consts),
        "L": len(pool.labels),
        "C": len(pool.codes),
        "t": n,
    }
    pc = 0
    while pc < n:
        op = words[pc]
        sig = R_SIGS.get(op)
        if sig is None:
            raise ImageError(f"unknown register opcode in image: {op}")
        if pc + instruction_width(op, words, pc) > n:
            raise ImageError(
                f"truncated register instruction in image: {R_OPCODE_NAMES[op]} at {pc}"
            )
        i = pc + 1
        for ch in sig:
            w = words[i]
            if ch == "d" or ch == "s":
                if w >= n_regs:
                    raise ImageError(
                        f"out-of-range register in image: {R_OPCODE_NAMES[op]} r{w}"
                    )
            elif ch == "n":
                for extra in words[i + 1 : i + 1 + w]:
                    if extra >= n_regs:
                        raise ImageError(
                            f"out-of-range register in image: "
                            f"{R_OPCODE_NAMES[op]} r{extra}"
                        )
                i += w
            else:
                if w >= kind_limits[ch]:
                    raise ImageError(
                        f"out-of-range operand in image: {R_OPCODE_NAMES[op]} {w}"
                    )
            i += 1
        pc = i


def deserialize_image(data: bytes, validate: bool = True) -> LoadedImage:
    """Decode ``.gradb`` bytes into a runnable program plus its provenance.

    Raises :class:`ImageError` on anything that is not a well-formed image
    of this library's format version and instruction set: wrong magic, a
    format-version mismatch, an opcode-set fingerprint mismatch, truncation,
    checksum failure, or malformed section contents.

    ``validate=False`` skips the operand bounds check
    (:func:`_validate_image`) — the defence against *crafted* images that
    checksum correctly but index outside their pools.  The compile cache
    uses it for entries it wrote itself (same trust domain as the code
    running; accidental corruption is still caught by the checksum); keep
    it on for images from anywhere else.
    """
    if len(data) < len(GRADB_MAGIC) + 1:
        raise ImageError("truncated image (shorter than the magic)")
    if data[: len(GRADB_MAGIC)] != GRADB_MAGIC:
        raise ImageError("not a .gradb image (bad magic)")

    reader = _Reader(data)
    reader.take(len(GRADB_MAGIC))
    version = reader.varint()
    if version != FORMAT_VERSION:
        raise ImageError(
            f"format version mismatch: image has v{version}, "
            f"this library reads v{FORMAT_VERSION}"
        )
    if len(data) < 4:
        raise ImageError("truncated image")
    stored_crc = int.from_bytes(data[-4:], "big")
    if zlib.crc32(data[:-4]) != stored_crc:
        raise ImageError("corrupt image (checksum mismatch)")

    fingerprint = reader.take(8)
    if fingerprint != opcode_fingerprint():
        raise ImageError(
            "opcode-set mismatch: the image was compiled against a different "
            "instruction set than this library executes"
        )

    mediator = reader.string()
    if mediator not in SEMANTICS_NAMES:
        raise ImageError(
            f"enforcement-semantics mismatch: image carries semantics id "
            f"{mediator!r}, this library reads {SEMANTICS_NAMES}"
        )
    ir = reader.string()
    if ir not in IMAGE_IRS:
        raise ImageError(f"unknown image IR: {ir!r}")
    if ir == "register":
        r_fingerprint = reader.take(8)
        if r_fingerprint != register_fingerprint():
            raise ImageError(
                "register-opcode-set mismatch: the image's register streams "
                "were packed against a different register instruction set "
                "than this library executes"
            )
    opt_level = reader.varint()
    source_hash = reader.string()
    static_ref = reader.signed()

    types = _read_types(reader)
    labels = _read_labels(reader)
    if static_ref >= len(types):
        raise ImageError(f"out-of-range static-type reference in image: {static_ref}")
    static_type = types[static_ref] if static_ref >= 0 else None
    coercion_nodes = _read_coercion_table(reader, types, labels)
    labeled_nodes = _read_labeled_table(reader, types, labels)
    names = _read_names(reader)

    # Rebuild the pool.  Constants are appended directly (the VM only ever
    # indexes them); mediators go through add_canonical_mediator so the
    # identity-keyed dedup index is populated exactly as at compile time.
    pool = ConstantPool(mediator=mediator)
    consts = pool.consts
    for _ in range(reader.varint()):
        consts.append(_read_const(reader, types))
    for index in range(reader.varint()):
        if mediator == "coercion":
            entry: object = _table_ref(reader, coercion_nodes, "coercion")
        elif mediator == "threesome":
            source = _table_ref(reader, types, "type")
            mid = _table_ref(reader, labeled_nodes, "labeled type")
            target = _table_ref(reader, types, "type")
            entry = _memo_intern(
                ("3some", id(source), id(mid), id(target)),
                lambda: Threesome(source, mid, target), intern_threesome,
            )
        elif mediator == "transient":
            checks = []
            for _ in range(reader.varint()):
                ground = _table_ref(reader, types, "type")
                label = _table_ref(reader, labels, "label")
                checks.append((ground, label))
            fail_ref = reader.signed()
            if fail_ref >= len(labels):
                raise ImageError(f"out-of-range label reference in image: {fail_ref}")
            fail = labels[fail_ref] if fail_ref >= 0 else None
            entry = intern_transient(TransientCheck(tuple(checks), fail))
        else:  # erasure: the entry is the no-op token, no payload bytes
            entry = ERASED
        if pool.add_canonical_mediator(entry) != index:
            raise ImageError("duplicate mediator-pool entry in image")
    for index in range(reader.varint()):
        if pool.add_label(_table_ref(reader, labels, "label")) != index:
            raise ImageError("duplicate label-pool entry in image")
    for index in range(reader.varint()):
        name = reader.string()
        try:
            prim_index = pool.add_prim(name)
        except ReproError as exc:
            raise ImageError(f"image references an unknown primitive: {name!r}") from exc
        if prim_index != index:
            raise ImageError("duplicate prim-pool entry in image")
    for _ in range(reader.varint()):
        pool.add_code(_read_code(reader, pool, names))
    entry_code = _read_code(reader, pool, names)
    entry_rcode = None
    if ir == "register":
        pool.rcodes = [_read_rcode(reader, pool, child) for child in pool.codes]
        entry_rcode = _read_rcode(reader, pool, entry_code)
    reader.take(4)  # the checksum, already verified
    if not reader.at_end():
        raise ImageError("trailing bytes after image payload")

    if validate:
        _validate_image(entry_code)
        if entry_rcode is not None:
            for robj in [*pool.rcodes, entry_rcode]:
                _validate_registers(robj)
    return LoadedImage(
        entry_code,
        ImageInfo(version, source_hash, opt_level, mediator, static_type, ir),
        entry_rcode,
    )


def _validate_image(code: CodeObject) -> None:
    """Reject instruction streams that index outside their pools.

    The VM dispatches on unchecked small integers, so a malformed (but
    checksum-valid) image must be caught here rather than as an ``IndexError``
    mid-run.  Operand interpretation follows the disassembler's decoding.
    """
    from .bytecode import (
        BLAME,
        COERCE,
        COMPOSE,
        JUMP,
        JUMP_IF_FALSE,
        LOAD,
        MAKE_CLOSURE,
        MAKE_FIX,
        OPCODE_NAMES,
        PRIM,
        PUSH_CONST,
        STORE,
        SUPERINSTRUCTIONS,
        all_code_objects,
        unpack_operands,
    )

    pool = code.pool
    limits = {
        PUSH_CONST: len(pool.consts),
        MAKE_FIX: len(pool.consts),
        COERCE: len(pool.coercions),
        COMPOSE: len(pool.coercions),
        BLAME: len(pool.labels),
        PRIM: len(pool.prims),
        MAKE_CLOSURE: len(pool.codes),
    }
    for obj in all_code_objects(code):
        n = len(obj.instructions)
        for opcode, operand in obj.instructions:
            if opcode not in OPCODE_NAMES:
                raise ImageError(f"unknown opcode in image: {opcode}")
            if opcode in SUPERINSTRUCTIONS:
                op1, op2 = SUPERINSTRUCTIONS[opcode]
                halves = zip((op1, op2), unpack_operands(opcode, operand))
            else:
                halves = ((opcode, operand),)
            for op, arg in halves:
                if op in (LOAD, STORE):
                    limit = obj.n_locals
                elif op in (JUMP, JUMP_IF_FALSE):
                    limit = n
                else:
                    limit = limits.get(op)
                if limit is not None and arg >= limit:
                    raise ImageError(
                        f"out-of-range operand in image: {OPCODE_NAMES[op]} {arg}"
                    )


# ---------------------------------------------------------------------------
# File I/O
# ---------------------------------------------------------------------------


def save_image(
    code: CodeObject,
    path: str | os.PathLike,
    source_hash: str = "",
    static_type: Type | None = None,
    ir: str = "stack",
) -> Path:
    """Serialize a compiled program to ``path``, atomically.

    The bytes are written to a temporary sibling and moved into place with
    :func:`os.replace`, so concurrent readers (and the compile cache, which
    is built on this function) never observe a half-written image.

    Fault hook ``torn_write`` (:mod:`repro.core.faults`): when it fires, the
    write is deliberately torn — a truncated prefix lands at ``path``
    *without* the atomic rename — simulating a crash mid-``os.replace`` on a
    filesystem that does not order the data and rename.  The cache's
    recovery path must treat the result as corrupt and recompile.
    """
    from ..core.faults import current_plan

    path = Path(path)
    data = serialize_image(code, source_hash=source_hash, static_type=static_type, ir=ir)
    path.parent.mkdir(parents=True, exist_ok=True)
    plan = current_plan()
    if plan is not None and plan.fires("torn_write"):
        # Half the image tears mid-payload; every length still fails the
        # trailing-CRC check (or the magic/header parse) on load.
        path.write_bytes(data[: len(data) // 2])
        return path
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with io.FileIO(fd, "wb") as tmp:
            tmp.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_image(path: str | os.PathLike, validate: bool = True) -> LoadedImage:
    """Read and decode a ``.gradb`` image from disk (see :func:`deserialize_image`)."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise ImageError(f"cannot read image {path}: {exc}") from exc
    return deserialize_image(data, validate=validate)
