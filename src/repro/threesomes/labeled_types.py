"""Labeled types — the threesome representation of Siek & Wadler (2010), §6.1.

A *threesome* ``⟨T ⇐P= S⟩`` factors a cast from ``S`` to ``T`` through a
mediating *labeled type* ``P``::

    p, q ::= l | ε                      (optional blame labels)
    P, Q ::= B^p | P →^p Q | P ×^p Q | ? | ⊥^{lGp}

The paper (Section 6.1) recalls that labeled types are in one-to-one
correspondence with coercions in canonical form, and that their composition
``Q ∘ P`` is the counterpart of λS's ``s # t`` — but that the labeled-type
notation is hard to decode ("Wadler ... required several hours to puzzle out
the meaning of his own notation").  This module implements the representation
and the correspondence, so the two composition algorithms can be compared
directly (see :mod:`repro.threesomes.compose` and the tests).

Correspondence used here (following the paper's own glossary):

* a projection prefix ``G?p ; …`` becomes a topmost optional label ``p``;
* an injection suffix ``… ; G!`` is *not* recorded (it is recovered from the
  threesome's target type);
* ``⊥GpH`` becomes ``⊥^{pG}``; ``G?q ; ⊥GpH`` becomes ``⊥^{pGq}`` — the
  failure's target ground ``H`` is likewise recovered from the target type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import CoercionTypeError
from ..core.labels import Label
from ..core.types import BaseType, Type, is_ground


class LabeledType:
    """Abstract base class of labeled types ``P, Q``."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - overridden
        return labeled_to_str(self)

    def __repr__(self) -> str:
        return labeled_to_str(self)


@dataclass(frozen=True, repr=False)
class LDyn(LabeledType):
    """The labeled type ``?``."""


@dataclass(frozen=True, repr=False)
class LBase(LabeledType):
    """A base type with an optional topmost label, ``B^p``."""

    base: BaseType
    label: Optional[Label] = None


@dataclass(frozen=True, repr=False)
class LArrow(LabeledType):
    """A function labeled type ``P →^p Q``."""

    dom: LabeledType
    cod: LabeledType
    label: Optional[Label] = None


@dataclass(frozen=True, repr=False)
class LProd(LabeledType):
    """A product labeled type ``P ×^p Q`` (extension, parallel to λS products)."""

    left: LabeledType
    right: LabeledType
    label: Optional[Label] = None


@dataclass(frozen=True, repr=False)
class LFail(LabeledType):
    """The failure labeled type ``⊥^{lGp}``.

    ``fail_label`` is the label blamed when the failure fires (their ``l``),
    ``ground`` the source ground type ``G``, and ``label`` the optional
    topmost (projection) label ``p``.
    """

    fail_label: Label
    ground: Type
    label: Optional[Label] = None

    def __post_init__(self) -> None:
        if not is_ground(self.ground):
            raise CoercionTypeError(f"⊥ requires a ground type, got {self.ground}")


DYN_LABELED = LDyn()


def top_label(p: LabeledType) -> Optional[Label]:
    """The topmost optional label of a labeled type (``None`` for ``?``)."""
    if isinstance(p, (LBase, LArrow, LProd, LFail)):
        return p.label
    return None


def with_top_label(p: LabeledType, label: Optional[Label]) -> LabeledType:
    """Replace the topmost optional label of a labeled type."""
    if isinstance(p, LBase):
        return LBase(p.base, label)
    if isinstance(p, LArrow):
        return LArrow(p.dom, p.cod, label)
    if isinstance(p, LProd):
        return LProd(p.left, p.right, label)
    if isinstance(p, LFail):
        return LFail(p.fail_label, p.ground, label)
    raise CoercionTypeError(f"the labeled type {p} has no label position")


def ground_of_labeled(p: LabeledType) -> Type:
    """The ground type a (non-dynamic, non-failure) labeled type is compatible with."""
    from ..core.types import GROUND_FUN, GROUND_PROD

    if isinstance(p, LBase):
        return p.base
    if isinstance(p, LArrow):
        return GROUND_FUN
    if isinstance(p, LProd):
        return GROUND_PROD
    if isinstance(p, LFail):
        return p.ground
    raise CoercionTypeError("the dynamic labeled type has no ground type")


def labeled_to_str(p: LabeledType) -> str:
    def opt(label: Optional[Label]) -> str:
        return f"^{label}" if label is not None else ""

    if isinstance(p, LDyn):
        return "?"
    if isinstance(p, LBase):
        return f"{p.base}{opt(p.label)}"
    if isinstance(p, LArrow):
        return f"({labeled_to_str(p.dom)} ->{opt(p.label)} {labeled_to_str(p.cod)})"
    if isinstance(p, LProd):
        return f"({labeled_to_str(p.left)} x{opt(p.label)} {labeled_to_str(p.right)})"
    if isinstance(p, LFail):
        return f"Bot[{p.fail_label},{p.ground}{opt(p.label)}]"
    raise CoercionTypeError(f"unknown labeled type {p!r}")
