"""Threesomes as a first-class *runtime* mediator representation.

The paper's §6.1 argues that threesomes (Siek & Wadler 2010) and λS's
space-efficient coercions are two presentations of the same thing.  The rest
of :mod:`repro.threesomes` states the correspondence; this module makes it
*executable*: a :class:`Threesome` ``⟨T ⇐P= S⟩`` — a source type, a mediating
labeled type, and a target type — can stand wherever the machine or the VM
holds a pending canonical coercion, with ``Q ∘ P`` (:func:`compose_labeled`)
doing the job of ``#``.

The representation gets exactly the performance treatment λS coercions got in
:mod:`repro.core.intern` and :func:`repro.lambda_s.coercions.compose_memo`:

* labeled types and threesomes are hash-consed (:func:`intern_labeled`,
  :func:`intern_threesome`) so structural equality on canonical nodes is
  pointer equality;
* composition is memoised on the identity of the interned argument pair
  (:func:`compose_labeled_memo`, :func:`compose_threesome`), so a
  boundary-crossing loop merging the same pending pair every iteration pays
  one dictionary hit per merge.

The mediation semantics itself lives in
:class:`repro.machine.policy.ThreesomePolicy`; the equivalence with the
coercion backend is enforced end to end by
:func:`repro.properties.bisimulation.check_mediator_oracle`.
"""

from __future__ import annotations

from ..core.errors import CoercionTypeError
from ..core.intern import Interner, intern_type
from ..core.types import DYN, DynType, FunType, ProdType, Type
from ..lambda_s.coercions import (
    FailS,
    FunCo,
    IdBase,
    IdDyn,
    Injection,
    ProdCo,
    Projection,
    SpaceCoercion,
    intern_space,
)
from .compose import compose_labeled
from .labeled_types import (
    DYN_LABELED,
    LArrow,
    LBase,
    LDyn,
    LFail,
    LProd,
    LabeledType,
)
from .translate import coercion_of_labeled, labeled_of_coercion


class Threesome:
    """A threesome ``⟨target ⇐mid= source⟩`` used as a runtime mediator.

    The labeled type alone does not determine a coercion — the injection
    suffix and a failure's target ground are recovered from the threesome's
    source and target types — so the runtime representation carries all
    three.  Threesomes are interned: build them through
    :func:`intern_threesome` (or :func:`threesome_of_coercion`) and identity
    doubles as structural equality.
    """

    __slots__ = ("source", "mid", "target")

    def __init__(self, source: Type, mid: LabeledType, target: Type):
        self.source = source
        self.mid = mid
        self.target = target

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Threesome):
            return NotImplemented
        return (
            self.source == other.source
            and self.mid == other.mid
            and self.target == other.target
        )

    def __hash__(self) -> int:
        return hash((Threesome, self.source, self.mid, self.target))

    def __repr__(self) -> str:
        return f"<{self.target} <={self.mid}= {self.source}>"


# ---------------------------------------------------------------------------
# Interning — the labeled-type counterpart of intern_space
# ---------------------------------------------------------------------------

_labeled = Interner("labeled_types")
_labeled.seed(("dyn",), DYN_LABELED)

_threesomes = Interner("threesomes")


def intern_labeled(p: LabeledType) -> LabeledType:
    """The canonical representative of a labeled type; idempotent, O(1) when canonical."""
    if _labeled.is_canonical(p):
        return p
    aliased = _labeled.alias_of(p)
    if aliased is not None:
        return aliased
    canon = _intern_labeled_node(p)
    _labeled.remember_alias(p, canon)
    return canon


def _intern_labeled_node(p: LabeledType) -> LabeledType:
    if isinstance(p, LDyn):
        return DYN_LABELED
    if isinstance(p, LBase):
        base = intern_type(p.base)
        return _labeled.canonical(
            ("base", id(base), p.label),
            lambda: p if p.base is base else LBase(base, p.label),
        )
    if isinstance(p, LArrow):
        dom = intern_labeled(p.dom)
        cod = intern_labeled(p.cod)
        return _labeled.canonical(
            ("arrow", id(dom), id(cod), p.label),
            lambda: p if (p.dom is dom and p.cod is cod) else LArrow(dom, cod, p.label),
        )
    if isinstance(p, LProd):
        left = intern_labeled(p.left)
        right = intern_labeled(p.right)
        return _labeled.canonical(
            ("prod", id(left), id(right), p.label),
            lambda: p if (p.left is left and p.right is right) else LProd(left, right, p.label),
        )
    if isinstance(p, LFail):
        ground = intern_type(p.ground)
        return _labeled.canonical(
            ("fail", p.fail_label, id(ground), p.label),
            lambda: p if p.ground is ground else LFail(p.fail_label, ground, p.label),
        )
    raise CoercionTypeError(f"cannot intern unknown labeled type: {p!r}")


def is_interned_labeled(p: LabeledType) -> bool:
    return _labeled.is_canonical(p)


def intern_threesome(t: Threesome) -> Threesome:
    """The canonical representative of a threesome; idempotent."""
    if _threesomes.is_canonical(t):
        return t
    aliased = _threesomes.alias_of(t)
    if aliased is not None:
        return aliased
    source = intern_type(t.source)
    mid = intern_labeled(t.mid)
    target = intern_type(t.target)
    canon = _threesomes.canonical(
        (id(source), id(mid), id(target)),
        lambda: t
        if (t.source is source and t.mid is mid and t.target is target)
        else Threesome(source, mid, target),
    )
    _threesomes.remember_alias(t, canon)
    return canon


def is_interned_threesome(t: Threesome) -> bool:
    return _threesomes.is_canonical(t)


# ---------------------------------------------------------------------------
# Memoised composition — the labeled-type counterpart of compose_memo
# ---------------------------------------------------------------------------

#: Memo tables keyed by the identity of the interned argument pair; canonical
#: nodes live forever, so the ids are stable (exactly like ``_COMPOSE_CACHE``
#: in :mod:`repro.lambda_s.coercions`).
_COMPOSE_LABELED_CACHE: dict[tuple[int, int], LabeledType] = {}
_COMPOSE_THREESOME_CACHE: dict[tuple[int, int], Threesome] = {}
_labeled_hits = 0
_labeled_misses = 0


def compose_labeled_memo(first: LabeledType, second: LabeledType) -> LabeledType:
    """Memoised ``second ∘ first`` on interned labeled types.

    Agrees with :func:`repro.threesomes.compose.compose_labeled` on all
    inputs (property-tested) and always returns an interned result.
    """
    global _labeled_hits, _labeled_misses
    first = intern_labeled(first)
    second = intern_labeled(second)
    key = (id(first), id(second))
    cached = _COMPOSE_LABELED_CACHE.get(key)
    if cached is not None:
        _labeled_hits += 1
        return cached
    result = intern_labeled(compose_labeled(first, second))
    _COMPOSE_LABELED_CACHE[key] = result
    _labeled_misses += 1
    return result


def compose_threesome(first: Threesome, second: Threesome) -> Threesome:
    """Threesome composition ``⟨T ⇐Q= S'⟩ ∘ ⟨S' ⇐P= S⟩ = ⟨T ⇐Q∘P= S⟩``.

    Takes its arguments in temporal order (``first`` applies first), matching
    λS's ``first # second``; memoised on the interned pair's identity — this
    is the threesome backend's hot path, the counterpart of ``compose_memo``.
    """
    first = intern_threesome(first)
    second = intern_threesome(second)
    key = (id(first), id(second))
    cached = _COMPOSE_THREESOME_CACHE.get(key)
    if cached is not None:
        return cached
    mid = compose_labeled_memo(first.mid, second.mid)
    result = intern_threesome(Threesome(first.source, mid, second.target))
    _COMPOSE_THREESOME_CACHE[key] = result
    return result


def compose_labeled_memo_stats() -> dict[str, int]:
    return {
        "entries": len(_COMPOSE_LABELED_CACHE),
        "hits": _labeled_hits,
        "misses": _labeled_misses,
    }


# ---------------------------------------------------------------------------
# The representation maps, lifted to runtime threesomes
# ---------------------------------------------------------------------------


def source_type_of(s: SpaceCoercion) -> Type:
    """A total source type for a canonical coercion.

    Agrees with :func:`repro.lambda_s.coercions.space_source` whenever that
    is determined; where the coercion under-determines its source (an
    unannotated ``⊥GpH``), the source ground ``G`` stands in — it has the
    right dynamicness and the right ground, which is all a threesome's
    mediation semantics consults.
    """
    if isinstance(s, (IdDyn, Projection)):
        return DYN
    if isinstance(s, Injection):
        return source_type_of(s.body)
    if isinstance(s, FailS):
        return s.source if s.source is not None else s.source_ground
    if isinstance(s, IdBase):
        return s.base
    if isinstance(s, FunCo):
        return FunType(target_type_of(s.dom), source_type_of(s.cod))
    if isinstance(s, ProdCo):
        return ProdType(source_type_of(s.left), source_type_of(s.right))
    raise CoercionTypeError(f"unknown canonical coercion: {s!r}")


def target_type_of(s: SpaceCoercion) -> Type:
    """A total target type for a canonical coercion (see :func:`source_type_of`)."""
    if isinstance(s, (IdDyn, Injection)):
        return DYN
    if isinstance(s, Projection):
        return target_type_of(s.body)
    if isinstance(s, FailS):
        return s.target if s.target is not None else s.target_ground
    if isinstance(s, IdBase):
        return s.base
    if isinstance(s, FunCo):
        return FunType(source_type_of(s.dom), target_type_of(s.cod))
    if isinstance(s, ProdCo):
        return ProdType(target_type_of(s.left), target_type_of(s.right))
    raise CoercionTypeError(f"unknown canonical coercion: {s!r}")


#: Memo for :func:`threesome_of_coercion`, keyed by the interned coercion's id.
_OF_COERCION_CACHE: dict[int, Threesome] = {}


def threesome_of_coercion(s: SpaceCoercion) -> Threesome:
    """The runtime threesome of a canonical coercion (memoised, interned)."""
    s = intern_space(s)
    cached = _OF_COERCION_CACHE.get(id(s))
    if cached is not None:
        return cached
    result = intern_threesome(
        Threesome(source_type_of(s), labeled_of_coercion(s), target_type_of(s))
    )
    _OF_COERCION_CACHE[id(s)] = result
    return result


def coercion_of_threesome(t: Threesome) -> SpaceCoercion:
    """Read a runtime threesome back as a canonical coercion (interned).

    Inverse of :func:`threesome_of_coercion` up to interning and the labels
    the representation forgets (a threesome's injection half never blames).
    """
    return intern_space(coercion_of_labeled(t.mid, t.source, t.target))


# ---------------------------------------------------------------------------
# Sizes (for the machines' space accounting)
# ---------------------------------------------------------------------------


def labeled_size(p: LabeledType) -> int:
    """Number of constructors in a labeled type (counterpart of coercion size)."""
    if isinstance(p, (LDyn, LBase, LFail)):
        return 1
    if isinstance(p, LArrow):
        return 1 + labeled_size(p.dom) + labeled_size(p.cod)
    if isinstance(p, LProd):
        return 1 + labeled_size(p.left) + labeled_size(p.right)
    raise CoercionTypeError(f"unknown labeled type: {p!r}")


def threesome_size(t: Threesome) -> int:
    """The size of a threesome mediator: the size of its mediating labeled type."""
    return labeled_size(t.mid)


def is_identity_threesome(t: Threesome) -> bool:
    """Does this threesome mediate nothing (``?`` middle, or ``ι ⇐ι= ι``)?"""
    if isinstance(t.mid, LDyn):
        return True
    return (
        isinstance(t.mid, LBase)
        and t.mid.label is None
        and not isinstance(t.source, DynType)
        and not isinstance(t.target, DynType)
    )
