"""Threesomes (labeled types) of Siek & Wadler (2010) — the §6.1 baseline."""

from .compose import compose_labeled
from .labeled_types import (
    DYN_LABELED,
    LArrow,
    LBase,
    LDyn,
    LFail,
    LProd,
    LabeledType,
    ground_of_labeled,
    top_label,
    with_top_label,
)
from .translate import coercion_of_labeled, labeled_of_cast, labeled_of_coercion

__all__ = [
    "compose_labeled",
    "DYN_LABELED",
    "LArrow",
    "LBase",
    "LDyn",
    "LFail",
    "LProd",
    "LabeledType",
    "ground_of_labeled",
    "top_label",
    "with_top_label",
    "coercion_of_labeled",
    "labeled_of_cast",
    "labeled_of_coercion",
]
