"""Threesomes (labeled types) of Siek & Wadler (2010).

Originally the §6.1 baseline (representation + composition, validated against
λS's ``#``); :mod:`repro.threesomes.runtime` additionally makes threesomes a
first-class *runtime* mediator backend for the CEK machine and the bytecode
VM (``mediator="threesome"``), interned and memoised exactly like canonical
coercions.
"""

from .compose import compose_labeled
from .labeled_types import (
    DYN_LABELED,
    LArrow,
    LBase,
    LDyn,
    LFail,
    LProd,
    LabeledType,
    ground_of_labeled,
    top_label,
    with_top_label,
)
from .runtime import (
    Threesome,
    coercion_of_threesome,
    compose_labeled_memo,
    compose_labeled_memo_stats,
    compose_threesome,
    intern_labeled,
    intern_threesome,
    is_identity_threesome,
    is_interned_labeled,
    is_interned_threesome,
    labeled_size,
    source_type_of,
    target_type_of,
    threesome_of_coercion,
    threesome_size,
)
from .translate import coercion_of_labeled, labeled_of_cast, labeled_of_coercion

__all__ = [
    "compose_labeled",
    "DYN_LABELED",
    "LArrow",
    "LBase",
    "LDyn",
    "LFail",
    "LProd",
    "LabeledType",
    "ground_of_labeled",
    "top_label",
    "with_top_label",
    "coercion_of_labeled",
    "labeled_of_cast",
    "labeled_of_coercion",
    "Threesome",
    "coercion_of_threesome",
    "compose_labeled_memo",
    "compose_labeled_memo_stats",
    "compose_threesome",
    "intern_labeled",
    "intern_threesome",
    "is_identity_threesome",
    "is_interned_labeled",
    "is_interned_threesome",
    "labeled_size",
    "source_type_of",
    "target_type_of",
    "threesome_of_coercion",
    "threesome_size",
]
