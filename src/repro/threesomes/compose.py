"""Threesome composition ``Q ∘ P`` (Siek & Wadler 2010, as recalled in §6.1).

The paper reproduces the defining equations and remarks that "the correctness
of these equations is not immediate ... perhaps the easiest way to validate
the equations is to translate to coercions".  That is exactly what the test
suite does: :func:`compose_labeled` below is checked against λS's ``#``
through the representation maps of :mod:`repro.threesomes.translate`.

Note on orientation: the paper writes ``Q ∘ P`` for "first ``P``, then ``Q``"
(function-composition order).  :func:`compose_labeled` takes its arguments in
*temporal* order — ``compose_labeled(P, Q)`` applies ``P`` first — so it
corresponds to ``Q ∘ P`` and to λS's ``P # Q``.
"""

from __future__ import annotations

from ..core.errors import CoercionTypeError
from .labeled_types import (
    LArrow,
    LBase,
    LDyn,
    LFail,
    LProd,
    LabeledType,
    ground_of_labeled,
    top_label,
)


def compose_labeled(first: LabeledType, second: LabeledType) -> LabeledType:
    """The composition of two mediating labeled types (their ``second ∘ first``)."""
    # ? is a unit on either side.
    if isinstance(first, LDyn):
        return second
    if isinstance(second, LDyn):
        return first

    # A failure that has already happened absorbs whatever follows.
    if isinstance(first, LFail):
        return first

    first_ground = ground_of_labeled(first)
    first_label = top_label(first)

    if isinstance(second, LFail):
        if second.label is not None and first_ground != second.ground:
            # The failure's own projection prefix fails first:  ⊥^{mHl} ∘ P^{Gp} = ⊥^{lGp}.
            return LFail(second.label, first_ground, first_label)
        # Grounds agree (or the failure needs no projection):  ⊥^{mGq} ∘ P^{Gp} = ⊥^{mGp}.
        return LFail(second.fail_label, second.ground, first_label)

    second_ground = ground_of_labeled(second)
    second_label = top_label(second)

    if first_ground != second_ground:
        # The projection at the start of ``second`` fails:  Q^{Hm} ∘ P^{Gp} = ⊥^{mGp}.
        if second_label is None:
            raise CoercionTypeError(
                f"ill-typed threesome composition: {first} then {second}"
            )
        return LFail(second_label, first_ground, first_label)

    if isinstance(first, LBase) and isinstance(second, LBase):
        # B^q ∘ B^p = B^p — the earlier projection is the one that can blame.
        return LBase(first.base, first_label)

    if isinstance(first, LArrow) and isinstance(second, LArrow):
        # (P′ →^q Q′) ∘ (P →^p Q) = (P ∘ P′) →^p (Q′ ∘ Q)   (contravariant domain).
        return LArrow(
            compose_labeled(second.dom, first.dom),
            compose_labeled(first.cod, second.cod),
            first_label,
        )

    if isinstance(first, LProd) and isinstance(second, LProd):
        return LProd(
            compose_labeled(first.left, second.left),
            compose_labeled(first.right, second.right),
            first_label,
        )

    raise CoercionTypeError(f"ill-typed threesome composition: {first} then {second}")
