"""Conversions between canonical (λS) coercions and labeled types (threesomes).

``labeled_of_coercion`` is the representation map the paper's §6.1 alludes to:
every canonical coercion determines a labeled type (the threesome's mediating
type); the injection suffix and the failure's target ground are *not*
recorded because a threesome recovers them from its source and target types.
``coercion_of_labeled`` goes back, given those types.
"""

from __future__ import annotations

from ..core.errors import CoercionTypeError
from ..core.labels import BULLET, Label
from ..core.types import BaseType, DynType, FunType, ProdType, Type, ground_of, is_ground
from ..lambda_s.coercions import (
    FailS,
    FunCo,
    GroundCoercion,
    IdBase,
    IdDyn,
    Injection,
    ProdCo,
    Projection,
    SpaceCoercion,
    compose,
)
from ..translate.b_to_s import cast_to_space
from .labeled_types import (
    DYN_LABELED,
    LArrow,
    LBase,
    LDyn,
    LFail,
    LProd,
    LabeledType,
    with_top_label,
)


def labeled_of_coercion(s: SpaceCoercion) -> LabeledType:
    """The labeled type (threesome middle) corresponding to a canonical coercion."""
    if isinstance(s, IdDyn):
        return DYN_LABELED
    if isinstance(s, Projection):
        return with_top_label(labeled_of_coercion(s.body), s.label)
    if isinstance(s, Injection):
        return labeled_of_coercion(s.body)
    if isinstance(s, FailS):
        return LFail(s.label, s.source_ground, None)
    if isinstance(s, IdBase):
        return LBase(s.base, None)
    if isinstance(s, FunCo):
        return LArrow(labeled_of_coercion(s.dom), labeled_of_coercion(s.cod), None)
    if isinstance(s, ProdCo):
        return LProd(labeled_of_coercion(s.left), labeled_of_coercion(s.right), None)
    raise CoercionTypeError(f"unknown canonical coercion {s!r}")


def labeled_of_cast(source: Type, label: Label, target: Type) -> LabeledType:
    """The threesome of a single cast ``⟨B ⇐p A⟩`` (via its canonical coercion)."""
    return labeled_of_coercion(cast_to_space(source, label, target))


def coercion_of_labeled(p: LabeledType, source: Type, target: Type) -> SpaceCoercion:
    """Interpret a threesome ``⟨target ⇐P= source⟩`` as a canonical coercion.

    The labeled type supplies the labels of the projection half; the injection
    half (toward ``target``) never blames, so it uses the ``•`` label.
    """
    if isinstance(p, LDyn):
        if not isinstance(source, DynType) or not isinstance(target, DynType):
            raise CoercionTypeError("the ? labeled type mediates only between ? and ?")
        from ..lambda_s.coercions import ID_DYN

        return ID_DYN

    if isinstance(p, LFail):
        # Fail as soon as the (possible) projection out of the source succeeds.
        target_ground = _other_ground(p.ground) if isinstance(target, DynType) else ground_of(target)
        if target_ground == p.ground:
            target_ground = _other_ground(p.ground)
        body: SpaceCoercion = FailS(p.ground, p.fail_label, target_ground, target=target)
        if isinstance(source, DynType):
            return Projection(p.ground, p.label if p.label is not None else BULLET, body)
        return body

    # Structural labeled types: build mid-type coercion, then add the
    # projection (from a dynamic source) and injection (into a dynamic target).
    if isinstance(p, LBase):
        middle: GroundCoercion = IdBase(p.base)
        mid_type: Type = p.base
    elif isinstance(p, LArrow):
        source_fun = source if isinstance(source, FunType) else FunType(_dyn(), _dyn())
        target_fun = target if isinstance(target, FunType) else FunType(_dyn(), _dyn())
        dom = coercion_of_labeled(p.dom, target_fun.dom, source_fun.dom)
        cod = coercion_of_labeled(p.cod, source_fun.cod, target_fun.cod)
        middle = FunCo(dom, cod)
        mid_type = FunType(_dyn(), _dyn())
    elif isinstance(p, LProd):
        source_prod = source if isinstance(source, ProdType) else ProdType(_dyn(), _dyn())
        target_prod = target if isinstance(target, ProdType) else ProdType(_dyn(), _dyn())
        left = coercion_of_labeled(p.left, source_prod.left, target_prod.left)
        right = coercion_of_labeled(p.right, source_prod.right, target_prod.right)
        middle = ProdCo(left, right)
        mid_type = ProdType(_dyn(), _dyn())
    else:
        raise CoercionTypeError(f"unknown labeled type {p!r}")

    result: SpaceCoercion = middle
    if isinstance(target, DynType):
        ground = ground_of(mid_type) if not isinstance(mid_type, BaseType) else mid_type
        result = Injection(middle, ground)
    if isinstance(source, DynType):
        from ..lambda_s.coercions import Intermediate

        ground = ground_of(mid_type) if not isinstance(mid_type, BaseType) else mid_type
        label = p.label if p.label is not None else BULLET
        if not isinstance(result, Intermediate):
            raise CoercionTypeError("projection body must be an intermediate coercion")
        result = Projection(ground, label, result)
    return result


def _dyn() -> Type:
    from ..core.types import DYN

    return DYN


def _other_ground(ground: Type) -> Type:
    from ..core.types import BOOL, INT

    return BOOL if ground != BOOL else INT
