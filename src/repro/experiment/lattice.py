"""Migration lattices: typed↔untyped splits of a program's bindings.

A *configuration* of a multi-binding ``.grad`` program chooses, for every
top-level definition, whether it keeps its type annotations or drops them to
``?`` — the migration lattice of Takikawa et al., with the fully-untyped
program at the bottom and the fully-typed one at the top.  This module:

* parses a program into its :class:`Binding` structure (annotation, arity,
  which sibling bindings it references);
* renders any configuration back to concrete syntax with **one definition
  per line**, so a blame label ``role@line:col`` maps straight back to the
  binding that owns the line (the ``line_owner`` table) — the key the
  blame-following driver navigates by;
* enumerates the full lattice when it is small and falls back to seeded
  stratified sampling (uniform over lattice *levels*, then uniform within a
  level) when ``2^n`` exceeds the cutoff.

Untyping a binding is *interface* untyping: parameter and return/value
annotations become ``?``; ascriptions inside the body are part of the code
and survive (the fault injector relies on that).  An untyped function keeps
a ``? → … → ?`` function-type annotation of its arity rather than a bare
``?`` so recursive definitions still elaborate through the letrec path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from itertools import combinations
from math import comb

from ..core.types import DYN, BaseType, DynType, FunType, ProdType, Type
from ..surface.ast import (
    Definition,
    Program,
    SApp,
    SAscribe,
    SConst,
    SFst,
    SIf,
    SLam,
    SLet,
    SLetRec,
    SOp,
    SPair,
    SSnd,
    SurfaceExpr,
    SVar,
)
from ..surface.parser import parse_program

#: The line-owner name for the program's main expression.
MAIN_OWNER = "<main>"


# ---------------------------------------------------------------------------
# Rendering surface syntax back to source
# ---------------------------------------------------------------------------


def render_type(ty: Type) -> str:
    """Concrete syntax for a type (re-parseable by :func:`parse_type`)."""
    if isinstance(ty, DynType):
        return "?"
    if isinstance(ty, BaseType):
        return ty.name
    if isinstance(ty, FunType):
        parts = []
        current: Type = ty
        while isinstance(current, FunType):
            parts.append(render_type(current.dom))
            current = current.cod
        parts.append(render_type(current))
        return f"(-> {' '.join(parts)})"
    if isinstance(ty, ProdType):
        return f"(* {render_type(ty.left)} {render_type(ty.right)})"
    raise TypeError(f"unrenderable type: {ty!r}")


def _render_const(value: object) -> str:
    if value is None:
        return "unit"
    if value is True:
        return "#t"
    if value is False:
        return "#f"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise TypeError(f"unrenderable constant: {value!r}")


def _render_param(name: str, ty: Type) -> str:
    if isinstance(ty, DynType):
        return name
    return f"[{name} : {render_type(ty)}]"


def render_expr(expr: SurfaceExpr) -> str:
    """Concrete syntax for a surface expression, on one line."""
    if isinstance(expr, SConst):
        return _render_const(expr.value)
    if isinstance(expr, SVar):
        return expr.name
    if isinstance(expr, SLam):
        params = " ".join(_render_param(n, t) for n, t in expr.params)
        return f"(lambda ({params}) {render_expr(expr.body)})"
    if isinstance(expr, SApp):
        parts = [render_expr(expr.fun)] + [render_expr(a) for a in expr.args]
        return f"({' '.join(parts)})"
    if isinstance(expr, SOp):
        parts = [expr.op] + [render_expr(a) for a in expr.args]
        return f"({' '.join(parts)})"
    if isinstance(expr, SIf):
        return (f"(if {render_expr(expr.cond)} {render_expr(expr.then_branch)} "
                f"{render_expr(expr.else_branch)})")
    if isinstance(expr, SLet):
        bindings = " ".join(f"[{n} {render_expr(e)}]" for n, e in expr.bindings)
        return f"(let ({bindings}) {render_expr(expr.body)})"
    if isinstance(expr, SLetRec):
        binding = (f"[{expr.name} : {render_type(expr.annotation)} "
                   f"{render_expr(expr.bound)}]")
        return f"(letrec ({binding}) {render_expr(expr.body)})"
    if isinstance(expr, SPair):
        return f"(pair {render_expr(expr.left)} {render_expr(expr.right)})"
    if isinstance(expr, SFst):
        return f"(fst {render_expr(expr.arg)})"
    if isinstance(expr, SSnd):
        return f"(snd {render_expr(expr.arg)})"
    if isinstance(expr, SAscribe):
        return f"(: {render_expr(expr.expr)} {render_type(expr.annotation)})"
    raise TypeError(f"unrenderable expression: {expr!r}")


# ---------------------------------------------------------------------------
# The lattice structure
# ---------------------------------------------------------------------------


def _strip_lambda(expr: SurfaceExpr) -> SurfaceExpr:
    """The lambda with every parameter annotation dropped to ``?``."""
    assert isinstance(expr, SLam)
    params = tuple((name, DYN) for name, _ in expr.params)
    return SLam(params, expr.body, expr.location)


def _dyn_fun_type(arity: int) -> Type:
    ty: Type = DYN
    for _ in range(arity):
        ty = FunType(DYN, ty)
    return ty


def _has_annotations(definition: Definition) -> bool:
    """Does the binding carry any interface annotation an untyping removes?"""
    annotation = definition.annotation
    if annotation is not None and not isinstance(annotation, DynType):
        if isinstance(definition.body, SLam):
            # A ?→…→? annotation of matching arity carries no information.
            if annotation != _dyn_fun_type(len(definition.body.params)):
                return True
        else:
            return True
    if isinstance(definition.body, SLam):
        return any(not isinstance(t, DynType) for _, t in definition.body.params)
    return False


def _references(expr: SurfaceExpr, names: frozenset[str]) -> set[str]:
    """Free occurrences of sibling binding names in ``expr`` (shadowing by
    local binders is ignored — an over-approximation is fine for the
    navigation graph)."""
    found: set[str] = set()

    def walk(node: SurfaceExpr) -> None:
        if isinstance(node, SVar):
            if node.name in names:
                found.add(node.name)
        elif isinstance(node, SLam):
            walk(node.body)
        elif isinstance(node, SApp):
            walk(node.fun)
            for arg in node.args:
                walk(arg)
        elif isinstance(node, SOp):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, SIf):
            walk(node.cond)
            walk(node.then_branch)
            walk(node.else_branch)
        elif isinstance(node, SLet):
            for _, bound in node.bindings:
                walk(bound)
            walk(node.body)
        elif isinstance(node, SLetRec):
            walk(node.bound)
            walk(node.body)
        elif isinstance(node, SPair):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (SFst, SSnd)):
            walk(node.arg)
        elif isinstance(node, SAscribe):
            walk(node.expr)

    walk(expr)
    return found


@dataclass(frozen=True)
class Binding:
    """One top-level definition as the lattice sees it."""

    name: str
    annotation: Type | None
    body: SurfaceExpr
    typeable: bool            # does untyping it change anything?
    references: tuple[str, ...]  # sibling bindings its body mentions

    @property
    def arity(self) -> int:
        return len(self.body.params) if isinstance(self.body, SLam) else 0


@dataclass(frozen=True)
class ProgramLattice:
    """A program decomposed into bindings plus its main expression."""

    name: str
    bindings: tuple[Binding, ...]
    main: SurfaceExpr

    @classmethod
    def from_program(cls, program: Program, name: str = "<program>") -> "ProgramLattice":
        if program.main is None:
            raise ValueError(f"{name}: a lattice needs a main expression")
        names = frozenset(d.name for d in program.definitions)
        bindings = tuple(
            Binding(
                name=d.name,
                annotation=d.annotation,
                body=d.body,
                typeable=_has_annotations(d),
                references=tuple(sorted(_references(d.body, names) - {d.name})),
            )
            for d in program.definitions
        )
        return cls(name=name, bindings=bindings, main=program.main)

    @classmethod
    def from_source(cls, source: str, name: str = "<program>") -> "ProgramLattice":
        return cls.from_program(parse_program(source), name)

    @property
    def typeable_names(self) -> tuple[str, ...]:
        """The bindings the lattice toggles, in definition order."""
        return tuple(b.name for b in self.bindings if b.typeable)

    def binding(self, name: str) -> Binding:
        for b in self.bindings:
            if b.name == name:
                return b
        raise KeyError(name)

    def with_binding(self, binding: Binding) -> "ProgramLattice":
        """A lattice with one binding replaced (the fault injector's hook)."""
        bindings = tuple(binding if b.name == binding.name else b
                         for b in self.bindings)
        return replace(self, bindings=bindings)

    def reference_map(self) -> dict[str, tuple[str, ...]]:
        refs = {b.name: b.references for b in self.bindings}
        names = frozenset(b.name for b in self.bindings)
        refs[MAIN_OWNER] = tuple(sorted(_references(self.main, names)))
        return refs


def _render_binding(binding: Binding, typed: bool) -> str:
    """One definition on one line, typed or interface-untyped."""
    if typed:
        if binding.annotation is None:
            return f"(define {binding.name} {render_expr(binding.body)})"
        return (f"(define {binding.name} : {render_type(binding.annotation)} "
                f"{render_expr(binding.body)})")
    if isinstance(binding.body, SLam):
        # Keep a ?→…→? function annotation so recursion still elaborates
        # through the letrec path.
        annotation = _dyn_fun_type(binding.arity)
        return (f"(define {binding.name} : {render_type(annotation)} "
                f"{render_expr(_strip_lambda(binding.body))})")
    return f"(define {binding.name} {render_expr(binding.body)})"


def render_configuration(
    lattice: ProgramLattice, untyped: frozenset[str] | set[str]
) -> tuple[str, dict[int, str]]:
    """Render one lattice configuration: the source text plus the line-owner
    table mapping each source line to the binding defined there (the main
    expression owns the final line as :data:`MAIN_OWNER`)."""
    lines: list[str] = []
    owner: dict[int, str] = {}
    for binding in lattice.bindings:
        lines.append(_render_binding(binding, typed=binding.name not in untyped))
        owner[len(lines)] = binding.name
    lines.append(render_expr(lattice.main))
    owner[len(lines)] = MAIN_OWNER
    return "\n".join(lines) + "\n", owner


# ---------------------------------------------------------------------------
# Enumeration and sampling
# ---------------------------------------------------------------------------


def enumerate_configurations(
    lattice: ProgramLattice,
    max_configs: int | None = None,
    seed: int = 0,
) -> list[frozenset[str]]:
    """The configurations to visit, as sets of *untyped* binding names.

    Below the cutoff (``2^n ≤ max_configs``, or always when ``max_configs``
    is ``None``) this is the **full lattice** in mask order (bit *i* of the
    mask untypes the *i*-th typeable binding).  Above it, a seeded
    stratified sample: the quota is split evenly across lattice levels
    (numbers of untyped bindings), each level's configurations drawn
    uniformly without replacement, so both the nearly-typed top and the
    nearly-untyped bottom of the lattice stay represented no matter how
    large ``n`` grows.  Deterministic for a given ``(lattice, max_configs,
    seed)``.
    """
    names = lattice.typeable_names
    n = len(names)
    if max_configs is None or (n < 63 and 2**n <= max_configs):
        return [
            frozenset(name for i, name in enumerate(names) if mask >> i & 1)
            for mask in range(2**n)
        ]
    if max_configs <= 0:
        return []
    rng = random.Random(seed)
    sizes = {level: comb(n, level) for level in range(n + 1)}
    quota, extra = divmod(max_configs, n + 1)
    want = {
        level: min(quota + (1 if level < extra else 0), sizes[level])
        for level in range(n + 1)
    }
    # Redistribute quota the tiny extreme levels could not absorb, so the
    # sample size actually reaches max_configs whenever the lattice can.
    leftover = max_configs - sum(want.values())
    while leftover > 0:
        open_levels = [lv for lv in range(n + 1) if want[lv] < sizes[lv]]
        if not open_levels:
            break
        for level in open_levels:
            if leftover == 0:
                break
            want[level] += 1
            leftover -= 1
    picked: list[frozenset[str]] = []
    for level in range(n + 1):
        if want[level] == 0:
            continue
        if sizes[level] <= want[level]:
            picked.extend(frozenset(c) for c in combinations(names, level))
            continue
        chosen: set[frozenset[str]] = set()
        while len(chosen) < want[level]:
            chosen.add(frozenset(rng.sample(names, level)))
        picked.extend(sorted(chosen, key=lambda c: tuple(sorted(c))))
    return picked
