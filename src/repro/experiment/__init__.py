"""The rational-programmer blame evaluation subsystem.

Lazarek et al.'s *rational programmer* method (ICFP 2021), instantiated for
the paper's enforcement semantics: plant one type-level fault with a known
ground-truth culprit (:mod:`.inject`), enumerate or sample the migration
lattice of typed↔untyped splits of the program's bindings (:mod:`.lattice`),
and follow the blame label from configuration to configuration — typing the
blamed binding each step — until the fault is localized or the trail dies
(:mod:`.driver`).  Trail lengths and localization rates per semantics are
the experiment's measurements: they quantify whether λS blame is *useful*,
not merely sound.

Entry points: ``repro-gradual experiment`` (CLI),
:func:`~repro.experiment.driver.run_experiment` (library), and
``benchmarks/bench_blame.py`` (the ``BENCH_blame.json`` artifact).
"""

from .driver import (
    STRATEGY_BLAME,
    STRATEGY_NULL,
    ExperimentConfig,
    Trail,
    follow_trail,
    run_experiment,
    strategy_for,
)
from .inject import Fault, apply_fault, enumerate_faults, sample_faults
from .lattice import (
    Binding,
    ProgramLattice,
    enumerate_configurations,
    render_configuration,
)

__all__ = [
    "Binding",
    "ExperimentConfig",
    "Fault",
    "ProgramLattice",
    "STRATEGY_BLAME",
    "STRATEGY_NULL",
    "Trail",
    "apply_fault",
    "enumerate_configurations",
    "enumerate_faults",
    "follow_trail",
    "render_configuration",
    "run_experiment",
    "sample_faults",
    "strategy_for",
]
