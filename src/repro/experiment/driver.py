"""The rational programmer: follow blame across the migration lattice.

One *trail* simulates a programmer debugging a planted fault from a given
lattice configuration: run the program; if it ends in blame, type the
binding the blame label names (or, when that binding is already typed, the
nearest untyped binding in the reference graph); if it crashes without
blame — the erasure baseline, or a transient check with no useful label —
type a seeded-random untyped binding; repeat.  The trail ends when

* a blame label points at the **culprit's** line (``localized`` — the
  semantics' blame did its job),
* the program runs to a value (``no-error`` — this configuration never
  exercises the fault),
* the error is static, the fuel runs out, or no untyped binding is left
  to follow (``static-error`` / ``timeout`` / ``runtime-error`` /
  ``dead-end``).

Every step types one binding, so a trail's length is bounded by the number
of initially-untyped bindings — the termination property the test suite
checks with Hypothesis.  Comparing localization rates and trail lengths
across enforcement semantics (with erasure as the null strategy) measures
whether blame is *useful*, not merely sound (Lazarek et al., ICFP 2021).
"""

from __future__ import annotations

import random
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..core.errors import ParseError, ReproError, TypeCheckError, UsageError
from ..semantics import SEMANTICS_NAMES, resolve
from .inject import Fault, apply_fault, sample_faults
from .lattice import (
    ProgramLattice,
    enumerate_configurations,
    render_configuration,
)

#: Follow blame labels from configuration to configuration.
STRATEGY_BLAME = "blame"
#: No labels to follow (erasure): type seeded-random untyped bindings.
STRATEGY_NULL = "null"

#: Trail outcomes.
OUTCOMES = (
    "localized", "no-error", "timeout", "static-error", "runtime-error",
    "dead-end",
)

#: Pool results carry runtime crashes (as opposed to front-end failures)
#: with this prefix; the inline runner mints the same shape.
_RUNTIME_PREFIX = "worker exception:"


def strategy_for(semantics: str) -> str:
    """Which navigation strategy a semantics supports: blame-following for
    any semantics that can blame, the null (random) strategy otherwise."""
    return STRATEGY_BLAME if resolve(semantics).blames else STRATEGY_NULL


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one ``repro-gradual experiment`` invocation is shaped by."""

    semantics: tuple[str, ...] = ("coercion", "threesome", "transient", "erasure")
    engine: str = "vm"
    opt_level: int = 2
    fuel: int = 200_000
    workers: int = 2  # pool size; 0 runs inline in-process (tests)
    max_configs: int = 64  # lattice cutoff: enumerate below, sample above
    starts_per_fault: int = 4  # trail starting configurations per fault
    faults_per_program: int = 4
    seed: int = 0

    def __post_init__(self):
        for name in self.semantics:
            if name not in SEMANTICS_NAMES:
                raise UsageError(
                    f"unknown semantics {name!r}; expected one of "
                    f"{', '.join(SEMANTICS_NAMES)}"
                )


@dataclass(frozen=True)
class Trail:
    """One complete blame-following (or null) debugging session."""

    program: str
    semantics: str
    strategy: str
    fault: dict  # Fault.describe()
    start_untyped: tuple[str, ...]
    steps: tuple[dict, ...]
    outcome: str
    configurations_run: int
    blame_records: int

    @property
    def localized(self) -> bool:
        return self.outcome == "localized"

    @property
    def length(self) -> int:
        """Migration steps taken (configurations beyond the first)."""
        return self.configurations_run - 1

    def describe(self) -> dict:
        return {
            "program": self.program,
            "semantics": self.semantics,
            "strategy": self.strategy,
            "fault": self.fault,
            "start_untyped": list(self.start_untyped),
            "outcome": self.outcome,
            "localized": self.localized,
            "length": self.length,
            "configurations_run": self.configurations_run,
            "blame_records": self.blame_records,
            "steps": list(self.steps),
        }


def _blame_owner(label: str, owner: dict[int, str]) -> str | None:
    """The binding that owns a blame label's source line (negative labels
    print with a leading ``~``; the site is the same)."""
    text = label.lstrip("~")
    _, sep, loc = text.rpartition("@")
    if not sep:
        return None
    line_text, _, _ = loc.partition(":")
    try:
        line = int(line_text)
    except ValueError:
        return None
    return owner.get(line)


def _adjacency(lattice: ProgramLattice) -> dict[str, set[str]]:
    """The undirected reference graph (including the main expression)."""
    graph: dict[str, set[str]] = {}
    for source, targets in lattice.reference_map().items():
        graph.setdefault(source, set())
        for target in targets:
            graph[source].add(target)
            graph.setdefault(target, set()).add(source)
    return graph


def _nearest_untyped(
    start: str, graph: dict[str, set[str]], untyped: set[str]
) -> str | None:
    """BFS from a typed (or main) node to the closest untyped binding —
    deterministic via sorted neighbor order."""
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in sorted(graph.get(node, ())):
            if neighbor in seen:
                continue
            if neighbor in untyped:
                return neighbor
            seen.add(neighbor)
            queue.append(neighbor)
    return None


def follow_trail(
    lattice: ProgramLattice,
    fault: Fault,
    start_untyped: frozenset[str] | set[str],
    semantics: str,
    runner,
    *,
    rng: random.Random | None = None,
) -> Trail:
    """Follow one fault from one starting configuration to its outcome.

    ``runner`` maps rendered source text to a result dict with at least
    ``kind`` (``value`` / ``blame`` / ``timeout`` / ``error``) plus
    ``blame`` or ``error`` payloads — the pool's ``run_source`` shape.
    The loop types exactly one binding per continued step, so it runs at
    most ``len(start_untyped) + 1`` configurations.
    """
    rng = rng if rng is not None else random.Random(0)
    strategy = strategy_for(semantics)
    faulty = apply_fault(lattice, fault)
    graph = _adjacency(lattice)
    untyped = set(start_untyped)
    steps: list[dict] = []
    blame_records = 0
    runs = 0

    while True:
        source, owner = render_configuration(faulty, frozenset(untyped))
        result = runner(source)
        runs += 1
        kind = result.get("kind")
        step: dict = {"untyped": sorted(untyped), "kind": kind}
        if kind == "value":
            steps.append(step)
            outcome = "no-error"
            break
        if kind == "timeout":
            steps.append(step)
            outcome = "timeout"
            break
        if kind == "blame":
            blame_records += 1
            label = str(result.get("blame", ""))
            name = _blame_owner(label, owner)
            step["blame"] = label
            step["owner"] = name
            if name == fault.culprit:
                step["action"] = "localized"
                steps.append(step)
                outcome = "localized"
                break
            if name is not None and name in untyped:
                target = name
            elif name is not None:
                target = _nearest_untyped(name, graph, untyped)
            else:
                target = None
            if target is None:
                steps.append(step)
                outcome = "dead-end"
                break
            step["action"] = f"type {target}"
            steps.append(step)
            untyped.discard(target)
            continue
        # An error result: front-end failures stop the trail; runtime
        # crashes without blame are the null move — type a seeded-random
        # untyped binding (same move for every strategy, so erasure is a
        # fair baseline).
        message = str(result.get("error", ""))
        step["error"] = message
        if not message.startswith(_RUNTIME_PREFIX):
            steps.append(step)
            outcome = "static-error"
            break
        if not untyped:
            steps.append(step)
            outcome = "runtime-error"
            break
        target = rng.choice(sorted(untyped))
        step["action"] = f"type {target}"
        steps.append(step)
        untyped.discard(target)

    return Trail(
        program=lattice.name,
        semantics=semantics,
        strategy=strategy,
        fault=fault.describe(),
        start_untyped=tuple(sorted(start_untyped)),
        steps=tuple(steps),
        outcome=outcome,
        configurations_run=runs,
        blame_records=blame_records,
    )


# ---------------------------------------------------------------------------
# Runners: the same trail loop over the in-process API or the worker pool
# ---------------------------------------------------------------------------


class InlineRunner:
    """Run configurations in-process through :func:`repro.api.run`."""

    def __init__(self, config):
        self.config = config

    def __call__(self, source: str) -> dict:
        from ..api import run

        try:
            result = run(source, self.config)
        except (ParseError, TypeCheckError, UsageError) as exc:
            return {"kind": "error", "error": str(exc)}
        except ReproError as exc:
            return {"kind": "error", "error": f"{_RUNTIME_PREFIX} {exc!r}"}
        except Exception as exc:  # erasure's raw TypeError and friends
            return {"kind": "error", "error": f"{_RUNTIME_PREFIX} {exc!r}"}
        out: dict = {"kind": result.kind}
        if result.is_blame:
            out["blame"] = result.blame_label
        elif result.is_value:
            out["value"] = result.value
        return out


class PoolRunner:
    """Run configurations through a persistent :class:`WorkerPool` —
    thread-safe, so whole trails can be followed concurrently."""

    def __init__(self, pool, config):
        self.pool = pool
        self.config = config

    def __call__(self, source: str) -> dict:
        cfg = self.config
        return self.pool.execute({
            "op": "run_source",
            "source": source,
            "engine": cfg.engine,
            "semantics": cfg.semantics,
            "opt_level": cfg.opt_level,
            "fuel": cfg.fuel,
            "use_cache": cfg.cache,
            "cache_dir": cfg.cache_dir,
        })


def _trail_rng(config: ExperimentConfig, *parts: object) -> random.Random:
    """A per-trail RNG seeded from stable strings (process-independent)."""
    return random.Random("|".join(str(p) for p in (config.seed, *parts)))


def _plan_trails(programs, config: ExperimentConfig):
    """The deterministic trail plan: every (program, fault, semantics,
    start) tuple, with starting configurations shared across semantics so
    the strategies are compared on identical footing."""
    plan = []
    for name, source in programs:
        lattice = ProgramLattice.from_source(source, name=name)
        faults = sample_faults(lattice, config.faults_per_program, seed=config.seed)
        for fault_index, fault in enumerate(faults):
            configurations = enumerate_configurations(
                lattice, config.max_configs, seed=config.seed + fault_index
            )
            starts_rng = _trail_rng(config, name, fault_index, "starts")
            count = min(config.starts_per_fault, len(configurations))
            starts = starts_rng.sample(configurations, count)
            for semantics in config.semantics:
                for start_index, start in enumerate(starts):
                    plan.append((lattice, fault, fault_index, semantics,
                                 start_index, start))
    return plan


def run_experiment(programs, config: ExperimentConfig, *, emit=None):
    """Follow every planned trail; returns ``(trails, report)``.

    ``programs`` is an iterable of ``(name, source_text)`` pairs.  With
    ``config.workers > 0`` the configurations run through a persistent
    :class:`~repro.serve.pool.WorkerPool` (trails followed concurrently by
    a thread per worker); with ``workers == 0`` everything runs inline.
    ``emit``, if given, receives each trail's ``describe()`` dict as it is
    collected, in deterministic plan order.
    """
    from ..api import resolve_config

    run_configs = {
        name: resolve_config(
            engine=config.engine, semantics=name, opt_level=config.opt_level,
            fuel=config.fuel, cache=False,
        )
        for name in config.semantics
    }
    plan = _plan_trails(programs, config)
    trails: list[Trail] = []

    def one(entry) -> Trail:
        lattice, fault, fault_index, semantics, start_index, start = entry
        rng = _trail_rng(
            config, lattice.name, fault_index, semantics, start_index
        )
        return follow_trail(lattice, fault, start, semantics,
                            runners[semantics], rng=rng)

    if config.workers > 0:
        from ..serve.pool import WorkerPool

        with WorkerPool(config.workers) as pool:
            runners = {
                name: PoolRunner(pool, cfg) for name, cfg in run_configs.items()
            }
            with ThreadPoolExecutor(max_workers=config.workers) as executor:
                futures = [executor.submit(one, entry) for entry in plan]
                for future in futures:
                    trail = future.result()
                    trails.append(trail)
                    if emit is not None:
                        emit(trail.describe())
    else:
        runners = {name: InlineRunner(cfg) for name, cfg in run_configs.items()}
        for entry in plan:
            trail = one(entry)
            trails.append(trail)
            if emit is not None:
                emit(trail.describe())

    return trails, summarize(trails)


def summarize(trails) -> dict:
    """The aggregate report: per-semantics localization and trail lengths.

    ``localization_rate`` is localized trails over *blame-producing*
    trails — the denominator the paper's usefulness claim quantifies over
    (a trail whose configurations never blame gives the strategy nothing
    to follow).
    """
    per: dict[str, dict] = {}
    for trail in trails:
        bucket = per.setdefault(trail.semantics, {
            "strategy": trail.strategy,
            "trails": 0,
            "blame_trails": 0,
            "localized": 0,
            "blame_records": 0,
            "configurations_run": 0,
            "outcomes": Counter(),
            "_lengths": [],
        })
        bucket["trails"] += 1
        bucket["blame_records"] += trail.blame_records
        bucket["configurations_run"] += trail.configurations_run
        bucket["outcomes"][trail.outcome] += 1
        bucket["_lengths"].append(trail.length)
        if trail.blame_records:
            bucket["blame_trails"] += 1
        if trail.localized:
            bucket["localized"] += 1
    for bucket in per.values():
        lengths = bucket.pop("_lengths")
        bucket["mean_trail_length"] = (
            sum(lengths) / len(lengths) if lengths else 0.0
        )
        bucket["localization_rate"] = (
            bucket["localized"] / bucket["blame_trails"]
            if bucket["blame_trails"] else 0.0
        )
        bucket["outcomes"] = dict(sorted(bucket["outcomes"].items()))
    return {
        "trails": len(trails),
        "configurations_run": sum(t.configurations_run for t in trails),
        "semantics": dict(sorted(per.items())),
    }
