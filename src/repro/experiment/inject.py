"""Fault injection: one type-level mistake with a known ground truth.

A *fault* edits exactly one binding's body so that some value crosses a
type boundary at the wrong type, while the program stays **statically
well-typed in every lattice configuration** — the mistake is routed
through ``?`` ascriptions, exactly the kind of inconsistency a gradual
type system is allowed to defer to runtime.  Three kinds:

``wrong-return``
    The culprit function's body is replaced by a constant of the wrong
    base type, injected to ``?`` (``(: wrong ?)``).  The fault manifests
    wherever the return value is consumed at its declared type.

``wrong-argument``
    One call from the culprit to a sibling passes a wrong-base-type
    constant through ``?`` in place of an argument.  The caller is the
    culprit: it broke the callee's interface.

``wrong-annotation``
    The culprit function's body result is re-ascribed at a wrong base
    type via the triple ``(: (: (: body ?) B') ?)`` — an interior claim
    that the result has type ``B'``.  The cast ``B ⇒ ? ⇒ B'`` fails *at
    the culprit's own line* in every configuration that exercises it.

The wrong constants are fixed (``int``→``#t``, ``bool``→``7``,
``str``→``7``) so fault application is deterministic; :func:`sample_faults`
draws a seeded, kind-balanced subset when a program admits many faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..core.types import BOOL, DYN, INT, BaseType, FunType, Type
from ..surface.ast import (
    SApp,
    SAscribe,
    SConst,
    SFst,
    SIf,
    SLam,
    SLet,
    SLetRec,
    SOp,
    SPair,
    SSnd,
    SurfaceExpr,
    SVar,
)
from .lattice import ProgramLattice, render_type

#: A deterministically wrong constant for each base type.
WRONG_VALUE: dict[str, object] = {"int": True, "bool": 7, "str": 7}

#: A deterministically wrong base type for each base type.
WRONG_TYPE: dict[str, Type] = {"int": BOOL, "bool": INT, "str": INT}

FAULT_KINDS = ("wrong-return", "wrong-argument", "wrong-annotation")


@dataclass(frozen=True)
class Fault:
    """One planted mistake with its ground-truth culprit."""

    kind: str
    culprit: str  # binding name whose code is wrong
    site: str  # human-readable location of the edit
    description: str
    value: object = None  # wrong constant (wrong-return / wrong-argument)
    wrong_type: Type | None = None  # claimed type (wrong-annotation)
    call_index: int = 0  # which matching call site (wrong-argument)
    arg_index: int = 0  # which argument of that call (wrong-argument)

    def describe(self) -> dict:
        return {"kind": self.kind, "culprit": self.culprit, "site": self.site,
                "description": self.description}


def _return_type(annotation: Type | None) -> Type | None:
    ty = annotation
    while isinstance(ty, FunType):
        ty = ty.cod
    return ty


def _param_types(annotation: Type | None) -> list[Type]:
    params: list[Type] = []
    ty = annotation
    while isinstance(ty, FunType):
        params.append(ty.dom)
        ty = ty.cod
    return params


def _wrong_const(base: BaseType) -> SurfaceExpr:
    """The wrong-typed constant, injected through ``?`` so every lattice
    configuration stays statically well-typed."""
    return SAscribe(SConst(WRONG_VALUE[base.name]), DYN)


def _call_sites(
    expr: SurfaceExpr, callees: frozenset[str]
) -> list[tuple[str, int]]:
    """``(callee, arity)`` for each direct call to a sibling, in a fixed
    left-to-right walk order — index *i* here is ``Fault.call_index`` *i*."""
    sites: list[tuple[str, int]] = []

    def walk(node: SurfaceExpr) -> None:
        if isinstance(node, SApp):
            if isinstance(node.fun, SVar) and node.fun.name in callees:
                sites.append((node.fun.name, len(node.args)))
            walk(node.fun)
            for arg in node.args:
                walk(arg)
        elif isinstance(node, SLam):
            walk(node.body)
        elif isinstance(node, SOp):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, SIf):
            walk(node.cond)
            walk(node.then_branch)
            walk(node.else_branch)
        elif isinstance(node, SLet):
            for _, bound in node.bindings:
                walk(bound)
            walk(node.body)
        elif isinstance(node, SLetRec):
            walk(node.bound)
            walk(node.body)
        elif isinstance(node, SPair):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (SFst, SSnd)):
            walk(node.arg)
        elif isinstance(node, SAscribe):
            walk(node.expr)

    walk(expr)
    return sites


def _replace_call_arg(
    expr: SurfaceExpr,
    callees: frozenset[str],
    call_index: int,
    arg_index: int,
    new_arg: SurfaceExpr,
) -> SurfaceExpr:
    """The body with one argument of the ``call_index``-th sibling call
    replaced (same walk order as :func:`_call_sites`)."""
    counter = [0]

    def walk(node: SurfaceExpr) -> SurfaceExpr:
        if isinstance(node, SApp):
            args = node.args
            if isinstance(node.fun, SVar) and node.fun.name in callees:
                here = counter[0]
                counter[0] += 1
                if here == call_index:
                    args = tuple(
                        new_arg if i == arg_index else a
                        for i, a in enumerate(args)
                    )
                    return SApp(node.fun, tuple(walk(a) if i != arg_index else a
                                                for i, a in enumerate(args)),
                                node.location)
            return SApp(walk(node.fun), tuple(walk(a) for a in args),
                        node.location)
        if isinstance(node, SLam):
            return SLam(node.params, walk(node.body), node.location)
        if isinstance(node, SOp):
            return SOp(node.op, tuple(walk(a) for a in node.args), node.location)
        if isinstance(node, SIf):
            return SIf(walk(node.cond), walk(node.then_branch),
                       walk(node.else_branch), node.location)
        if isinstance(node, SLet):
            bindings = tuple((n, walk(e)) for n, e in node.bindings)
            return SLet(bindings, walk(node.body), node.location)
        if isinstance(node, SLetRec):
            return SLetRec(node.name, node.annotation, walk(node.bound),
                           walk(node.body), node.location)
        if isinstance(node, SPair):
            return SPair(walk(node.left), walk(node.right), node.location)
        if isinstance(node, SFst):
            return SFst(walk(node.arg), node.location)
        if isinstance(node, SSnd):
            return SSnd(walk(node.arg), node.location)
        if isinstance(node, SAscribe):
            return SAscribe(walk(node.expr), node.annotation, node.location)
        return node

    return walk(expr)


def enumerate_faults(lattice: ProgramLattice) -> list[Fault]:
    """Every fault the program admits, in a deterministic order.

    Only definitions can be culprits (the main expression is never typed
    or untyped, so it cannot anchor a migration trail).
    """
    names = frozenset(b.name for b in lattice.bindings)
    faults: list[Fault] = []
    for binding in lattice.bindings:
        ret = _return_type(binding.annotation)
        if isinstance(binding.body, SLam) and isinstance(ret, BaseType):
            faults.append(Fault(
                kind="wrong-return",
                culprit=binding.name,
                site=f"return of {binding.name}",
                description=(f"{binding.name} returns "
                             f"{WRONG_VALUE[ret.name]!r} instead of a value "
                             f"of type {render_type(ret)}"),
                value=WRONG_VALUE[ret.name],
            ))
            faults.append(Fault(
                kind="wrong-annotation",
                culprit=binding.name,
                site=f"result annotation of {binding.name}",
                description=(f"{binding.name} claims its result has type "
                             f"{render_type(WRONG_TYPE[ret.name])} instead "
                             f"of {render_type(ret)}"),
                wrong_type=WRONG_TYPE[ret.name],
            ))
        body = binding.body.body if isinstance(binding.body, SLam) else binding.body
        for call_index, (callee, arity) in enumerate(
            _call_sites(body, names - {binding.name})
        ):
            params = _param_types(lattice.binding(callee).annotation)
            for arg_index in range(min(arity, len(params))):
                param = params[arg_index]
                if isinstance(param, BaseType):
                    faults.append(Fault(
                        kind="wrong-argument",
                        culprit=binding.name,
                        site=(f"argument {arg_index + 1} of call "
                              f"#{call_index + 1} to {callee} "
                              f"in {binding.name}"),
                        description=(f"{binding.name} passes "
                                     f"{WRONG_VALUE[param.name]!r} to "
                                     f"{callee} where a "
                                     f"{render_type(param)} is expected"),
                        value=WRONG_VALUE[param.name],
                        call_index=call_index,
                        arg_index=arg_index,
                    ))
    return faults


def sample_faults(
    lattice: ProgramLattice, count: int, seed: int = 0
) -> list[Fault]:
    """A seeded, kind-balanced sample of at most ``count`` faults.

    Round-robin across fault kinds (each kind's pool shuffled by the seed)
    so a program rich in call sites does not drown out annotation faults.
    Deterministic for a given ``(lattice, count, seed)``.
    """
    if count <= 0:
        return []
    rng = random.Random(seed)
    pools: dict[str, list[Fault]] = {kind: [] for kind in FAULT_KINDS}
    for fault in enumerate_faults(lattice):
        pools[fault.kind].append(fault)
    for pool in pools.values():
        rng.shuffle(pool)
    picked: list[Fault] = []
    while len(picked) < count and any(pools.values()):
        for kind in FAULT_KINDS:
            if pools[kind] and len(picked) < count:
                picked.append(pools[kind].pop())
    return picked


def apply_fault(lattice: ProgramLattice, fault: Fault) -> ProgramLattice:
    """The lattice with the fault's edit planted in its culprit binding."""
    binding = lattice.binding(fault.culprit)
    if fault.kind == "wrong-return":
        assert isinstance(binding.body, SLam)
        ret = _return_type(binding.annotation)
        new_body: SurfaceExpr = SLam(
            binding.body.params, _wrong_const(ret), binding.body.location
        )
    elif fault.kind == "wrong-annotation":
        assert isinstance(binding.body, SLam)
        wrong = SAscribe(
            SAscribe(SAscribe(binding.body.body, DYN), fault.wrong_type), DYN
        )
        new_body = SLam(binding.body.params, wrong, binding.body.location)
    elif fault.kind == "wrong-argument":
        names = frozenset(b.name for b in lattice.bindings)
        callees = names - {binding.name}
        callee = _call_sites(
            binding.body.body if isinstance(binding.body, SLam) else binding.body,
            callees,
        )[fault.call_index][0]
        param = _param_types(lattice.binding(callee).annotation)[fault.arg_index]
        if isinstance(binding.body, SLam):
            inner = _replace_call_arg(
                binding.body.body, callees, fault.call_index, fault.arg_index,
                _wrong_const(param),
            )
            new_body = SLam(binding.body.params, inner, binding.body.location)
        else:
            new_body = _replace_call_arg(
                binding.body, callees, fault.call_index, fault.arg_index,
                _wrong_const(param),
            )
    else:
        raise ValueError(f"unknown fault kind {fault.kind!r}")
    return lattice.with_binding(replace(binding, body=new_body))
