"""Space-efficient coercions and their composition (Figure 5).

Space-efficient coercions are coercions in *canonical form*, following a
three-level grammar (one canonical coercion per equivalence class of λC
coercions under Henglein's equational theory)::

    s, t ::= id?  |  (G?p ; i)  |  i              space-efficient coercions
    i     ::= (g ; G!)  |  g  |  ⊥GpH              intermediate coercions
    g, h  ::= idι  |  s → t  |  s × t              ground coercions

(``s × t`` is the product extension.)  The star of the show is the ten-line
structurally recursive composition operator ``s # t`` — :func:`compose` —
which takes two canonical coercions and returns the canonical form of their
sequential composition.  Height is preserved (Proposition 14), and a canonical
coercion of bounded height has bounded size, which is what gives the
calculus its space bound.

Class hierarchy (mirrors the grammar)::

    SpaceCoercion
    ├── IdDyn                    id?
    ├── Projection(G, p, i)      G?p ; i
    └── Intermediate
        ├── Injection(g, G)      g ; G!
        ├── FailS(G, p, H)       ⊥GpH
        └── GroundCoercion
            ├── IdBase(ι)        idι
            ├── FunCo(s, t)      s → t
            └── ProdCo(s, t)     s × t
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.errors import CoercionTypeError
from ..core.labels import Label
from ..core.types import (
    DYN,
    UNKNOWN,
    BaseType,
    DynType,
    FunType,
    ProdType,
    Type,
    UnknownType,
    is_ground,
    types_equal,
)


class SpaceCoercion:
    """A coercion in canonical form (``s``, ``t`` in Figure 5)."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - overridden
        return space_coercion_to_str(self)

    def __repr__(self) -> str:
        return space_coercion_to_str(self)


class Intermediate(SpaceCoercion):
    """An intermediate coercion (``i`` in Figure 5)."""

    __slots__ = ()


class GroundCoercion(Intermediate):
    """A ground coercion (``g``, ``h`` in Figure 5)."""

    __slots__ = ()


@dataclass(frozen=True, repr=False)
class IdDyn(SpaceCoercion):
    """The identity coercion at the dynamic type, ``id?``."""


@dataclass(frozen=True, repr=False)
class Projection(SpaceCoercion):
    """A projection followed by an intermediate coercion, ``G?p ; i``."""

    ground: Type
    label: Label
    body: Intermediate

    def __post_init__(self) -> None:
        if not is_ground(self.ground):
            raise CoercionTypeError(f"projection requires a ground type, got {self.ground}")
        if not isinstance(self.body, Intermediate):
            raise CoercionTypeError(
                f"the body of a projection must be an intermediate coercion, got {self.body!r}"
            )


@dataclass(frozen=True, repr=False)
class Injection(Intermediate):
    """A ground coercion followed by an injection, ``g ; G!``."""

    body: GroundCoercion
    ground: Type

    def __post_init__(self) -> None:
        if not is_ground(self.ground):
            raise CoercionTypeError(f"injection requires a ground type, got {self.ground}")
        if not isinstance(self.body, GroundCoercion):
            raise CoercionTypeError(
                f"the body of an injection must be a ground coercion, got {self.body!r}"
            )


@dataclass(frozen=True, repr=False, eq=False)
class FailS(Intermediate):
    """The failure coercion ``⊥GpH`` in canonical form.

    ``source``/``target`` are optional informal type annotations (as for λC's
    ``Fail``); they are excluded from equality so that composition results
    compare structurally.
    """

    source_ground: Type
    label: Label
    target_ground: Type
    source: Type | None = None
    target: Type | None = None

    def __post_init__(self) -> None:
        if not is_ground(self.source_ground) or not is_ground(self.target_ground):
            raise CoercionTypeError("⊥GpH requires ground types G and H")
        if self.source_ground == self.target_ground:
            raise CoercionTypeError("⊥GpH requires G ≠ H")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailS):
            return NotImplemented
        return (
            self.source_ground == other.source_ground
            and self.label == other.label
            and self.target_ground == other.target_ground
        )

    def __hash__(self) -> int:
        return hash((FailS, self.source_ground, self.label, self.target_ground))


@dataclass(frozen=True, repr=False)
class IdBase(GroundCoercion):
    """The identity coercion at a base type, ``idι``."""

    base: BaseType

    def __post_init__(self) -> None:
        if not isinstance(self.base, BaseType):
            raise CoercionTypeError(f"idι requires a base type, got {self.base}")


@dataclass(frozen=True, repr=False)
class FunCo(GroundCoercion):
    """A function coercion ``s → t`` between canonical coercions."""

    dom: SpaceCoercion
    cod: SpaceCoercion


@dataclass(frozen=True, repr=False)
class ProdCo(GroundCoercion):
    """A product coercion ``s × t`` between canonical coercions (extension)."""

    left: SpaceCoercion
    right: SpaceCoercion


ID_DYN = IdDyn()


# ---------------------------------------------------------------------------
# Composition  s # t  (Figure 5)
# ---------------------------------------------------------------------------


def compose(s: SpaceCoercion, t: SpaceCoercion) -> SpaceCoercion:
    """The composition ``s # t`` of two canonical coercions, in canonical form.

    Implements the ten equations of Figure 5 (plus the componentwise rule for
    products).  The recursion is structural: the sum of the sizes of the
    arguments strictly decreases at every recursive call, so composition is
    evidently total — this is the paper's key simplification over Siek &
    Wadler (2010) and Greenberg (2013).
    """
    # ⊥GpH # s = ⊥GpH
    if isinstance(s, FailS):
        return FailS(
            s.source_ground,
            s.label,
            s.target_ground,
            source=s.source,
            target=space_target(t) or s.target,
        )

    # id? # t = t
    if isinstance(s, IdDyn):
        return t

    # (G?p ; i) # t = G?p ; (i # t)
    if isinstance(s, Projection):
        body = compose(s.body, t)
        if not isinstance(body, Intermediate):
            raise CoercionTypeError(f"composition produced a non-intermediate body: {body!r}")
        return Projection(s.ground, s.label, body)

    # From here on s is an intermediate coercion: an injection or a ground coercion.
    if isinstance(t, IdDyn):
        # (g ; G!) # id? = g ; G!
        if isinstance(s, Injection):
            return s
        raise CoercionTypeError(f"ill-typed composition: {s} # id?")

    if isinstance(t, Projection):
        # (g ; G!) # (H?p ; i)  =  g # i           if G = H
        #                       =  ⊥GpH            if G ≠ H
        if isinstance(s, Injection):
            if s.ground == t.ground:
                return compose(s.body, t.body)
            return FailS(
                s.ground,
                t.label,
                t.ground,
                source=space_source(s),
                target=space_target(t),
            )
        raise CoercionTypeError(f"ill-typed composition: {s} # {t}")

    if isinstance(t, FailS):
        # g # ⊥GpH = ⊥GpH
        if isinstance(s, GroundCoercion):
            return FailS(
                t.source_ground,
                t.label,
                t.target_ground,
                source=space_source(s) or t.source,
                target=t.target,
            )
        raise CoercionTypeError(f"ill-typed composition: {s} # {t}")

    if isinstance(t, Injection):
        # g # (h ; H!) = (g # h) ; H!
        if isinstance(s, GroundCoercion):
            body = compose(s, t.body)
            if not isinstance(body, GroundCoercion):
                raise CoercionTypeError(f"composition produced a non-ground body: {body!r}")
            return Injection(body, t.ground)
        raise CoercionTypeError(f"ill-typed composition: {s} # {t}")

    # Both are ground coercions.
    if isinstance(s, IdBase) and isinstance(t, IdBase):
        # idι # idι = idι
        if s.base != t.base:
            raise CoercionTypeError(f"ill-typed composition: {s} # {t}")
        return s

    if isinstance(s, FunCo) and isinstance(t, FunCo):
        # (s → t) # (s' → t') = (s' # s) → (t # t')
        return FunCo(compose(t.dom, s.dom), compose(s.cod, t.cod))

    if isinstance(s, ProdCo) and isinstance(t, ProdCo):
        # (s × t) # (s' × t') = (s # s') × (t # t')
        return ProdCo(compose(s.left, t.left), compose(s.right, t.right))

    raise CoercionTypeError(f"ill-typed composition: {s} # {t}")


# ---------------------------------------------------------------------------
# Interning and memoised composition — see repro.core.intern
# ---------------------------------------------------------------------------

from ..core.intern import Interner as _Interner  # noqa: E402  (layered import)
from ..core.intern import intern_type as _intern_type  # noqa: E402

_interned = _Interner("coercions_s")
_interned.seed(("iddyn",), ID_DYN)


def intern_space(s: SpaceCoercion) -> SpaceCoercion:
    """The canonical representative of a canonical coercion; idempotent.

    Pointer equality on interned coercions coincides with structural
    equality (:class:`FailS` annotation variants each keep their own node,
    mirroring :func:`repro.lambda_c.coercions.intern_coercion`).
    """
    if _interned.is_canonical(s):
        return s
    aliased = _interned.alias_of(s)
    if aliased is not None:
        return aliased
    canon = _intern_space_node(s)
    _interned.remember_alias(s, canon)
    return canon


def _intern_space_node(s: SpaceCoercion) -> SpaceCoercion:
    if isinstance(s, IdDyn):
        return ID_DYN
    if isinstance(s, IdBase):
        base = _intern_type(s.base)
        return _interned.canonical(
            ("idb", id(base)), lambda: s if s.base is base else IdBase(base)
        )
    if isinstance(s, Projection):
        ground = _intern_type(s.ground)
        body = intern_space(s.body)
        return _interned.canonical(
            ("proj", id(ground), s.label, id(body)),
            lambda: s if (s.ground is ground and s.body is body) else Projection(ground, s.label, body),
        )
    if isinstance(s, Injection):
        body = intern_space(s.body)
        ground = _intern_type(s.ground)
        return _interned.canonical(
            ("inj", id(body), id(ground)),
            lambda: s if (s.body is body and s.ground is ground) else Injection(body, ground),
        )
    if isinstance(s, FailS):
        sg = _intern_type(s.source_ground)
        tg = _intern_type(s.target_ground)
        src = _intern_type(s.source) if s.source is not None else None
        tgt = _intern_type(s.target) if s.target is not None else None
        key = ("fail", id(sg), s.label, id(tg),
               id(src) if src is not None else None,
               id(tgt) if tgt is not None else None)
        return _interned.canonical(key, lambda: FailS(sg, s.label, tg, src, tgt))
    if isinstance(s, FunCo):
        dom = intern_space(s.dom)
        cod = intern_space(s.cod)
        return _interned.canonical(
            ("fun", id(dom), id(cod)),
            lambda: s if (s.dom is dom and s.cod is cod) else FunCo(dom, cod),
        )
    if isinstance(s, ProdCo):
        left = intern_space(s.left)
        right = intern_space(s.right)
        return _interned.canonical(
            ("prod", id(left), id(right)),
            lambda: s if (s.left is left and s.right is right) else ProdCo(left, right),
        )
    raise CoercionTypeError(f"cannot intern unknown canonical coercion: {s!r}")


def is_interned_space(s: SpaceCoercion) -> bool:
    return _interned.is_canonical(s)


#: Memo table for :func:`compose_memo`, keyed by the identity of the interned
#: argument pair.  Canonical nodes live forever, so the ids are stable.
_COMPOSE_CACHE: dict[tuple[int, int], SpaceCoercion] = {}
_compose_hits = 0
_compose_misses = 0


def compose_memo(s: SpaceCoercion, t: SpaceCoercion) -> SpaceCoercion:
    """Memoised ``s # t`` on interned coercions (the machine's hot path).

    A boundary-crossing loop merges the *same* pair of pending coercions on
    every iteration; after the first composition each merge is a single
    dictionary hit on the pair's canonical identity.  Agrees with
    :func:`compose` on all inputs (property-tested) and always returns an
    interned result.
    """
    global _compose_hits, _compose_misses
    s = intern_space(s)
    t = intern_space(t)
    key = (id(s), id(t))
    cached = _COMPOSE_CACHE.get(key)
    if cached is not None:
        _compose_hits += 1
        return cached
    result = intern_space(compose(s, t))
    _COMPOSE_CACHE[key] = result
    _compose_misses += 1
    return result


def compose_memo_stats() -> dict[str, int]:
    return {
        "entries": len(_COMPOSE_CACHE),
        "hits": _compose_hits,
        "misses": _compose_misses,
    }


# ---------------------------------------------------------------------------
# Typing
# ---------------------------------------------------------------------------


def space_source(s: SpaceCoercion) -> Type | None:
    """The source type of a canonical coercion (``None`` when under-determined)."""
    if isinstance(s, IdDyn):
        return DYN
    if isinstance(s, Projection):
        return DYN
    if isinstance(s, Injection):
        return space_source(s.body)
    if isinstance(s, FailS):
        return s.source
    if isinstance(s, IdBase):
        return s.base
    if isinstance(s, FunCo):
        dom = space_target(s.dom)
        cod = space_source(s.cod)
        if dom is None or cod is None:
            return None
        return FunType(dom, cod)
    if isinstance(s, ProdCo):
        left = space_source(s.left)
        right = space_source(s.right)
        if left is None or right is None:
            return None
        return ProdType(left, right)
    raise CoercionTypeError(f"unknown canonical coercion: {s!r}")


def space_target(s: SpaceCoercion) -> Type | None:
    """The target type of a canonical coercion (``None`` when under-determined)."""
    if isinstance(s, IdDyn):
        return DYN
    if isinstance(s, Projection):
        return space_target(s.body)
    if isinstance(s, Injection):
        return DYN
    if isinstance(s, FailS):
        return s.target
    if isinstance(s, IdBase):
        return s.base
    if isinstance(s, FunCo):
        dom = space_source(s.dom)
        cod = space_target(s.cod)
        if dom is None or cod is None:
            return None
        return FunType(dom, cod)
    if isinstance(s, ProdCo):
        left = space_target(s.left)
        right = space_target(s.right)
        if left is None or right is None:
            return None
        return ProdType(left, right)
    raise CoercionTypeError(f"unknown canonical coercion: {s!r}")


def check_space_coercion(s: SpaceCoercion, source: Type) -> Type:
    """Check that ``s`` applies at ``source`` and return the target type."""
    if isinstance(source, UnknownType):
        target = space_target(s)
        return target if target is not None else UNKNOWN

    if isinstance(s, IdDyn):
        if not isinstance(source, DynType):
            raise CoercionTypeError(f"id? applied at {source}")
        return DYN
    if isinstance(s, Projection):
        if not isinstance(source, DynType):
            raise CoercionTypeError(f"projection applied at non-dynamic type {source}")
        return check_space_coercion(s.body, s.ground)
    if isinstance(s, Injection):
        check_space_coercion(s.body, source)
        return DYN
    if isinstance(s, FailS):
        if isinstance(source, DynType):
            raise CoercionTypeError("⊥GpH may not be applied at the dynamic type")
        target = s.target if s.target is not None else space_target(s)
        return target if target is not None else UNKNOWN
    if isinstance(s, IdBase):
        if source != s.base:
            raise CoercionTypeError(f"id_{s.base} applied at {source}")
        return s.base
    if isinstance(s, FunCo):
        if not isinstance(source, FunType):
            raise CoercionTypeError(f"function coercion applied at non-function {source}")
        new_dom = space_source(s.dom)
        if new_dom is None:
            new_dom = UNKNOWN
        dom_target = check_space_coercion(s.dom, new_dom)
        if not types_equal(dom_target, source.dom):
            raise CoercionTypeError(
                f"function coercion domain mismatch: {dom_target} vs {source.dom}"
            )
        return FunType(new_dom, check_space_coercion(s.cod, source.cod))
    if isinstance(s, ProdCo):
        if not isinstance(source, ProdType):
            raise CoercionTypeError(f"product coercion applied at non-product {source}")
        return ProdType(
            check_space_coercion(s.left, source.left),
            check_space_coercion(s.right, source.right),
        )
    raise CoercionTypeError(f"unknown canonical coercion: {s!r}")


def lemma13_source_target(s: SpaceCoercion) -> bool:
    """Lemma 13: intermediate coercions never start at ``?``; ground coercions
    start and end at types compatible with one and the same ground type."""
    from ..core.types import compatible, ground_of

    if isinstance(s, Intermediate):
        src = space_source(s)
        if isinstance(src, DynType):
            return False
    if isinstance(s, GroundCoercion):
        src = space_source(s)
        tgt = space_target(s)
        if src is None or tgt is None:
            return True
        if isinstance(src, DynType) or isinstance(tgt, DynType):
            return False
        return ground_of(src) == ground_of(tgt) and compatible(src, ground_of(tgt))
    return True


# ---------------------------------------------------------------------------
# Height, size, identity-freedom, safety
# ---------------------------------------------------------------------------


def height(s: SpaceCoercion) -> int:
    """Height of a canonical coercion, matching the λC definition (Figure 3)."""
    if isinstance(s, IdDyn):
        return 1
    if isinstance(s, Projection):
        return max(1, height(s.body))
    if isinstance(s, Injection):
        return max(height(s.body), 1)
    if isinstance(s, FailS):
        return 1
    if isinstance(s, IdBase):
        return 1
    if isinstance(s, FunCo):
        return max(height(s.dom), height(s.cod)) + 1
    if isinstance(s, ProdCo):
        return max(height(s.left), height(s.right)) + 1
    raise CoercionTypeError(f"unknown canonical coercion: {s!r}")


def size(s: SpaceCoercion) -> int:
    """Number of constructors in a canonical coercion."""
    if isinstance(s, (IdDyn, FailS, IdBase)):
        return 1
    if isinstance(s, Projection):
        return 1 + size(s.body)
    if isinstance(s, Injection):
        return 1 + size(s.body)
    if isinstance(s, FunCo):
        return 1 + size(s.dom) + size(s.cod)
    if isinstance(s, ProdCo):
        return 1 + size(s.left) + size(s.right)
    raise CoercionTypeError(f"unknown canonical coercion: {s!r}")


def is_identity_free(s: SpaceCoercion) -> bool:
    """Is ``s`` an identity-free coercion ``f`` (Figure 5)?

    ``f ::= (G?p ; i) | (g ; G!) | ⊥GpH | (s → t) | (s × t)`` — everything
    except ``id?`` and ``idι``.
    """
    return not isinstance(s, (IdDyn, IdBase))


def is_identity(s: SpaceCoercion) -> bool:
    return isinstance(s, (IdDyn, IdBase))


def subcoercions(s: SpaceCoercion) -> Iterator[SpaceCoercion]:
    yield s
    if isinstance(s, Projection):
        yield from subcoercions(s.body)
    elif isinstance(s, Injection):
        yield from subcoercions(s.body)
    elif isinstance(s, FunCo):
        yield from subcoercions(s.dom)
        yield from subcoercions(s.cod)
    elif isinstance(s, ProdCo):
        yield from subcoercions(s.left)
        yield from subcoercions(s.right)


def coercion_safe_for(s: SpaceCoercion, q: Label) -> bool:
    """``s safe q`` — identical in spirit to λC: ``s`` must not mention ``q``."""
    for sub in subcoercions(s):
        if isinstance(sub, Projection) and sub.label == q:
            return False
        if isinstance(sub, FailS) and sub.label == q:
            return False
    return True


def labels_of(s: SpaceCoercion) -> set[Label]:
    result: set[Label] = set()
    for sub in subcoercions(s):
        if isinstance(sub, Projection):
            result.add(sub.label)
        elif isinstance(sub, FailS):
            result.add(sub.label)
    return result


# ---------------------------------------------------------------------------
# Identity coercions for arbitrary types (|id_A|CS of Figure 6)
# ---------------------------------------------------------------------------


def identity_for(ty: Type) -> SpaceCoercion:
    """The canonical identity coercion at a type: ``|id_A|CS`` from Figure 6."""
    if isinstance(ty, DynType):
        return ID_DYN
    if isinstance(ty, BaseType):
        return IdBase(ty)
    if isinstance(ty, FunType):
        return FunCo(identity_for(ty.dom), identity_for(ty.cod))
    if isinstance(ty, ProdType):
        return ProdCo(identity_for(ty.left), identity_for(ty.right))
    raise CoercionTypeError(f"no identity coercion for type {ty!r}")


def is_canonical_identity(s: SpaceCoercion) -> bool:
    """Is ``s`` the canonical identity at some type (e.g. ``id? → id?``)?"""
    if isinstance(s, (IdDyn, IdBase)):
        return True
    if isinstance(s, FunCo):
        return is_canonical_identity(s.dom) and is_canonical_identity(s.cod)
    if isinstance(s, ProdCo):
        return is_canonical_identity(s.left) and is_canonical_identity(s.right)
    return False


# ---------------------------------------------------------------------------
# Pretty printing
# ---------------------------------------------------------------------------


def space_coercion_to_str(s: SpaceCoercion) -> str:
    if isinstance(s, IdDyn):
        return "id?"
    if isinstance(s, Projection):
        return f"({s.ground}?{s.label} ; {space_coercion_to_str(s.body)})"
    if isinstance(s, Injection):
        return f"({space_coercion_to_str(s.body)} ; {s.ground}!)"
    if isinstance(s, FailS):
        return f"Fail[{s.source_ground},{s.label},{s.target_ground}]"
    if isinstance(s, IdBase):
        return f"id[{s.base}]"
    if isinstance(s, FunCo):
        return f"({space_coercion_to_str(s.dom)} -> {space_coercion_to_str(s.cod)})"
    if isinstance(s, ProdCo):
        return f"({space_coercion_to_str(s.left)} x {space_coercion_to_str(s.right)})"
    raise CoercionTypeError(f"unknown canonical coercion: {s!r}")
