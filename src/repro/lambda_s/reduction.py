"""Small-step reduction for the space-efficient calculus λS (Figure 5).

The rules::

    E[(U⟨s → t⟩) V]    →  E[(U (V⟨s⟩))⟨t⟩]
    F[U⟨idι⟩]          →  F[U]
    F[U⟨id?⟩]          →  F[U]
    F[M⟨s⟩⟨t⟩]         →  F[M⟨s # t⟩]
    F[U⟨⊥GpH⟩]         →  blame p
    E[blame p]         →  blame p              (E ≠ □)

plus the standard rules and the product extension.  The essential discipline
of the evaluation contexts ``E ::= F | F[□⟨f⟩]`` is that the hole is never
under *two* coercion applications: whenever two coercions become adjacent in
evaluation position they are merged with ``#`` **before** anything else
happens in that position.  That is what keeps the pending-coercion space of a
program bounded by its static coercion height (Proposition 14 plus the
size-from-height bound).

Deviation (documented in DESIGN.md): the published grammar restricts the
coercion above the hole to be identity-free (``f``), which read literally
leaves well-typed terms such as ``((λx.x) 1)⟨idι⟩`` stuck.  We allow
evaluation under a single coercion of any shape; merging still takes priority
because the hole is never placed under two coercions.
"""

from __future__ import annotations

from typing import Iterator

from ..core.errors import EvaluationError, StuckError
from ..core.labels import Label
from ..core.ops import op_spec
from ..core.terms import (
    App,
    Blame,
    Coerce,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
    free_vars,
    fresh_name,
    subst,
)
from ..lambda_b.reduction import DEFAULT_FUEL, Outcome
from .coercions import (
    FailS,
    FunCo,
    IdBase,
    IdDyn,
    Injection,
    ProdCo,
    Projection,
    compose,
)
from .syntax import is_uncoerced_value, is_value


# ---------------------------------------------------------------------------
# Evaluation contexts
# ---------------------------------------------------------------------------


def _active_child(term: Term) -> Term | None:
    """The eval-position child of ``term`` that is not yet a value (if any).

    For a coercion application the subject is only an eval position when it is
    not itself a coercion application — adjacent coercions must merge first.
    """
    if isinstance(term, Op):
        for arg in term.args:
            if not is_value(arg):
                return arg
        return None
    if isinstance(term, App):
        if not is_value(term.fun):
            return term.fun
        if not is_value(term.arg):
            return term.arg
        return None
    if isinstance(term, Coerce):
        if isinstance(term.subject, Coerce):
            return None  # merge first: the hole may not sit under two coercions
        return None if is_value(term.subject) else term.subject
    if isinstance(term, If):
        return None if is_value(term.cond) else term.cond
    if isinstance(term, Let):
        return None if is_value(term.bound) else term.bound
    if isinstance(term, Fix):
        return None if is_value(term.fun) else term.fun
    if isinstance(term, Pair):
        if not is_value(term.left):
            return term.left
        if not is_value(term.right):
            return term.right
        return None
    if isinstance(term, (Fst, Snd)):
        return None if is_value(term.arg) else term.arg
    return None


def blame_in_evaluation_position(term: Term) -> Label | None:
    """If ``term`` decomposes as ``E[blame p]`` with ``E ≠ □``, return ``p``."""
    current = term
    while True:
        child = _active_child(current)
        if child is None:
            # A coercion applied directly to blame also propagates it.
            if isinstance(current, Coerce) and isinstance(current.subject, Blame):
                return current.subject.label
            return None
        if isinstance(child, Blame):
            return child.label
        current = child


# ---------------------------------------------------------------------------
# Top-level reduction rules
# ---------------------------------------------------------------------------


def _reduce_coerce(term: Coerce) -> Term:
    """Reduce a coercion application that is not a value and whose subject
    is either another coercion application (merge) or an uncoerced value."""
    subject, coercion = term.subject, term.coercion

    # F[M⟨s⟩⟨t⟩] → F[M⟨s # t⟩] — merging takes priority over everything else.
    if isinstance(subject, Coerce):
        return Coerce(subject.subject, compose(subject.coercion, coercion))

    if isinstance(coercion, (IdBase, IdDyn)):
        return subject

    if isinstance(coercion, FailS):
        return Blame(coercion.label)

    if isinstance(coercion, Projection):
        raise StuckError(f"projection applied to an uncoerced value: {term}")

    # FunCo / ProdCo / Injection over an uncoerced value are values.
    raise StuckError(f"no coercion rule applies to {term}")


def _reduce_redex(term: Term) -> Term:
    if isinstance(term, Op):
        spec = op_spec(term.op)
        operands = []
        for arg in term.args:
            if not isinstance(arg, Const):
                raise StuckError(f"operator {term.op!r} applied to a non-constant: {arg}")
            operands.append(arg.value)
        return Const(spec.apply(operands), spec.result_type)

    if isinstance(term, App):
        fun, arg = term.fun, term.arg
        if isinstance(fun, Lam):
            return subst(fun.body, fun.param, arg)
        if isinstance(fun, Coerce) and isinstance(fun.coercion, FunCo):
            coercion = fun.coercion
            return Coerce(App(fun.subject, Coerce(arg, coercion.dom)), coercion.cod)
        raise StuckError(f"application of a non-function value: {term}")

    if isinstance(term, Coerce):
        return _reduce_coerce(term)

    if isinstance(term, If):
        if isinstance(term.cond, Const) and isinstance(term.cond.value, bool):
            return term.then_branch if term.cond.value else term.else_branch
        raise StuckError(f"if-condition is not a boolean constant: {term.cond}")

    if isinstance(term, Let):
        return subst(term.body, term.name, term.bound)

    if isinstance(term, Fix):
        fun_type = term.fun_type
        param = fresh_name("x", free_vars(term.fun))
        unrolled = Lam(param, fun_type.dom, App(Fix(term.fun, fun_type), Var(param)))
        return App(term.fun, unrolled)

    if isinstance(term, Fst):
        target = term.arg
        if isinstance(target, Pair):
            return target.left
        if isinstance(target, Coerce) and isinstance(target.coercion, ProdCo):
            return Coerce(Fst(target.subject), target.coercion.left)
        raise StuckError(f"fst of a non-pair value: {term}")

    if isinstance(term, Snd):
        target = term.arg
        if isinstance(target, Pair):
            return target.right
        if isinstance(target, Coerce) and isinstance(target.coercion, ProdCo):
            return Coerce(Snd(target.subject), target.coercion.right)
        raise StuckError(f"snd of a non-pair value: {term}")

    if isinstance(term, Var):
        raise StuckError(f"free variable during evaluation: {term.name}")

    raise StuckError(f"no reduction rule applies to {term}")


def _step_inner(term: Term) -> Term:
    if isinstance(term, Op):
        for index, arg in enumerate(term.args):
            if not is_value(arg):
                new_args = list(term.args)
                new_args[index] = _step_inner(arg)
                return Op(term.op, tuple(new_args))
        return _reduce_redex(term)
    if isinstance(term, App):
        if not is_value(term.fun):
            return App(_step_inner(term.fun), term.arg)
        if not is_value(term.arg):
            return App(term.fun, _step_inner(term.arg))
        return _reduce_redex(term)
    if isinstance(term, Coerce):
        # Merging adjacent coercions takes priority over descending into the subject.
        if isinstance(term.subject, Coerce):
            return _reduce_redex(term)
        if not is_value(term.subject):
            return Coerce(_step_inner(term.subject), term.coercion)
        return _reduce_redex(term)
    if isinstance(term, If):
        if not is_value(term.cond):
            return If(_step_inner(term.cond), term.then_branch, term.else_branch)
        return _reduce_redex(term)
    if isinstance(term, Let):
        if not is_value(term.bound):
            return Let(term.name, _step_inner(term.bound), term.body)
        return _reduce_redex(term)
    if isinstance(term, Fix):
        if not is_value(term.fun):
            return Fix(_step_inner(term.fun), term.fun_type)
        return _reduce_redex(term)
    if isinstance(term, Pair):
        if not is_value(term.left):
            return Pair(_step_inner(term.left), term.right)
        if not is_value(term.right):
            return Pair(term.left, _step_inner(term.right))
        raise StuckError("a pair of values is a value; no step")
    if isinstance(term, Fst):
        if not is_value(term.arg):
            return Fst(_step_inner(term.arg))
        return _reduce_redex(term)
    if isinstance(term, Snd):
        if not is_value(term.arg):
            return Snd(_step_inner(term.arg))
        return _reduce_redex(term)
    return _reduce_redex(term)


def step(term: Term) -> Term | None:
    """Perform one λS reduction step (``None`` when ``term`` is a value or blame)."""
    if is_value(term) or isinstance(term, Blame):
        return None
    label = blame_in_evaluation_position(term)
    if label is not None:
        return Blame(label)
    return _step_inner(term)


# ---------------------------------------------------------------------------
# Multi-step evaluation, with optional space accounting
# ---------------------------------------------------------------------------


def trace(term: Term, fuel: int = DEFAULT_FUEL) -> Iterator[Term]:
    current = term
    yield current
    for _ in range(fuel):
        nxt = step(current)
        if nxt is None:
            return
        current = nxt
        yield current


def run(term: Term, fuel: int = DEFAULT_FUEL) -> Outcome:
    """Evaluate a λS term for at most ``fuel`` steps and report the outcome."""
    current = term
    for steps in range(fuel + 1):
        if isinstance(current, Blame):
            return Outcome("blame", label=current.label, steps=steps)
        if is_value(current):
            return Outcome("value", term=current, steps=steps)
        nxt = step(current)
        if nxt is None:  # pragma: no cover - unreachable for well-typed terms
            raise EvaluationError(f"term neither value nor blame yet has no step: {current}")
        current = nxt
    return Outcome("timeout", term=current, steps=fuel)
