"""Syntax of the space-efficient calculus λS (Figure 5): values and well-formedness.

λS terms are the shared terms plus coercion applications ``M⟨s⟩`` where ``s``
is a *canonical* (space-efficient) coercion.  Values carry at most one
top-level coercion::

    U     ::= k | λx:A.N | (V, W)                      uncoerced values
    V, W  ::= U | U⟨s → t⟩ | U⟨s × t⟩ | U⟨g ; G!⟩       values
"""

from __future__ import annotations

from ..core.terms import (
    Blame,
    Cast,
    Coerce,
    Const,
    Lam,
    Pair,
    Term,
    subterms,
)
from .coercions import FunCo, Injection, ProdCo, SpaceCoercion


def is_lambda_s_term(term: Term) -> bool:
    """Does ``term`` use only λS constructors (canonical coercions, no casts)?"""
    for sub in subterms(term):
        if isinstance(sub, Cast):
            return False
        if isinstance(sub, Coerce) and not isinstance(sub.coercion, SpaceCoercion):
            return False
    return True


def is_uncoerced_value(term: Term) -> bool:
    """Is ``term`` an uncoerced value ``U``?"""
    if isinstance(term, (Const, Lam)):
        return True
    if isinstance(term, Pair):
        return is_value(term.left) and is_value(term.right)
    return False


def is_value(term: Term) -> bool:
    """Is ``term`` a λS value (at most one top-level coercion)?"""
    if is_uncoerced_value(term):
        return True
    if isinstance(term, Coerce):
        if not is_uncoerced_value(term.subject):
            return False
        return isinstance(term.coercion, (FunCo, ProdCo, Injection))
    return False


def coercions_in(term: Term) -> list[SpaceCoercion]:
    return [t.coercion for t in subterms(term) if isinstance(t, Coerce)]


def blames_in(term: Term) -> list[Blame]:
    return [t for t in subterms(term) if isinstance(t, Blame)]


def pending_coercion_size(term: Term) -> int:
    """Total size of all coercions applied anywhere in a term.

    This is the space-accounting metric the benchmarks track along reduction
    traces: λS keeps it bounded by a constant (per program), λB/λC let it grow
    linearly with the number of boundary-crossing tail calls.
    """
    from .coercions import size as coercion_size

    total = 0
    for t in subterms(term):
        if isinstance(t, Coerce) and isinstance(t.coercion, SpaceCoercion):
            total += coercion_size(t.coercion)
    return total
