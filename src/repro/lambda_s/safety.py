"""Blame safety for λS (the λC definition, mutatis mutandis)."""

from __future__ import annotations

from ..core.labels import Label
from ..core.terms import Blame, Coerce, Term, subterms
from .coercions import coercion_safe_for, labels_of


def term_safe_for(term: Term, q: Label) -> bool:
    """``M safe q``: no coercion in ``M`` mentions ``q`` and ``M`` has no ``blame q``."""
    for sub in subterms(term):
        if isinstance(sub, Coerce) and not coercion_safe_for(sub.coercion, q):
            return False
        if isinstance(sub, Blame) and sub.label == q:
            return False
    return True


def mentioned_labels(term: Term) -> set[Label]:
    result: set[Label] = set()
    for sub in subterms(term):
        if isinstance(sub, Coerce):
            result |= labels_of(sub.coercion)
        elif isinstance(sub, Blame):
            result.add(sub.label)
    return result


def safe_labels_among(term: Term, labels) -> set[Label]:
    return {q for q in labels if term_safe_for(term, q)}
