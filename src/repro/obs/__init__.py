"""Observability: mediator tracing, metrics, space timelines, blame trails.

The substrate behind ``repro-gradual trace``, ``--trace``/``--metrics``,
the metrics-backed ``--profile``, and ``bench_space.py``'s exported
timeline series.  Four pieces:

* :mod:`~repro.obs.events` — the structured mediator lifecycle event schema;
* :mod:`~repro.obs.trace` — the :class:`Tracer` and the single global hook
  the engines test (``current_tracer()``; zero cost when ``None``);
* :mod:`~repro.obs.sinks` — where events go (list, ring buffer, JSON
  lines, Chrome trace format);
* :mod:`~repro.obs.metrics` — counters/gauges/histograms/phase timers;
* :mod:`~repro.obs.timeline` / :mod:`~repro.obs.blame` — derived views:
  the ``steps × pending`` space series and blame provenance trails.

Nothing in this package imports an engine at module level — the engines
import *us* from inside their dispatch modules.
"""

from .blame import blame_trail, format_trail
from .events import (
    EVENT_KINDS,
    EVENT_TYPES,
    describe_mediator,
    event_from_dict,
    mediator_labels,
)
from .metrics import TIME_BUCKETS, MetricsRegistry, phase, record_run
from .sinks import ChromeTraceSink, JsonLinesSink, ListSink, RingBufferSink, TeeSink
from .timeline import SpaceTimeline
from .trace import Tracer, activate, current_tracer, deactivate, tracing

__all__ = [
    "EVENT_KINDS",
    "EVENT_TYPES",
    "ChromeTraceSink",
    "JsonLinesSink",
    "ListSink",
    "MetricsRegistry",
    "RingBufferSink",
    "SpaceTimeline",
    "TIME_BUCKETS",
    "TeeSink",
    "Tracer",
    "activate",
    "blame_trail",
    "current_tracer",
    "deactivate",
    "describe_mediator",
    "event_from_dict",
    "format_trail",
    "mediator_labels",
    "phase",
    "record_run",
    "tracing",
]
