"""Pluggable trace sinks: where mediator lifecycle events go.

A sink is anything with ``emit(event: dict)`` and ``close()``.  Events
arrive as the JSON-ready dicts of :mod:`repro.obs.events`; sinks never see
engine objects, only small ints and strings, so any sink is safe to keep
around after the run.

* :class:`ListSink` — append everything to an in-memory list (tests, the
  ``trace`` subcommand's summary/blame-trail pass);
* :class:`RingBufferSink` — a bounded deque keeping the most recent events
  (always-on flight recorders that must not grow with the run);
* :class:`JsonLinesSink` — one JSON object per line, streamed to a file;
* :class:`ChromeTraceSink` — the Chrome trace-event JSON array (load it in
  ``chrome://tracing`` or Perfetto): pending-mediator counts as counter
  tracks over *steps as microseconds*, merges/applies/blame as instants;
* :class:`TeeSink` — fan one event stream out to several sinks.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterable


class ListSink:
    """Collect every event in order, in memory."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keep only the most recent ``capacity`` events — a flight recorder."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.events: deque[dict] = deque(maxlen=capacity)

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonLinesSink:
    """Stream events to a file, one JSON object per line."""

    def __init__(self, path_or_handle) -> None:
        if hasattr(path_or_handle, "write"):
            self._handle: IO[str] = path_or_handle
            self._owns = False
        else:
            self._handle = open(path_or_handle, "w")
            self._owns = True
        self.count = 0

    def emit(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True))
        self._handle.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._owns and not self._handle.closed:
            self._handle.close()
        else:
            self._handle.flush()


class ChromeTraceSink:
    """Translate the event stream into Chrome trace-event JSON.

    Steps stand in for timestamps (``ts`` is in fake microseconds), so the
    pending-mediator counter track plots ``steps × pending`` directly — the
    paper's space figure, in Perfetto.  The array is buffered and written on
    :meth:`close`.
    """

    def __init__(self, path_or_handle) -> None:
        if hasattr(path_or_handle, "write"):
            self._handle: IO[str] = path_or_handle
            self._owns = False
        else:
            self._handle = open(path_or_handle, "w")
            self._owns = True
        self._events: list[dict] = []
        self._defs: dict[int, str] = {}

    def emit(self, event: dict) -> None:
        ev = event.get("ev")
        common = {"pid": 1, "tid": 1}
        if ev == "mediator":
            self._defs[event["id"]] = event["repr"]
        elif ev in ("install", "merge", "collapse"):
            self._events.append({
                "name": "pending mediators", "ph": "C", "ts": event["step"],
                "args": {"mediators": event["pending"],
                         "size": event["pending_size"]},
                **common,
            })
            if ev == "merge":
                self._events.append({
                    "name": "merge", "ph": "i", "ts": event["step"], "s": "t",
                    "args": {"result": self._defs.get(event["m"], event["m"])},
                    **common,
                })
        elif ev == "blame":
            self._events.append({
                "name": f"blame {event['label']}", "ph": "i",
                "ts": event["step"], "s": "g", "args": {"m": event.get("m")},
                **common,
            })
        elif ev == "run_end":
            self._events.append({
                "name": f"run_end ({event['outcome']})", "ph": "i",
                "ts": event["steps"], "s": "g",
                "args": {"stats": event["stats"]}, **common,
            })

    def close(self) -> None:
        json.dump(self._events, self._handle)
        if self._owns and not self._handle.closed:
            self._handle.close()
        else:
            self._handle.flush()


class TeeSink:
    """Fan one event stream out to several sinks."""

    def __init__(self, sinks: Iterable) -> None:
        self.sinks = list(sinks)

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
