"""Blame provenance trails: which compositions produced the failing mediator.

When blame raises, the scalar answer — a label — says *who* is blamed, but
not *how* the mediator that failed came to exist.  On the space-efficient
engines that mediator is almost never the one the programmer wrote: it is
the result of a chain of ``#``/``∘`` compositions (continuation merges,
tail-call merges, proxy absorptions).  The trace records every one of those
compositions as a ``merge`` event carrying small-int mediator references,
so the chain is reconstructible after the fact: start from the blame
event's mediator and repeatedly expand each reference through the **last**
merge that produced it before the failure.

This is the direct input for a rational-programmer-style blame evaluation
(Lazarek et al.): a trail is exactly the sequence of boundaries a rational
programmer would walk when deciding whether the blamed boundary is the
faulty one.
"""

from __future__ import annotations

from typing import Iterable


def blame_trail(events: Iterable[dict], max_depth: int = 64) -> dict | None:
    """Reconstruct the composition ancestry of the blamed mediator.

    ``events`` is a trace (dicts, as any sink received them).  Returns
    ``None`` when the trace has no blame event.  Otherwise::

        {
          "label": str,              # the blamed label
          "step": int,               # when blame raised
          "mediator": str | None,    # printed form of the failing mediator
          "labels": [str, ...],      # labels carried by the failing mediator
          "trail": [                 # compositions, most recent first
            {"step": s, "result": repr, "new": repr, "prev": repr},
            ...
          ],
        }

    The trail walks backwards: the last merge producing the failing
    mediator, then the last merges producing *its* inputs, and so on — a
    breadth-first ancestry cut off at ``max_depth`` entries.  Mediators the
    trace never saw composed (they were installed directly) terminate their
    branch.  With a :class:`~repro.obs.sinks.RingBufferSink` the oldest
    definitions may have been evicted; unknown references print as ``#<id>``.
    """
    defs: dict[int, dict] = {}
    merges: list[dict] = []
    blame: dict | None = None
    for event in events:
        ev = event.get("ev")
        if ev == "mediator":
            defs[event["id"]] = event
        elif ev == "merge":
            merges.append(event)
        elif ev == "blame":
            blame = event  # the last blame wins (there is at most one per run)
    if blame is None:
        return None

    def name(mid: int | None) -> str | None:
        if mid is None:
            return None
        definition = defs.get(mid)
        return definition["repr"] if definition else f"#{mid}"

    trail: list[dict] = []
    failing = blame.get("m")
    if failing is not None:
        # The last merge producing each mediator id, for O(1) ancestry steps.
        produced_by: dict[int, dict] = {}
        for merge in merges:
            produced_by[merge["m"]] = merge
        frontier = [failing]
        seen: set[int] = set()
        while frontier and len(trail) < max_depth:
            mid = frontier.pop(0)
            if mid in seen:
                continue  # compositions can be idempotent (m # m = m)
            seen.add(mid)
            merge = produced_by.get(mid)
            if merge is None:
                continue
            trail.append({
                "step": merge["step"],
                "result": name(merge["m"]),
                "new": name(merge["new"]),
                "prev": name(merge["prev"]),
            })
            frontier.append(merge["new"])
            frontier.append(merge["prev"])

    definition = defs.get(failing) if failing is not None else None
    return {
        "label": blame["label"],
        "step": blame["step"],
        "mediator": name(failing),
        "labels": list(definition["labels"]) if definition else [],
        "trail": trail,
    }


def format_trail(trail: dict) -> str:
    """Render a trail as indented text for the ``trace`` subcommand."""
    lines = [f"blame {trail['label']} at step {trail['step']}"]
    if trail["mediator"] is not None:
        lines.append(f"  failing mediator: {trail['mediator']}")
    if trail["labels"]:
        lines.append(f"  labels in mediator: {', '.join(trail['labels'])}")
    if trail["trail"]:
        lines.append("  composed from (most recent first):")
        for entry in trail["trail"]:
            lines.append(
                f"    step {entry['step']}: {entry['new']}  #  {entry['prev']}"
                f"  =>  {entry['result']}"
            )
    else:
        lines.append("  (installed directly; no compositions recorded)")
    return "\n".join(lines)
