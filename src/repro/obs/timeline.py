"""The space-profile timeline: ``steps × (pending_mediators, pending_size)``.

This turns the paper's space figure — λB/λC pending casts growing linearly
with boundary crossings while λS stays bounded — from a pair of scalar
maxima into exportable series data.  The timeline is itself a trace sink:
pending counts change *only* at install/merge/collapse events, so sampling
those events reconstructs the exact step function of the run with no
per-step cost.

Long runs downsample: above ``2 × max_points`` the series rebuckets to the
per-bucket **maximum** (ties keep the later point), which preserves exactly
the envelope the bounded-vs-linear contrast lives in.  A bounded λS series
stays visibly flat; a linear λC series stays visibly linear.

Used by ``benchmarks/bench_space.py`` (the ``--json`` artifact carries one
series per calculus × size) and the ``repro-gradual trace`` subcommand.
"""

from __future__ import annotations


class SpaceTimeline:
    """A trace sink collecting the pending-mediator step function.

    Wrap another sink with ``inner=`` to tee: the timeline samples the
    space events and forwards *everything* downstream.
    """

    def __init__(self, max_points: int = 512, inner=None) -> None:
        self.max_points = max_points
        self.inner = inner
        #: (step, pending_mediators, pending_size) sample points.
        self.points: list[tuple[int, int, int]] = []
        #: True once downsampling has dropped intermediate points.
        self.downsampled = False

    def emit(self, event: dict) -> None:
        ev = event.get("ev")
        if ev == "install" or ev == "merge" or ev == "collapse":
            self.points.append(
                (event["step"], event["pending"], event["pending_size"])
            )
            if len(self.points) > 2 * self.max_points:
                self._compress()
        if self.inner is not None:
            self.inner.emit(event)

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()

    def _compress(self) -> None:
        """Rebucket to per-bucket maxima (by pending count, then size)."""
        points = self.points
        stride = -(-len(points) // self.max_points)  # ceil division
        kept: list[tuple[int, int, int]] = []
        for start in range(0, len(points), stride):
            bucket = points[start:start + stride]
            best = bucket[0]
            for point in bucket[1:]:
                if (point[1], point[2]) >= (best[1], best[2]):
                    best = point
            kept.append(best)
        self.points = kept
        self.downsampled = True

    def series(self) -> dict:
        """The timeline as parallel JSON-ready arrays plus its maxima."""
        steps = [p[0] for p in self.points]
        pending = [p[1] for p in self.points]
        sizes = [p[2] for p in self.points]
        return {
            "steps": steps,
            "pending_mediators": pending,
            "pending_size": sizes,
            "max_pending_mediators": max(pending, default=0),
            "max_pending_size": max(sizes, default=0),
            "points": len(self.points),
            "downsampled": self.downsampled,
        }
