"""The tracer: the single hook point every engine consults.

Zero-cost-when-off is the contract.  The module holds one global,
``_ACTIVE`` (``None`` almost always); each engine's ``run()`` reads it
*once* into a local via :func:`current_tracer`, and every hook in the
dispatch loops is guarded by a single ``if tracer is not None`` attribute
test on that local.  Hooks live only at mediator lifecycle sites — install,
merge, collapse, apply, blame — never on the per-instruction path, so the
pending-mediator timeline is *exact* (pending counts change only at those
sites) at no per-dispatch cost.

The tracer never mutates :class:`~repro.machine.profiler.MachineStats` or
any engine state, so a traced run's outcome — value/blame/steps/space
profile — is bit-identical to the untraced run by construction (asserted by
the hypothesis property in ``tests/test_obs.py``).

Mediator identity: definitions are interned per tracer — hashable mediators
(all four families) dedupe structurally, so the canonical interned
mediators a λS loop re-merges every iteration define once and every later
event carries a small integer reference.

Usage::

    from repro.obs import ListSink, tracing

    sink = ListSink()
    with tracing(sink):
        result = run_source(source, engine="rvm")
    events = sink.events

This module must stay importable by the engines without a cycle: nothing
here (or in :mod:`repro.obs.events`) imports an engine module at top level.
"""

from __future__ import annotations

from contextlib import contextmanager

from .events import (
    Apply,
    BlameEvent,
    Collapse,
    Install,
    MediatorDef,
    Merge,
    RunEnd,
    RunStart,
    describe_mediator,
)

_ACTIVE = None


def current_tracer():
    """The active tracer, or ``None`` — the engines' single hook test."""
    return _ACTIVE


def activate(tracer) -> None:
    """Install ``tracer`` as the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer


def deactivate() -> None:
    """Clear the active tracer."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(sink, program: str | None = None):
    """Trace every engine run in the ``with`` body into ``sink``.

    Restores the previously active tracer (if any) on exit and closes the
    sink.  Yields the :class:`Tracer` for inspection.
    """
    tracer = Tracer(sink, program=program)
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
        sink.close()


class Tracer:
    """Translates engine hook calls into schema events on a sink."""

    __slots__ = ("sink", "program", "_ids", "_next", "_size",
                 "_last_apply_step", "_last_apply_m")

    def __init__(self, sink, program: str | None = None):
        self.sink = sink
        self.program = program
        self._ids: dict = {}
        self._next = 0
        self._size = None  # the running policy's size(), set by run_start
        self._last_apply_step = -1
        self._last_apply_m: int | None = None

    # -- mediator identity --------------------------------------------------

    def mediator_id(self, m: object) -> int:
        """The small-int id of ``m``, emitting its definition on first sight."""
        try:
            ident = self._ids.get(m)
            key = m
        except TypeError:  # unhashable mediator: fall back to object identity
            key = id(m)
            ident = self._ids.get(key)
        if ident is None:
            ident = self._next
            self._next += 1
            self._ids[key] = ident
            size = None
            if self._size is not None:
                try:
                    size = self._size(m)
                except Exception:
                    size = None
            text, size, labels = describe_mediator(m, size)
            self.sink.emit(MediatorDef(ident, text, size, labels).to_dict())
        return ident

    # -- engine hooks --------------------------------------------------------

    def run_start(self, engine: str, policy) -> None:
        """A run began; ``policy`` supplies calculus, backend, and sizes."""
        self._size = policy.size
        self._last_apply_step = -1
        self._last_apply_m = None
        self.sink.emit(
            RunStart(engine, policy.name, policy.mediator, self.program).to_dict()
        )

    def install(self, step: int, m: object, pending: int, pending_size: int) -> None:
        self.sink.emit(
            Install(step, self.mediator_id(m), pending, pending_size).to_dict()
        )

    def merge(self, step: int, new: object, prev: object, merged: object,
              pending: int, pending_size: int) -> None:
        self.sink.emit(
            Merge(step, self.mediator_id(new), self.mediator_id(prev),
                  self.mediator_id(merged), pending, pending_size).to_dict()
        )

    def absorb(self, step: int, new: object, prev: object, merged: object,
               pending: int, pending_size: int) -> None:
        """A proxy mediator composed into a coercion at an apply site.

        Emits the same ``merge`` event (the composition *is* provenance) and
        marks ``merged`` as the mediator about to be applied, so blame raised
        by the application lands on the composed mediator.
        """
        mid = self.mediator_id(merged)
        self.sink.emit(
            Merge(step, self.mediator_id(new), self.mediator_id(prev), mid,
                  pending, pending_size).to_dict()
        )
        self._last_apply_step = step
        self._last_apply_m = mid
        self.sink.emit(Apply(step, mid).to_dict())

    def collapse(self, step: int, m: object, pending: int, pending_size: int) -> None:
        """A pending mediator left the continuation and is about to apply."""
        mid = self.mediator_id(m)
        self.sink.emit(Collapse(step, mid, pending, pending_size).to_dict())
        self._last_apply_step = step
        self._last_apply_m = mid
        self.sink.emit(Apply(step, mid).to_dict())

    def apply(self, step: int, m: object) -> None:
        mid = self.mediator_id(m)
        self._last_apply_step = step
        self._last_apply_m = mid
        self.sink.emit(Apply(step, mid).to_dict())

    def blame(self, step: int, label) -> None:
        m = self._last_apply_m if self._last_apply_step == step else None
        self.sink.emit(BlameEvent(step, str(label), m).to_dict())

    def run_end(self, outcome: str, stats: dict) -> None:
        self.sink.emit(RunEnd(outcome, stats.get("steps", 0), stats).to_dict())
