"""The metrics registry: counters, gauges, histograms, and phase timers.

This is the structured replacement for ad-hoc stderr dumps: the pipeline
(``run_source``/``run_term``), the compile cache, the batch runner, and the
CLI's ``--profile``/``--metrics`` all record into one
:class:`MetricsRegistry` and export one JSON-ready snapshot.

Design constraints, per the observability contract:

* **No wall-clock in hot paths.**  The only timing primitive is the *phase*
  timer — one ``perf_counter()`` pair around a whole pipeline stage (parse,
  elaborate, lower, optimize, regalloc, cache, run), never per step or per
  event.  Engine-level quantities come from the engines' own step counters
  (:class:`~repro.machine.profiler.MachineStats`), folded in after the run.
* **Fixed histogram buckets.**  A histogram's bucket boundaries are fixed at
  creation and never rebalance, so snapshots from different shards (the
  batch runner's workers) aggregate by plain elementwise addition.
* **None is the off switch.**  Every producer takes ``metrics=None`` and
  guards each record with one ``is not None`` test — the same zero-cost
  discipline as the tracer.

The standard metric names are catalogued in the README's Observability
section; nothing enforces the catalogue — the registry is a namespace.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext

#: Default histogram boundaries for durations in seconds: powers-of-10 with
#: a 2.5/5 fill, 100 µs … 10 s.  Fixed so shard histograms merge by addition.
TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-written value (use :meth:`high` for a running maximum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def high(self, value) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Counts of observations per fixed bucket, plus sum/min/max.

    ``boundaries`` are the inclusive upper edges of the first ``len``
    buckets; one overflow bucket catches everything beyond the last edge
    (``counts`` has ``len(boundaries) + 1`` entries).
    """

    __slots__ = ("boundaries", "counts", "count", "sum", "min", "max")

    def __init__(self, boundaries=TIME_BUCKETS) -> None:
        self.boundaries = tuple(boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        index = 0
        for edge in self.boundaries:
            if value <= edge:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def to_dict(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class Phase:
    """Accumulated wall time of one named pipeline stage."""

    __slots__ = ("total_s", "count")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.count = 0


class MetricsRegistry:
    """A namespace of metrics, created on first touch, snapshot as JSON."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.phases: dict[str, Phase] = {}

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge()
        return metric

    def histogram(self, name: str, boundaries=TIME_BUCKETS) -> Histogram:
        """The named histogram; ``boundaries`` apply only on first creation
        (bucket edges are fixed for the histogram's lifetime)."""
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(boundaries)
        return metric

    @contextmanager
    def timer(self, name: str):
        """Time one pipeline phase (accumulates across repeated phases)."""
        phase = self.phases.get(name)
        if phase is None:
            phase = self.phases[name] = Phase()
        start = time.perf_counter()
        try:
            yield
        finally:
            phase.total_s += time.perf_counter() - start
            phase.count += 1

    def snapshot(self) -> dict:
        """One JSON-ready dict of everything recorded so far."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
            "phases": {
                name: {"total_s": p.total_s, "count": p.count}
                for name, p in sorted(self.phases.items())
            },
        }


def phase(metrics: MetricsRegistry | None, name: str):
    """``metrics.timer(name)``, or a no-op context when metrics are off."""
    if metrics is None:
        return nullcontext()
    return metrics.timer(name)


def record_run(metrics: MetricsRegistry | None, kind: str,
               stats: dict | None, engine: str) -> None:
    """Fold one engine run's outcome and stats snapshot into the registry.

    Called after the run (the engines never see the registry): outcome
    counters, step counters, and high-water gauges for the space profile.
    """
    if metrics is None:
        return
    metrics.counter("run.count").inc()
    metrics.counter(f"run.outcome.{kind}").inc()
    metrics.counter(f"run.engine.{engine}").inc()
    if not stats:
        return
    metrics.counter("run.steps").inc(stats.get("steps", 0))
    for key in ("max_pending_mediators", "max_pending_size", "max_kont_depth"):
        if key in stats:
            metrics.gauge(f"run.{key}").high(stats[key])
    for key in ("merges", "mediator_applications", "cache_hits", "cache_misses"):
        if key in stats:
            metrics.counter(f"run.{key}").inc(stats[key])
