"""Structured mediator-lifecycle trace events.

Every event is a frozen dataclass with a ``kind`` tag and a JSON-ready
``to_dict`` / ``from_dict`` round trip (asserted kind by kind in
``tests/test_obs.py``).  The eight kinds cover one engine run end to end:

========== =================================================================
kind       meaning
========== =================================================================
run_start  an engine began executing (engine, calculus, mediator backend)
mediator   a mediator *definition*: the first time an interned mediator
           appears, its small integer id is bound to its printed form, its
           size, and the blame labels (with embedded source spans) it carries
install    a pending mediator was pushed onto the continuation / a frame's
           pending slot
merge      two pending mediators were composed into one (``#`` / ``∘``) —
           either continuation-level (λS's space rule) or a proxy being
           absorbed into a coercion at an apply site
collapse   a pending mediator left the continuation to be applied
apply      a mediator was applied to a value (dom coercions at call sites,
           coerce instructions, collapsed pending slots)
blame      evaluation allocated blame; ``m`` is the mediator whose
           application raised it when the trace can tell, else ``None``
run_end    the run finished (kind, steps, the full stats snapshot)
========== =================================================================

Mediator *references* (``m``, ``new``, ``prev``) are the small integers of
earlier ``mediator`` definitions, so a JSON-lines trace stays compact while
every composition chain remains reconstructible (see
:func:`repro.obs.blame.blame_trail`).

Events reference engine values but this module never imports an engine:
mediator introspection (:func:`describe_mediator`) dispatches lazily so the
engines can import :mod:`repro.obs.trace` without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from dataclasses import is_dataclass
from typing import Any

from ..core.labels import Label


@dataclass(frozen=True)
class RunStart:
    """An engine began executing."""

    kind = "run_start"
    engine: str
    calculus: str
    backend: str
    program: str | None = None

    def to_dict(self) -> dict:
        d = {"ev": self.kind, "engine": self.engine, "calculus": self.calculus,
             "backend": self.backend}
        if self.program is not None:
            d["program"] = self.program
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunStart":
        return cls(d["engine"], d["calculus"], d["backend"], d.get("program"))


@dataclass(frozen=True)
class MediatorDef:
    """The first appearance of a mediator: id → printed form, size, labels."""

    kind = "mediator"
    id: int
    repr: str
    size: int | None
    labels: tuple[str, ...]

    def to_dict(self) -> dict:
        return {"ev": self.kind, "id": self.id, "repr": self.repr,
                "size": self.size, "labels": list(self.labels)}

    @classmethod
    def from_dict(cls, d: dict) -> "MediatorDef":
        return cls(d["id"], d["repr"], d["size"], tuple(d["labels"]))


@dataclass(frozen=True)
class Install:
    """A pending mediator was pushed (continuation frame or pending slot)."""

    kind = "install"
    step: int
    m: int
    pending: int
    pending_size: int

    def to_dict(self) -> dict:
        return {"ev": self.kind, "step": self.step, "m": self.m,
                "pending": self.pending, "pending_size": self.pending_size}

    @classmethod
    def from_dict(cls, d: dict) -> "Install":
        return cls(d["step"], d["m"], d["pending"], d["pending_size"])


@dataclass(frozen=True)
class Merge:
    """``new`` composed with ``prev`` produced ``m`` (``#`` / ``∘``)."""

    kind = "merge"
    step: int
    new: int
    prev: int
    m: int
    pending: int
    pending_size: int

    def to_dict(self) -> dict:
        return {"ev": self.kind, "step": self.step, "new": self.new,
                "prev": self.prev, "m": self.m,
                "pending": self.pending, "pending_size": self.pending_size}

    @classmethod
    def from_dict(cls, d: dict) -> "Merge":
        return cls(d["step"], d["new"], d["prev"], d["m"],
                   d["pending"], d["pending_size"])


@dataclass(frozen=True)
class Collapse:
    """A pending mediator left the continuation to be applied."""

    kind = "collapse"
    step: int
    m: int
    pending: int
    pending_size: int

    def to_dict(self) -> dict:
        return {"ev": self.kind, "step": self.step, "m": self.m,
                "pending": self.pending, "pending_size": self.pending_size}

    @classmethod
    def from_dict(cls, d: dict) -> "Collapse":
        return cls(d["step"], d["m"], d["pending"], d["pending_size"])


@dataclass(frozen=True)
class Apply:
    """A mediator was applied to a value."""

    kind = "apply"
    step: int
    m: int

    def to_dict(self) -> dict:
        return {"ev": self.kind, "step": self.step, "m": self.m}

    @classmethod
    def from_dict(cls, d: dict) -> "Apply":
        return cls(d["step"], d["m"])


@dataclass(frozen=True)
class BlameEvent:
    """Evaluation allocated blame (``m``: the failing mediator, when known)."""

    kind = "blame"
    step: int
    label: str
    m: int | None = None

    def to_dict(self) -> dict:
        return {"ev": self.kind, "step": self.step, "label": self.label,
                "m": self.m}

    @classmethod
    def from_dict(cls, d: dict) -> "BlameEvent":
        return cls(d["step"], d["label"], d.get("m"))


@dataclass(frozen=True)
class RunEnd:
    """The run finished; carries the final stats snapshot."""

    kind = "run_end"
    outcome: str
    steps: int
    stats: dict

    def to_dict(self) -> dict:
        return {"ev": self.kind, "outcome": self.outcome, "steps": self.steps,
                "stats": dict(self.stats)}

    @classmethod
    def from_dict(cls, d: dict) -> "RunEnd":
        return cls(d["outcome"], d["steps"], dict(d["stats"]))


EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (RunStart, MediatorDef, Install, Merge, Collapse, Apply,
                BlameEvent, RunEnd)
}

#: Every event kind, in roughly the order a trace emits them.
EVENT_KINDS = tuple(EVENT_TYPES)


def event_from_dict(d: dict) -> Any:
    """Rebuild the typed event from its ``to_dict`` form (schema round trip)."""
    try:
        cls = EVENT_TYPES[d["ev"]]
    except KeyError:
        raise ValueError(f"unknown trace event kind: {d.get('ev')!r}") from None
    return cls.from_dict(d)


# ---------------------------------------------------------------------------
# Mediator introspection (engine-agnostic, lazily dispatched)
# ---------------------------------------------------------------------------


def mediator_labels(m: object) -> tuple[str, ...]:
    """Every blame label reachable inside a mediator, as printed strings.

    Works structurally — dataclass fields, ``__slots__``, ``__dict__``,
    tuples — so one walk covers all four mediator families (λB casts, λC
    coercions, λS canonical coercions, threesomes) without importing any of
    them.  Label names embed source spans (``file:line:col``) when the front
    end provided them, so these strings *are* the event's source spans.
    """
    found: list[str] = []
    seen: set[int] = set()

    def walk(node: object) -> None:
        if node is None or isinstance(node, (str, int, float, bool)):
            return
        if isinstance(node, Label):
            text = str(node)
            if text not in found:
                found.append(text)
            return
        key = id(node)
        if key in seen:
            return
        seen.add(key)
        if isinstance(node, (tuple, list)):
            for item in node:
                walk(item)
            return
        if is_dataclass(node):
            for f in fields(node):
                walk(getattr(node, f.name, None))
            return
        slots = getattr(type(node), "__slots__", None)
        if slots:
            for name in slots:
                walk(getattr(node, name, None))
            return
        attrs = getattr(node, "__dict__", None)
        if attrs:
            for value in attrs.values():
                walk(value)

    walk(m)
    return tuple(found)


def describe_mediator(m: object, size: int | None = None) -> tuple[str, int | None, tuple[str, ...]]:
    """``(printed form, size, labels)`` of a mediator, best effort."""
    return str(m), size, mediator_labels(m)
