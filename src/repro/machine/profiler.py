"""Space and time accounting for the abstract machines.

The quantities of interest (following Herman et al. 2007/2010 and Section 1
of the paper):

* ``max_pending_mediators`` — the largest number of pending cast/coercion
  frames on the continuation at any point of the run;
* ``max_pending_size`` — the largest total *size* of those pending mediators;
* ``max_kont_depth`` — the deepest continuation overall (pending mediators
  plus ordinary frames);
* ``steps`` — machine transitions taken.

For boundary-crossing tail-recursive programs, the first two grow linearly
with the number of calls on the λB and λC machines and stay bounded on the λS
machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MachineStats:
    """Mutable counters updated by the machine while it runs."""

    steps: int = 0
    max_kont_depth: int = 0
    max_pending_mediators: int = 0
    max_pending_size: int = 0
    pending_mediators: int = field(default=0, repr=False)
    pending_size: int = field(default=0, repr=False)
    merges: int = 0
    mediator_applications: int = 0
    #: Dynamic frequencies of statically adjacent opcode pairs, filled only
    #: when the VM runs with pair profiling on (``(op1, op2) -> count``).
    #: This is the measurement behind the optimizer's superinstruction set.
    opcode_pairs: dict | None = field(default=None, repr=False)
    #: Per-opcode dispatch counts (``op -> count``), filled only when a VM
    #: runs with ``--profile`` on.  Keys are opcode numbers of the running
    #: IR (stack or register); the CLI maps them to names before printing.
    opcode_counts: dict | None = field(default=None, repr=False)
    #: Inline mediator-cache consults that hit/missed, counted by the VMs at
    #: every cache-cell consult (``-O2`` only; both stay 0 below that).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Did the engine run with inline mediator caches allocated?  Set by the
    #: VMs from ``code.caches``; makes a ``-O2`` run that never consulted a
    #: cache distinguishable from a ``-O0`` run in the snapshot (both would
    #: otherwise drop the zero hit/miss counters).
    inline_caches: bool = field(default=False, repr=False)

    def note_depth(self, depth: int) -> None:
        if depth > self.max_kont_depth:
            self.max_kont_depth = depth

    def push_mediator(self, size: int) -> None:
        self.pending_mediators += 1
        self.pending_size += size
        self._refresh()

    def pop_mediator(self, size: int) -> None:
        self.pending_mediators -= 1
        self.pending_size -= size

    def replace_mediator(self, old_size: int, new_size: int) -> None:
        self.pending_size += new_size - old_size
        self.merges += 1
        self._refresh()

    def _refresh(self) -> None:
        if self.pending_mediators > self.max_pending_mediators:
            self.max_pending_mediators = self.pending_mediators
        if self.pending_size > self.max_pending_size:
            self.max_pending_size = self.pending_size

    def snapshot(self) -> dict[str, int]:
        result = {
            "steps": self.steps,
            "max_kont_depth": self.max_kont_depth,
            "max_pending_mediators": self.max_pending_mediators,
            "max_pending_size": self.max_pending_size,
            "merges": self.merges,
            "mediator_applications": self.mediator_applications,
        }
        if self.opcode_pairs is not None:
            result["opcode_pairs"] = dict(self.opcode_pairs)
        if self.inline_caches or self.cache_hits or self.cache_misses:
            result["cache_hits"] = self.cache_hits
            result["cache_misses"] = self.cache_misses
        if self.opcode_counts is not None:
            result["opcode_counts"] = dict(self.opcode_counts)
        return result
