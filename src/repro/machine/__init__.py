"""CEK-style abstract machines with space profiling.

* :data:`MACHINE_B` — interprets λB terms (casts, no merging of pending casts);
* :data:`MACHINE_C` — interprets λC terms (coercions, no merging);
* :data:`MACHINE_S` — interprets λS terms (canonical coercions, pending
  coercions merged with ``#`` — the space-efficient implementation).

``run_on_machine(term, "S")`` translates a λB term as needed and runs it on
the requested machine, returning the outcome together with the space
statistics of the run.
"""

from __future__ import annotations

from ..core.errors import UsageError
from ..core.terms import Term
from ..translate import b_to_c, c_to_s
from .cek import DEFAULT_MACHINE_FUEL, CEKMachine, MachineOutcome
from .policy import (
    BLAME_POLICY,
    COERCION_POLICY,
    SPACE_POLICY,
    THREESOME_POLICY,
    BlamePolicy,
    CastMediator,
    CoercionPolicy,
    MediationPolicy,
    SpacePolicy,
    ThreesomePolicy,
)
from .profiler import MachineStats
from .values import (
    Environment,
    MachineValue,
    MClosure,
    MConst,
    MFixWrap,
    MPair,
    MProxy,
    machine_value_to_python,
)

MACHINE_B = CEKMachine(BLAME_POLICY)
MACHINE_C = CEKMachine(COERCION_POLICY)
MACHINE_S = CEKMachine(SPACE_POLICY)
#: The λS machine with the threesome (labeled-type) mediator backend.
MACHINE_S_THREESOME = CEKMachine(THREESOME_POLICY)

MACHINES = {"B": MACHINE_B, "C": MACHINE_C, "S": MACHINE_S}

#: The available pending-mediator representations of the λS machine/VM.
MEDIATORS = ("coercion", "threesome")


def run_on_machine(
    term_b: Term,
    calculus: str = "S",
    fuel: int = DEFAULT_MACHINE_FUEL,
    mediator: str = "coercion",
) -> MachineOutcome:
    """Run a λB term on the machine of the chosen calculus.

    The term is translated with ``|·|BC`` (and ``|·|CS``) as required; pass
    ``"B"`` to run the casts directly.  ``mediator`` selects the pending-cast
    representation of the λS machine: canonical coercions merged with ``#``
    (``"coercion"``, the default) or threesomes merged with labeled-type
    composition ``∘`` (``"threesome"``); λB and λC have no threesome form.
    """
    calculus = calculus.upper()
    if mediator not in MEDIATORS:
        raise UsageError(f"unknown mediator {mediator!r}; expected one of {MEDIATORS}")
    if mediator == "threesome" and calculus != "S":
        raise UsageError(
            f"the threesome mediator backend implements λS only "
            f"(requested calculus {calculus!r})"
        )
    if calculus == "B":
        return MACHINE_B.run(term_b, fuel)
    term_c = b_to_c(term_b)
    if calculus == "C":
        return MACHINE_C.run(term_c, fuel)
    if calculus == "S":
        machine = MACHINE_S_THREESOME if mediator == "threesome" else MACHINE_S
        return machine.run(c_to_s(term_c), fuel)
    raise ValueError(f"unknown calculus {calculus!r}; expected 'B', 'C', or 'S'")


__all__ = [
    "DEFAULT_MACHINE_FUEL",
    "CEKMachine",
    "MachineOutcome",
    "MachineStats",
    "BlamePolicy",
    "CoercionPolicy",
    "SpacePolicy",
    "ThreesomePolicy",
    "MediationPolicy",
    "CastMediator",
    "BLAME_POLICY",
    "COERCION_POLICY",
    "SPACE_POLICY",
    "THREESOME_POLICY",
    "MACHINE_B",
    "MACHINE_C",
    "MACHINE_S",
    "MACHINE_S_THREESOME",
    "MACHINES",
    "MEDIATORS",
    "run_on_machine",
    "Environment",
    "MachineValue",
    "MClosure",
    "MConst",
    "MFixWrap",
    "MPair",
    "MProxy",
    "machine_value_to_python",
]
