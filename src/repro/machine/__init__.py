"""CEK-style abstract machines with space profiling.

* :data:`MACHINE_B` — interprets λB terms (casts, no merging of pending casts);
* :data:`MACHINE_C` — interprets λC terms (coercions, no merging);
* :data:`MACHINE_S` — interprets λS terms (canonical coercions, pending
  coercions merged with ``#`` — the space-efficient implementation).

``run_on_machine(term, "S")`` translates a λB term as needed and runs it on
the requested machine, returning the outcome together with the space
statistics of the run.
"""

from __future__ import annotations

from ..core.errors import UsageError
from ..core.terms import Term
from ..translate import b_to_c, c_to_s
from .cek import DEFAULT_MACHINE_FUEL, CEKMachine, MachineOutcome
from .policy import (
    BLAME_POLICY,
    COERCION_POLICY,
    SPACE_POLICY,
    THREESOME_POLICY,
    BlamePolicy,
    CastMediator,
    CoercionPolicy,
    MediationPolicy,
    SpacePolicy,
    ThreesomePolicy,
)
from .profiler import MachineStats
from .values import (
    Environment,
    MachineValue,
    MClosure,
    MConst,
    MFixWrap,
    MPair,
    MProxy,
    machine_value_to_python,
)

MACHINE_B = CEKMachine(BLAME_POLICY)
MACHINE_C = CEKMachine(COERCION_POLICY)
MACHINE_S = CEKMachine(SPACE_POLICY)

MACHINES = {"B": MACHINE_B, "C": MACHINE_C, "S": MACHINE_S}


def __getattr__(name: str):
    # Backed by the enforcement-semantics registry, resolved lazily: the
    # registry imports this package's submodules, so a top-level import here
    # would be circular.  ``MACHINE_S_THREESOME`` and ``MEDIATORS`` remain
    # importable for compatibility, but the registry is the source of truth.
    if name == "MACHINE_S_THREESOME":
        from ..semantics import SEMANTICS

        return SEMANTICS["threesome"].machine
    if name == "MEDIATORS":
        from ..semantics import NATURAL_SEMANTICS_NAMES

        return NATURAL_SEMANTICS_NAMES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_on_machine(
    term_b: Term,
    calculus: str = "S",
    fuel: int = DEFAULT_MACHINE_FUEL,
    mediator: str = "coercion",
) -> MachineOutcome:
    """Run a λB term on the machine of the chosen calculus.

    The term is translated with ``|·|BC`` (and ``|·|CS``) as required; pass
    ``"B"`` to run the casts directly.  ``mediator`` names the enforcement
    semantics of the λS machine — any entry of the
    :data:`~repro.semantics.SEMANTICS` registry (``"coercion"`` the Natural
    default, ``"threesome"``, ``"transient"``, ``"erasure"``); λB and λC
    only have their native cast/coercion form.
    """
    from ..semantics import resolve

    calculus = calculus.upper()
    semantics = resolve(mediator)
    if mediator != "coercion" and calculus != "S":
        raise UsageError(
            f"the {mediator!r} enforcement semantics implements λS only "
            f"(requested calculus {calculus!r})"
        )
    if calculus == "B":
        return MACHINE_B.run(term_b, fuel)
    term_c = b_to_c(term_b)
    if calculus == "C":
        return MACHINE_C.run(term_c, fuel)
    if calculus == "S":
        return semantics.machine.run(c_to_s(term_c), fuel)
    raise ValueError(f"unknown calculus {calculus!r}; expected 'B', 'C', or 'S'")


__all__ = [
    "DEFAULT_MACHINE_FUEL",
    "CEKMachine",
    "MachineOutcome",
    "MachineStats",
    "BlamePolicy",
    "CoercionPolicy",
    "SpacePolicy",
    "ThreesomePolicy",
    "MediationPolicy",
    "CastMediator",
    "BLAME_POLICY",
    "COERCION_POLICY",
    "SPACE_POLICY",
    "THREESOME_POLICY",
    "MACHINE_B",
    "MACHINE_C",
    "MACHINE_S",
    "MACHINE_S_THREESOME",
    "MACHINES",
    "MEDIATORS",
    "run_on_machine",
    "Environment",
    "MachineValue",
    "MClosure",
    "MConst",
    "MFixWrap",
    "MPair",
    "MProxy",
    "machine_value_to_python",
]
