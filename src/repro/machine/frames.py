"""Continuation frames for the CEK-style abstract machines.

A continuation is a Python list of frames, innermost last (so pushing and
popping are O(1) at the end of the list).  The frame of interest for the
space story is :class:`KMediate` — a pending cast/coercion waiting for the
value of the term it surrounds.  In the λB and λC machines these frames pile
up under boundary-crossing tail calls; the λS machine *merges* a newly pushed
``KMediate`` into one already at the top of the continuation using the
composition operator ``#``, which is exactly the space-efficiency mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.terms import Term
from ..core.types import FunType, Type
from .values import Environment, MachineValue


class Frame:
    """Abstract base class of continuation frames."""

    __slots__ = ()


@dataclass
class KAppFun(Frame):
    """Waiting for the function of an application; the argument is still a term."""

    arg: Term
    env: Environment


@dataclass
class KAppArg(Frame):
    """Waiting for the argument of an application; the function is a value."""

    fun: MachineValue


@dataclass
class KCallWith(Frame):
    """Waiting for a function value to apply to an already-evaluated argument."""

    arg: MachineValue


@dataclass
class KOp(Frame):
    """Waiting for the next operand of a primitive operator."""

    op: str
    done: tuple[MachineValue, ...]
    remaining: tuple[Term, ...]
    env: Environment


@dataclass
class KIf(Frame):
    then_branch: Term
    else_branch: Term
    env: Environment


@dataclass
class KLet(Frame):
    name: str
    body: Term
    env: Environment


@dataclass
class KFix(Frame):
    """Waiting for the functional of ``fix`` to become a value."""

    fun_type: FunType


@dataclass
class KPairLeft(Frame):
    right: Term
    env: Environment


@dataclass
class KPairRight(Frame):
    left: MachineValue


@dataclass
class KFst(Frame):
    pass


@dataclass
class KSnd(Frame):
    pass


@dataclass
class KMediate(Frame):
    """A pending mediator (cast or coercion) around the running computation."""

    mediator: object


Kont = list


def pending_mediators(kont: Sequence[Frame]) -> list[object]:
    """The mediators of all pending :class:`KMediate` frames, outermost first."""
    return [frame.mediator for frame in kont if isinstance(frame, KMediate)]
