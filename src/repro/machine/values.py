"""Machine values for the CEK-style abstract machines.

The abstract machines (cf. Siek & Garcia 2012) use environments and closures
rather than substitution, so they have their own value representation:

* :class:`MConst` — a base-type constant;
* :class:`MClosure` — a λ-abstraction closed over its environment;
* :class:`MPair` — a pair of machine values;
* :class:`MProxy` — a value wrapped by a mediator (a cast in the λB machine,
  a coercion in the λC machine, a canonical coercion in the λS machine); this
  is how higher-order casts and injections into ``?`` are represented;
* :class:`MFixWrap` — the recursive wrapper produced by ``fix``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.terms import Term
from ..core.types import FunType, Type


class MachineValue:
    """Abstract base class of machine values."""

    __slots__ = ()


class MFunctionValue(MachineValue):
    """Marker base for function-like values (closures, fix wrappers).

    The bytecode VM (:mod:`repro.compiler.vm`) has its own closure
    representation; subclassing this marker is all it takes for the shared
    projection :func:`machine_value_to_python` to report it as a function.
    """

    __slots__ = ()


@dataclass(frozen=True)
class MConst(MachineValue):
    value: object
    type: Type


@dataclass(frozen=True)
class MClosure(MFunctionValue):
    param: str
    param_type: Type
    body: Term
    env: "Environment"


@dataclass(frozen=True)
class MPair(MachineValue):
    left: MachineValue
    right: MachineValue


@dataclass(frozen=True)
class MProxy(MachineValue):
    """A value guarded by a mediator (function/product proxy or injection)."""

    under: MachineValue
    mediator: object


@dataclass(frozen=True)
class MFixWrap(MFunctionValue):
    """The value of ``fix V``'s unrolling wrapper ``λx. (fix V) x``."""

    functional: MachineValue
    fun_type: FunType


class Environment:
    """A persistent environment mapping variable names to machine values."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[str, MachineValue] | None = None):
        self._bindings: dict[str, MachineValue] = dict(bindings or {})

    @staticmethod
    def empty() -> "Environment":
        return Environment()

    def extend(self, name: str, value: MachineValue) -> "Environment":
        new = dict(self._bindings)
        new[name] = value
        return Environment(new)

    def lookup(self, name: str) -> MachineValue:
        try:
            return self._bindings[name]
        except KeyError as exc:
            raise KeyError(f"unbound variable at run time: {name!r}") from exc

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Environment({sorted(self._bindings)})"


def proxy_depth(value: MachineValue) -> int:
    """Number of mediator layers wrapped around a value."""
    depth = 0
    current = value
    while isinstance(current, MProxy):
        depth += 1
        current = current.under
    return depth


def machine_value_to_python(value: MachineValue) -> object:
    """Project a first-order machine value to a Python object (for reporting)."""
    if isinstance(value, MConst):
        return value.value
    if isinstance(value, MPair):
        return (machine_value_to_python(value.left), machine_value_to_python(value.right))
    if isinstance(value, MProxy):
        return machine_value_to_python(value.under)
    if isinstance(value, MFunctionValue):
        return "<function>"
    raise TypeError(f"unknown machine value: {value!r}")
