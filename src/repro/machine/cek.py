"""A CEK-style abstract machine shared by the three calculi.

The machine is the implementation-level counterpart of the small-step
semantics (cf. Siek & Garcia 2012): environments and closures instead of
substitution, and an explicit continuation whose pending cast/coercion frames
make the space behaviour of gradually typed programs directly measurable.

The machine is generic over a :class:`repro.machine.policy.MediationPolicy`;
instantiating it with the λB, λC, or λS policy yields the three machines.
The single policy-controlled difference that matters for space is whether a
newly pushed pending mediator is merged (``#``) into one already at the top
of the continuation — only the λS machine does this.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import EvaluationError, FuelExhausted
from ..core.labels import Label
from ..core.ops import op_spec
from ..core.terms import (
    App,
    Blame,
    Cast,
    Coerce,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Term,
    Var,
)
from ..obs.trace import current_tracer
from .frames import (
    Frame,
    KAppArg,
    KAppFun,
    KCallWith,
    KFix,
    KFst,
    KIf,
    KLet,
    KMediate,
    KOp,
    KPairLeft,
    KPairRight,
    KSnd,
)
from .policy import MachineBlame, MediationPolicy
from .profiler import MachineStats
from .values import (
    Environment,
    MachineValue,
    MClosure,
    MConst,
    MFixWrap,
    MPair,
    MProxy,
    machine_value_to_python,
)

from ..core.fuel import DEFAULT_MACHINE_FUEL


@dataclass(frozen=True)
class MachineOutcome:
    """The result of a machine run: a value, blame, or fuel exhaustion."""

    kind: str
    value: MachineValue | None = None
    label: Label | None = None
    stats: dict | None = None

    @property
    def is_value(self) -> bool:
        return self.kind == "value"

    @property
    def is_blame(self) -> bool:
        return self.kind == "blame"

    @property
    def is_timeout(self) -> bool:
        return self.kind == "timeout"

    def python_value(self) -> object:
        if not self.is_value:
            raise EvaluationError(f"machine outcome is {self.kind}, not a value")
        return machine_value_to_python(self.value)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_value:
            return f"value {self.python_value()!r}"
        if self.is_blame:
            return f"blame {self.label}"
        return "timeout"


class CEKMachine:
    """The shared machine driver.

    Use :data:`repro.machine.MACHINE_B`, :data:`MACHINE_C`, or
    :data:`MACHINE_S`, or build one from a custom policy.
    """

    def __init__(self, policy: MediationPolicy):
        self.policy = policy

    # -- public API ---------------------------------------------------------

    def run(self, term: Term, fuel: int = DEFAULT_MACHINE_FUEL) -> MachineOutcome:
        """Run a closed term to an outcome, collecting space statistics."""
        stats = MachineStats()
        policy = self.policy
        # The observability hook: fetched once per run; every hook below is
        # behind one `is not None` test, so untraced runs pay ~nothing.  The
        # tracer never mutates `stats`, so traced outcomes are bit-identical.
        tracer = current_tracer()
        if tracer is not None:
            tracer.run_start("machine", policy)
        env = Environment.empty()
        kont: list[Frame] = []

        control: Term | None = term
        value: MachineValue | None = None
        mode_eval = True

        try:
            for _ in range(fuel):
                stats.steps += 1
                stats.note_depth(len(kont))

                if mode_eval:
                    term_now = control
                    if isinstance(term_now, Const):
                        value, mode_eval = MConst(term_now.value, term_now.type), False
                    elif isinstance(term_now, Var):
                        value, mode_eval = env.lookup(term_now.name), False
                    elif isinstance(term_now, Lam):
                        value, mode_eval = (
                            MClosure(term_now.param, term_now.param_type, term_now.body, env),
                            False,
                        )
                    elif isinstance(term_now, Blame):
                        snapshot = stats.snapshot()
                        if tracer is not None:
                            tracer.blame(stats.steps, term_now.label)
                            tracer.run_end("blame", snapshot)
                        return MachineOutcome("blame", label=term_now.label, stats=snapshot)
                    elif isinstance(term_now, Op):
                        if not term_now.args:
                            spec = op_spec(term_now.op)
                            value, mode_eval = MConst(spec.apply(()), spec.result_type), False
                        else:
                            kont.append(
                                KOp(term_now.op, (), tuple(term_now.args[1:]), env)
                            )
                            control = term_now.args[0]
                    elif isinstance(term_now, App):
                        kont.append(KAppFun(term_now.arg, env))
                        control = term_now.fun
                    elif isinstance(term_now, If):
                        kont.append(KIf(term_now.then_branch, term_now.else_branch, env))
                        control = term_now.cond
                    elif isinstance(term_now, Let):
                        kont.append(KLet(term_now.name, term_now.body, env))
                        control = term_now.bound
                    elif isinstance(term_now, Fix):
                        kont.append(KFix(term_now.fun_type))
                        control = term_now.fun
                    elif isinstance(term_now, Pair):
                        kont.append(KPairLeft(term_now.right, env))
                        control = term_now.left
                    elif isinstance(term_now, Fst):
                        kont.append(KFst())
                        control = term_now.arg
                    elif isinstance(term_now, Snd):
                        kont.append(KSnd())
                        control = term_now.arg
                    elif isinstance(term_now, (Cast, Coerce)):
                        if not policy.is_mediation_node(term_now):
                            raise EvaluationError(
                                f"the λ{policy.name} machine cannot interpret {term_now!r}"
                            )
                        self._push_mediator(kont, policy.term_mediator(term_now), stats, tracer)
                        control = term_now.subject
                    else:
                        raise EvaluationError(f"unknown term node: {term_now!r}")
                    continue

                # Apply mode: feed `value` to the top continuation frame.
                if not kont:
                    snapshot = stats.snapshot()
                    if tracer is not None:
                        tracer.run_end("value", snapshot)
                    return MachineOutcome("value", value=value, stats=snapshot)
                frame = kont.pop()

                if isinstance(frame, KMediate):
                    stats.pop_mediator(policy.size(frame.mediator))
                    stats.mediator_applications += 1
                    if tracer is not None:
                        tracer.collapse(stats.steps, frame.mediator,
                                        stats.pending_mediators, stats.pending_size)
                    value = policy.apply(value, frame.mediator)
                elif isinstance(frame, KAppFun):
                    kont.append(KAppArg(value))
                    control, env, mode_eval = frame.arg, frame.env, True
                elif isinstance(frame, KAppArg):
                    result = self._apply_function(frame.fun, value, kont, stats, tracer)
                    if result is not None:
                        control, env, mode_eval = result
                elif isinstance(frame, KCallWith):
                    result = self._apply_function(value, frame.arg, kont, stats, tracer)
                    if result is not None:
                        control, env, mode_eval = result
                elif isinstance(frame, KOp):
                    done = frame.done + (value,)
                    if frame.remaining:
                        kont.append(KOp(frame.op, done, frame.remaining[1:], frame.env))
                        control, env, mode_eval = frame.remaining[0], frame.env, True
                    else:
                        value = self._apply_op(frame.op, done)
                elif isinstance(frame, KIf):
                    if not isinstance(value, MConst) or not isinstance(value.value, bool):
                        raise EvaluationError(f"if-condition is not a boolean: {value!r}")
                    control = frame.then_branch if value.value else frame.else_branch
                    env, mode_eval = frame.env, True
                elif isinstance(frame, KLet):
                    control = frame.body
                    env, mode_eval = frame.env.extend(frame.name, value), True
                elif isinstance(frame, KFix):
                    wrapper = MFixWrap(value, frame.fun_type)
                    result = self._apply_function(value, wrapper, kont, stats, tracer)
                    if result is not None:
                        control, env, mode_eval = result
                elif isinstance(frame, KPairLeft):
                    kont.append(KPairRight(value))
                    control, env, mode_eval = frame.right, frame.env, True
                elif isinstance(frame, KPairRight):
                    value = MPair(frame.left, value)
                elif isinstance(frame, KFst):
                    value = self._project(value, first=True)
                elif isinstance(frame, KSnd):
                    value = self._project(value, first=False)
                else:  # pragma: no cover - defensive
                    raise EvaluationError(f"unknown continuation frame: {frame!r}")
        except MachineBlame as blame:
            snapshot = stats.snapshot()
            if tracer is not None:
                tracer.blame(stats.steps, blame.label)
                tracer.run_end("blame", snapshot)
            return MachineOutcome("blame", label=blame.label, stats=snapshot)

        snapshot = stats.snapshot()
        if tracer is not None:
            tracer.run_end("timeout", snapshot)
        return MachineOutcome("timeout", stats=snapshot)

    # -- helpers --------------------------------------------------------------

    def _push_mediator(self, kont: list[Frame], mediator: object,
                       stats: MachineStats, tracer=None) -> None:
        policy = self.policy
        if (
            policy.merges_pending_mediators
            and kont
            and isinstance(kont[-1], KMediate)
        ):
            existing = kont[-1].mediator
            merged = policy.compose(mediator, existing)
            stats.replace_mediator(policy.size(existing), policy.size(merged))
            kont[-1] = KMediate(merged)
            if tracer is not None:
                tracer.merge(stats.steps, mediator, existing, merged,
                             stats.pending_mediators, stats.pending_size)
            return
        kont.append(KMediate(mediator))
        stats.push_mediator(policy.size(mediator))
        if tracer is not None:
            tracer.install(stats.steps, mediator,
                           stats.pending_mediators, stats.pending_size)

    def _apply_function(
        self,
        fun: MachineValue,
        arg: MachineValue,
        kont: list[Frame],
        stats: MachineStats,
        tracer=None,
    ) -> tuple[Term, Environment, bool] | None:
        """Apply ``fun`` to ``arg``; returns a new (control, env, eval-mode) triple
        when evaluation should continue with a term, or ``None`` when the caller
        should stay in apply mode (never happens currently — kept for clarity)."""
        policy = self.policy
        # Unwrap proxy layers: coerce the argument, defer the result coercion.
        while isinstance(fun, MProxy) and policy.is_fun_proxy(fun.mediator):
            dom, cod = policy.fun_parts(fun.mediator)
            stats.mediator_applications += 1
            if tracer is not None:
                tracer.apply(stats.steps, dom)
            arg = policy.apply(arg, dom)
            self._push_mediator(kont, cod, stats, tracer)
            fun = fun.under
        if isinstance(fun, MClosure):
            return fun.body, fun.env.extend(fun.param, arg), True
        if isinstance(fun, MFixWrap):
            # (fix V) W  →  (V (fix-wrapper)) W
            kont.append(KCallWith(arg))
            return self._apply_function(fun.functional, MFixWrap(fun.functional, fun.fun_type), kont, stats, tracer)
        raise EvaluationError(f"application of a non-function value: {fun!r}")

    def _apply_op(self, op: str, operands: tuple[MachineValue, ...]) -> MachineValue:
        spec = op_spec(op)
        raw = []
        for operand in operands:
            if not isinstance(operand, MConst):
                raise EvaluationError(f"operator {op!r} applied to a non-constant: {operand!r}")
            raw.append(operand.value)
        return MConst(spec.apply(raw), spec.result_type)

    def _project(self, value: MachineValue, first: bool) -> MachineValue:
        policy = self.policy
        if isinstance(value, MPair):
            return value.left if first else value.right
        if isinstance(value, MProxy) and policy.is_prod_proxy(value.mediator):
            left, right = policy.prod_parts(value.mediator)
            part = left if first else right
            return policy.apply(self._project(value.under, first), part)
        raise EvaluationError(f"projection of a non-pair value: {value!r}")
