"""Mediation policies: how each calculus's machine applies casts/coercions to values.

The three CEK machines share one driver (:mod:`repro.machine.cek`); the only
difference between them is how the mediators written in the program (casts in
λB, coercions in λC, canonical coercions in λS) act on run-time values, and —
crucially for space — whether two pending mediators on the continuation may
be merged into one.  Only the λS policy merges, using the composition
operator ``#``; that single difference is what turns the linear space growth
of the λB/λC machines into the constant pending-mediator footprint of the λS
machine (the benchmark ``benchmarks/bench_space.py`` measures exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import EvaluationError
from ..core.intern import intern_type
from ..core.labels import Label
from ..core.terms import Cast, Coerce, Term
from ..core.types import (
    DynType,
    FunType,
    ProdType,
    Type,
    ground_of,
    is_ground,
    type_size,
)
from ..lambda_c import coercions as co_c
from ..lambda_s import coercions as co_s
from ..threesomes.labeled_types import LArrow, LBase, LDyn, LFail, LProd
from ..threesomes.runtime import (
    Threesome,
    compose_threesome,
    intern_threesome,
    is_interned_threesome,
    threesome_of_coercion,
    threesome_size,
)
from .values import MachineValue, MProxy


class MachineBlame(Exception):
    """Internal signal: applying a mediator allocated blame."""

    def __init__(self, label: Label):
        super().__init__(str(label))
        self.label = label


#: Action codes returned by :meth:`MediationPolicy.classify`: what applying a
#: mediator to a **non-proxy** value does.  ``ACT_IDENTITY`` — the value is
#: returned unchanged; ``ACT_WRAP`` — the value is wrapped in an
#: :class:`~repro.machine.values.MProxy` carrying the mediator;
#: ``ACT_GENERAL`` — anything else (blame, projection errors): callers must
#: fall back to :meth:`MediationPolicy.apply`.  The VM's inline mediator
#: caches (:mod:`repro.compiler.vm`) key these actions on interned mediator
#: identity so the steady-state hot loop replaces the policy's isinstance
#: ladder with one pointer compare.
ACT_IDENTITY, ACT_WRAP, ACT_GENERAL = 0, 1, 2


class MediationPolicy:
    """Interface implemented by the per-calculus policies."""

    name: str = "?"
    #: Which representation pending mediators use ("coercion" for the
    #: calculus-native one; "threesome" for labeled types, λS only).
    mediator: str = "coercion"
    merges_pending_mediators: bool = False

    def term_mediator(self, term: Term) -> object:
        raise NotImplementedError

    def is_mediation_node(self, term: Term) -> bool:
        raise NotImplementedError

    def apply(self, value: MachineValue, mediator: object) -> MachineValue:
        raise NotImplementedError

    def is_fun_proxy(self, mediator: object) -> bool:
        raise NotImplementedError

    def is_prod_proxy(self, mediator: object) -> bool:
        raise NotImplementedError

    def fun_parts(self, mediator: object) -> tuple[object, object]:
        raise NotImplementedError

    def prod_parts(self, mediator: object) -> tuple[object, object]:
        raise NotImplementedError

    def compose(self, first: object, second: object) -> object:
        raise NotImplementedError("this machine does not merge pending mediators")

    def size(self, mediator: object) -> int:
        raise NotImplementedError

    def is_identity(self, mediator: object) -> bool:
        """Is applying this mediator a no-op on *every* machine value?"""
        raise NotImplementedError

    def classify(self, mediator: object) -> int:
        """The ``ACT_*`` action of applying this mediator to a non-proxy value.

        Only merging policies (the VM backends) need this; conservative
        policies may answer :data:`ACT_GENERAL` for everything.
        """
        return ACT_GENERAL


# ---------------------------------------------------------------------------
# λB: casts as mediators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CastMediator:
    """A λB cast ``A ⇒p B`` detached from its subject."""

    source: Type
    target: Type
    label: Label


class BlamePolicy(MediationPolicy):
    """The λB machine's mediation policy (casts, no merging)."""

    name = "B"
    merges_pending_mediators = False

    def is_mediation_node(self, term: Term) -> bool:
        return isinstance(term, Cast)

    def term_mediator(self, term: Term) -> CastMediator:
        assert isinstance(term, Cast)
        # Interned types make the structural comparisons in `apply` cheap:
        # equal interned types are the same object, so `==` exits on identity.
        return CastMediator(intern_type(term.source), intern_type(term.target), term.label)

    def is_fun_proxy(self, mediator: CastMediator) -> bool:
        return isinstance(mediator.source, FunType) and isinstance(mediator.target, FunType)

    def is_prod_proxy(self, mediator: CastMediator) -> bool:
        return isinstance(mediator.source, ProdType) and isinstance(mediator.target, ProdType)

    def _is_injection(self, mediator: CastMediator) -> bool:
        return isinstance(mediator.target, DynType) and is_ground(mediator.source)

    def apply(self, value: MachineValue, m: CastMediator) -> MachineValue:
        source, target, label = m.source, m.target, m.label

        if source == target and not isinstance(source, (FunType, ProdType)):
            return value  # ι ⇒ ι and ? ⇒ ?
        if self.is_fun_proxy(m) or self.is_prod_proxy(m):
            return MProxy(value, m)
        if isinstance(target, DynType):
            if is_ground(source):
                return MProxy(value, m)
            ground = ground_of(source)
            staged = self.apply(value, CastMediator(source, ground, label))
            return self.apply(staged, CastMediator(ground, target, label))
        if isinstance(source, DynType):
            if not is_ground(target):
                ground = ground_of(target)
                staged = self.apply(value, CastMediator(source, ground, label))
                return self.apply(staged, CastMediator(ground, target, label))
            # Projection out of ?: the value must be an injected proxy.
            if isinstance(value, MProxy) and isinstance(value.mediator, CastMediator):
                inner = value.mediator
                if self._is_injection(inner):
                    if inner.source == target:
                        return value.under
                    raise MachineBlame(label)
            raise EvaluationError(f"projection applied to a non-injected value: {value!r}")
        raise EvaluationError(f"no cast rule applies to {m!r}")

    def fun_parts(self, m: CastMediator) -> tuple[CastMediator, CastMediator]:
        source, target = m.source, m.target
        assert isinstance(source, FunType) and isinstance(target, FunType)
        dom = CastMediator(target.dom, source.dom, m.label.complement())
        cod = CastMediator(source.cod, target.cod, m.label)
        return dom, cod

    def prod_parts(self, m: CastMediator) -> tuple[CastMediator, CastMediator]:
        source, target = m.source, m.target
        assert isinstance(source, ProdType) and isinstance(target, ProdType)
        left = CastMediator(source.left, target.left, m.label)
        right = CastMediator(source.right, target.right, m.label)
        return left, right

    def size(self, m: CastMediator) -> int:
        return 1 + type_size(m.source) + type_size(m.target)


# ---------------------------------------------------------------------------
# λC: coercions as mediators (no merging)
# ---------------------------------------------------------------------------


class CoercionPolicy(MediationPolicy):
    """The λC machine's mediation policy (Henglein coercions, no merging)."""

    name = "C"
    merges_pending_mediators = False

    def is_mediation_node(self, term: Term) -> bool:
        return isinstance(term, Coerce) and isinstance(term.coercion, co_c.Coercion)

    def term_mediator(self, term: Term) -> co_c.Coercion:
        assert isinstance(term, Coerce)
        return co_c.intern_coercion(term.coercion)

    def is_fun_proxy(self, mediator: co_c.Coercion) -> bool:
        return isinstance(mediator, co_c.FunCoercion)

    def is_prod_proxy(self, mediator: co_c.Coercion) -> bool:
        return isinstance(mediator, co_c.ProdCoercion)

    def apply(self, value: MachineValue, c: co_c.Coercion) -> MachineValue:
        if isinstance(c, co_c.Identity):
            return value
        if isinstance(c, co_c.Sequence):
            return self.apply(self.apply(value, c.first), c.second)
        if isinstance(c, co_c.Fail):
            raise MachineBlame(c.label)
        if isinstance(c, co_c.Project):
            if isinstance(value, MProxy) and isinstance(value.mediator, co_c.Inject):
                if value.mediator.ground == c.ground:
                    return value.under
                raise MachineBlame(c.label)
            raise EvaluationError(f"projection applied to a non-injected value: {value!r}")
        if isinstance(c, (co_c.FunCoercion, co_c.ProdCoercion, co_c.Inject)):
            return MProxy(value, c)
        raise EvaluationError(f"unknown coercion: {c!r}")

    def fun_parts(self, c: co_c.FunCoercion) -> tuple[co_c.Coercion, co_c.Coercion]:
        return c.dom, c.cod

    def prod_parts(self, c: co_c.ProdCoercion) -> tuple[co_c.Coercion, co_c.Coercion]:
        return c.left, c.right

    def size(self, c: co_c.Coercion) -> int:
        return co_c.size(c)


# ---------------------------------------------------------------------------
# λS: canonical coercions as mediators, with merging
# ---------------------------------------------------------------------------


class SpacePolicy(MediationPolicy):
    """The λS machine's mediation policy: canonical coercions merged with ``#``."""

    name = "S"
    merges_pending_mediators = True

    def __init__(self) -> None:
        # Sizes of interned mediators, keyed by identity: interned nodes are
        # immortal, so the ids are stable.  The machine recomputes the size of
        # the same pending coercion on every push/merge; this makes it O(1).
        self._size_cache: dict[int, int] = {}

    def is_mediation_node(self, term: Term) -> bool:
        return isinstance(term, Coerce) and isinstance(term.coercion, co_s.SpaceCoercion)

    def term_mediator(self, term: Term) -> co_s.SpaceCoercion:
        assert isinstance(term, Coerce)
        # Interning here keeps every mediator the machine ever holds canonical,
        # so the compose_memo cache below is hit on the node's identity.
        return co_s.intern_space(term.coercion)

    def is_fun_proxy(self, mediator: co_s.SpaceCoercion) -> bool:
        return isinstance(mediator, co_s.FunCo)

    def is_prod_proxy(self, mediator: co_s.SpaceCoercion) -> bool:
        return isinstance(mediator, co_s.ProdCo)

    def apply(self, value: MachineValue, s: co_s.SpaceCoercion) -> MachineValue:
        # A proxied value absorbs the new coercion by composition, so a value
        # never carries more than one mediator — the value-level counterpart
        # of merging pending continuation frames.
        if isinstance(value, MProxy) and isinstance(value.mediator, co_s.SpaceCoercion):
            return self.apply(value.under, co_s.compose_memo(value.mediator, s))
        if isinstance(s, (co_s.IdBase, co_s.IdDyn)):
            return value
        if isinstance(s, co_s.FailS):
            raise MachineBlame(s.label)
        if isinstance(s, co_s.Projection):
            raise EvaluationError(f"projection applied to a non-injected value: {value!r}")
        if isinstance(s, (co_s.FunCo, co_s.ProdCo, co_s.Injection)):
            return MProxy(value, s)
        raise EvaluationError(f"unknown canonical coercion: {s!r}")

    def fun_parts(self, s: co_s.FunCo) -> tuple[co_s.SpaceCoercion, co_s.SpaceCoercion]:
        return s.dom, s.cod

    def prod_parts(self, s: co_s.ProdCo) -> tuple[co_s.SpaceCoercion, co_s.SpaceCoercion]:
        return s.left, s.right

    def compose(self, first: co_s.SpaceCoercion, second: co_s.SpaceCoercion) -> co_s.SpaceCoercion:
        return co_s.compose_memo(first, second)

    def size(self, s: co_s.SpaceCoercion) -> int:
        if not co_s.is_interned_space(s):
            return co_s.size(s)
        cached = self._size_cache.get(id(s))
        if cached is None:
            cached = co_s.size(s)
            self._size_cache[id(s)] = cached
        return cached

    def is_identity(self, s: co_s.SpaceCoercion) -> bool:
        # The *canonical* identities (id? → id?, idι × idι, …) also act as
        # no-ops: their applications only wrap values in proxies whose parts
        # are identities again.  Used by the optimizer's static elision.
        return co_s.is_canonical_identity(s)

    def classify(self, s: co_s.SpaceCoercion) -> int:
        if isinstance(s, (co_s.IdBase, co_s.IdDyn)):
            return ACT_IDENTITY
        if isinstance(s, (co_s.FunCo, co_s.ProdCo, co_s.Injection)):
            return ACT_WRAP
        return ACT_GENERAL  # FailS blames, Projection errors — via apply()


# ---------------------------------------------------------------------------
# λS with threesomes: labeled types as mediators, merged with ∘
# ---------------------------------------------------------------------------


class ThreesomePolicy(MediationPolicy):
    """The λS machine's *threesome* mediator backend (§6.1 made executable).

    Interprets exactly the terms :class:`SpacePolicy` does — ``Coerce`` nodes
    carrying canonical coercions — but represents every runtime mediator as a
    :class:`~repro.threesomes.runtime.Threesome` ``⟨T ⇐P= S⟩`` and merges
    pending mediators with labeled-type composition ``∘``
    (:func:`~repro.threesomes.runtime.compose_threesome`, memoised on interned
    identity like ``#``).  Observables — values, blame labels, timeouts, and
    the constant pending-mediator footprint — agree with the coercion backend
    (enforced by ``check_mediator_oracle``).
    """

    name = "S"
    mediator = "threesome"
    merges_pending_mediators = True

    def __init__(self) -> None:
        # All keyed by the identity of interned threesomes (immortal nodes,
        # stable ids) — the same discipline as SpacePolicy's size cache.  The
        # part caches matter most: a proxied call applies fun_parts on the
        # same mediator once per iteration, and rebuilding + re-interning two
        # threesomes each time would cost the backend its parity with λS.
        self._size_cache: dict[int, int] = {}
        self._fun_parts_cache: dict[int, tuple] = {}
        self._prod_parts_cache: dict[int, tuple] = {}
        # What applying the mediator to a *non-proxy* value does, resolved
        # once per interned threesome: the isinstance ladder over (mid,
        # source, target) collapses to a dictionary hit on the hot path.
        self._action_cache: dict[int, int] = {}

    def is_mediation_node(self, term: Term) -> bool:
        return isinstance(term, Coerce) and isinstance(term.coercion, co_s.SpaceCoercion)

    def term_mediator(self, term: Term) -> Threesome:
        assert isinstance(term, Coerce)
        return threesome_of_coercion(term.coercion)

    def is_fun_proxy(self, t: Threesome) -> bool:
        return (
            isinstance(t.mid, LArrow)
            and not isinstance(t.source, DynType)
            and not isinstance(t.target, DynType)
        )

    def is_prod_proxy(self, t: Threesome) -> bool:
        return (
            isinstance(t.mid, LProd)
            and not isinstance(t.source, DynType)
            and not isinstance(t.target, DynType)
        )

    #: Action codes for :meth:`apply` on non-proxy values.
    _IDENTITY, _BLAME, _PROXY, _PROJECT_ERROR = range(4)

    def _classify(self, t: Threesome) -> int:
        """What applying ``t`` to a non-proxy value does (see :meth:`apply`)."""
        mid = t.mid
        if isinstance(mid, LDyn):
            return self._IDENTITY  # ⟨? ⇐?= ?⟩
        if isinstance(t.source, DynType):
            # A dynamic source means a projection prefix: only an injected
            # proxy can satisfy it, and proxies are absorbed before this.
            return self._PROJECT_ERROR
        if isinstance(mid, LFail):
            return self._BLAME
        if isinstance(t.target, DynType):
            return self._PROXY  # injection into ?
        if isinstance(mid, LBase):
            return self._IDENTITY  # ⟨ι ⇐ι= ι⟩
        if isinstance(mid, (LArrow, LProd)):
            return self._PROXY  # higher-order proxy
        raise EvaluationError(f"unknown threesome mediator: {t!r}")

    def apply(self, value: MachineValue, t: Threesome) -> MachineValue:
        # A proxied value absorbs the new threesome by composition, mirroring
        # the λS policy's value-level merge.
        if isinstance(value, MProxy) and isinstance(value.mediator, Threesome):
            return self.apply(value.under, compose_threesome(value.mediator, t))
        action = self._action_cache.get(id(t))
        if action is None:
            t = intern_threesome(t)
            action = self._classify(t)
            self._action_cache[id(t)] = action
        if action == 0:  # _IDENTITY
            return value
        if action == 2:  # _PROXY
            return MProxy(value, t)
        if action == 1:  # _BLAME
            raise MachineBlame(t.mid.fail_label)
        raise EvaluationError(f"projection applied to a non-injected value: {value!r}")

    def _split_types(self, t, structural_type):
        source = t.source if isinstance(t.source, structural_type) else None
        target = t.target if isinstance(t.target, structural_type) else None
        if source is None or target is None:
            raise EvaluationError(f"malformed structural threesome: {t!r}")
        return source, target

    def fun_parts(self, t: Threesome) -> tuple[Threesome, Threesome]:
        t = intern_threesome(t)
        cached = self._fun_parts_cache.get(id(t))
        if cached is not None:
            return cached
        source, target = self._split_types(t, FunType)
        dom = intern_threesome(Threesome(target.dom, t.mid.dom, source.dom))
        cod = intern_threesome(Threesome(source.cod, t.mid.cod, target.cod))
        parts = (dom, cod)
        self._fun_parts_cache[id(t)] = parts
        return parts

    def prod_parts(self, t: Threesome) -> tuple[Threesome, Threesome]:
        t = intern_threesome(t)
        cached = self._prod_parts_cache.get(id(t))
        if cached is not None:
            return cached
        source, target = self._split_types(t, ProdType)
        left = intern_threesome(Threesome(source.left, t.mid.left, target.left))
        right = intern_threesome(Threesome(source.right, t.mid.right, target.right))
        parts = (left, right)
        self._prod_parts_cache[id(t)] = parts
        return parts

    def compose(self, first: Threesome, second: Threesome) -> Threesome:
        return compose_threesome(first, second)

    def size(self, t: Threesome) -> int:
        if not is_interned_threesome(t):
            return threesome_size(t)
        cached = self._size_cache.get(id(t))
        if cached is None:
            cached = threesome_size(t)
            self._size_cache[id(t)] = cached
        return cached

    def is_identity(self, t: Threesome) -> bool:
        # Mirror SpacePolicy.is_identity through the §6.1 representation map,
        # so the optimizer elides exactly the same mediators on both
        # backends (canonical identities included).
        from ..lambda_s.coercions import is_canonical_identity
        from ..threesomes.runtime import coercion_of_threesome

        return is_canonical_identity(coercion_of_threesome(t))

    def classify(self, t: Threesome) -> int:
        action = self._action_cache.get(id(t))
        if action is None:
            t = intern_threesome(t)
            action = self._classify(t)
            self._action_cache[id(t)] = action
        if action == self._IDENTITY:
            return ACT_IDENTITY
        if action == self._PROXY:
            return ACT_WRAP
        return ACT_GENERAL  # _BLAME and _PROJECT_ERROR — via apply()


BLAME_POLICY = BlamePolicy()
COERCION_POLICY = CoercionPolicy()
SPACE_POLICY = SpacePolicy()
THREESOME_POLICY = ThreesomePolicy()
