"""Tests for the shared term AST: substitution, free variables, metrics, erasure."""

from __future__ import annotations

import pytest

from repro.core.labels import label
from repro.core.terms import (
    App,
    Blame,
    Cast,
    Coerce,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Var,
    alpha_equal,
    apply_many,
    children,
    const_bool,
    const_int,
    count_casts,
    count_coercions,
    erase,
    free_vars,
    is_closed,
    lam_many,
    map_children,
    max_adjacent_coercions,
    subst,
    subterms,
    term_size,
)
from repro.core.types import BOOL, DYN, INT, FunType
from repro.lambda_c.coercions import Identity


P = label("p")


class TestConstruction:
    def test_constant_helpers(self):
        assert const_int(3) == Const(3, INT)
        assert const_bool(True) == Const(True, BOOL)

    def test_apply_many_curries(self):
        term = apply_many(Var("f"), [const_int(1), const_int(2)])
        assert term == App(App(Var("f"), const_int(1)), const_int(2))

    def test_lam_many_curries(self):
        term = lam_many([("x", INT), ("y", BOOL)], Var("x"))
        assert term == Lam("x", INT, Lam("y", BOOL, Var("x")))


class TestTraversal:
    def test_children_of_application(self):
        term = App(Var("f"), Var("x"))
        assert children(term) == (Var("f"), Var("x"))

    def test_children_of_leaves(self):
        assert children(const_int(1)) == ()
        assert children(Var("x")) == ()
        assert children(Blame(P)) == ()

    def test_children_of_if_and_let(self):
        branch = If(Var("c"), Var("a"), Var("b"))
        assert children(branch) == (Var("c"), Var("a"), Var("b"))
        binding = Let("x", const_int(1), Var("x"))
        assert children(binding) == (const_int(1), Var("x"))

    def test_map_children_rebuilds(self):
        term = App(Var("f"), Var("x"))
        renamed = map_children(term, lambda t: Var("y") if t == Var("x") else t)
        assert renamed == App(Var("f"), Var("y"))

    def test_subterms_preorder(self):
        term = App(Lam("x", INT, Var("x")), const_int(1))
        nodes = list(subterms(term))
        assert nodes[0] == term
        assert Var("x") in nodes and const_int(1) in nodes


class TestFreeVariablesAndSubstitution:
    def test_free_vars_of_open_term(self):
        term = App(Var("f"), Lam("x", INT, App(Var("x"), Var("y"))))
        assert free_vars(term) == {"f", "y"}

    def test_lambda_binds_its_parameter(self):
        assert free_vars(Lam("x", INT, Var("x"))) == frozenset()

    def test_let_binds_only_in_the_body(self):
        term = Let("x", Var("x"), Var("x"))
        assert free_vars(term) == {"x"}

    def test_is_closed(self):
        assert is_closed(Lam("x", INT, Var("x")))
        assert not is_closed(Var("x"))

    def test_simple_substitution(self):
        term = App(Var("x"), Var("y"))
        assert subst(term, "x", const_int(1)) == App(const_int(1), Var("y"))

    def test_substitution_respects_shadowing(self):
        term = Lam("x", INT, Var("x"))
        assert subst(term, "x", const_int(1)) == term

    def test_substitution_under_a_different_binder(self):
        term = Lam("y", INT, Var("x"))
        assert subst(term, "x", const_int(1)) == Lam("y", INT, const_int(1))

    def test_capture_avoiding_substitution(self):
        # (λy. x) [x := y]   must not capture the free y.
        term = Lam("y", INT, Var("x"))
        result = subst(term, "x", Var("y"))
        assert isinstance(result, Lam)
        assert result.param != "y"
        assert result.body == Var("y")

    def test_capture_avoiding_substitution_in_let(self):
        term = Let("y", const_int(0), Var("x"))
        result = subst(term, "x", Var("y"))
        assert isinstance(result, Let)
        assert result.name != "y"
        assert result.body == Var("y")

    def test_substitution_inside_casts(self):
        term = Cast(Var("x"), INT, DYN, P)
        assert subst(term, "x", const_int(3)) == Cast(const_int(3), INT, DYN, P)


class TestMetricsAndErasure:
    def test_term_size(self):
        term = App(Lam("x", INT, Var("x")), const_int(1))
        assert term_size(term) == 4

    def test_count_casts_and_coercions(self):
        term = Cast(Coerce(const_int(1), Identity(INT)), INT, DYN, P)
        assert count_casts(term) == 1
        assert count_coercions(term) == 1

    def test_max_adjacent_coercions(self):
        nested = Coerce(Coerce(const_int(1), Identity(INT)), Identity(INT))
        assert max_adjacent_coercions(nested) == 2
        assert max_adjacent_coercions(const_int(1)) == 0

    def test_erase_removes_casts_and_coercions(self):
        term = Cast(Coerce(const_int(1), Identity(INT)), INT, DYN, P)
        assert erase(term) == const_int(1)

    def test_erase_is_structural(self):
        term = Lam("x", DYN, Cast(Var("x"), DYN, INT, P))
        assert erase(term) == Lam("x", DYN, Var("x"))

    def test_erase_preserves_extensions(self):
        term = If(const_bool(True), Pair(const_int(1), const_int(2)), Pair(const_int(3), const_int(4)))
        assert erase(term) == term


class TestAlphaEquivalence:
    def test_alpha_equal_renamed_binder(self):
        left = Lam("x", INT, Var("x"))
        right = Lam("y", INT, Var("y"))
        assert alpha_equal(left, right)

    def test_alpha_equal_requires_same_annotation(self):
        assert not alpha_equal(Lam("x", INT, Var("x")), Lam("x", DYN, Var("x")))

    def test_alpha_equal_distinguishes_free_variables(self):
        assert not alpha_equal(Var("x"), Var("y"))

    def test_alpha_equal_nested_binders(self):
        left = Lam("x", INT, Lam("y", INT, App(Var("x"), Var("y"))))
        right = Lam("a", INT, Lam("b", INT, App(Var("a"), Var("b"))))
        assert alpha_equal(left, right)

    def test_alpha_equal_let(self):
        left = Let("x", const_int(1), Var("x"))
        right = Let("y", const_int(1), Var("y"))
        assert alpha_equal(left, right)

    def test_alpha_equal_checks_cast_annotations(self):
        left = Cast(const_int(1), INT, DYN, P)
        right = Cast(const_int(1), INT, DYN, label("q"))
        assert not alpha_equal(left, right)

    def test_alpha_equal_checks_fix_types(self):
        fun = Lam("f", FunType(INT, INT), Lam("x", INT, Var("x")))
        assert not alpha_equal(Fix(fun, FunType(INT, INT)), Fix(fun, FunType(BOOL, BOOL)))

    def test_alpha_equal_pairs_and_projections(self):
        assert alpha_equal(Fst(Pair(Var("a"), Var("b"))), Fst(Pair(Var("a"), Var("b"))))
        assert not alpha_equal(Fst(Var("a")), Snd(Var("a")))

    def test_alpha_equal_ops(self):
        assert alpha_equal(Op("+", (Var("x"), const_int(1))), Op("+", (Var("x"), const_int(1))))
        assert not alpha_equal(Op("+", (Var("x"),)), Op("-", (Var("x"),)))


class TestPrettyPrinting:
    def test_cast_rendering(self):
        rendered = str(Cast(const_int(1), INT, DYN, P))
        assert "=>" in rendered and "int" in rendered and "?" in rendered

    def test_lambda_rendering(self):
        rendered = str(Lam("x", INT, Var("x")))
        assert "\\x:int" in rendered

    def test_blame_rendering(self):
        assert str(Blame(P)) == "blame p"
