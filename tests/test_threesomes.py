"""Tests for the threesome (labeled-type) baseline of §6.1.

The central claim checked here is the paper's own validation strategy:
"perhaps the easiest way to validate the [threesome composition] equations is
to translate to coercions" — so we check that composing labeled types with
``∘`` agrees with composing canonical coercions with ``#`` through the
representation maps.
"""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.labels import BULLET, label
from repro.core.types import BOOL, DYN, GROUND_FUN, INT, FunType
from repro.gen.coercions_gen import random_composable_space_pair
from repro.lambda_s.coercions import FailS, IdBase, Injection, Projection, compose
from repro.threesomes import (
    DYN_LABELED,
    LArrow,
    LBase,
    LFail,
    compose_labeled,
    coercion_of_labeled,
    ground_of_labeled,
    labeled_of_cast,
    labeled_of_coercion,
    top_label,
    with_top_label,
)
from repro.translate.b_to_s import cast_to_space

P = label("p")
Q = label("q")


class TestRepresentation:
    def test_labeled_type_of_simple_coercions(self):
        assert labeled_of_coercion(IdBase(INT)) == LBase(INT, None)
        assert labeled_of_coercion(Injection(IdBase(INT), INT)) == LBase(INT, None)
        assert labeled_of_coercion(Projection(INT, P, IdBase(INT))) == LBase(INT, P)
        assert labeled_of_coercion(FailS(INT, P, BOOL)) == LFail(P, INT, None)
        assert labeled_of_coercion(Projection(INT, Q, FailS(INT, P, BOOL))) == LFail(P, INT, Q)

    def test_labeled_type_of_casts(self):
        assert labeled_of_cast(INT, P, DYN) == LBase(INT, None)
        assert labeled_of_cast(DYN, P, INT) == LBase(INT, P)
        arrow = labeled_of_cast(DYN, P, FunType(INT, BOOL))
        assert isinstance(arrow, LArrow) and arrow.label == P

    def test_top_label_manipulation(self):
        base = LBase(INT, None)
        assert top_label(base) is None
        assert top_label(with_top_label(base, P)) == P
        assert ground_of_labeled(LArrow(DYN_LABELED, DYN_LABELED)) == GROUND_FUN

    def test_round_trip_through_coercions_for_casts(self):
        for source, target in [(INT, DYN), (DYN, INT), (FunType(INT, INT), DYN)]:
            labeled = labeled_of_cast(source, P, target)
            back = coercion_of_labeled(labeled, source, target)
            direct = cast_to_space(source, P, target)
            # The injection half of a threesome never blames, so compare the
            # representations (which forget the injection's bullet labels).
            assert labeled_of_coercion(back) == labeled_of_coercion(direct)


class TestCompositionEquations:
    def test_base_composition_keeps_the_earlier_label(self):
        assert compose_labeled(LBase(INT, P), LBase(INT, Q)) == LBase(INT, P)
        assert compose_labeled(LBase(INT, None), LBase(INT, Q)) == LBase(INT, None)

    def test_dyn_is_a_unit(self):
        assert compose_labeled(DYN_LABELED, LBase(INT, P)) == LBase(INT, P)
        assert compose_labeled(LBase(INT, P), DYN_LABELED) == LBase(INT, P)

    def test_ground_mismatch_fails_with_the_later_label(self):
        result = compose_labeled(LBase(INT, P), LBase(BOOL, Q))
        assert result == LFail(Q, INT, P)

    def test_fail_absorbs_on_the_left(self):
        fail = LFail(P, INT, None)
        assert compose_labeled(fail, LBase(BOOL, Q)) == fail

    def test_fail_on_the_right_matching_ground(self):
        result = compose_labeled(LBase(INT, P), LFail(Q, INT, label("r")))
        assert result == LFail(Q, INT, P)

    def test_fail_on_the_right_mismatched_ground(self):
        result = compose_labeled(LBase(INT, P), LFail(Q, BOOL, label("r")))
        assert result == LFail(label("r"), INT, P)

    def test_arrow_composition_is_contravariant(self):
        first = LArrow(LBase(INT, P), LBase(INT, None), Q)
        second = LArrow(LBase(INT, None), LBase(INT, label("r")), None)
        composed = compose_labeled(first, second)
        assert isinstance(composed, LArrow)
        assert composed.label == Q
        assert composed.dom == LBase(INT, None)


class TestAgreementWithSharp:
    """∘ and # compute the same composition, through the representation maps."""

    def test_first_order_round_trip(self):
        s = cast_to_space(INT, P, DYN)
        t = cast_to_space(DYN, Q, INT)
        assert compose_labeled(labeled_of_coercion(s), labeled_of_coercion(t)) == labeled_of_coercion(
            compose(s, t)
        )

    def test_failing_round_trip(self):
        s = cast_to_space(INT, P, DYN)
        t = cast_to_space(DYN, Q, BOOL)
        assert compose_labeled(labeled_of_coercion(s), labeled_of_coercion(t)) == labeled_of_coercion(
            compose(s, t)
        )

    def test_higher_order_round_trip(self):
        fun = FunType(INT, BOOL)
        s = cast_to_space(fun, P, DYN)
        t = cast_to_space(DYN, Q, fun)
        assert compose_labeled(labeled_of_coercion(s), labeled_of_coercion(t)) == labeled_of_coercion(
            compose(s, t)
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_agreement_on_random_composable_coercions(self, seed):
        rng = random.Random(seed)
        s, t, *_ = random_composable_space_pair(rng, length=2, depth=3)
        via_threesomes = compose_labeled(labeled_of_coercion(s), labeled_of_coercion(t))
        via_sharp = labeled_of_coercion(compose(s, t))
        assert via_threesomes == via_sharp
