"""Tests for the threesome (labeled-type) baseline of §6.1.

The central claim checked here is the paper's own validation strategy:
"perhaps the easiest way to validate the [threesome composition] equations is
to translate to coercions" — so we check that composing labeled types with
``∘`` agrees with composing canonical coercions with ``#`` through the
representation maps.
"""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.labels import BULLET, label
from repro.core.types import BOOL, DYN, GROUND_FUN, INT, FunType
from repro.gen.coercions_gen import (
    random_composable_space_pair,
    random_space_coercion,
)
from repro.lambda_s.coercions import FailS, IdBase, Injection, Projection, compose
from repro.threesomes import (
    DYN_LABELED,
    LArrow,
    LBase,
    LDyn,
    LFail,
    coercion_of_threesome,
    compose_labeled,
    compose_labeled_memo,
    compose_threesome,
    coercion_of_labeled,
    ground_of_labeled,
    intern_labeled,
    intern_threesome,
    is_interned_threesome,
    labeled_of_cast,
    labeled_of_coercion,
    source_type_of,
    target_type_of,
    threesome_of_coercion,
    top_label,
    with_top_label,
)
from repro.translate.b_to_s import cast_to_space

P = label("p")
Q = label("q")


class TestRepresentation:
    def test_labeled_type_of_simple_coercions(self):
        assert labeled_of_coercion(IdBase(INT)) == LBase(INT, None)
        assert labeled_of_coercion(Injection(IdBase(INT), INT)) == LBase(INT, None)
        assert labeled_of_coercion(Projection(INT, P, IdBase(INT))) == LBase(INT, P)
        assert labeled_of_coercion(FailS(INT, P, BOOL)) == LFail(P, INT, None)
        assert labeled_of_coercion(Projection(INT, Q, FailS(INT, P, BOOL))) == LFail(P, INT, Q)

    def test_labeled_type_of_casts(self):
        assert labeled_of_cast(INT, P, DYN) == LBase(INT, None)
        assert labeled_of_cast(DYN, P, INT) == LBase(INT, P)
        arrow = labeled_of_cast(DYN, P, FunType(INT, BOOL))
        assert isinstance(arrow, LArrow) and arrow.label == P

    def test_top_label_manipulation(self):
        base = LBase(INT, None)
        assert top_label(base) is None
        assert top_label(with_top_label(base, P)) == P
        assert ground_of_labeled(LArrow(DYN_LABELED, DYN_LABELED)) == GROUND_FUN

    def test_round_trip_through_coercions_for_casts(self):
        for source, target in [(INT, DYN), (DYN, INT), (FunType(INT, INT), DYN)]:
            labeled = labeled_of_cast(source, P, target)
            back = coercion_of_labeled(labeled, source, target)
            direct = cast_to_space(source, P, target)
            # The injection half of a threesome never blames, so compare the
            # representations (which forget the injection's bullet labels).
            assert labeled_of_coercion(back) == labeled_of_coercion(direct)


class TestCompositionEquations:
    def test_base_composition_keeps_the_earlier_label(self):
        assert compose_labeled(LBase(INT, P), LBase(INT, Q)) == LBase(INT, P)
        assert compose_labeled(LBase(INT, None), LBase(INT, Q)) == LBase(INT, None)

    def test_dyn_is_a_unit(self):
        assert compose_labeled(DYN_LABELED, LBase(INT, P)) == LBase(INT, P)
        assert compose_labeled(LBase(INT, P), DYN_LABELED) == LBase(INT, P)

    def test_ground_mismatch_fails_with_the_later_label(self):
        result = compose_labeled(LBase(INT, P), LBase(BOOL, Q))
        assert result == LFail(Q, INT, P)

    def test_fail_absorbs_on_the_left(self):
        fail = LFail(P, INT, None)
        assert compose_labeled(fail, LBase(BOOL, Q)) == fail

    def test_fail_on_the_right_matching_ground(self):
        result = compose_labeled(LBase(INT, P), LFail(Q, INT, label("r")))
        assert result == LFail(Q, INT, P)

    def test_fail_on_the_right_mismatched_ground(self):
        result = compose_labeled(LBase(INT, P), LFail(Q, BOOL, label("r")))
        assert result == LFail(label("r"), INT, P)

    def test_arrow_composition_is_contravariant(self):
        first = LArrow(LBase(INT, P), LBase(INT, None), Q)
        second = LArrow(LBase(INT, None), LBase(INT, label("r")), None)
        composed = compose_labeled(first, second)
        assert isinstance(composed, LArrow)
        assert composed.label == Q
        assert composed.dom == LBase(INT, None)


class TestAgreementWithSharp:
    """∘ and # compute the same composition, through the representation maps."""

    def test_first_order_round_trip(self):
        s = cast_to_space(INT, P, DYN)
        t = cast_to_space(DYN, Q, INT)
        assert compose_labeled(labeled_of_coercion(s), labeled_of_coercion(t)) == labeled_of_coercion(
            compose(s, t)
        )

    def test_failing_round_trip(self):
        s = cast_to_space(INT, P, DYN)
        t = cast_to_space(DYN, Q, BOOL)
        assert compose_labeled(labeled_of_coercion(s), labeled_of_coercion(t)) == labeled_of_coercion(
            compose(s, t)
        )

    def test_higher_order_round_trip(self):
        fun = FunType(INT, BOOL)
        s = cast_to_space(fun, P, DYN)
        t = cast_to_space(DYN, Q, fun)
        assert compose_labeled(labeled_of_coercion(s), labeled_of_coercion(t)) == labeled_of_coercion(
            compose(s, t)
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_agreement_on_random_composable_coercions(self, seed):
        rng = random.Random(seed)
        s, t, *_ = random_composable_space_pair(rng, length=2, depth=3)
        via_threesomes = compose_labeled(labeled_of_coercion(s), labeled_of_coercion(t))
        via_sharp = labeled_of_coercion(compose(s, t))
        assert via_threesomes == via_sharp


class TestIsomorphismRoundTrip:
    """``coercion_to_labeled ∘ labeled_to_coercion`` is the identity up to
    interning (the §6.1 one-to-one correspondence, property-tested)."""

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_threesome_round_trip_is_identity_up_to_interning(self, seed):
        rng = random.Random(seed)
        s, _, _ = random_space_coercion(rng, length=3, depth=3)
        threesome = threesome_of_coercion(s)
        back = coercion_of_threesome(threesome)
        # The correspondence is between labeled types and canonical coercions
        # with the endpoint types given externally (the coercion forgets the
        # never-blaming injection labels and ⊥'s informal type annotations),
        # so the round trip is the identity on the mediating labeled type —
        # as the *same interned node*, not merely an equal one.
        assert intern_labeled(labeled_of_coercion(back)) is threesome.mid
        assert threesome_of_coercion(back).mid is threesome.mid

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_labeled_round_trip_through_the_derived_types(self, seed):
        rng = random.Random(seed)
        s, _, _ = random_space_coercion(rng, length=3, depth=3)
        labeled = labeled_of_coercion(s)
        back = coercion_of_labeled(labeled, source_type_of(s), target_type_of(s))
        assert labeled_of_coercion(back) == labeled

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_interning_is_idempotent_and_canonical(self, seed):
        rng = random.Random(seed)
        s, _, _ = random_space_coercion(rng, length=2, depth=3)
        labeled = labeled_of_coercion(s)
        canon = intern_labeled(labeled)
        assert intern_labeled(canon) is canon
        assert intern_labeled(labeled_of_coercion(s)) is canon
        threesome = threesome_of_coercion(s)
        assert is_interned_threesome(threesome)
        assert intern_threesome(threesome) is threesome
        assert threesome_of_coercion(s) is threesome


class TestFailureAbsorption:
    """``⊥`` absorption laws of ``∘`` on hypothesis-generated coercions."""

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from(["l1", "l2"]),
        st.sampled_from([INT, BOOL, GROUND_FUN]),
        st.one_of(st.none(), st.just(label("pp"))),
    )
    def test_fail_absorbs_everything_on_its_right(self, seed, fail_name, ground, top):
        rng = random.Random(seed)
        s, _, _ = random_space_coercion(rng, length=2, depth=3)
        failure = LFail(label(fail_name), ground, top)
        assert compose_labeled(failure, labeled_of_coercion(s)) == failure

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.sampled_from(["l1", "l2"]))
    def test_fail_on_the_right_blames_by_ground_agreement(self, seed, fail_name):
        rng = random.Random(seed)
        s, _, _ = random_space_coercion(rng, length=2, depth=3)
        labeled = labeled_of_coercion(s)
        if isinstance(labeled, (LDyn, LFail)):
            return  # the laws below concern structural left-hand sides
        fail_label = label(fail_name)
        ground = ground_of_labeled(labeled)
        # Matching ground: the failure keeps its own label, inheriting the
        # earlier projection label.
        matching = LFail(fail_label, ground, label("q"))
        assert compose_labeled(labeled, matching) == LFail(
            fail_label, ground, top_label(labeled)
        )
        # Mismatched ground with a projection prefix: the projection fires
        # first, so *its* label is blamed.
        other = INT if ground != INT else BOOL
        mismatched = LFail(fail_label, other, label("q"))
        assert compose_labeled(labeled, mismatched) == LFail(
            label("q"), ground, top_label(labeled)
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_memoised_composition_agrees_with_the_plain_one(self, seed):
        rng = random.Random(seed)
        s, t, *_ = random_composable_space_pair(rng, length=2, depth=3)
        p, q = labeled_of_coercion(s), labeled_of_coercion(t)
        plain = compose_labeled(p, q)
        memoised = compose_labeled_memo(p, q)
        assert memoised == plain
        assert intern_labeled(memoised) is memoised

    def test_memoised_composition_hits_its_cache(self):
        # Same diagnostic surface as compose_memo_stats for λS's #.
        from repro.threesomes import compose_labeled_memo_stats

        p = labeled_of_coercion(cast_to_space(INT, P, DYN))
        q = labeled_of_coercion(cast_to_space(DYN, Q, INT))
        compose_labeled_memo(p, q)  # populate
        before = compose_labeled_memo_stats()["hits"]
        for _ in range(5):
            compose_labeled_memo(p, q)
        after = compose_labeled_memo_stats()
        assert after["hits"] >= before + 5
        assert after["entries"] >= 1

    def test_identity_threesomes_are_recognised(self):
        from repro.lambda_s.coercions import ID_DYN, IdBase, Injection
        from repro.threesomes import is_identity_threesome

        assert is_identity_threesome(threesome_of_coercion(ID_DYN))
        assert is_identity_threesome(threesome_of_coercion(IdBase(INT)))
        # An injection mediates int ⇒ ?, so it is *not* an identity even
        # though its labeled type is a bare base type.
        assert not is_identity_threesome(
            threesome_of_coercion(Injection(IdBase(INT), INT))
        )
        assert not is_identity_threesome(
            threesome_of_coercion(cast_to_space(DYN, P, INT))
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_compose_threesome_agrees_with_sharp(self, seed):
        rng = random.Random(seed)
        s, t, *_ = random_composable_space_pair(rng, length=2, depth=3)
        composed = compose_threesome(threesome_of_coercion(s), threesome_of_coercion(t))
        assert composed.mid == intern_labeled(labeled_of_coercion(compose(s, t)))
