"""Tests for λB type checking (Figure 1)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.env import TypeEnv
from repro.core.errors import TypeCheckError
from repro.core.labels import label
from repro.core.terms import (
    App,
    Blame,
    Cast,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Var,
    const_bool,
    const_int,
)
from repro.core.types import BOOL, DYN, INT, FunType, ProdType, UnknownType, types_equal
from repro.lambda_b.typecheck import check, type_of, well_typed

from .strategies import lambda_b_programs

P = label("p")


class TestStandardConstructs:
    def test_constants(self):
        assert type_of(const_int(3)) == INT
        assert type_of(const_bool(True)) == BOOL

    def test_variables_from_the_environment(self):
        env = TypeEnv({"x": INT})
        assert type_of(Var("x"), env) == INT

    def test_unbound_variable_is_an_error(self):
        with pytest.raises(TypeCheckError):
            type_of(Var("x"))

    def test_lambda_and_application(self):
        identity = Lam("x", INT, Var("x"))
        assert type_of(identity) == FunType(INT, INT)
        assert type_of(App(identity, const_int(3))) == INT

    def test_application_argument_mismatch(self):
        identity = Lam("x", INT, Var("x"))
        with pytest.raises(TypeCheckError):
            type_of(App(identity, const_bool(True)))

    def test_application_of_non_function(self):
        with pytest.raises(TypeCheckError):
            type_of(App(const_int(1), const_int(2)))

    def test_operator_typing(self):
        assert type_of(Op("+", (const_int(1), const_int(2)))) == INT
        assert type_of(Op("zero?", (const_int(0),))) == BOOL

    def test_operator_argument_mismatch(self):
        with pytest.raises(TypeCheckError):
            type_of(Op("+", (const_int(1), const_bool(True))))

    def test_operator_arity_mismatch(self):
        with pytest.raises(TypeCheckError):
            type_of(Op("+", (const_int(1),)))

    def test_if_typing(self):
        assert type_of(If(const_bool(True), const_int(1), const_int(2))) == INT

    def test_if_requires_boolean_condition(self):
        with pytest.raises(TypeCheckError):
            type_of(If(const_int(1), const_int(1), const_int(2)))

    def test_if_requires_matching_branches(self):
        with pytest.raises(TypeCheckError):
            type_of(If(const_bool(True), const_int(1), const_bool(False)))

    def test_let_typing(self):
        assert type_of(Let("x", const_int(1), Op("+", (Var("x"), const_int(1))))) == INT

    def test_fix_typing(self):
        fun_type = FunType(INT, INT)
        functional = Lam("f", fun_type, Lam("x", INT, Var("x")))
        assert type_of(Fix(functional, fun_type)) == fun_type

    def test_fix_requires_a_functional(self):
        with pytest.raises(TypeCheckError):
            type_of(Fix(const_int(1), FunType(INT, INT)))

    def test_pairs_and_projections(self):
        pair = Pair(const_int(1), const_bool(True))
        assert type_of(pair) == ProdType(INT, BOOL)
        assert type_of(Fst(pair)) == INT
        assert type_of(Snd(pair)) == BOOL

    def test_projection_of_non_pair(self):
        with pytest.raises(TypeCheckError):
            type_of(Fst(const_int(1)))


class TestCastsAndBlame:
    def test_cast_typing_rule(self):
        cast = Cast(const_int(1), INT, DYN, P)
        assert type_of(cast) == DYN

    def test_cast_requires_subject_of_source_type(self):
        with pytest.raises(TypeCheckError):
            type_of(Cast(const_bool(True), INT, DYN, P))

    def test_cast_requires_compatible_types(self):
        with pytest.raises(TypeCheckError):
            type_of(Cast(const_int(1), INT, BOOL, P))

    def test_higher_order_cast(self):
        fun = Lam("x", DYN, Var("x"))
        cast = Cast(fun, FunType(DYN, DYN), FunType(INT, DYN), P)
        assert type_of(cast) == FunType(INT, DYN)

    def test_blame_takes_any_type(self):
        assert isinstance(type_of(Blame(P)), UnknownType)
        # blame can be used wherever any type is expected:
        assert type_of(App(Lam("x", INT, Var("x")), Blame(P))) == INT
        assert types_equal(type_of(If(const_bool(True), Blame(P), const_int(1))), INT)

    def test_check_helper(self):
        check(const_int(1), INT)
        with pytest.raises(TypeCheckError):
            check(const_int(1), BOOL)

    def test_well_typed_helper(self):
        assert well_typed(Cast(const_int(1), INT, DYN, P))
        assert not well_typed(Cast(const_int(1), BOOL, DYN, P))


class TestGeneratedPrograms:
    @given(lambda_b_programs())
    def test_generated_programs_type_check_at_their_declared_type(self, program):
        term, ty = program
        assert types_equal(type_of(term), ty)
