"""End-to-end tests for ``repro-gradual serve`` (:mod:`repro.serve.server`).

Each test starts a real server subprocess on a Unix socket (ephemeral TCP
for the TCP test), talks the newline-delimited JSON protocol through
:class:`~repro.serve.client.ServeClient`, and asserts on the process's
exit code.  Covered: request/response basics, parity with inline batch
results, warm-vs-cold caching, load shedding, chaos under injected faults,
and the graceful-drain contract (SIGTERM drains and exits 0; a second
SIGTERM force-exits 1).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient
from repro.serve.protocol import TERMINAL_KINDS

SRC = Path(__file__).resolve().parent.parent / "src"

SQUARE = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"
BLAME = "(define lib : ? (lambda (x) #t))\n(+ 1 ((: lib (-> int int)) 3))\n"
SPIN = "(define (spin [n : int]) : int (spin n))\n(spin 0)\n"
IDENT = "((lambda ([x : int]) x) 42)\n"


def start_server(tmp_path, *extra_args, env_extra=None, tcp=False):
    """A serve subprocess, started and ready: ``(Popen, ready dict)``."""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    if env_extra:
        env.update(env_extra)
    transport = (
        ["--port", "0"] if tcp else ["--socket", str(tmp_path / "serve.sock")]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *transport, *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    line = proc.stdout.readline()
    assert line, proc.stderr.read()
    ready = json.loads(line)
    assert ready["event"] == "ready"
    return proc, ready


def stop(proc, client=None, expect=0):
    if client is not None:
        client.shutdown()
        client.close()
    out, err = proc.communicate(timeout=30)
    assert proc.returncode == expect, err
    return out, err


class TestProtocol:
    def test_ping_stats_run_and_bad_requests(self, tmp_path):
        proc, ready = start_server(tmp_path)
        client = ServeClient.from_ready(ready)
        assert client.ping()["ok"] is True

        result = client.run(SQUARE, id="r1")
        assert (result["id"], result["kind"], result["value"]) == ("r1", "value", 36)
        assert result["type"] == "int"
        assert result["steps"] > 0 and "max_pending_mediators" in result
        assert result["cache"] == "miss" and "compile_s" in result and "run_s" in result

        # Malformed requests get error responses, never dropped connections.
        assert client.request({"op": "run", "id": "x"})["kind"] == "error"
        assert "source" in client.request({"op": "run", "id": "x"})["error"]
        assert client.request({"op": "nope"})["kind"] == "error"
        assert client.run(SQUARE, engine="cek")["kind"] == "error"
        assert client.run(SQUARE, semantics="nope")["kind"] == "error"
        assert client.run(SQUARE, opt_level=9)["kind"] == "error"
        assert client.run(SQUARE, fuel=-1)["kind"] == "error"
        assert client.run(SQUARE, deadline_s=0)["kind"] == "error"
        bad_line = client.request({"op": "run"})  # still JSON, missing source
        assert bad_line["kind"] == "error"

        stats = client.stats()
        assert stats["ok"] and stats["pool"]["size"] == 1
        assert stats["metrics"]["counters"]["serve.outcome.value"] == 1
        stop(proc, client)

    def test_tcp_transport(self, tmp_path):
        proc, ready = start_server(tmp_path, tcp=True)
        client = ServeClient.connect_tcp(ready["host"], ready["port"])
        assert client.run(IDENT)["value"] == 42
        stop(proc, client)

    def test_matches_inline_batch_results(self, tmp_path):
        """Served results are bit-identical to the batch runner's inline
        records (modulo timings and serving bookkeeping)."""
        from repro.batch import run_batch

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        programs = {"a.grad": SQUARE, "b.grad": BLAME, "c.grad": IDENT}
        for name, source in programs.items():
            (corpus / name).write_text(source)
        inline, _ = run_batch([corpus], workers=1)
        by_name = {Path(r["program"]).name: r for r in inline}

        proc, ready = start_server(tmp_path, "--workers", "2")
        client = ServeClient.from_ready(ready)
        volatile = {"program", "cache", "compile_s", "load_s", "run_s", "id",
                    "served", "rss_kb", "attempts"}
        for name, source in programs.items():
            served = client.run(source, id=name)
            expected = by_name[name]
            for record in (served, expected):
                for key in volatile:
                    record.pop(key, None)
            assert served == expected, name
        stop(proc, client)

    def test_warm_requests_skip_compilation(self, tmp_path):
        proc, ready = start_server(tmp_path)
        client = ServeClient.from_ready(ready)
        cold = client.run(SQUARE)
        warm = client.run(SQUARE)
        assert cold["cache"] == "miss" and warm["cache"] == "warm"
        assert (cold["kind"], cold["value"]) == (warm["kind"], warm["value"])
        # And by hash only — no source shipped at all.
        from repro.compiler.serialize import source_fingerprint

        hashed = client.request(
            {"op": "run", "source_hash": source_fingerprint(SQUARE)}
        )
        assert hashed["value"] == 36 and hashed["cache"] == "warm"
        stop(proc, client)

    def test_per_request_axes(self, tmp_path):
        proc, ready = start_server(tmp_path)
        client = ServeClient.from_ready(ready)
        assert client.run(SQUARE, engine="rvm")["value"] == 36
        # Erasure never blames; coercion does — per-request semantics.
        assert client.run(BLAME, semantics="coercion")["kind"] == "blame"
        assert client.run(BLAME, semantics="erasure")["kind"] == "value"
        assert client.run(SPIN, fuel=1000)["kind"] == "timeout"
        deadline = client.run(SPIN, fuel=10**12, deadline_s=0.2)
        assert deadline["kind"] == "timeout" and deadline["reason"] == "deadline"
        stop(proc, client)


class TestOverload:
    def test_queue_limit_sheds_with_overloaded(self, tmp_path):
        proc, ready = start_server(tmp_path, "--workers", "1", "--queue-limit", "1")
        slow = ServeClient.from_ready(ready)
        fast = ServeClient.from_ready(ready)
        # Occupy the only admission slot with a deadline-bounded spin…
        slow._sock.sendall(
            json.dumps({"op": "run", "source": SPIN, "fuel": 10**12,
                        "deadline_s": 1.5, "id": "slow"}).encode() + b"\n"
        )
        time.sleep(0.3)  # let it be admitted
        # …so a concurrent request is shed at admission, immediately.
        started = time.perf_counter()
        shed = fast.run(SQUARE, id="shed")
        assert time.perf_counter() - started < 1.0
        assert shed["kind"] == "overloaded" and shed["id"] == "shed"
        assert "queue full" in shed["error"]
        slow_result = json.loads(slow._reader.readline())
        assert slow_result["kind"] == "timeout"
        # With the slot free again, the same client is served.
        assert fast.run(SQUARE)["kind"] == "value"
        stats = fast.stats()
        assert stats["metrics"]["counters"]["serve.shed"] == 1
        assert stats["metrics"]["counters"]["serve.outcome.overloaded"] == 1
        stop(proc, fast)
        slow.close()


class TestChaos:
    def test_every_request_gets_exactly_one_terminal_response(self, tmp_path):
        """The acceptance property, over the wire: seeded worker kills,
        slow compiles, and torn writes; every request answered exactly
        once with a terminal kind; non-faulted responses match the
        fault-free expectation; the cache is clean after the drain."""
        from repro.compiler.cache import sweep_cache

        cache_dir = tmp_path / "chaos-cache"
        expected = {"sq": ("value", 36), "id": ("value", 42), "bl": ("blame", None)}
        sources = {"sq": SQUARE, "id": IDENT, "bl": BLAME}
        proc, ready = start_server(
            tmp_path, "--retries", "2",
            env_extra={
                "REPRO_GRADUAL_CACHE_DIR": str(cache_dir),
                "REPRO_GRADUAL_FAULTS": "worker_kill:0.25,slow_compile:0.3:3,torn_write:0.5:3",
                "REPRO_GRADUAL_FAULTS_SEED": "20150613",
            },
        )
        client = ServeClient.from_ready(ready)
        order = [name for _ in range(10) for name in ("sq", "id", "bl")]
        for index, name in enumerate(order):
            response = client.run(sources[name], id=f"{name}-{index}")
            assert response["id"] == f"{name}-{index}"
            assert response["kind"] in TERMINAL_KINDS
            if response["kind"] == "error":
                assert response["reason"] == "worker-lost"
            else:
                kind, value = expected[name]
                assert response["kind"] == kind
                if value is not None:
                    assert response["value"] == value
        stats = client.stats()
        assert stats["metrics"]["counters"]["serve.requests"] == len(order)
        stop(proc, client)  # graceful drain sweeps the cache…
        assert sweep_cache(cache_dir)[1] == 0  # …so nothing corrupt remains


class TestDrain:
    def test_sigterm_drains_inflight_and_exits_zero(self, tmp_path):
        proc, ready = start_server(tmp_path)
        client = ServeClient.from_ready(ready)
        client._sock.sendall(
            json.dumps({"op": "run", "source": SPIN, "fuel": 10**12,
                        "deadline_s": 1.0, "id": "inflight"}).encode() + b"\n"
        )
        time.sleep(0.3)  # in flight
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.1)
        # New connections are refused once draining…
        with pytest.raises(OSError):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(2.0)
            try:
                probe.connect(ready["socket"])
                probe.sendall(b'{"op": "ping"}\n')
                assert probe.recv(1024)  # either connect or first read fails
            finally:
                probe.close()
        # …but the in-flight request still completes with its real outcome.
        response = json.loads(client._reader.readline())
        assert response["id"] == "inflight" and response["kind"] == "timeout"
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        client.close()

    def test_requests_after_drain_starts_are_rejected(self, tmp_path):
        proc, ready = start_server(tmp_path)
        client = ServeClient.from_ready(ready)
        assert client.run(SQUARE)["kind"] == "value"
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.05)
        # The open connection survives long enough to learn it's draining.
        try:
            rejected = client.run(SQUARE)
            assert rejected["kind"] == "error"
            assert "draining" in rejected["error"]
        except (ConnectionError, OSError):
            pass  # the drain may close the idle connection first — also fine
        proc.communicate(timeout=30)
        assert proc.returncode == 0
        client.close()

    def test_second_sigterm_force_exits_nonzero(self, tmp_path):
        proc, ready = start_server(tmp_path)
        client = ServeClient.from_ready(ready)
        client._sock.sendall(
            json.dumps({"op": "run", "source": SPIN, "fuel": 10**12,
                        "deadline_s": 30, "id": "stuck"}).encode() + b"\n"
        )
        time.sleep(0.3)
        proc.send_signal(signal.SIGTERM)  # drain waits on the slow request
        time.sleep(0.2)
        assert proc.poll() is None
        proc.send_signal(signal.SIGTERM)  # force
        proc.communicate(timeout=30)
        assert proc.returncode == 1
        client.close()

    def test_shutdown_op_drains_like_sigterm(self, tmp_path):
        proc, ready = start_server(tmp_path)
        client = ServeClient.from_ready(ready)
        assert client.run(SQUARE)["kind"] == "value"
        response = client.shutdown()
        assert response["ok"] and response["draining"]
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        client.close()
