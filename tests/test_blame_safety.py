"""Tests for Proposition 5 (blame safety) and Lemma 9 (subtyping vs coercion safety)."""

from __future__ import annotations

import itertools

from hypothesis import given

from repro.core.labels import label
from repro.core.subtyping import subtype_neg, subtype_pos
from repro.core.types import all_types, compatible
from repro.gen.programs import (
    even_odd_boundary,
    safe_boundary_program,
    twice_boundary,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_c.coercions import coercion_safe_for
from repro.properties.blame_safety import check_blame_safety, labels_in_term
from repro.properties.calculi import LAMBDA_B, LAMBDA_C, LAMBDA_S
from repro.translate import b_to_c, b_to_s
from repro.translate.b_to_c import cast_to_coercion

from .strategies import compatible_type_pairs, lambda_b_programs

P = label("p")

SMALL_TYPES = all_types(3)


class TestLemma9:
    """A <:+ B iff |A ⇒p B|BC is safe for p; A <:− B iff it is safe for p̄."""

    def test_exhaustive_on_small_types(self):
        for a, b in itertools.product(SMALL_TYPES, repeat=2):
            if not compatible(a, b):
                continue
            coercion = cast_to_coercion(a, P, b)
            assert subtype_pos(a, b) == coercion_safe_for(coercion, P), (a, b)
            assert subtype_neg(a, b) == coercion_safe_for(coercion, P.complement()), (a, b)

    def test_exhaustive_with_products(self):
        for a, b in itertools.product(all_types(2, include_products=True), repeat=2):
            if not compatible(a, b):
                continue
            coercion = cast_to_coercion(a, P, b)
            assert subtype_pos(a, b) == coercion_safe_for(coercion, P), (a, b)
            assert subtype_neg(a, b) == coercion_safe_for(coercion, P.complement()), (a, b)

    @given(compatible_type_pairs(max_depth=4))
    def test_random_type_pairs(self, pair):
        a, b = pair
        coercion = cast_to_coercion(a, P, b)
        assert subtype_pos(a, b) == coercion_safe_for(coercion, P)
        assert subtype_neg(a, b) == coercion_safe_for(coercion, P.complement())


class TestProposition5:
    @given(lambda_b_programs())
    def test_lambda_b(self, program):
        term, _ = program
        report = check_blame_safety(LAMBDA_B, term)
        assert report.ok, report.reason

    @given(lambda_b_programs())
    def test_lambda_c(self, program):
        term, _ = program
        report = check_blame_safety(LAMBDA_C, b_to_c(term))
        assert report.ok, report.reason

    @given(lambda_b_programs())
    def test_lambda_s(self, program):
        term, _ = program
        report = check_blame_safety(LAMBDA_S, b_to_s(term))
        assert report.ok, report.reason

    def test_workloads_in_every_calculus(self):
        programs = [
            even_odd_boundary(5),
            twice_boundary(3),
            untyped_library_bad_result(),
            untyped_client_bad_argument(),
            safe_boundary_program(),
        ]
        for program in programs:
            assert check_blame_safety(LAMBDA_B, program, fuel=3_000).ok
            assert check_blame_safety(LAMBDA_C, b_to_c(program), fuel=3_000).ok
            assert check_blame_safety(LAMBDA_S, b_to_s(program), fuel=6_000).ok

    def test_the_blamed_label_is_always_statically_unsafe(self):
        """The contrapositive reading of "well-typed programs can't be blamed"."""
        from repro.lambda_b.reduction import run
        from repro.lambda_b.safety import term_safe_for

        for program in (untyped_library_bad_result(), untyped_client_bad_argument()):
            outcome = run(program)
            assert outcome.is_blame
            assert not term_safe_for(program, outcome.label)

    def test_labels_in_term_collects_complements(self):
        term = untyped_library_bad_result("edge")
        labels = labels_in_term(term)
        assert label("edge") in labels
        assert label("edge").complement() in labels
